#!/usr/bin/env python
"""Adaptive 1-D Sod shock tube, verified against the exact solution.

The classic verification workflow the paper's reference [4] (Quirk's
adaptive shock hydrodynamics) was built for: solve the Sod Riemann
problem on adaptive blocks with refluxing, compare with the exact
Riemann solution, and show where the grid put its resolution (the
rarefaction head/tail, the contact, and the shock).

Run:  python examples/adaptive_sod.py
"""

import numpy as np

from repro.amr import Simulation, SimulationConfig, grid_report
from repro.amr.boundary import OutflowBC
from repro.amr.problems import Problem
from repro.amr.sampling import line_cut
from repro.amr.visualize import render_blocks
from repro.core.refine_criteria import MonitorCriterion, compute_flags
from repro.solvers import EulerScheme, sod_solution
from repro.util.geometry import Box

T_END = 0.2


def build_simulation(max_level=4):
    cfg = SimulationConfig(
        domain=Box((0.0,), (1.0,)),
        n_root=(4,),
        m=(8,),
        max_level=max_level,
        adapt_interval=2,
        refine_threshold=0.08,
        coarsen_threshold=0.02,
    )
    scheme = EulerScheme(1, gamma=1.4, order=2, riemann="hllc", limiter="mc")
    forest = cfg.make_forest(scheme.nvar)

    def init(forest):
        for b in forest:
            (x,) = b.meshgrid()
            w = np.stack(
                [
                    np.where(x < 0.5, 1.0, 0.125),
                    np.zeros_like(x),
                    np.where(x < 0.5, 1.0, 0.1),
                ]
            )
            b.interior[...] = scheme.prim_to_cons(w)

    init(forest)
    criterion = MonitorCriterion(
        lambda d: d[0],
        refine_threshold=cfg.refine_threshold,
        coarsen_threshold=cfg.coarsen_threshold,
        max_level=cfg.max_level,
    )
    sim = Simulation(
        forest,
        scheme,
        bc=OutflowBC(),
        criterion=criterion,
        adapt_interval=cfg.adapt_interval,
        reflux=True,
    )
    # Pre-adapt around the diaphragm.
    for _ in range(max_level):
        sim.fill_ghosts()
        refine, _ = compute_flags(forest, criterion)
        if not refine:
            break
        forest.adapt(refine)
        init(forest)
    return sim


def main() -> None:
    sim = build_simulation()
    print("=== initial adaptive grid (refined at the diaphragm) ===")
    print(grid_report(sim.forest))
    print("block levels:", render_blocks(sim.forest))

    sim.run(t_end=T_END)

    print(f"\n=== t = {T_END}: solution vs exact Riemann solution ===")
    xs, vals = line_cut(sim.forest, 0, (0.5,), n=96)
    w = sim.scheme.cons_to_prim(vals)
    rho_e, u_e, p_e = sod_solution(xs, T_END)
    print(f"{'x':>7} {'rho':>8} {'exact':>8} {'u':>8} {'exact':>8} {'p':>8} {'exact':>8}")
    for i in range(0, len(xs), 8):
        print(
            f"{xs[i]:7.3f} {w[0][i]:8.4f} {rho_e[i]:8.4f} "
            f"{w[1][i]:8.4f} {u_e[i]:8.4f} {w[2][i]:8.4f} {p_e[i]:8.4f}"
        )
    err = np.abs(w[0] - rho_e).mean()
    print(f"\nL1 density error vs exact: {err:.4e}")

    print("\nfinal block levels (fine blocks track the waves):")
    print(render_blocks(sim.forest))
    print()
    print(grid_report(sim.forest))


if __name__ == "__main__":
    main()
