#!/usr/bin/env python
"""Orszag–Tang vortex on adaptive blocks — the MHD stress test.

Smooth periodic vortices steepen into the famous web of interacting MHD
shocks; the adaptive grid chases the shock network.  Renders the density
field and the block structure as the web forms, tracks the divergence-B
control of the Powell scheme, and exports a VTK file for ParaView.

Run:  python examples/orszag_tang.py
"""

import numpy as np

from repro.amr import grid_report, orszag_tang
from repro.amr.visualize import render_blocks, render_field
from repro.amr.vtk import save_vtk_uniform


def max_divb(sim):
    worst = 0.0
    for b in sim.forest:
        div = sim.scheme.div_b_interior(b.data, b.dx, sim.forest.n_ghost)
        worst = max(worst, float(np.abs(div).max()))
    return worst


def main() -> None:
    problem = orszag_tang()
    sim = problem.build(initial_adapt_rounds=1)
    print("=== initial grid ===")
    print(grid_report(sim.forest))

    t_end = 0.3
    print(f"\nrunning the vortex to t = {t_end} ...")
    next_report = 0.1
    while sim.time < t_end - 1e-12:
        rec = sim.step()
        if sim.time >= next_report:
            print(
                f"t={sim.time:5.3f}  step={rec.step:4d}  "
                f"blocks={rec.n_blocks:4d}  levels={sim.forest.levels}  "
                f"max|divB|={max_divb(sim):7.3f}"
            )
            next_report += 0.1

    print("\ndensity (the shock web):")
    print(render_field(sim.forest, var=0, width=56, height=26))
    print("\nblock levels (refinement tracks the shocks):")
    print(render_blocks(sim.forest, width=56, height=26))
    print("\n=== final grid ===")
    print(grid_report(sim.forest))

    out = save_vtk_uniform(
        sim.forest,
        "orszag_tang.vtk",
        var_names=["rho", "mx", "my", "mz", "E", "Bx", "By", "Bz"],
    )
    print(f"\nVTK file for ParaView written to {out}")


if __name__ == "__main__":
    main()
