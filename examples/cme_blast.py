#!/usr/bin/env python
"""MHD blast wave — the CME-launch analogue (paper Figure 1's physics).

A strongly over-pressured region erupts into a magnetized ambient
medium.  The fast shock expands anisotropically along the background
field while the adaptive blocks track the front; this is the same code
path the paper's coronal-mass-ejection simulations exercised at scale.

The script prints the evolution, an ASCII density map with the block
structure overlaid, and writes a checkpoint you can reload with
``repro.amr.load_forest``.

Run:  python examples/cme_blast.py
"""

import numpy as np

from repro.amr import grid_report, mhd_blast, save_forest


def ascii_density_map(sim, n=48) -> str:
    """Sample density on an n x n raster and render it as ASCII art,
    with '+' marking block corners (the adaptive structure)."""
    ramp = " .:-=+*#%@"
    lo = sim.forest.domain.lo
    hi = sim.forest.domain.hi
    xs = np.linspace(lo[0] + 1e-6, hi[0] - 1e-6, n)
    ys = np.linspace(lo[1] + 1e-6, hi[1] - 1e-6, n)
    vals = np.zeros((n, n))
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            b = sim.forest.block_at((x, y))
            X, Y = b.meshgrid()
            idx = np.unravel_index(np.argmin((X - x) ** 2 + (Y - y) ** 2), X.shape)
            vals[i, j] = b.interior[0][idx]
    vmin, vmax = vals.min(), vals.max()
    span = max(vmax - vmin, 1e-12)
    rows = []
    for j in range(n - 1, -1, -1):
        row = "".join(
            ramp[min(int((vals[i, j] - vmin) / span * len(ramp)), len(ramp) - 1)]
            for i in range(n)
        )
        rows.append(row)
    return "\n".join(rows)


def main() -> None:
    problem = mhd_blast(ndim=2, b0=1.0, p_inside=10.0)
    sim = problem.build(initial_adapt_rounds=3)

    print("=== initial grid (refined around the blast sphere) ===")
    print(grid_report(sim.forest))

    t_end = 0.08
    print(f"\nrunning MHD blast to t = {t_end} ...")
    next_report = 0.02
    while sim.time < t_end - 1e-12:
        rec = sim.step()
        if sim.time >= next_report:
            div_max = 0.0
            for b in sim.forest:
                div = sim.scheme.div_b_interior(b.data, b.dx, sim.forest.n_ghost)
                div_max = max(div_max, float(np.abs(div).max()))
            print(
                f"t={sim.time:6.4f}  step={rec.step:4d}  blocks={rec.n_blocks:4d} "
                f"levels={sim.forest.levels}  max|divB|={div_max:8.3f}"
            )
            next_report += 0.02

    print("\n=== density map (blast expands along the oblique field) ===")
    print(ascii_density_map(sim))

    print("\n=== final grid ===")
    print(grid_report(sim.forest))

    save_forest(sim.forest, "cme_blast_final.npz")
    print("\ncheckpoint written to cme_blast_final.npz")


if __name__ == "__main__":
    main()
