#!/usr/bin/env python
"""Cometary mass loading — the comet x-ray application analogue.

Supersonic magnetized solar wind flows past a comet whose neutral cloud
continuously adds slow ions to the flow (ion pick-up).  The added mass
decelerates the wind and a bow-shock-like compression forms upstream of
the nucleus — the structure behind the cometary x-ray modelling the
paper cites (Haberli et al.), which ran on a workstation with the same
adaptive-block code.

The script measures the upstream standoff distance of the compression
front and shows how the adaptive grid concentrates blocks around it.

Run:  python examples/comet_massloading.py
"""

import numpy as np

from repro.amr import comet, grid_report


def centerline_profile(sim, n=80):
    """Density and x-velocity along the y=0 centerline."""
    lo, hi = sim.forest.domain.lo[0], sim.forest.domain.hi[0]
    xs = np.linspace(lo + 1e-6, hi - 1e-6, n)
    rho, ux = [], []
    for x in xs:
        b = sim.forest.block_at((x, 0.0))
        X, Y = b.meshgrid()
        idx = np.unravel_index(np.argmin((X - x) ** 2 + Y**2), X.shape)
        w = sim.scheme.cons_to_prim(b.interior)
        rho.append(float(w[0][idx]))
        ux.append(float(w[1][idx]))
    return xs, np.array(rho), np.array(ux)


def main() -> None:
    problem = comet(ndim=2, inflow_u=4.0, loading_rate=3.0)
    sim = problem.build(initial_adapt_rounds=1)
    print("=== initial grid ===")
    print(grid_report(sim.forest))

    t_end = 1.2
    print(f"\nrunning mass-loaded flow to t = {t_end} ...")
    while sim.time < t_end - 1e-12:
        rec = sim.step()
        if rec.step % 25 == 0:
            print(
                f"t={sim.time:6.3f}  blocks={rec.n_blocks:4d}  "
                f"levels={sim.forest.levels}"
            )

    xs, rho, ux = centerline_profile(sim)
    print("\ncenterline profile (y = 0):")
    print(f"{'x':>7} {'rho':>8} {'ux':>7}")
    for i in range(0, len(xs), 8):
        print(f"{xs[i]:7.2f} {rho[i]:8.4f} {ux[i]:7.3f}")

    # Standoff: the upstream point where compression exceeds 1.3x inflow.
    upstream = xs < 0.0
    compressed = upstream & (rho > 1.3)
    if compressed.any():
        standoff = -xs[compressed].min()
        print(f"\nupstream compression front standoff: {standoff:.2f} "
              f"(cloud radius 0.4)")
    else:
        print("\nno compression front detected yet (increase t_end or "
              "loading_rate)")

    print("\n=== final grid ===")
    print(grid_report(sim.forest))


if __name__ == "__main__":
    main()
