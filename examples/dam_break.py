#!/usr/bin/env python
"""2-D shallow-water dam break on adaptive blocks.

A circular column of deep water collapses into shallow surroundings: a
circular bore races outward while a rarefaction drains the column —
gravity-wave analogue of the blast problems, showing the same block
structure on a different physical system.

Run:  python examples/dam_break.py
"""

import numpy as np

from repro.amr import Simulation, SimulationConfig, grid_report
from repro.amr.boundary import OutflowBC
from repro.amr.sampling import integrate, line_cut
from repro.amr.visualize import render_blocks, render_field
from repro.core.refine_criteria import MonitorCriterion, compute_flags
from repro.solvers import ShallowWaterScheme
from repro.util.geometry import Box


def main() -> None:
    cfg = SimulationConfig(
        domain=Box((-1.0, -1.0), (1.0, 1.0)),
        n_root=(2, 2),
        m=(8, 8),
        max_level=3,
        adapt_interval=2,
        refine_threshold=0.10,
        coarsen_threshold=0.02,
    )
    scheme = ShallowWaterScheme(2, gravity=1.0, order=2, riemann="hll",
                                limiter="mc")
    forest = cfg.make_forest(scheme.nvar)

    def init(forest):
        for b in forest:
            X, Y = b.meshgrid()
            w = np.zeros((3,) + X.shape)
            w[0] = np.where(X**2 + Y**2 < 0.3**2, 2.0, 1.0)
            b.interior[...] = scheme.prim_to_cons(w)

    init(forest)
    criterion = MonitorCriterion(
        lambda d: d[0],
        refine_threshold=cfg.refine_threshold,
        coarsen_threshold=cfg.coarsen_threshold,
        max_level=cfg.max_level,
    )
    sim = Simulation(
        forest, scheme, bc=OutflowBC(), criterion=criterion,
        adapt_interval=cfg.adapt_interval, reflux=True,
    )
    for _ in range(3):
        sim.fill_ghosts()
        refine, _ = compute_flags(forest, criterion)
        if not refine:
            break
        forest.adapt(refine)
        init(forest)

    print("=== initial grid ===")
    print(grid_report(sim.forest))
    mass0 = integrate(sim.forest)[0]

    t_end = 0.5
    print(f"\nrunning dam break to t = {t_end} ...")
    while sim.time < t_end - 1e-12:
        rec = sim.step()
        if rec.step % 20 == 0:
            print(f"t={sim.time:6.3f}  blocks={rec.n_blocks:4d}  "
                  f"levels={sim.forest.levels}")

    print("\nwater depth (the bore is the bright ring):")
    print(render_field(sim.forest, var=0, width=56, height=26))
    print("\nblock refinement levels:")
    print(render_blocks(sim.forest, width=56, height=26))

    xs, vals = line_cut(sim.forest, 0, (0.0, 0.0), n=64)
    h = scheme.cons_to_prim(vals)[0]
    print("\ncenterline depth profile:")
    print(f"{'x':>7} {'h':>8}")
    for i in range(0, len(xs), 6):
        print(f"{xs[i]:7.2f} {h[i]:8.4f}")

    mass1 = integrate(sim.forest)[0]
    print(f"\nwater volume drift (refluxed AMR): "
          f"{abs(mass1 - mass0) / mass0:.2e}")
    print("\n=== final grid ===")
    print(grid_report(sim.forest))


if __name__ == "__main__":
    main()
