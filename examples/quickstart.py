#!/usr/bin/env python
"""Quickstart: build an adaptive block forest and run an AMR simulation.

This walks the core API end to end:

1. build a :class:`~repro.core.BlockForest` over a periodic unit square;
2. initialize a Gaussian pulse and let the refinement criterion place
   fine blocks around it;
3. advance with the second-order finite-volume scheme while the grid
   adapts to follow the pulse;
4. check the error against the exact solution and print grid statistics.

Run:  python examples/quickstart.py
"""

from repro.amr import advecting_pulse, grid_report

def main() -> None:
    problem = advecting_pulse(ndim=2, velocity=(1.0, 0.5))
    sim = problem.build()

    print("=== initial adaptive grid ===")
    print(grid_report(sim.forest))
    print()

    t_end = 0.25
    print(f"advancing to t = {t_end} ...")
    print(f"{'step':>5} {'time':>8} {'dt':>9} {'blocks':>7} {'cells':>8}")
    while sim.time < t_end - 1e-12:
        rec = sim.step()
        if rec.step % 10 == 0 or sim.time >= t_end - 1e-12:
            print(
                f"{rec.step:5d} {rec.time:8.4f} {rec.dt:9.2e} "
                f"{rec.n_blocks:7d} {rec.n_cells:8d}"
            )

    print()
    print("=== final adaptive grid ===")
    print(grid_report(sim.forest))

    err = sim.error_vs(problem.exact(sim.time))
    print(f"\nL1 error vs exact solution: {err:.3e}")
    print("phase timings:")
    print(sim.timer.report())

    # The point of AMR: compare the cell count with the uniform
    # equivalent at the finest resolution.
    top = sim.forest.levels[1]
    uniform_cells = 1
    for n, m in zip(sim.forest.n_root, sim.forest.m):
        uniform_cells *= (n << top) * m
    print(
        f"\nAMR uses {sim.forest.n_cells} cells; a uniform level-{top} "
        f"grid would need {uniform_cells} "
        f"({uniform_cells / sim.forest.n_cells:.1f}x more)."
    )


if __name__ == "__main__":
    main()
