#!/usr/bin/env python
"""Parallel scaling on the simulated Cray T3D (the paper's Figs. 6-7).

Runs the cost-model machine over real forest topologies:

* scaled-size efficiency — work per PE held constant while the machine
  grows from 1 to 512 PEs (Figure 6);
* fixed-size speedup — one large problem spread over 64..512 PEs,
  speedup relative to 64 (Figure 7);
* modelled sustained GFLOPS at 512 PEs (the paper's 16-17 GFLOPS).

Run:  python examples/parallel_scaling.py
"""

from repro.core import BlockForest
from repro.parallel import (
    ParallelSimulation,
    fixed_size_speedup,
    gflops,
    scaled_efficiency,
)
from repro.util.geometry import Box


def uniform_forest(n_blocks_per_axis: int, m: int = 8) -> BlockForest:
    n = n_blocks_per_axis
    return BlockForest(
        Box((0.0,) * 3, (1.0,) * 3), (n, n, n), (m,) * 3, nvar=1, n_ghost=2
    )


def main() -> None:
    steps = 10

    print("=== Figure 6: scaled-size parallel efficiency ===")
    print("(8 blocks of 8^3 cells per PE, 3-D MHD cost model, Cray T3D)")
    times = {}
    print(f"{'PEs':>5} {'blocks':>7} {'t/step (ms)':>12} {'comm %':>7}")
    for p, n in ((1, 2), (8, 4), (64, 8), (512, 16)):
        forest = uniform_forest(n)
        sim = ParallelSimulation(forest, p)
        rep = sim.run(steps)
        times[p] = rep.time_per_step
        print(
            f"{p:5d} {forest.n_blocks:7d} {rep.time_per_step * 1e3:12.2f} "
            f"{100 * rep.comm_fraction:7.2f}"
        )
    eff = scaled_efficiency(times)
    print("efficiency: " + "  ".join(f"P={p}: {e:.3f}" for p, e in eff.items()))

    print("\n=== Figure 7: fixed-size speedup (relative to 64 PEs) ===")
    forest_size = 16  # 4096 blocks: the 512-PE-scale problem
    times_fixed = {}
    print(f"{'PEs':>5} {'t/step (ms)':>12} {'speedup':>8} {'ideal':>7}")
    for p in (64, 128, 256, 512):
        forest = uniform_forest(forest_size)
        sim = ParallelSimulation(forest, p)
        rep = sim.run(steps)
        times_fixed[p] = rep.time_per_step
    speedup = fixed_size_speedup(times_fixed, base=64)
    for p in (64, 128, 256, 512):
        print(
            f"{p:5d} {times_fixed[p] * 1e3:12.2f} {speedup[p]:8.2f} "
            f"{p / 64:7.2f}"
        )

    print("\n=== Sustained GFLOPS at 512 PEs (paper: 16-17 GFLOPS) ===")
    forest = uniform_forest(16)
    sim = ParallelSimulation(forest, 512)
    rep = sim.run(steps)
    rate = gflops(sim.total_flops(steps), rep.total_time)
    print(f"modelled sustained rate: {rate:.1f} GFLOPS "
          f"({rate / 512 * 1e3:.1f} MFLOPS/PE)")


if __name__ == "__main__":
    main()
