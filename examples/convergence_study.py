#!/usr/bin/env python
"""Convergence study: verifying the discretization order on blocks.

Order verification is the standard code-credibility exercise: solve a
smooth problem on a sequence of resolutions and confirm the error falls
at the design rate.  Runs three studies:

* advection, order-2 MUSCL — expect ~2nd order;
* advection, order-1 upwind — expect ~1st order;
* Euler acoustic pulse, order-2 — expect ~2nd order pre-shock;

each on multi-block forests, so the block decomposition and ghost
exchange are part of what is verified.

Run:  python examples/convergence_study.py
"""

import numpy as np

from repro.amr import Simulation, SimulationConfig, advecting_pulse
from repro.solvers import EulerScheme
from repro.util.geometry import Box


def advection_error(m, order):
    cfg = SimulationConfig(
        domain=Box((0.0, 0.0), (1.0, 1.0)),
        n_root=(2, 2),
        m=(m, m),
        periodic=(True, True),
        order=order,
        limiter="mc",
        cfl=0.2,
    )
    problem = advecting_pulse(2, width=0.12, config=cfg)
    sim = problem.build(adaptive=False)
    t_end = 0.25
    sim.run(t_end=t_end, dt_max=0.1 / m)  # dt ~ h: keeps time error at O(h^2)
    return sim.error_vs(problem.exact(t_end))


def euler_error(m):
    """Pure entropy wave: density perturbation advected by a uniform
    flow at uniform pressure (the exact solution is a translation)."""
    scheme = EulerScheme(2, order=2, limiter="mc", cfl=0.2)
    cfg = SimulationConfig(
        domain=Box((0.0, 0.0), (1.0, 1.0)),
        n_root=(2, 2),
        m=(m, m),
        periodic=(True, True),
    )
    forest = cfg.make_forest(scheme.nvar)
    u0, p0 = 1.0, 1.0

    def exact_rho(t):
        def fn(X, Y):
            return 1.0 + 0.02 * np.sin(2 * np.pi * (X - u0 * t))
        return fn

    for b in forest:
        X, Y = b.meshgrid()
        w = np.stack(
            [exact_rho(0.0)(X, Y), u0 * np.ones_like(X),
             np.zeros_like(X), p0 * np.ones_like(X)]
        )
        b.interior[...] = scheme.prim_to_cons(w)
    sim = Simulation(forest, scheme)
    t_end = 0.2
    sim.run(t_end=t_end, dt_max=0.05 / m)
    # Pressure and velocity stay uniform; density advects exactly.
    return sim.error_vs(exact_rho(t_end), var=0)


def alfven_error(m):
    """Circularly polarized Alfven wave: exact nonlinear MHD solution."""
    from repro.amr import alfven_wave

    cfg = SimulationConfig(
        domain=Box((0.0,), (1.0,)),
        n_root=(2,),
        m=(m,),
        periodic=(True,),
        limiter="mc",
        cfl=0.3,
    )
    problem = alfven_wave(config=cfg)
    sim = problem.build(adaptive=False)
    t_end = 0.25
    sim.run(t_end=t_end, dt_max=0.05 / m)
    return sim.error_vs(problem.exact(sim.time), var=6)


def print_study(title, resolutions, errors):
    print(f"\n=== {title} ===")
    print(f"{'cells/axis':>11} {'L1 error':>12} {'rate':>6}")
    for i, (m, e) in enumerate(zip(resolutions, errors)):
        rate = "" if i == 0 else f"{np.log2(errors[i-1] / e):6.2f}"
        print(f"{2 * m:>11} {e:12.4e} {rate:>6}")


def main() -> None:
    ms = [8, 16, 32]

    errs = [advection_error(m, order=2) for m in ms]
    print_study("advection, MUSCL (expect rate -> 2)", ms, errs)

    errs1 = [advection_error(m, order=1) for m in ms]
    print_study("advection, first order (expect rate -> 1)", ms, errs1)

    errs_e = [euler_error(m) for m in ms]
    print_study("Euler entropy wave, MUSCL (expect rate -> 2)", ms, errs_e)

    errs_a = [alfven_error(m) for m in ms]
    print_study("MHD Alfven wave, MUSCL (expect rate -> 2)", ms, errs_a)

    print(
        "\nRates near the design order confirm the block decomposition,\n"
        "ghost exchange and two-stage time stepping preserve the\n"
        "scheme's formal accuracy."
    )


if __name__ == "__main__":
    main()
