#!/usr/bin/env python
"""Solar wind with a driven CME pulse — the paper's flagship application.

Relaxes a supersonic radial MHD wind from a fixed spherical inner
boundary (the solar corona base), then boosts the inner-boundary density
and speed for a short interval, launching a CME-like disturbance that
propagates outward through the wind while the adaptive grid follows it.

A probe at fixed radius records the passing pulse — the shape of a
spacecraft time series.

Run:  python examples/solar_wind_cme.py
"""

import numpy as np

from repro.amr import grid_report, solar_wind


def probe(sim, point):
    b = sim.forest.block_at(point)
    X, Y = b.meshgrid()
    idx = np.unravel_index(
        np.argmin((X - point[0]) ** 2 + (Y - point[1]) ** 2), X.shape
    )
    w = sim.scheme.cons_to_prim(b.interior)
    return {
        "rho": float(w[0][idx]),
        "ur": float(w[1][idx] * point[0] / np.hypot(*point)
                    + w[2][idx] * point[1] / np.hypot(*point)),
        "p": float(w[4][idx]),
    }


def main() -> None:
    from repro.amr import SimulationConfig
    from repro.util.geometry import Box

    t_relax = 1.0
    # Demo-sized configuration: two refinement levels keep the run to a
    # couple of minutes; raise max_level for production-quality fronts.
    config = SimulationConfig(
        domain=Box((-4.0, -4.0), (4.0, 4.0)),
        n_root=(2, 2),
        m=(8, 8),
        max_level=2,
        refine_threshold=0.15,
        coarsen_threshold=0.04,
    )
    problem = solar_wind(
        ndim=2,
        cme_time=t_relax,
        cme_duration=0.25,
        cme_factor=4.0,
        config=config,
    )
    sim = problem.build(initial_adapt_rounds=2)
    print("=== initial grid ===")
    print(grid_report(sim.forest))

    probe_point = (2.5, 0.0)
    print(f"\nrelaxing the wind to t = {t_relax}, then launching the CME")
    print(f"probe at r = {np.hypot(*probe_point):.1f}")
    print(f"{'t':>7} {'rho':>8} {'u_r':>7} {'p':>9} {'blocks':>7}")

    t_end = 2.5
    next_sample = 0.0
    while sim.time < t_end - 1e-12:
        rec = sim.step()
        if sim.time >= next_sample:
            s = probe(sim, probe_point)
            marker = "  <-- CME passing" if s["rho"] > 1.0 else ""
            print(
                f"{sim.time:7.3f} {s['rho']:8.4f} {s['ur']:7.3f} "
                f"{s['p']:9.5f} {rec.n_blocks:7d}{marker}"
            )
            next_sample += 0.2

    print("\n=== final grid ===")
    print(grid_report(sim.forest))
    print("\nThe density spike in the probe series is the CME front; the")
    print("block count rises while the disturbance crosses the domain and")
    print("falls again once it leaves — adaptation at work.")


if __name__ == "__main__":
    main()
