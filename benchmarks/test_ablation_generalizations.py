"""Ablation Abl-3: the paper's Generalizations section.

"Options include: various orders of spatial accuracy can be achieved by
varying the number of ghost cells around each block; the neighbor
pointers can be extended to include blocks sharing low dimensional
boundaries; the constraint on the relative refinements of neighbors can
be loosened, allowing refinement level differences greater than one; the
initial block configuration need not be Cartesian [square]."

Reproduction:

* ghost width 1 vs 2 vs 3: memory and exchange-volume cost of higher
  spatial order;
* max_level_jump 1 vs 2 vs 3: cells needed to satisfy the constraint on
  a deeply refined spot (looser constraint -> fewer cascade blocks) vs
  the neighbor-count ceiling;
* face-only vs full (edge/corner) connectivity: exchange volume;
* a non-square 6 x 2 root configuration exercising anisotropic domains.
"""

import numpy as np
import pytest

from repro.core import BlockForest, BlockID, iter_transfers
from repro.util.geometry import Box

from _tables import emit_table


def test_ghost_width(benchmark):
    rows = []
    vols = {}
    for g in (1, 2, 3):
        f = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (4, 4), (8, 8), nvar=1, n_ghost=g
        )
        volume = sum(t.message_cells for t in iter_transfers(f))
        vols[g] = volume
        rows.append(
            (g, "1st" if g == 1 else f"{g}nd/high-res",
             f"{f.ghost_cell_ratio():.2f}", volume)
        )
    emit_table(
        "ablation_ghost_width",
        "Abl-3a: ghost-layer width (spatial order) vs memory and "
        "exchange volume (4x4 roots of 8x8 cells)",
        ("ghosts", "order", "ghost ratio", "exchange cells"),
        rows,
        notes="paper: 'For first-order accurate spatial operators only "
        "one layer of ghost cells is needed; for so-called higher-"
        "resolution methods, more layers'",
    )
    assert vols[2] > 1.8 * vols[1]
    assert vols[3] > vols[2]
    benchmark(lambda: sum(
        t.message_cells for t in iter_transfers(
            BlockForest(Box((0.0, 0.0), (1.0, 1.0)), (4, 4), (8, 8),
                        nvar=1, n_ghost=2)
        )
    ))


def _deep_spot_forest(jump):
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (4, 4), (8, 8), nvar=1,
        max_level=3, max_level_jump=jump,
    )
    # Refine the leaf containing an interior point three levels deep.
    # The point sits away from the sibling cluster, so each refinement
    # puts fine blocks next to coarser regions and the constraint decides
    # how far refinement cascades outward.
    point = (0.12, 0.12)
    for _ in range(3):
        f.adapt([f.block_at(point).id])
    f.check_balance()
    return f


def test_level_jump_constraint(benchmark):
    rows = []
    cells = {}
    for jump in (1, 2, 3):
        f = _deep_spot_forest(jump)
        stats = f.neighbor_count_stats()
        cells[jump] = f.n_cells
        rows.append(
            (jump, f.n_blocks, f.n_cells, int(stats["max"]),
             2 ** (jump * (2 - 1)))
        )
    emit_table(
        "ablation_level_jump",
        "Abl-3b: loosened level-jump constraint (deep corner refinement "
        "to level 3, 2-D)",
        ("max jump k", "blocks", "cells", "max face neighbors",
         "2^(k(d-1)) bound"),
        rows,
        notes="paper: loosening the constraint trades fewer cascade "
        "refinements against more neighbors per face",
    )
    # Looser constraint -> fewer forced refinements -> fewer cells.
    assert cells[2] <= cells[1]
    assert cells[3] <= cells[2]
    assert cells[3] < cells[1]
    benchmark(lambda: _deep_spot_forest(2))


def test_connectivity_modes(benchmark):
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (4, 4), (8, 8), nvar=1, n_ghost=2
    )
    f.adapt([BlockID(0, (1, 1))])
    full = sum(t.message_cells for t in iter_transfers(f, fill_corners=True))
    faces = sum(t.message_cells for t in iter_transfers(f, fill_corners=False))
    n_full = sum(1 for _ in iter_transfers(f, fill_corners=True))
    n_faces = sum(1 for _ in iter_transfers(f, fill_corners=False))
    emit_table(
        "ablation_connectivity",
        "Abl-3c: face-only vs extended (edge/corner) connectivity",
        ("mode", "transfers", "exchange cells"),
        [("faces only", n_faces, faces), ("faces+edges+corners", n_full, full)],
        notes="paper: 'the neighbor pointers can be extended to include "
        "blocks sharing low dimensional boundaries'",
    )
    assert faces < full
    assert n_faces < n_full
    benchmark(lambda: sum(1 for _ in iter_transfers(f)))


def test_non_square_roots(benchmark):
    """Anisotropic root configuration (a 3:1 channel)."""
    f = BlockForest(
        Box((0.0, 0.0), (3.0, 1.0)), (6, 2), (8, 8), nvar=1, n_ghost=2
    )
    f.adapt([BlockID(0, (2, 0)), BlockID(0, (3, 1))])
    f.check_balance()
    f.check_coverage()
    from repro.amr.boundary import ExtrapolationBC
    from repro.core import fill_ghosts
    bc = ExtrapolationBC()
    for b in f:
        X, Y = b.meshgrid()
        b.interior[0] = X - 2 * Y
    fill_ghosts(f, bc=bc)
    worst = 0.0
    for b in f:
        Xg, Yg = b.meshgrid(include_ghost=True)
        g = b.n_ghost
        inside = (Xg > 0) & (Xg < 3) & (Yg > 0) & (Yg < 1)
        interior = np.zeros(b.padded_shape, dtype=bool)
        interior[g:-g, g:-g] = True
        check = inside & ~interior
        if check.any():
            worst = max(
                worst, float(np.abs(b.data[0] - (Xg - 2 * Yg))[check].max())
            )
    emit_table(
        "ablation_non_square",
        "Abl-3d: non-square root configuration (6x2 roots over a 3:1 "
        "channel, two refined blocks)",
        ("quantity", "value"),
        [("blocks", f.n_blocks), ("levels", f"{f.levels}"),
         ("ghost-exchange max error on linear field", f"{worst:.1e}")],
    )
    assert worst < 1e-12
    benchmark(lambda: fill_ghosts(f, bc=bc))
