"""Table T-C: communication amortization and traversal hops.

The paper's claims:

* "On parallel computers, adaptive blocks amortize the overhead of
  communication over entire blocks of cells, instead of over single
  cells as in tree data structures and unstructured grids";
* "Adaptive blocks locate neighbors directly ... rather than using
  parent/child tree traversals ... In a parallel system these cells may
  be located on different processors, so that extensive interprocessor
  communication would be required."

Reproduction on a 64-PE partition of the same physical domain:

* message counts/volumes per ghost exchange, block forests of m = 2..16
  (m=2 approximates the per-cell baseline), with and without per-pair
  message aggregation;
* traversal hop statistics of the cell-based tree vs the O(1) pointer
  lookups of blocks.
"""

import pytest

from repro.core import BlockForest
from repro.parallel import build_schedule, sfc_partition
from repro.tree import CellTree, traversal_statistics
from repro.util.geometry import Box

from _tables import emit_table

P = 64
CELLS = 64  # cells per axis in 2-D: the same 64x64 domain for every m


def forest_of_blocks(m):
    return BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)),
        (CELLS // m, CELLS // m),
        (m, m),
        nvar=1,
        n_ghost=1,
    )


def test_message_amortization(benchmark):
    rows = []
    stats = {}
    for m in (2, 4, 8, 16):
        f = forest_of_blocks(m)
        a = sfc_partition(f, P)
        agg = build_schedule(f, a, nvar=8, aggregate=True)
        per = build_schedule(f, a, nvar=8, aggregate=False)
        stats[m] = (agg, per)
        rows.append(
            (
                f"{m}x{m}",
                f.n_blocks,
                per.n_messages,
                agg.n_messages,
                f"{agg.total_bytes / 1024:.0f}",
                f"{100 * agg.remote_fraction:.0f}%",
            )
        )
    emit_table(
        "table_comm_amortization",
        f"T-C: ghost-exchange messages per step on {P} PEs (64x64-cell "
        "domain, 8-variable payloads; 'per-transfer' is the per-cell-"
        "structure cost, 'aggregated' coalesces per PE pair)",
        ("block", "blocks", "msgs per-transfer", "msgs aggregated",
         "KB total", "remote transfers"),
        rows,
        notes="paper: blocks amortize communication over entire blocks "
        "of cells instead of single cells",
    )
    # Bigger blocks -> far fewer messages, both raw and aggregated.
    assert stats[16][1].n_messages < stats[2][1].n_messages / 4
    # Aggregation caps messages at ~one per neighboring PE pair.
    assert stats[16][0].n_messages <= stats[16][1].n_messages
    assert stats[2][0].n_messages < stats[2][1].n_messages / 3
    f = forest_of_blocks(8)
    a = sfc_partition(f, P)
    benchmark(lambda: build_schedule(f, a, nvar=8))


def test_traversal_hops_vs_pointers(benchmark):
    """Tree neighbor queries walk the tree; block pointers are O(1)."""
    rows = []
    hops = {}
    for depth in (3, 4, 5):
        t = CellTree(Box((0.0, 0.0), (1.0, 1.0)), (1, 1), nvar=1)
        t.refine_uniformly(depth)
        s = traversal_statistics(t)
        hops[depth] = s
        rows.append(
            (
                f"{2**depth}x{2**depth}",
                depth,
                f"{s['mean_hops']:.2f}",
                s["max_hops"],
                1,  # block pointer lookup cost
            )
        )
    emit_table(
        "table_traversal_hops",
        "T-C (continued): neighbor-location cost — tree traversal hops "
        "per query vs explicit block pointers",
        ("grid", "tree depth", "mean hops", "max hops", "block pointers"),
        rows,
        notes="paper: 'one may need to visit several cells before a "
        "neighbor is located ... these cells may be located on different "
        "processors'",
    )
    # Hops grow with depth; worst case scales ~2*depth.
    assert hops[5]["mean_hops"] > hops[3]["mean_hops"]
    assert hops[5]["max_hops"] >= 2 * 5 - 1
    t = CellTree(Box((0.0, 0.0), (1.0, 1.0)), (1, 1), nvar=1)
    t.refine_uniformly(3)
    benchmark(lambda: traversal_statistics(t))
