"""Ablation Abl-2: adaptation-check frequency.

The paper: "Because adaptive blocks permit the refinement of larger
multi-cell regions at one time, mesh adaptation need not occur as
frequently as for data structures based on single cells.  This reduces
computational overhead."

Reproduction: the advecting-pulse problem run to the same physical time
with the criterion checked every {1, 2, 4, 8, 16} steps (one buffer ring
of blocks around the refine flags, which is what buys the slack).
Reported: solution error vs the exact profile, number of refinement/
coarsening operations performed, and time spent in criteria+adaptation.
"""

import pytest

from repro.amr import SimulationConfig, advecting_pulse
from repro.util.geometry import Box

from _tables import emit_table

T_END = 0.2


def run_with_interval(interval):
    cfg = SimulationConfig(
        domain=Box((0.0, 0.0), (1.0, 1.0)),
        n_root=(2, 2),
        m=(8, 8),
        periodic=(True, True),
        max_level=2,
        adapt_interval=interval,
        refine_threshold=0.08,
        coarsen_threshold=0.02,
    )
    problem = advecting_pulse(2, config=cfg)
    sim = problem.build()
    sim.run(t_end=T_END)
    err = sim.error_vs(problem.exact(sim.time))
    ops = sim.forest.n_refinements + sim.forest.n_coarsenings
    adapt_time = sim.timer.totals["criteria"] + sim.timer.totals["adapt"]
    return sim, err, ops, adapt_time


def test_adapt_frequency(benchmark):
    rows = []
    results = {}
    for interval in (1, 2, 4, 8, 16):
        sim, err, ops, t_adapt = run_with_interval(interval)
        results[interval] = (err, ops, t_adapt)
        rows.append(
            (
                interval,
                sim.step_count,
                f"{err:.2e}",
                ops,
                f"{t_adapt:.3f}",
                f"{100 * t_adapt / sim.timer.total:.1f}%",
            )
        )
    emit_table(
        "ablation_adapt_frequency",
        f"Abl-2: adaptation-check interval (advecting pulse to t={T_END}, "
        "1 buffer ring)",
        ("interval", "steps", "L1 error", "adapt ops", "adapt time (s)",
         "adapt share"),
        rows,
        notes="paper: with multi-cell blocks 'mesh adaptation need not "
        "occur as frequently', reducing overhead",
    )
    err1 = results[1][0]
    err8 = results[8][0]
    # Checking 8x less often costs little accuracy (the buffer band keeps
    # the pulse inside the refined region between checks) ...
    assert err8 < 3.0 * err1 + 1e-4
    # ... with no more refine/coarsen operations ...
    assert results[8][1] <= results[1][1]
    # ... and substantially less time spent evaluating criteria/adapting.
    assert results[16][2] < 0.5 * results[1][2]
    benchmark(lambda: run_with_interval(8))
