"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures/tables as a text
table: printed to stdout and written under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the latest run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def format_table(
    title: str, header: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    rows = [tuple(str(c) for c in r) for r in rows]
    header = tuple(str(c) for c in header)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    def fmt(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [title, fmt(header), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def emit_table(
    name: str,
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    notes: str = "",
) -> str:
    """Print a table and persist it to benchmarks/results/<name>.txt."""
    text = format_table(title, header, rows)
    if notes:
        text += "\n" + notes
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def emit_bench_json(name: str, **payload) -> "Path":
    """Persist a machine-readable ``BENCH_<name>.json`` at the repo root.

    Thin wrapper over :mod:`repro.util.benchio` (imported lazily so the
    table helpers stay usable without the package on ``sys.path``);
    returns the path written.
    """
    from repro.util.benchio import make_bench_record, write_bench_json

    path = write_bench_json(make_bench_record(name, **payload))
    print(f"[bench] wrote {path}")
    return path
