"""Figure 7: parallel efficiency for a fixed-size problem.

The paper's fixed-size run is too large for one PE ("it would have been
impossible to test this problem on a single processor, because no single
processor would have sufficient memory"), so speedup is reported
relative to the 64-processor speed, over 64 → 512 PEs.

Reproduction: one 4096-block forest (the 512-PE-scale problem: 16^3
blocks of 8^3 cells ≈ 2.1M cells) partitioned over 64, 128, 256 and 512
simulated T3D PEs; speedup normalized to P = 64.
"""

import pytest

from repro.core import BlockForest
from repro.parallel import ParallelSimulation, fixed_size_speedup
from repro.util.geometry import Box

from _tables import emit_table

PE_COUNTS = [64, 128, 256, 512]
STEPS = 10


def big_forest() -> BlockForest:
    return BlockForest(
        Box((0.0,) * 3, (1.0,) * 3), (16,) * 3, (8,) * 3, nvar=1, n_ghost=2
    )


def test_fig7_fixed_speedup(benchmark):
    forest = big_forest()
    times = {}
    comm = {}
    for p in PE_COUNTS:
        sim = ParallelSimulation(forest, p)
        rep = sim.run(STEPS)
        times[p] = rep.time_per_step
        comm[p] = rep.comm_fraction
    speedup = fixed_size_speedup(times, base=64)
    rows = [
        (
            p,
            f"{times[p] * 1e3:.2f}",
            f"{speedup[p]:.2f}",
            f"{p / 64:.2f}",
            f"{speedup[p] / (p / 64):.3f}",
            f"{100 * comm[p]:.1f}%",
        )
        for p in PE_COUNTS
    ]
    emit_table(
        "fig7_fixed_speedup",
        "Figure 7: fixed-size speedup relative to 64 PEs (4096 blocks of "
        "8^3 cells, simulated Cray T3D)",
        ("PEs", "ms/step", "speedup", "ideal", "efficiency", "comm"),
        rows,
        notes="paper: 'The speedup here is relative to the 64 processor "
        "speed' — high efficiency maintained to 512 PEs",
    )
    # Shape: monotone speedup, efficiency vs ideal stays high but decays
    # as communication/imbalance grow with P (fixed total work).
    assert speedup[64] == pytest.approx(1.0)
    assert speedup[128] > 1.7
    assert speedup[256] > 3.0
    assert speedup[512] > 5.0
    rel = {p: speedup[p] / (p / 64) for p in PE_COUNTS}
    assert rel[512] <= rel[128] + 1e-9  # efficiency decays with P
    assert rel[512] > 0.6
    benchmark(lambda: ParallelSimulation(big_forest(), 64).run(1))
