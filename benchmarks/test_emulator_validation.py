"""Validation: the emulated distributed run vs the serial driver.

The strongest check the Figures 6–7 cost model can get: execute the
parallel algorithm *for real* (per-rank private block copies, ghost data
moving only through explicit messages) and confirm

* the result matches the serial driver bit-for-bit,
* the wire traffic matches the schedule the cost model charges for.

Reported per rank count: messages, KB per exchange, max solution
difference vs serial (must be exactly 0).
"""

import numpy as np
import pytest

from repro.amr import Simulation
from repro.core import BlockForest, BlockID
from repro.parallel import EmulatedMachine, build_schedule, sfc_partition
from repro.solvers import EulerScheme
from repro.util.geometry import Box

from _tables import emit_table


def make_forest():
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=4,
        n_ghost=2, periodic=(True, True), max_level=3,
    )
    f.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
    f.adapt([BlockID(1, (1, 1))])
    return f


def init(forest, scheme):
    for b in forest:
        X, Y = b.meshgrid()
        w = np.stack(
            [
                1.0 + 0.3 * np.exp(-50 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2)),
                0.4 * np.ones_like(X),
                -0.2 * np.ones_like(X),
                np.ones_like(X),
            ]
        )
        b.interior[...] = scheme.prim_to_cons(w)


def test_emulated_vs_serial(benchmark):
    scheme = EulerScheme(2, order=2, limiter="mc")
    dt, steps = 5e-4, 4

    forest_ref = make_forest()
    init(forest_ref, scheme)
    sim = Simulation(forest_ref, scheme)
    for _ in range(steps):
        sim.advance(dt)
    reference = {bid: b.interior for bid, b in forest_ref.blocks.items()}

    rows = []
    for p in (1, 2, 4, 8):
        forest = make_forest()
        init(forest, scheme)
        assignment = sfc_partition(forest, p)
        emu = EmulatedMachine(forest, p, scheme, assignment=assignment)
        for _ in range(steps):
            emu.advance(dt)
        gathered = emu.gather()
        worst = max(
            float(np.abs(gathered[bid] - reference[bid]).max())
            for bid in reference
        )
        sched = build_schedule(forest, assignment, nvar=4, aggregate=False)
        per_exchange = emu.stats.n_messages // (2 * steps) if p > 1 else 0
        rows.append(
            (
                p,
                per_exchange,
                sched.n_messages,
                f"{emu.stats.n_bytes / 1024 / (2 * steps):.0f}" if p > 1 else "0",
                f"{worst:.1e}",
            )
        )
        assert worst == 0.0, f"emulated run diverged on {p} ranks"
        if p > 1:
            assert per_exchange == sched.n_messages
    emit_table(
        "emulator_validation",
        "Distributed-emulation validation: per-exchange wire traffic and "
        "solution difference vs the serial driver (4 steps, 2-D Euler, "
        "3-level AMR forest)",
        ("ranks", "msgs/exchange (emulated)", "msgs (schedule)",
         "KB/exchange", "max |diff| vs serial"),
        rows,
        notes="bit-exact equality proves the transfer geometry carries "
        "all data the algorithm needs; message counts equal the cost "
        "model's schedule",
    )
    forest = make_forest()
    init(forest, scheme)
    emu = EmulatedMachine(forest, 4, scheme)
    benchmark(lambda: emu.exchange())
