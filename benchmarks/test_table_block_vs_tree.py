"""Table T-A: per-cell cost, adaptive blocks vs. cell-based tree.

The paper's textual claims:

* single-processor adaptive blocks are "significantly faster than a
  single processor solving the same problem using a cell based tree";
* the speedup comes from loop/cache optimization over per-block arrays,
  impossible with per-cell indirect addressing.

Measurement: one first-order Euler finite-volume step over the same
16 x 16 uniform grid organized three ways —

* a cell-based tree (one node per cell, traversal neighbors, per-cell
  Python/numpy gather: the baseline the paper argues against);
* adaptive blocks of m x m cells for m in {2, 4, 8, 16} (whole-array
  update per block, ghost exchange between blocks).

Both paths produce identical numerics (asserted), so the ratio is pure
data-structure overhead.
"""

import numpy as np
import pytest

from repro.core import BlockForest, fill_ghosts
from repro.solvers import EulerScheme
from repro.tree import CellTree, tree_step
from repro.util.geometry import Box
from repro.util.timing import measure

from _tables import emit_table

N = 16  # cells per axis
BLOCK_SIZES = [2, 4, 8, 16]


def initial_w(x, y):
    return np.stack(
        [
            1.0 + 0.5 * np.exp(-40 * ((x - 0.4) ** 2 + (y - 0.5) ** 2)),
            0.5 * np.ones_like(x),
            np.zeros_like(x),
            1.0 + 0.2 * np.sin(2 * np.pi * x),
        ]
    )


def make_tree(scheme):
    t = CellTree(Box((0.0, 0.0), (1.0, 1.0)), (1, 1), nvar=4)
    t.refine_uniformly(4)  # 16 x 16 leaves
    for leaf in t.leaves():
        c = t.cell_center(leaf)
        w = initial_w(np.array([c[0]]), np.array([c[1]]))
        leaf.data = scheme.prim_to_cons(w)[:, 0]
    return t


def make_forest(scheme, m):
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)),
        (N // m, N // m),
        (m, m),
        nvar=4,
        n_ghost=1,
    )
    for b in f:
        X, Y = b.meshgrid()
        b.interior[...] = scheme.prim_to_cons(initial_w(X, Y))
    return f


def forest_step(forest, scheme, dt):
    from repro.amr.boundary import OutflowBC

    fill_ghosts(forest, bc=OutflowBC())
    for b in forest:
        scheme.step(b.data, b.dx, dt, forest.n_ghost)


def test_block_vs_tree_per_cell_time(benchmark):
    scheme = EulerScheme(2, order=1, riemann="rusanov")
    dt = 5e-4
    n_cells = N * N

    # -- correctness oracle: identical updates ------------------------
    tree = make_tree(scheme)
    tree_step(tree, scheme, dt)
    forest = make_forest(scheme, 16)
    forest_step(forest, scheme, dt)
    blk = next(iter(forest))
    for leaf in tree.leaves():
        i, j = leaf.coords
        np.testing.assert_allclose(
            leaf.data, blk.interior[:, i, j], rtol=1e-10, atol=1e-12,
            err_msg="tree and block updates diverged",
        )

    # -- timings -------------------------------------------------------
    tree = make_tree(scheme)
    t_tree = measure(lambda: tree_step(tree, scheme, dt), repeats=3).best
    rows = [("cell tree", "1x1", f"{t_tree / n_cells * 1e6:.1f}", "1.0")]
    block_times = {}
    for m in BLOCK_SIZES:
        f = make_forest(scheme, m)
        t = measure(lambda: forest_step(f, scheme, dt), repeats=3).best
        block_times[m] = t
        rows.append(
            (
                "blocks",
                f"{m}x{m}",
                f"{t / n_cells * 1e6:.1f}",
                f"{t_tree / t:.1f}",
            )
        )
    emit_table(
        "table_block_vs_tree",
        f"T-A: per-cell time, cell-based tree vs adaptive blocks "
        f"({N}x{N} grid, first-order Euler, identical numerics)",
        ("structure", "block", "us/cell", "speedup vs tree"),
        rows,
        notes="paper: blocks 'significantly faster' than a cell-based "
        "tree; >3x over 2x2x2 blocks and 'far greater' over single cells",
    )

    # Paper claims as assertions:
    assert t_tree / block_times[16] > 10.0      # far faster than per-cell
    assert t_tree / block_times[2] > 1.0        # even tiny blocks win
    assert block_times[2] / block_times[16] > 2.0  # >2x from 2^2 to 16^2

    f = make_forest(scheme, 16)
    benchmark(lambda: forest_step(f, scheme, dt))
