"""Table T-B: ghost-cell overhead and face-neighbor counts.

The paper's claims:

* blocks' "ghost cell to computational cell ratio is far superior to
  other data structures" (a per-cell structure needs a full ghost ring
  per cell);
* "for adaptive blocks with at most one level of resolution change
  between adjacent blocks, there are at most 2^(d-1) blocks sharing a
  given face.  If k levels of resolution change are permitted, then
  there can be as many as 2^(k(d-1))."

Reproduction: measured ghost/computational ratios over block size and
ghost width, and measured maximum face-neighbor counts on adversarially
refined forests versus the analytic bound.
"""

import numpy as np
import pytest

from repro.core import BlockForest, BlockID
from repro.util.geometry import Box

from _tables import emit_table


def forest(ndim, m, g, jump=1, max_level=3):
    return BlockForest(
        Box((0.0,) * ndim, (1.0,) * ndim),
        (2,) * ndim,
        (m,) * ndim,
        nvar=1,
        n_ghost=g,
        max_level=max_level,
        max_level_jump=jump,
    )


def test_ghost_ratio_table(benchmark):
    rows = []
    ratios = {}
    for ndim in (2, 3):
        for m in (4, 8, 16):
            for g in (1, 2):
                f = forest(ndim, m, g)
                r = f.ghost_cell_ratio()
                ratios[(ndim, m, g)] = r
                per_cell = (1 + 2 * g) ** ndim - 1  # ghost ring per lone cell
                rows.append(
                    (ndim, f"{m}^{ndim}", g, f"{r:.2f}", per_cell)
                )
    emit_table(
        "table_ghost_overhead",
        "T-B: ghost/computational cell ratio vs block size (last column: "
        "ghost cells a single-cell structure would need per cell)",
        ("d", "block", "ghosts", "ratio", "per-cell equiv"),
        rows,
        notes="paper: blocks' ghost-to-computational ratio is 'far "
        "superior to other data structures'",
    )
    # Ratio falls with block size and is far below the per-cell ring.
    assert ratios[(3, 16, 2)] < ratios[(3, 4, 2)]
    assert ratios[(3, 16, 2)] < 1.0
    single_cell_ring = 5**3 - 1  # 124 ghosts per cell for g=2
    assert ratios[(3, 16, 2)] < single_cell_ring / 50
    benchmark(lambda: forest(3, 8, 2).ghost_cell_ratio())


def _max_face_neighbors(ndim, jump, max_level):
    """Adversarial forest: refine one corner block to the level cap."""
    f = forest(ndim, 4, 2, jump=jump, max_level=max_level)
    target = BlockID(0, (0,) * ndim)
    current = [target]
    for _ in range(max_level):
        f.adapt(current)
        current = [
            b for b in f.blocks
            if b.level == f.levels[1] and all(c == 0 for c in b.coords)
        ]
    f.check_balance()
    return f.neighbor_count_stats()["max"]


def test_face_neighbor_bound(benchmark):
    rows = []
    for ndim in (2, 3):
        for jump in (1, 2):
            measured = _max_face_neighbors(ndim, jump, max_level=2)
            bound = 2 ** (jump * (ndim - 1))
            rows.append((ndim, jump, int(measured), bound))
            assert measured <= bound
    emit_table(
        "table_neighbor_bound",
        "T-B (continued): max face-neighbor count vs the paper's "
        "2^(k(d-1)) bound",
        ("d", "max level jump k", "measured max", "2^(k(d-1))"),
        rows,
    )
    # The bound is achieved for the standard jump-1 cases.
    assert _max_face_neighbors(2, 1, 2) == 2
    assert _max_face_neighbors(3, 1, 2) == 4
    benchmark(lambda: _max_face_neighbors(2, 1, 2))


def test_pointer_storage_amortization(benchmark):
    """Neighbor-pointer storage per cell: blocks amortize it over m^d."""
    rows = []
    for m in (2, 4, 8, 16):
        f = forest(3, m, 1 if m == 2 else 2)
        pointers = f.neighbor_count_stats()["total_pointers"]
        per_cell = pointers / f.n_cells
        rows.append((f"{m}^3", int(pointers), f"{per_cell:.4f}"))
    emit_table(
        "table_pointer_storage",
        "T-B (continued): face-neighbor pointers per computational cell",
        ("block", "pointers", "pointers/cell"),
        rows,
        notes="paper: blocks 'amortize the costs of neighbor pointers "
        "(both time and space) over entire arrays'",
    )
    f2 = forest(3, 2, 1)
    f16 = forest(3, 16, 2)
    p2 = f2.neighbor_count_stats()["total_pointers"] / f2.n_cells
    p16 = f16.neighbor_count_stats()["total_pointers"] / f16.n_cells
    assert p16 < p2 / 100
    benchmark(lambda: forest(3, 8, 2).neighbor_count_stats())
