"""Figure 5: time per cell as a function of block size.

The paper plots the per-cell time of the 3-D MHD update against the
number of cells per block on the Cray T3D, observing

* a dramatic initial improvement (> 3x from the 2x2x2 block to the
  plateau) as per-block loop overhead amortizes — the motivating effect
  behind adaptive blocks;
* a flat plateau beyond ~10^3 cells per block;
* local cache maxima (12^3, removable by padding; 32^3, reducible by
  sub-blocking to 14^3).

Two reproductions:

``test_fig5_measured``
    Real wall-clock time of the actual vectorized MHD kernel on single
    blocks of increasing size.  In Python the per-block numpy dispatch
    overhead plays the role the Fortran loop overhead played on the T3D
    — the same fixed-cost-over-m^3-cells mechanism — so the measured
    curve shape (drop then plateau) is genuine, not modelled.

``test_fig5_cache_model``
    The direct-mapped-cache cost model of the T3D node, reproducing the
    12^3 aliasing peak, its padding fix, and the sub-blocking gain.
"""

import numpy as np
import pytest

from repro.machine import T3DCostParams, fig5_model_curve, stencil_misses, time_per_cell
from repro.solvers import MHDScheme
from repro.util.timing import measure

from _tables import emit_table

MEASURED_SIZES = [2, 4, 6, 8, 10, 12, 16, 20, 24]
MODEL_SIZES = [2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32]


def _mhd_block(m: int, seed: int = 0):
    """A single padded 3-D MHD block with smooth random-ish data."""
    g = 2
    rng = np.random.default_rng(seed)
    scheme = MHDScheme(3, order=2)
    w = np.empty((8, m + 2 * g, m + 2 * g, m + 2 * g))
    w[0] = 1.0 + 0.1 * rng.random(w.shape[1:])
    w[1:4] = 0.1 * rng.standard_normal((3,) + w.shape[1:])
    w[4] = 1.0 + 0.1 * rng.random(w.shape[1:])
    w[5:8] = 0.2 * rng.standard_normal((3,) + w.shape[1:])
    u = scheme.prim_to_cons(w)
    return scheme, u, (1.0 / m,) * 3, g


def _measure_time_per_cell(m: int, repeats: int = 3) -> float:
    scheme, u, dx, g = _mhd_block(m)
    dt = 1e-4

    def one_step():
        scheme.step(u, dx, dt, g)

    res = measure(one_step, repeats=repeats, warmup=1)
    return res.best / m**3


def test_fig5_measured(benchmark):
    """Measured: per-cell wall time of the vectorized 3-D MHD stage."""
    rows = []
    times = {}
    for m in MEASURED_SIZES:
        t = _measure_time_per_cell(m)
        times[m] = t
        rows.append((f"{m}^3", m**3, f"{t * 1e6:.2f}"))
    emit_table(
        "fig5_measured",
        "Figure 5 (measured): time per cell vs cells per block — "
        "vectorized 3-D MHD stage (one forward-Euler stage)",
        ("block", "cells", "us/cell"),
        rows,
        notes=(
            f"ratio 2^3 / 16^3 = {times[2] / times[16]:.1f}x "
            "(paper: >3x improvement over the 2x2x2 case)"
        ),
    )
    # Shape assertions: dramatic drop, then plateau.
    assert times[2] / times[16] > 3.0
    assert abs(times[20] - times[16]) < 0.5 * times[16]
    # Benchmark fixture: time the plateau-size (16^3, the paper's
    # production choice) kernel.
    scheme, u, dx, g = _mhd_block(16)
    benchmark(lambda: scheme.step(u, dx, 1e-4, g))


def test_fig5_cache_model(benchmark):
    """Modelled: T3D direct-mapped-cache curve with the 12^3 peak."""
    params = T3DCostParams()
    curve = fig5_model_curve(MODEL_SIZES, params)
    miss_rates = {
        m: stencil_misses(m)[0] / stencil_misses(m)[1] for m in MODEL_SIZES
    }
    rows = [
        (f"{m}^3", f"{curve[m] * 1e6:.2f}", f"{100 * miss_rates[m]:.0f}%")
        for m in MODEL_SIZES
    ]
    t12_padded = time_per_cell(12, params, pad=1)
    t32_sub = time_per_cell(32, params, subblock=14)
    emit_table(
        "fig5_model",
        "Figure 5 (cache model): T3D 8KB direct-mapped cache, 3-D MHD "
        "stencil stream",
        ("block", "us/cell", "miss rate"),
        rows,
        notes=(
            f"12^3 with 1-cell padding: {t12_padded * 1e6:.2f} us/cell "
            f"(unpadded {curve[12] * 1e6:.2f}) — padding removes the peak\n"
            f"32^3 with 14^3 sub-blocking: {t32_sub * 1e6:.2f} us/cell "
            f"(plain {curve[32] * 1e6:.2f}) — sub-blocking reduces misses"
        ),
    )
    # The paper's observations, as assertions:
    assert curve[2] > 2.0 * curve[16]              # big initial drop
    assert curve[12] > 1.4 * curve[10]             # the 12^3 peak exists
    assert t12_padded < 0.7 * curve[12]            # padding removes it
    m32, _ = stencil_misses(32)
    m32s, _ = stencil_misses(32, subblock=14)
    assert m32s < m32                              # sub-blocking helps 32^3
    benchmark(lambda: time_per_cell(8, params))
