"""Process-backend throughput: real ranks, shared-memory exchange.

Fig-6-style measurement through :class:`repro.parallel.ProcessMachine`:
the advecting-pulse AMR workload stepped across real OS processes, with
every rank's block pool in a POSIX shared-memory segment so ghost
exchange is a flat copy between segments brokered by pipe commands.

Numbers land in ``BENCH_proc_backend.json`` (us/cell plus the exchange
fraction of wall time, from the supervisor's phase clocks) and are
diffed against the committed trajectory with
:func:`repro.obs.compare_to_bench`.

CI runs on one or two cores, so the ranks oversubscribe the machine;
thresholds are deliberately loose — the hard assertions are about
*correctness under measurement* (bit-for-bit with the serial driver)
and the record's internal consistency, not absolute speed.
"""

import numpy as np

from repro.amr import Simulation
from repro.core import BlockForest, BlockID
from repro.obs import compare_to_bench
from repro.parallel import ProcConfig, ProcessMachine
from repro.solvers import AdvectionScheme
from repro.util.geometry import Box
from repro.util.timing import wall_clock

from _tables import emit_bench_json, emit_table

WORKLOAD = "advecting pulse 2-D AMR, 2nd order, real-process ranks"
STEPS = 20
DT = 1e-3


def make_forest():
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (4, 4), (8, 8), nvar=1,
        n_ghost=2, periodic=(True, True), max_level=2,
    )
    f.adapt([BlockID(0, (0, 0)), BlockID(0, (2, 2)), BlockID(0, (3, 1))])
    return f


def init_pulse(forest):
    for b in forest:
        X, Y = b.meshgrid()
        b.interior[0] = np.exp(-50 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2))


def run_process_case(n_ranks):
    scheme = AdvectionScheme((1.0, 0.5), order=2)
    forest = make_forest()
    init_pulse(forest)
    config = ProcConfig(phase_timeout=5.0, hard_timeout=120.0)
    with ProcessMachine(forest, n_ranks, scheme, config=config) as machine:
        n_cells = machine.topology.n_cells
        t0 = wall_clock()
        for _ in range(STEPS):
            machine.advance(DT)
        elapsed = wall_clock() - t0
        phase = dict(machine.phase_seconds)
        stats = machine.stats
        gathered = machine.gather()
    # Bit-for-bit against the serial driver over the same trajectory.
    ref = make_forest()
    init_pulse(ref)
    sim = Simulation(ref, scheme)
    for _ in range(STEPS):
        sim.advance(DT)
    bitwise = all(
        np.array_equal(gathered[bid], block.interior)
        for bid, block in ref.blocks.items()
    )
    phase_total = sum(phase.values())
    return {
        "label": f"process-{n_ranks}r",
        "engine": "process",
        "workload": WORKLOAD,
        "ndim": 2,
        "ranks": n_ranks,
        "steps": STEPS,
        "n_cells": n_cells,
        "us_per_cell": elapsed / (STEPS * n_cells) * 1e6,
        "exchange_seconds": phase["exchange"],
        "compute_seconds": phase["compute"],
        "control_seconds": phase["control"],
        "exchange_fraction": (
            phase["exchange"] / phase_total if phase_total > 0 else 0.0
        ),
        "wire_messages": stats.n_messages,
        "wire_bytes": stats.n_bytes,
        "bitwise_vs_serial": bitwise,
    }


def test_proc_backend_bench():
    results = [run_process_case(n) for n in (2, 4)]

    emit_table(
        "proc_backend",
        "Process-backend throughput (real ranks, shared-memory ghost "
        "exchange, oversubscribed CI host)",
        ("case", "cells", "us/cell", "exch frac", "messages", "bitwise"),
        [
            (
                r["label"],
                r["n_cells"],
                f"{r['us_per_cell']:.2f}",
                f"{r['exchange_fraction']:.1%}",
                r["wire_messages"],
                "yes" if r["bitwise_vs_serial"] else "NO",
            )
            for r in results
        ],
        notes="us/cell includes supervisor control plane; thresholds are\n"
              "loose because CI oversubscribes the ranks onto 1-2 cores",
    )
    record_payload = {
        "workload": WORKLOAD,
        "cases": results,
    }
    emit_bench_json("proc_backend", **record_payload)

    for r in results:
        assert r["bitwise_vs_serial"], f"{r['label']} diverged from serial"
        assert r["us_per_cell"] > 0
        assert 0.0 < r["exchange_fraction"] < 1.0
        assert r["wire_messages"] > 0

    # Diff against the committed trajectory record (the one just
    # written, or a prior committed one when running pre-write in CI).
    flags = compare_to_bench(
        results, name="proc_backend", rel_tol=3.0
    )
    assert flags == [], f"process backend regressed: {flags}"
