"""Batched-vs-blocked engine speedup on the Fig-5-style workload.

The per-block engine pays numpy dispatch per block — the Python analogue
of the per-block loop overhead the paper's Figure 5 shows for small
blocks.  The batched engine amortizes that cost by sweeping cache-sized
tiles of the block arena per kernel call, so its advantage is largest
exactly where Figure 5's per-cell time blows up: small blocks.  This
benchmark measures the speedup curve across block sizes (uniform
periodic MHD, time per cell) and enforces the two invariants CI's
perf-smoke job relies on:

* the batched engine is never slower than the per-block engine, and
* both engines are bit-for-bit identical.

The full results land in ``BENCH_batched_engine.json`` at the repo root
(machine-readable: timestamp, git rev, cells/s, phase timings).
"""

import os

from repro.analysis.engine_bench import (
    DEFAULT_CASES,
    QUICK_CASES,
    check_equivalence,
    run_cases,
)

from _tables import emit_bench_json, emit_table


def test_batched_speedup():
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    cases = QUICK_CASES if quick else DEFAULT_CASES
    results = run_cases(cases)
    equivalence_ok = check_equivalence(cases[-1], steps=3)

    emit_table(
        "batched_speedup",
        "Batched-engine speedup over the per-block engine "
        "(uniform MHD, time per cell)",
        ["case", "blocked us/cell", "batched us/cell", "speedup"],
        [
            (
                r["label"],
                f"{r['blocked']['us_per_cell']:.3f}",
                f"{r['batched']['us_per_cell']:.3f}",
                f"{r['speedup']:.2f}x",
            )
            for r in results
        ],
        notes=(
            "speedup grows as blocks shrink (dispatch amortization, the\n"
            "Fig-5 small-block effect); equivalence "
            + ("verified bit-for-bit" if equivalence_ok else "VIOLATED")
        ),
    )
    emit_bench_json(
        "batched_engine",
        workload="uniform periodic MHD, Fig-5-style time per cell",
        quick=quick,
        cases=results,
        equivalence_ok=equivalence_ok,
    )

    assert equivalence_ok, "engines diverged bit-for-bit"
    for r in results:
        assert r["speedup"] >= 1.0, f"batched slower on {r['label']}: {r['speedup']:.2f}x"
    # The dispatch-bound regime (4^2 blocks) must show the paper-scale
    # (>3x) amortization win; measured ~12x on the reference host.
    small = [r for r in results if r["ndim"] == 2 and r["m"] == 4]
    assert small and small[0]["speedup"] >= 3.0, (
        f"small-block amortization regressed: {small[0]['speedup']:.2f}x"
    )
