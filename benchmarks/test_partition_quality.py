"""Partition-strategy comparison on the torus interconnect.

The paper's code assigns blocks to PEs; the quality of that assignment
drives the communication term in Figures 6-7.  This benchmark compares
three strategies on the same adapted forest over the simulated T3D torus:

* Morton SFC (the production default),
* Hilbert SFC (better curve locality),
* round-robin (the locality-free strawman),

reporting cut fraction (remote neighbor pairs), exchange bytes, mean
torus hops per message, and the resulting simulated step time.
"""

import numpy as np
import pytest

from repro.core import BlockForest
from repro.parallel import (
    ParallelSimulation,
    TorusTopology,
    build_schedule,
    partition_cut_fraction,
    round_robin_partition,
    sfc_partition,
)
from repro.util.geometry import Box

from _tables import emit_table

P = 64


def adapted_forest():
    f = BlockForest(
        Box((-1.0,) * 3, (1.0,) * 3), (4,) * 3, (8,) * 3, nvar=1,
        n_ghost=2, max_level=2,
    )

    def near_shell(block):
        r = float(np.sqrt(sum(c * c for c in block.box.center)))
        return block.level < 1 and abs(r - 0.7) < 0.25

    f.refine_where(near_shell, max_rounds=2)
    return f


def mean_hops(schedule, topo):
    hops = [topo.hops(s, d) for s, d, _ in schedule.messages()]
    return float(np.mean(hops)) if hops else 0.0


def test_partition_quality(benchmark):
    forest = adapted_forest()
    topo = TorusTopology(P)
    strategies = {
        "morton": lambda: sfc_partition(forest, P, curve="morton"),
        "hilbert": lambda: sfc_partition(forest, P, curve="hilbert"),
        "round-robin": lambda: round_robin_partition(forest, P),
    }
    rows = []
    results = {}
    for name, make in strategies.items():
        a = make()
        cut = partition_cut_fraction(forest, a)
        sched = build_schedule(forest, a, nvar=8)
        sim = ParallelSimulation(forest, P, topology=topo)
        sim.assignment = a
        sim.invalidate()
        t = sim.run(5).time_per_step
        results[name] = (cut, sched.total_bytes, t)
        rows.append(
            (
                name,
                f"{100 * cut:.1f}%",
                f"{sched.total_bytes / 1024:.0f}",
                sched.n_messages,
                f"{mean_hops(sched, topo):.2f}",
                f"{t * 1e3:.2f}",
            )
        )
    emit_table(
        "partition_quality",
        f"Partition quality on the {P}-PE T3D torus (adapted 3-D forest, "
        f"{forest.n_blocks} blocks)",
        ("strategy", "cut", "KB/step", "messages", "mean hops", "ms/step"),
        rows,
        notes="SFC partitions keep each PE's blocks spatially compact, "
        "cutting both message volume and torus distance",
    )
    # Both SFC strategies beat round-robin: smaller cut, much less
    # traffic (at ~4 blocks/PE most faces are remote for everyone, so
    # the volume/message contrast is the decisive metric).
    assert results["morton"][0] < results["round-robin"][0]
    assert results["hilbert"][0] < results["round-robin"][0]
    assert results["morton"][1] < 0.9 * results["round-robin"][1]
    assert results["morton"][2] < results["round-robin"][2]
    a = sfc_partition(forest, P)
    benchmark(lambda: build_schedule(forest, a, nvar=8))
