"""Ablation Abl-4: time-step subcycling vs global time stepping.

The paper's code used a single global dt ("the frequency of checking
criteria, etc." are its listed variations; local time stepping arrived
with the descendants).  This ablation quantifies what subcycling buys on
an adapted forest: each level advances at its own CFL limit, so coarse
blocks stop paying for the finest level's dt.

Reported for 2- and 3-level pulse forests: block updates per unit
physical time, end error vs the exact solution, and the update ratio.
"""

import numpy as np
import pytest

from repro.amr import Simulation, advecting_pulse
from repro.amr.subcycle import SubcycledSimulation
from repro.core import BlockID

from _tables import emit_table

T_END = 0.06


def build(cls, deep):
    p = advecting_pulse(2)
    forest = p.config.make_forest(p.scheme.nvar)
    p.init_forest(forest)
    forest.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
    if deep:
        forest.adapt([BlockID(1, (1, 1)), BlockID(1, (0, 0))])
    p.init_forest(forest)
    return p, cls(forest, p.scheme)


def run_case(deep):
    p, sim_g = build(Simulation, deep)
    sim_g.run(t_end=T_END)
    err_g = sim_g.error_vs(p.exact(T_END))
    updates_g = sim_g.step_count * sim_g.forest.n_blocks

    p, sim_s = build(SubcycledSimulation, deep)
    coarse_steps = 0
    while sim_s.time < T_END - 1e-12:
        dt = min(sim_s.stable_dt(), T_END - sim_s.time)
        sim_s.advance(dt)
        coarse_steps += 1
    err_s = sim_s.error_vs(p.exact(T_END))
    updates_s = coarse_steps * sim_s.updates_per_step()
    return err_g, updates_g, err_s, updates_s, sim_s.forest.level_histogram()


def test_subcycling_vs_global(benchmark):
    rows = []
    ratios = {}
    for deep in (False, True):
        err_g, up_g, err_s, up_s, hist = run_case(deep)
        label = "3-level" if deep else "2-level"
        ratios[deep] = up_s / up_g
        rows.append(
            (
                label,
                str(hist),
                up_g,
                up_s,
                f"{up_s / up_g:.2f}",
                f"{err_g:.2e}",
                f"{err_s:.2e}",
            )
        )
    emit_table(
        "ablation_subcycling",
        f"Abl-4: subcycled vs global time stepping (advecting pulse to "
        f"t={T_END})",
        ("forest", "levels", "updates global", "updates subcycled",
         "ratio", "err global", "err subcycled"),
        rows,
        notes="subcycling is the local-time-stepping extension the "
        "paper's descendants adopted; savings grow with level depth",
    )
    # Work savings grow with the number of levels (and with the coarse
    # block fraction — the shallow case here is mostly fine blocks, so
    # its saving is modest); accuracy comparable.
    assert ratios[False] < 1.0
    assert ratios[True] < ratios[False]
    err_g, _, err_s, _, _ = run_case(True)
    assert err_s < 3.0 * err_g + 1e-4
    benchmark(lambda: run_case(False))
