"""Ablation Abl-1: the block-size trade-off.

The paper: "The values of the m1, ..., md parameters can be chosen to
best trade off the advantages versus the disadvantages" — large blocks
amortize per-block overhead and communication but coarsen the
load-balance granularity and over-refine; the authors chose 16^3 on the
T3D as "a reasonable compromise".

Reproduction: the same 64^3-cell domain decomposed into blocks of
m in {4, 8, 16, 32}, run on 32 simulated PEs.  Reported per m:

* per-cell compute time including per-block overhead (fewer, larger
  blocks amortize better);
* ghost/computational ratio (memory overhead);
* load imbalance at the 32-PE granularity;
* total simulated step time — which is minimized in the middle.
"""

import pytest

from repro.core import BlockForest
from repro.parallel import ParallelSimulation, partition_imbalance, sfc_partition
from repro.util.geometry import Box

from _tables import emit_table

CELLS = 64
P = 32
STEPS = 10


def forest_for(m):
    n = CELLS // m
    return BlockForest(
        Box((0.0,) * 3, (1.0,) * 3), (n,) * 3, (m,) * 3, nvar=1, n_ghost=2
    )


def test_block_size_tradeoff(benchmark):
    rows = []
    step_times = {}
    for m in (4, 8, 16, 32):
        f = forest_for(m)
        a = sfc_partition(f, P)
        imb = partition_imbalance(f, a, P)
        sim = ParallelSimulation(f, P)
        rep = sim.run(STEPS)
        step_times[m] = rep.time_per_step
        rows.append(
            (
                f"{m}^3",
                f.n_blocks,
                f"{f.n_blocks / P:.1f}",
                f"{f.ghost_cell_ratio():.2f}",
                f"{imb:.2f}",
                f"{100 * rep.comm_fraction:.1f}%",
                f"{rep.time_per_step * 1e3:.1f}",
            )
        )
    emit_table(
        "ablation_block_size",
        f"Abl-1: block-size trade-off at fixed resolution ({CELLS}^3 "
        f"cells, {P} simulated PEs)",
        ("block", "blocks", "blocks/PE", "ghost ratio", "imbalance",
         "comm", "ms/step"),
        rows,
        notes="paper: m = 16^3 chosen as 'a reasonable compromise' "
        "between per-cell speed and load-balance granularity",
    )
    # Small blocks pay per-block overhead + ghost volume; at m=32 only 8
    # blocks exist for 32 PEs, so imbalance is catastrophic (24 PEs idle).
    assert step_times[8] < step_times[4]
    assert step_times[32] > 2.0 * step_times[8]
    f32 = forest_for(32)
    assert partition_imbalance(f32, sfc_partition(f32, P), P) >= 4.0
    benchmark(lambda: ParallelSimulation(forest_for(8), P).run(1))
