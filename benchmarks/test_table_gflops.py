"""Table T-D: sustained GFLOPS on the 512-PE machine.

The paper's headline: "we were able to sustain 17 GFLOPS in ideal
magnetohydrodynamic (MHD) simulations ... using a 512 processor Cray
T3D" (16 GFLOPS in the introduction's phrasing) — about 22% of the
machine's 76.8 GFLOPS peak.

Reproduction: the 512-PE simulated run over the 4096-block forest.  The
useful-FLOP count comes from the analytic per-cell MHD kernel census
(:mod:`repro.solvers.flops`); the wall time from the machine model.  The
per-PE sustained rate is reported two ways:

* with the machine preset (33 MFLOPS/PE sustained — calibrated from the
  published T3D stencil-code range, NOT from the paper's own number);
* degraded by the measured ghost-exchange + imbalance overheads of the
  actual forest, which is the quantity comparable to the paper's 17.
"""

import pytest

from repro.core import BlockForest
from repro.parallel import CRAY_T3D, ParallelSimulation, gflops
from repro.solvers.flops import mhd_flops_per_cell
from repro.util.geometry import Box

from _tables import emit_table

STEPS = 10


def test_sustained_gflops(benchmark):
    forest = BlockForest(
        Box((0.0,) * 3, (1.0,) * 3), (16,) * 3, (8,) * 3, nvar=1, n_ghost=2
    )
    sim = ParallelSimulation(forest, 512)
    rep = sim.run(STEPS)
    flops = sim.total_flops(STEPS)
    rate = gflops(flops, rep.total_time)
    per_pe = rate / 512 * 1e3
    peak = 512 * 150e6 / 1e9  # 150 MFLOPS peak per Alpha 21064
    kernel = mhd_flops_per_cell(3, 2)
    rows = [
        ("PEs", 512),
        ("blocks / cells", f"{forest.n_blocks} / {forest.n_cells}"),
        ("MHD kernel flops/cell/step", kernel.per_cell_per_step),
        ("simulated wall time (s)", f"{rep.total_time:.3f}"),
        ("useful FLOPs", f"{flops:.3e}"),
        ("sustained GFLOPS (modelled)", f"{rate:.1f}"),
        ("per-PE MFLOPS", f"{per_pe:.1f}"),
        ("machine peak GFLOPS", f"{peak:.1f}"),
        ("fraction of peak", f"{100 * rate / peak:.1f}%"),
        ("paper reported", "16-17 GFLOPS (21-22% of peak)"),
    ]
    emit_table(
        "table_gflops",
        "T-D: sustained GFLOPS, 512-PE simulated Cray T3D, 3-D 2nd-order "
        "MHD over 4096 adaptive blocks",
        ("quantity", "value"),
        rows,
        notes="per-PE sustained rate calibrated from published T3D "
        "stencil-code data (33 MFLOPS/PE), then degraded by the measured "
        "exchange/imbalance overheads of this forest",
    )
    # Band check: same order and same fraction-of-peak regime as the paper.
    assert 10.0 < rate < 25.0
    assert 0.10 < rate / peak < 0.30
    benchmark(lambda: ParallelSimulation(forest, 512).run(1))
