"""Figure 6: parallel efficiency, problem size scaled with processors.

The paper runs the solar-wind MHD simulation on the Cray T3D with the
problem size growing linearly with the processor count (1 → 512 PEs),
and reports efficiency that stays "extremely high, even up to 512
processors."

Reproduction: real block-forest topologies with constant work per PE
(8 blocks of 8^3 cells each), partitioned along the Morton curve,
stepped on the simulated T3D.  Compute time comes from the per-cell MHD
FLOP count, communication from the forest's actual ghost-transfer
message schedule.  Efficiency = T(1 PE) / T(P PEs).

A second series runs an *adapted* (non-uniform) forest with a
refinement band, including the adapt-and-rebalance cost every 8 steps —
closer to the paper's production runs.
"""

import numpy as np
import pytest

from repro.core import BlockForest
from repro.parallel import ParallelSimulation, scaled_efficiency
from repro.util.geometry import Box

from _tables import emit_table

#: (PEs, root blocks per axis) with exactly 8 blocks/PE: n^3 = 8 P.
SCALED_CASES = [(1, 2), (8, 4), (64, 8), (512, 16)]
STEPS = 10


def uniform_forest(n: int) -> BlockForest:
    return BlockForest(
        Box((0.0,) * 3, (1.0,) * 3), (n,) * 3, (8,) * 3, nvar=1, n_ghost=2
    )


def adapted_forest(n: int) -> BlockForest:
    """A root grid with a refinement shell around a sphere — the block
    distribution a solar-wind run settles into (fine near the front)."""
    f = BlockForest(
        Box((-1.0,) * 3, (1.0,) * 3), (n,) * 3, (8,) * 3, nvar=1,
        n_ghost=2, max_level=2,
    )

    def near_shell(block):
        c = block.box.center
        r = float(np.sqrt(sum(x * x for x in c)))
        return block.level < 1 and abs(r - 0.6) < 0.2

    f.refine_where(near_shell, max_rounds=2)
    return f


def _efficiency_series(make_forest):
    times = {}
    rows = []
    for p, n in SCALED_CASES:
        forest = make_forest(n)
        sim = ParallelSimulation(forest, p)
        rep = sim.run(STEPS)
        times[p] = rep.time_per_step
        rows.append((p, forest.n_blocks, forest.n_blocks / p))
    eff = scaled_efficiency(times)
    return times, eff, rows


def test_fig6_scaled_efficiency(benchmark):
    times_u, eff_u, rows_u = _efficiency_series(uniform_forest)
    rows = []
    for (p, blocks, bpp) in rows_u:
        rows.append(
            (p, blocks, f"{times_u[p] * 1e3:.2f}", f"{eff_u[p]:.3f}")
        )
    emit_table(
        "fig6_scaled_efficiency",
        "Figure 6: scaled-size parallel efficiency on the simulated "
        "Cray T3D (uniform forest, 8 blocks of 8^3 cells per PE, 3-D "
        "2nd-order MHD cost model)",
        ("PEs", "blocks", "ms/step", "efficiency"),
        rows,
        notes="paper: efficiency 'extremely high, even up to 512 processors'",
    )
    # Paper shape: monotone mild decay, still high at 512.
    assert eff_u[1] == pytest.approx(1.0)
    assert eff_u[512] > 0.85
    assert eff_u[8] >= eff_u[64] >= eff_u[512] - 1e-9
    benchmark(lambda: ParallelSimulation(uniform_forest(4), 8).run(2))


def test_fig6_adapted_with_rebalancing(benchmark):
    """Scaled efficiency with a refined (non-uniform) forest.

    The refinement shell makes the block count grow slightly faster than
    linearly with the root grid, so per-PE work is not exactly constant;
    efficiency is therefore measured as per-PE *throughput* (blocks per
    PE per second) normalized to the 1-PE machine — the quantity Fig. 6
    reduces to when work/PE is constant.
    """
    rows = []
    throughput = {}
    for p, n in SCALED_CASES:
        forest = adapted_forest(n)
        sim = ParallelSimulation(forest, p)
        total = 0.0
        for _ in range(STEPS):
            total += sim.step()
        t_step = total / STEPS
        throughput[p] = forest.n_blocks / p / t_step
        rows.append(
            (p, forest.n_blocks, f"{forest.n_blocks / p:.1f}",
             f"{t_step * 1e3:.2f}")
        )
    eff = {p: throughput[p] / throughput[1] for p in throughput}
    emit_table(
        "fig6_adapted",
        "Figure 6 (adapted variant): refinement-shell forest, SFC "
        "partition, per-PE-throughput efficiency vs PEs",
        ("PEs", "blocks", "blocks/PE", "ms/step"),
        rows,
        notes="efficiency (normalized blocks/PE/s): "
        + "  ".join(f"P={p}: {e:.3f}" for p, e in sorted(eff.items())),
    )
    # Non-uniform forests lose a little to partition-surface communication
    # and block-granularity imbalance, but stay high through 512 PEs.
    assert eff[512] > 0.75
    benchmark(lambda: ParallelSimulation(adapted_forest(4), 8).run(1))
