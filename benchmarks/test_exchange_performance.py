"""Ghost-exchange performance: amortization and plan caching.

Serial-side companion to the T-C communication table: the per-cell cost
of the ghost exchange falls with block size (fixed per-transfer overhead
amortized over larger slabs — the same mechanism the paper claims for
parallel messages), and the compiled-plan cache removes the owner-search
cost from steady-state stepping.
"""

import numpy as np
import pytest

from repro.core import BlockForest, fill_ghosts
from repro.core.ghost import _compile_plan
from repro.util.geometry import Box
from repro.util.timing import measure

from _tables import emit_table

CELLS = 64  # 64 x 64 cell domain, decomposed different ways


def forest_of(m):
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)),
        (CELLS // m, CELLS // m),
        (m, m),
        nvar=4,
        n_ghost=2,
        periodic=(True, True),
    )
    rng = np.random.default_rng(0)
    for b in f:
        b.interior[...] = rng.random(b.interior.shape)
    return f


def test_exchange_amortization(benchmark):
    rows = []
    per_cell = {}
    for m in (4, 8, 16, 32):
        f = forest_of(m)
        fill_ghosts(f)  # build the plan outside the timing
        t = measure(lambda: fill_ghosts(f), repeats=5).best
        per_cell[m] = t / f.n_cells * 1e6
        rows.append(
            (f"{m}x{m}", f.n_blocks, f"{t * 1e3:.2f}", f"{per_cell[m]:.3f}")
        )
    emit_table(
        "exchange_performance",
        f"Ghost-exchange cost vs block size ({CELLS}x{CELLS} cells, "
        "4 variables, periodic)",
        ("block", "blocks", "ms/exchange", "us/cell"),
        rows,
        notes="fixed per-transfer overhead amortizes over larger slabs — "
        "the serial face of the paper's communication-amortization claim",
    )
    assert per_cell[16] < 0.5 * per_cell[4]
    f = forest_of(16)
    fill_ghosts(f)
    benchmark(lambda: fill_ghosts(f))


def test_plan_cache_effectiveness(benchmark):
    f = forest_of(8)
    t_build = measure(lambda: _compile_plan(f, True), repeats=3).best
    fill_ghosts(f)  # warm the cache
    t_fill = measure(lambda: fill_ghosts(f), repeats=5).best
    emit_table(
        "exchange_plan_cache",
        "Exchange-plan compilation vs cached execution (8x8 blocks, "
        "64 blocks)",
        ("operation", "ms"),
        [
            ("compile plan (per topology change)", f"{t_build * 1e3:.2f}"),
            ("cached fill (per step)", f"{t_fill * 1e3:.2f}"),
            ("ratio", f"{t_build / t_fill:.1f}x"),
        ],
        notes="mirrors the paper's design: neighbor information is "
        "rebuilt only when the mesh adapts, not every step",
    )
    # Building costs several cached fills — caching on the topology
    # revision is what makes frequent exchanges cheap.
    assert t_build > 1.5 * t_fill
    benchmark(lambda: _compile_plan(f, True))
