"""Tests for the Block container (repro.core.block)."""

import numpy as np
import pytest

from repro.core.block import Block, FaceNeighbors, NeighborKind
from repro.core.block_id import BlockID, IndexBox
from repro.util.geometry import Box


def make_block(level=0, coords=(0, 0), m=(4, 6), g=2, nvar=3):
    return Block(
        id=BlockID(level, coords),
        box=Box((0.0, 0.0), (1.0, 1.5)),
        m=m,
        n_ghost=g,
        nvar=nvar,
    )


class TestConstruction:
    def test_data_allocated(self):
        b = make_block()
        assert b.data.shape == (3, 8, 10)
        assert np.all(b.data == 0.0)

    def test_provided_data_shape_checked(self):
        with pytest.raises(ValueError):
            Block(
                id=BlockID(0, (0, 0)),
                box=Box((0.0, 0.0), (1.0, 1.0)),
                m=(4, 4),
                n_ghost=2,
                nvar=1,
                data=np.zeros((1, 4, 4)),
            )

    def test_odd_block_size_rejected(self):
        with pytest.raises(ValueError):
            make_block(m=(5, 6))

    def test_too_small_for_ghosts_rejected(self):
        with pytest.raises(ValueError):
            make_block(m=(2, 6), g=2)

    def test_zero_ghost_rejected(self):
        with pytest.raises(ValueError):
            make_block(g=0)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Block(
                id=BlockID(0, (0, 0, 0)),
                box=Box((0.0, 0.0), (1.0, 1.0)),
                m=(4, 4),
                n_ghost=1,
                nvar=1,
            )


class TestGeometry:
    def test_cell_counts(self):
        b = make_block()
        assert b.n_cells == 24
        assert b.n_ghost_cells == 8 * 10 - 24

    def test_dx(self):
        b = make_block()
        assert b.dx == (0.25, 0.25)

    def test_cell_box(self):
        b = make_block(level=1, coords=(1, 2))
        assert b.cell_box == IndexBox((4, 12), (8, 18))

    def test_index_origin(self):
        b = make_block(level=1, coords=(1, 2))
        assert b.index_origin == (4 - 2, 12 - 2)

    def test_padded_box_contains_cell_box(self):
        b = make_block()
        assert b.padded_box.contains(b.cell_box)
        assert b.padded_box == b.cell_box.grow(2)

    def test_cell_centers_with_ghosts(self):
        b = make_block()
        x = b.cell_centers(include_ghost=True)[0]
        assert len(x) == 8
        assert x[0] == pytest.approx(-0.375)  # two ghost cells below 0
        assert x[2] == pytest.approx(0.125)   # first interior center

    def test_meshgrid_matches_box(self):
        b = make_block()
        X, Y = b.meshgrid()
        assert X.shape == (4, 6)
        assert X.min() > 0 and X.max() < 1
        assert Y.min() > 0 and Y.max() < 1.5


class TestViews:
    def test_interior_view_is_writable_view(self):
        b = make_block()
        b.interior[...] = 5.0
        assert b.data[0, 2, 2] == 5.0
        assert b.data[0, 0, 0] == 0.0  # ghost untouched

    def test_view_by_global_box(self):
        b = make_block(level=0, coords=(0, 0))
        b.interior[...] = 1.0
        v = b.view(IndexBox((0, 0), (2, 2)))
        assert v.shape == (3, 2, 2)
        assert np.all(v == 1.0)

    def test_view_outside_padded_rejected(self):
        b = make_block()
        with pytest.raises(IndexError):
            b.view(IndexBox((-3, 0), (0, 2)))

    def test_ghost_region_low_face(self):
        b = make_block(level=0, coords=(0, 0))
        r = b.ghost_region(0)
        assert r == IndexBox((-2, 0), (0, 6))

    def test_ghost_region_high_face_with_swept(self):
        b = make_block(level=0, coords=(0, 0))
        r = b.ghost_region(3, swept_axes=(0,))
        assert r == IndexBox((-2, 6), (6, 8))

    def test_fill_and_zero_ghosts(self):
        b = make_block()
        b.data[...] = 9.0
        b.fill(np.ones((3, 4, 6)))
        b.zero_ghosts()
        assert np.all(b.interior == 1.0)
        assert b.data[0, 0, 0] == 0.0


class TestFaceNeighbors:
    def test_boundary_has_no_ids(self):
        fn = FaceNeighbors(NeighborKind.BOUNDARY)
        assert fn.ids == ()
        with pytest.raises(ValueError):
            FaceNeighbors(NeighborKind.BOUNDARY, (BlockID(0, (0,)),))

    def test_same_requires_single_id(self):
        with pytest.raises(ValueError):
            FaceNeighbors(NeighborKind.SAME, ())
        with pytest.raises(ValueError):
            FaceNeighbors(
                NeighborKind.SAME, (BlockID(0, (0,)), BlockID(0, (1,)))
            )

    def test_finer_requires_ids(self):
        with pytest.raises(ValueError):
            FaceNeighbors(NeighborKind.FINER, ())
