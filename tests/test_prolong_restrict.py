"""Tests for the prolongation/restriction operators.

The operators carry the library's conservation invariant: restriction is
exactly conservative, prolongation preserves block totals, and a
refine→coarsen round trip is the identity on cell means.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.prolong import minmod, prolong_inject, prolong_linear
from repro.core.restrict import restrict_mean


def finite_arrays(shape):
    return arrays(
        np.float64,
        shape,
        elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
    )


class TestRestrict:
    def test_mean_2d(self):
        fine = np.arange(16, dtype=float).reshape(1, 4, 4)
        coarse = restrict_mean(fine, 2)
        assert coarse.shape == (1, 2, 2)
        assert coarse[0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)
        assert coarse[0, 1, 1] == pytest.approx((10 + 11 + 14 + 15) / 4)

    def test_constant_preserved(self):
        fine = np.full((3, 4, 4, 4), 2.5)
        np.testing.assert_allclose(restrict_mean(fine, 3), 2.5)

    def test_odd_extent_rejected(self):
        with pytest.raises(ValueError):
            restrict_mean(np.zeros((1, 3, 4)), 2)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            restrict_mean(np.zeros((1, 4, 4)), 3)

    @given(finite_arrays((2, 4, 6)))
    def test_conservation(self, fine):
        coarse = restrict_mean(fine, 2)
        # Total = mean * volume; each coarse cell has 4x the fine volume.
        np.testing.assert_allclose(
            coarse.sum(axis=(1, 2)) * 4, fine.sum(axis=(1, 2)), rtol=1e-12, atol=1e-9
        )

    @given(finite_arrays((1, 4, 4)))
    def test_bounded_by_extremes(self, fine):
        coarse = restrict_mean(fine, 2)
        assert coarse.min() >= fine.min() - 1e-9
        assert coarse.max() <= fine.max() + 1e-9


class TestProlongInject:
    def test_shapes(self):
        out = prolong_inject(np.zeros((2, 3, 5)), 2)
        assert out.shape == (2, 6, 10)

    def test_values_duplicated(self):
        coarse = np.array([[1.0, 2.0]])  # (nvar=1, n=2)
        out = prolong_inject(coarse, 1)
        np.testing.assert_allclose(out, [[1.0, 1.0, 2.0, 2.0]])

    @given(finite_arrays((1, 3, 3)))
    def test_roundtrip_identity(self, coarse):
        # restrict(inject(x)) == x exactly.
        np.testing.assert_allclose(
            restrict_mean(prolong_inject(coarse, 2), 2), coarse, rtol=1e-15
        )


class TestMinmod:
    def test_same_sign_takes_smaller(self):
        a = np.array([1.0, -3.0])
        b = np.array([2.0, -1.0])
        np.testing.assert_allclose(minmod(a, b), [1.0, -1.0])

    def test_opposite_signs_zero(self):
        np.testing.assert_allclose(minmod(np.array([1.0]), np.array([-2.0])), [0.0])

    def test_zero_argument_gives_zero(self):
        np.testing.assert_allclose(minmod(np.array([0.0]), np.array([5.0])), [0.0])


class TestProlongLinear:
    def test_shapes(self):
        out = prolong_linear(np.zeros((2, 5, 6)), 2)
        assert out.shape == (2, 6, 8)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            prolong_linear(np.zeros((1, 2, 4)), 2)

    def test_exact_on_linear_1d(self):
        # q(x) = x at coarse centers 0.5, 1.5, ... -> fine centers exact.
        coarse = np.arange(6, dtype=float)[np.newaxis] + 0.5
        fine = prolong_linear(coarse, 1, limited=False)
        expect = 0.5 * (np.arange(8) + 0.5) + 1.0  # interior covers coarse 1..4
        np.testing.assert_allclose(fine[0], expect)

    def test_limited_exact_on_linear(self):
        # For monotone linear data the minmod slopes equal the true slope.
        coarse = 3.0 * (np.arange(6, dtype=float)[np.newaxis] + 0.5)
        fine_lim = prolong_linear(coarse, 1, limited=True)
        fine_unlim = prolong_linear(coarse, 1, limited=False)
        np.testing.assert_allclose(fine_lim, fine_unlim)

    def test_exact_on_multilinear_2d(self):
        x = np.arange(5) + 0.5
        y = np.arange(6) + 0.5
        X, Y = np.meshgrid(x, y, indexing="ij")
        coarse = (2 * X - 3 * Y)[np.newaxis]
        fine = prolong_linear(coarse, 2, limited=False)
        xf = 0.5 * (np.arange(6) + 0.5) + 1.0
        yf = 0.5 * (np.arange(8) + 0.5) + 1.0
        Xf, Yf = np.meshgrid(xf, yf, indexing="ij")
        np.testing.assert_allclose(fine[0], 2 * Xf - 3 * Yf, rtol=1e-13)

    @given(finite_arrays((1, 5, 5)))
    @settings(max_examples=50)
    def test_conservation(self, coarse):
        # Sum over each 2x2 fine group equals 4x the coarse value: the
        # +/- slope contributions cancel pairwise.
        fine = prolong_linear(coarse, 2)
        grouped = restrict_mean(fine, 2)
        np.testing.assert_allclose(
            grouped, coarse[:, 1:-1, 1:-1], rtol=1e-12, atol=1e-9
        )

    @given(finite_arrays((1, 6, 4)))
    @settings(max_examples=50)
    def test_limited_no_new_extrema(self, coarse):
        # Minmod-limited prolongation stays within the local data range.
        fine = prolong_linear(coarse, 2, limited=True)
        assert fine.max() <= coarse.max() + 1e-9
        assert fine.min() >= coarse.min() - 1e-9

    def test_constant_preserved_3d(self):
        coarse = np.full((2, 4, 4, 4), -7.5)
        fine = prolong_linear(coarse, 3)
        np.testing.assert_allclose(fine, -7.5)
