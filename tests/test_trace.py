"""Tests for machine tracing and Gantt rendering (repro.parallel.trace)."""

import numpy as np
import pytest

from repro.core import BlockForest
from repro.parallel import MachineSpec, ParallelSimulation
from repro.parallel.trace import TraceEvent, TracingMachine, render_gantt
from repro.util.geometry import Box

SPEC = MachineSpec("test", 1e-8, 1e-6, 1e-8, 0.0, 0.0, 0.0)


class TestTracingMachine:
    def test_compute_recorded(self):
        m = TracingMachine(2, SPEC)
        m.compute(0, 0.5)
        assert len(m.events) == 1
        e = m.events[0]
        assert e.rank == 0 and e.kind == "compute"
        assert e.duration == pytest.approx(0.5)

    def test_message_records_both_sides(self):
        m = TracingMachine(2, SPEC)
        m.message(0, 1, 100)
        kinds = sorted(e.kind for e in m.events)
        assert kinds == ["recv", "send"]
        assert "->1" in [e.detail for e in m.events if e.kind == "send"][0]

    def test_local_message_not_recorded(self):
        m = TracingMachine(2, SPEC)
        m.message(1, 1, 100)
        assert not m.events

    def test_barrier_wait_recorded(self):
        m = TracingMachine(2, SPEC)
        m.compute(0, 1.0)
        m.finish_step()
        waits = [e for e in m.events if e.kind == "barrier"]
        assert len(waits) == 1
        assert waits[0].rank == 1
        assert waits[0].duration == pytest.approx(1.0)

    def test_clock_semantics_unchanged(self):
        # Tracing must not alter the timing model.
        a = TracingMachine(3, SPEC)
        from repro.parallel import VirtualMachine

        b = VirtualMachine(3, SPEC)
        for mach in (a, b):
            mach.compute(0, 0.2)
            mach.message(0, 2, 500)
            mach.finish_step()
        np.testing.assert_allclose(a.clock, b.clock)
        assert a.elapsed == pytest.approx(b.elapsed)

    def test_events_between(self):
        m = TracingMachine(1, SPEC)
        m.compute(0, 1.0)
        m.compute(0, 1.0)
        assert len(m.events_between(0.0, 0.5)) == 1
        assert len(m.events_between(0.0, 2.0)) == 2


class TestGantt:
    def make_traced_run(self):
        forest = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (4, 4), (4, 4), nvar=1, n_ghost=2
        )
        sim = ParallelSimulation(forest, 4)
        sim.machine = TracingMachine(4, sim.machine.spec)
        sim.run(2)
        return sim.machine

    def test_render_shape(self):
        m = self.make_traced_run()
        out = render_gantt(m, width=40)
        lines = out.splitlines()
        assert len(lines) == 5  # header + 4 PEs
        for line in lines[1:]:
            assert line.startswith("PE")
            assert len(line.split("|")[1]) == 40

    def test_compute_dominates_chart(self):
        m = self.make_traced_run()
        out = render_gantt(m, width=60)
        body = "".join(out.splitlines()[1:])
        assert body.count("#") > 10

    def test_empty_window_rejected(self):
        m = TracingMachine(1, SPEC)
        with pytest.raises(ValueError):
            render_gantt(m, t0=0.0, t1=0.0)

    def test_max_ranks_truncation(self):
        m = TracingMachine(32, SPEC)
        m.compute(0, 1.0)
        m.finish_step()
        out = render_gantt(m, max_ranks=4)
        assert "28 more PEs not shown" in out
