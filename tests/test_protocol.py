"""Tests for the static protocol verifier (repro.analysis.protocol /
effects / modelcheck and the ``repro check`` CLI).

The layers are tested from both sides, like the rest of the analysis
suite: every checker must be *silent* on the real tree and must *fire*
on a seeded mutation — a reordered exchange, a skipped mirror
verification, a ghost write in the step phase, a wire send outside the
registered constructors.  Model-checker counterexamples must replay
deterministically, both in-model and through
``repro emulate --schedule``.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.effects import (
    check_source as effect_check_source,
    infer_module_effects,
)
from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.modelcheck import (
    EXPECTED_VIOLATION,
    MODEL_FAULTS,
    MUTATIONS,
    CounterexampleTrace,
    check_protocol,
    replay_trace,
    schedule_faults,
)
from repro.analysis.protocol import (
    PROTOCOL,
    PROTOCOL_MODULES,
    check_conformance,
    contract_for,
    mutated,
    phase_effect,
    protocol_sources,
)

REPO = Path(__file__).resolve().parents[1]


# ---------------------------------------------------------------------------
# the spec itself
# ---------------------------------------------------------------------------

class TestProtocolSpec:
    def test_phase_catalogue(self):
        ops = set(PROTOCOL.ops())
        assert {"config", "exch1", "exch2-gather", "exch2-write",
                "step", "predictor", "corrector"} <= ops

    def test_step_programs_use_known_ops(self):
        for program in (PROTOCOL.step_program_single,
                        PROTOCOL.step_program_double):
            for op in program:
                assert op in PROTOCOL.ops()

    def test_contracts_use_spec_regions(self):
        for spec in PROTOCOL.phases:
            assert spec.reads <= set(PROTOCOL.regions)
            assert spec.writes <= set(PROTOCOL.regions)

    def test_non_injectable_ops_are_control(self):
        for op in PROTOCOL.non_injectable_ops:
            assert not PROTOCOL.phase(op).injectable

    def test_mutated_flips_one_flag(self):
        m = mutated(PROTOCOL, check_reply_seq=False)
        assert not m.check_reply_seq
        assert m.guard_segment_free
        assert m.phases == PROTOCOL.phases

    def test_phase_effect_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            @phase_effect("warp-drive")
            def f():  # pragma: no cover - decoration itself raises
                pass

    def test_model_faults_exist_as_spec_faults_or_stale(self):
        spec_actions = {f.action for f in PROTOCOL.faults}
        for kind in MODEL_FAULTS:
            assert kind == "stale" or kind in spec_actions


# ---------------------------------------------------------------------------
# AST conformance: spec vs the real wire modules
# ---------------------------------------------------------------------------

class TestConformance:
    def test_real_tree_conforms(self):
        issues = check_conformance()
        assert issues == [], "\n".join(i.message for i in issues)

    def test_rogue_send_is_reported(self):
        sources = protocol_sources()
        mod = "repro/parallel/procmachine.py"
        sources[mod] += (
            "\n\ndef rogue(conn, seq):\n"
            "    conn.send({'op': 'step', 'seq': seq})\n"
        )
        issues = check_conformance(sources=sources)
        assert any(
            i.kind == "constructor" and "rogue" in i.message
            for i in issues
        )

    def test_crc_stripped_reply_is_reported(self):
        sources = protocol_sources()
        mod = "repro/parallel/procworker.py"
        sources[mod] = sources[mod].replace('"crc": reply_crc', '"xrc": reply_crc')
        issues = check_conformance(sources=sources)
        assert any(i.kind == "reply-crc" for i in issues)

    def test_unknown_op_constant_is_reported(self):
        sources = protocol_sources()
        mod = "repro/parallel/procmachine.py"
        sources[mod] += (
            "\n\nclass ProcessMachine2(ProcessMachine):\n"
            "    def extra(self):\n"
            "        self._phase('warp', self.forest)\n"
        )
        issues = check_conformance(sources=sources)
        assert any(i.kind == "ops" for i in issues)


# ---------------------------------------------------------------------------
# phase-effect analyzer
# ---------------------------------------------------------------------------

class TestPhaseEffects:
    def test_worker_phases_infer_within_contract(self):
        src = (REPO / "src/repro/parallel/procworker.py").read_text()
        effects = infer_module_effects(src, "repro/parallel/procworker.py")
        by_phase = {e.phase: e for e in effects}
        assert set(by_phase) >= {
            "config", "exch1", "exch2-gather", "exch2-write",
            "step", "predictor", "corrector",
        }
        for e in effects:
            assert e.violations() == [], (e.qualname, e.violations())

    def test_step_contract_matches_spec(self):
        c = contract_for("step")
        assert "interior" in c.writes and "ghost" not in c.writes

    def test_ghost_write_in_step_phase_fires_repro106(self):
        src = (
            "from repro.analysis.protocol import phase_effect\n"
            "class W:\n"
            "    @phase_effect('step')\n"
            "    def step_single(self, blk):\n"
            "        blk.data[0] = 1.0  # repro: noqa[REPRO101]\n"
        )
        findings = effect_check_source(src, "repro/parallel/procworker.py")
        assert any(code == "REPRO106" for _l, _c, code, _m in findings)
        v = lint_source(src, "repro/parallel/procworker.py")
        assert any(x.code == "REPRO106" for x in v)

    def test_mirror_write_in_scrub_phase_fires_repro106(self):
        src = (
            "from repro.analysis.protocol import phase_effect\n"
            "class S:\n"
            "    @phase_effect('scrub')\n"
            "    def verify(self, seg, slot, block):\n"
            "        view = seg.mirror_view(slot)\n"
            "        view[...] = block.interior\n"
        )
        findings = effect_check_source(src, "repro/resilience/scrub.py")
        assert any("mirror" in m for _l, _c, _code, m in findings)

    def test_unannotated_functions_are_ignored(self):
        src = "def helper(blk):\n    blk.interior[...] = 0.0\n"
        assert effect_check_source(src, "repro/parallel/procworker.py") == []

    def test_annotated_tree_is_clean(self):
        for sub in ("core", "parallel", "resilience"):
            for path in sorted((REPO / "src/repro" / sub).rglob("*.py")):
                mod = "repro/" + str(path.relative_to(REPO / "src/repro"))
                findings = effect_check_source(path.read_text(), mod)
                assert findings == [], (mod, findings)


# ---------------------------------------------------------------------------
# REPRO107: message construction outside registered sites
# ---------------------------------------------------------------------------

class TestRepro107:
    def test_rogue_send_and_literal(self):
        src = (
            "def rogue(conn, seq):\n"
            "    msg = {'op': 'step', 'seq': seq}\n"
            "    conn.send(msg)\n"
        )
        v = lint_source(src, "repro/parallel/procmachine.py")
        assert [x.code for x in v] == ["REPRO107", "REPRO107"]

    def test_registered_constructor_is_fine(self):
        src = (
            "class ProcessMachine:\n"
            "    def _phase(self, op, seq, conn):\n"
            "        conn.send({'op': op, 'seq': seq})\n"
        )
        assert lint_source(src, "repro/parallel/procmachine.py") == []

    def test_scoped_to_protocol_modules(self):
        src = "def f(q):\n    q.send({'op': 'x', 'seq': 1})\n"
        assert lint_source(src, "repro/core/block2.py") == []

    def test_nested_helper_inside_constructor_is_fine(self):
        src = (
            "def worker_main(conn):\n"
            "    def send_reply(body, seq, rank):\n"
            "        conn.send({'seq': seq, 'rank': rank, 'body': body,\n"
            "                   'crc': 0})\n"
            "    send_reply(None, 0, 0)\n"
        )
        assert lint_source(src, "repro/parallel/procworker.py") == []

    def test_real_wire_modules_are_clean(self):
        for mod in PROTOCOL_MODULES:
            path = REPO / "src" / mod
            v = lint_source(
                path.read_text(), mod, select={"REPRO107"},
            )
            assert v == [], (mod, v)


# ---------------------------------------------------------------------------
# model checker
# ---------------------------------------------------------------------------

class TestModelChecker:
    def test_clean_spec_has_no_violations(self):
        res = check_protocol(ranks=2, steps=1, max_faults=1)
        assert res.ok, res.counterexample
        assert res.completed > 0

    def test_clean_spec_three_ranks(self):
        res = check_protocol(ranks=3, steps=1, max_faults=1)
        assert res.ok

    def test_clean_double_scheme(self):
        res = check_protocol(ranks=2, steps=1, max_faults=1,
                             scheme="double")
        assert res.ok

    def test_zero_fault_budget_explores_happy_path(self):
        res = check_protocol(ranks=2, steps=2, max_faults=0)
        assert res.ok and res.completed > 0

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_mutation_yields_expected_violation(self, name):
        res = check_protocol(ranks=2, steps=1, max_faults=1, mutation=name)
        assert not res.ok
        cx = res.counterexample
        assert cx is not None
        assert cx.kind == EXPECTED_VIOLATION[name]
        assert cx.actions, "counterexample must carry a schedule"

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_por_off_agrees(self, name):
        res = check_protocol(ranks=2, steps=1, max_faults=1,
                             mutation=name, por=False)
        assert not res.ok
        assert res.counterexample.kind == EXPECTED_VIOLATION[name]

    def test_por_off_clean_agrees(self):
        assert check_protocol(ranks=2, steps=1, max_faults=1,
                              por=False).ok

    def test_small_world_bound_enforced(self):
        with pytest.raises(ValueError):
            check_protocol(ranks=8)
        with pytest.raises(ValueError):
            check_protocol(ranks=1)
        with pytest.raises(ValueError):
            check_protocol(steps=9)
        with pytest.raises(ValueError):
            check_protocol(max_faults=9)

    def test_trace_json_round_trip(self):
        cx = check_protocol(
            ranks=2, steps=1, max_faults=1, mutation="unguarded-free"
        ).counterexample
        rt = CounterexampleTrace.from_json(cx.to_json())
        assert rt == cx
        payload = json.loads(cx.to_json())
        assert payload["kind"] == "double-free"

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_replay_reproduces_violation(self, name):
        cx = check_protocol(
            ranks=2, steps=1, max_faults=1, mutation=name
        ).counterexample
        rt = CounterexampleTrace.from_json(cx.to_json())
        violation = replay_trace(rt)
        assert violation is not None
        assert violation[0] == cx.kind

    def test_replay_rejects_diverged_schedule(self):
        cx = check_protocol(
            ranks=2, steps=1, max_faults=1, mutation="unguarded-free"
        ).counterexample
        broken = CounterexampleTrace(
            kind=cx.kind, message=cx.message, ranks=cx.ranks,
            steps=cx.steps, max_faults=cx.max_faults, scheme=cx.scheme,
            mutation=cx.mutation,
            actions=(("heal", 0),) + cx.actions, phases=cx.phases,
        )
        with pytest.raises(ValueError):
            replay_trace(broken)

    def test_schedule_faults_extraction(self):
        cx = check_protocol(
            ranks=2, steps=1, max_faults=1, mutation="skip-mirror-verify"
        ).counterexample
        faults = schedule_faults(cx)
        assert len(faults) == 1
        f = faults[0]
        assert f["action"] == "kill"
        assert f["step"] == 0
        assert 0 <= f["rank"] < 2
        assert f["phase"] in PROTOCOL.ops()


# ---------------------------------------------------------------------------
# CLI: repro check / emulate --schedule
# ---------------------------------------------------------------------------

class TestCheckCLI:
    def test_check_passes_on_current_tree(self, capsys):
        from repro.cli import main

        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "conformance" in out
        assert "5/5" in out

    def test_check_mutate_mode_writes_trace(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "check", "--mutate", "reorder-exch2",
            "--trace-dir", str(tmp_path),
        ])
        assert rc == 0
        traces = list(tmp_path.glob("*.json"))
        assert len(traces) == 1
        trace = CounterexampleTrace.from_json(traces[0].read_text())
        assert trace.kind == "staging-order"

    def test_check_rejects_bad_bounds(self, capsys):
        from repro.cli import main

        assert main(["check", "--ranks", "9"]) == 2

    def test_parser_mutation_choices_match_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        # The check subparser hardcodes choices (no import at parse
        # time); they must track the modelcheck registry.
        sub = next(
            a for a in parser._subparsers._group_actions
        ).choices["check"]
        mutate = next(
            a for a in sub._actions if "--mutate" in a.option_strings
        )
        assert set(mutate.choices) == set(MUTATIONS)

    def test_emulate_schedule_replays_deterministically(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        rc = main([
            "check", "--mutate", "skip-mirror-verify",
            "--trace-dir", str(tmp_path),
        ])
        assert rc == 0
        trace_file = next(tmp_path.glob("*.json"))

        def run() -> str:
            rc = main([
                "emulate", "pulse", "--ranks", "2", "--steps", "3",
                "--schedule", str(trace_file),
            ])
            assert rc == 0
            return capsys.readouterr().out

        first, second = run(), run()
        digest = [
            line for line in first.splitlines()
            if "schedule replay digest" in line
        ]
        assert digest, first
        assert digest == [
            line for line in second.splitlines()
            if "schedule replay digest" in line
        ]
        assert "recovered from rank-failure" in first

    def test_emulate_schedule_message_fault(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "check", "--mutate", "drop-probe", "--trace-dir", str(tmp_path),
        ])
        assert rc == 0
        trace_file = next(tmp_path.glob("*.json"))
        rc = main([
            "emulate", "pulse", "--ranks", "2", "--steps", "3",
            "--schedule", str(trace_file),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "transiently drop message" in out
        assert "OK" in out

    def test_emulate_schedule_bad_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "nope.json"
        rc = main([
            "emulate", "pulse", "--ranks", "2", "--steps", "2",
            "--schedule", str(bad),
        ])
        assert rc == 2
