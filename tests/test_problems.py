"""Tests for the bundled problems (repro.amr.problems)."""

import numpy as np
import pytest

from repro.amr import (
    SimulationConfig,
    advecting_pulse,
    comet,
    mhd_blast,
    sedov_blast,
    solar_wind,
)
from repro.util.geometry import Box


def assert_finite(sim):
    for b in sim.forest:
        assert np.all(np.isfinite(b.interior)), f"non-finite state in {b.id}"


class TestAdvectingPulse:
    def test_exact_solution_at_t0(self):
        p = advecting_pulse(2)
        sim = p.build(adaptive=False)
        assert sim.error_vs(p.exact(0.0)) < 1e-12

    def test_periodic_exact_wraps(self):
        p = advecting_pulse(1, velocity=(1.0,))
        # After exactly one period the exact solution returns.
        f0 = p.exact(0.0)
        f1 = p.exact(1.0)
        x = np.linspace(0.05, 0.95, 7)
        np.testing.assert_allclose(f0(x), f1(x), rtol=1e-12)

    def test_error_stays_small(self):
        p = advecting_pulse(2)
        sim = p.build()
        sim.run(t_end=0.1)
        assert sim.error_vs(p.exact(sim.time)) < 5e-3


class TestBlasts:
    @pytest.mark.parametrize("factory", [sedov_blast, mhd_blast])
    def test_shock_expands_and_grid_follows(self, factory):
        p = factory(2)
        sim = p.build(initial_adapt_rounds=2)

        def fine_extent():
            # Largest center radius among the finest blocks: tracks the
            # outward-moving shock front.
            rmax = 0.0
            top = sim.forest.levels[1]
            for b in sim.forest:
                if b.level == top:
                    c = b.box.center
                    rmax = max(rmax, sum(x * x for x in c) ** 0.5)
            return rmax

        n_fine0 = sum(1 for b in sim.forest if b.level >= 2)
        assert n_fine0 > 0  # initial adaptation found the blast
        sim.run(t_end=0.02)
        assert_finite(sim)
        # The run deepened refinement at the shock, and the finest blocks
        # sit well outside the initial blast sphere (r = 0.1): the grid
        # follows the front outward.
        assert sim.forest.levels[1] == 3
        assert fine_extent() > 0.2

    def test_sedov_pressure_positive(self):
        p = sedov_blast(2)
        sim = p.build(initial_adapt_rounds=1)
        sim.run(n_steps=8)
        for b in sim.forest:
            w = p.scheme.cons_to_prim(b.interior)
            assert w[0].min() > 0 and w[-1].min() > 0

    def test_mhd_blast_field_anisotropy(self):
        # The blast in an oblique field expands preferentially along B
        # (x=y diagonal): pressure contours elongate along the field.
        p = mhd_blast(2, b0=2.0)
        sim = p.build(initial_adapt_rounds=2)
        sim.run(t_end=0.05)
        assert_finite(sim)

    def test_sedov_radial_symmetry(self):
        p = sedov_blast(2)
        sim = p.build(initial_adapt_rounds=2)
        sim.run(n_steps=6)
        # Density at symmetric probe points matches.
        probes = [(0.2, 0.0), (-0.2, 0.0), (0.0, 0.2), (0.0, -0.2)]
        vals = []
        for pt in probes:
            b = sim.forest.block_at(pt)
            X, Y = b.meshgrid()
            idx = np.unravel_index(
                np.argmin((X - pt[0]) ** 2 + (Y - pt[1]) ** 2), X.shape
            )
            vals.append(b.interior[0][idx])
        assert np.ptp(vals) / np.mean(vals) < 0.05


class TestSolarWind:
    def test_inner_boundary_held_fixed(self):
        p = solar_wind(2)
        sim = p.build(initial_adapt_rounds=1)
        sim.run(n_steps=5)
        # Cells well inside the body retain the prescribed wind density.
        b = sim.forest.block_at((0.0, 0.0))
        X, Y = b.meshgrid()
        inside = X**2 + Y**2 < 0.5**2
        if inside.any():
            w = p.scheme.cons_to_prim(b.interior)
            assert w[0][inside].min() > 0.5  # near rho0 = 1 at r <= r_body

    def test_wind_is_supersonic_outflow(self):
        p = solar_wind(2)
        sim = p.build(adaptive=False)
        sim.run(n_steps=8)
        assert_finite(sim)
        # Radial momentum points outward away from the body.
        b = sim.forest.block_at((2.5, 0.0))
        w = p.scheme.cons_to_prim(b.interior)
        assert w[1].mean() > 0  # ux > 0 on the +x side

    def test_steady_wind_changes_slowly(self):
        p = solar_wind(2)
        sim = p.build(adaptive=False)
        sim.run(n_steps=4)
        snap = {b.id: b.interior.copy() for b in sim.forest}
        rec = sim.step()
        drift = max(
            float(np.abs(b.interior - snap[b.id]).max()) for b in sim.forest
        )
        # Near-equilibrium initial state: one step changes little.
        assert drift < 0.5

    def test_cme_pulse_raises_density(self):
        base = solar_wind(2)
        cme = solar_wind(2, cme_time=0.0, cme_duration=10.0, cme_factor=4.0)
        sims = [q.build(adaptive=False) for q in (base, cme)]
        for s in sims:
            s.run(n_steps=6)
        probe = (1.3, 0.0)
        dens = []
        for s in sims:
            b = s.forest.block_at(probe)
            dens.append(float(b.interior[0].mean()))
        assert dens[1] > 1.5 * dens[0]


class TestComet:
    def test_mass_loading_grows_total_mass(self):
        p = comet(2)
        sim = p.build(adaptive=False)
        m0 = sim.total()
        sim.run(n_steps=5)
        assert sim.total() > m0

    def test_flow_decelerates_in_cloud(self):
        p = comet(2, loading_rate=5.0)
        sim = p.build(adaptive=False)
        sim.run(n_steps=10)
        assert_finite(sim)
        w_cloud = p.scheme.cons_to_prim(sim.forest.block_at((0.1, 0.1)).interior)
        w_up = p.scheme.cons_to_prim(sim.forest.block_at((-1.8, 0.1)).interior)
        assert w_cloud[1].mean() < w_up[1].mean()  # slower inside the cloud

    def test_inflow_boundary_enforced(self):
        p = comet(2)
        sim = p.build(adaptive=False)
        sim.run(n_steps=5)
        b = sim.forest.block_at((-1.9, 0.0))
        w = p.scheme.cons_to_prim(b.interior)
        assert abs(w[1][0].mean() - 4.0) < 0.5  # inflow speed maintained


class TestProblemConfigs:
    def test_custom_config_respected(self):
        cfg = SimulationConfig(
            domain=Box((0.0, 0.0), (1.0, 1.0)),
            n_root=(4, 4),
            m=(4, 4),
            periodic=(True, True),
            max_level=1,
        )
        p = advecting_pulse(2, config=cfg)
        sim = p.build(adaptive=False)
        assert sim.forest.n_blocks == 16
        assert sim.forest.m == (4, 4)

    def test_3d_variants_construct(self):
        for factory in (advecting_pulse, sedov_blast, mhd_blast):
            p = factory(3)
            sim = p.build(adaptive=False)
            sim.run(n_steps=1)
            assert_finite(sim)


class TestOrszagTang:
    def test_initial_state_periodic_consistent(self):
        from repro.amr import orszag_tang

        p = orszag_tang()
        sim = p.build(adaptive=False)
        sim.fill_ghosts()
        # Periodic initial data: ghost exchange must be seamless (the
        # initializer itself is periodic on the unit square).
        for b in sim.forest:
            assert np.all(np.isfinite(b.data))

    def test_vortex_develops_structure(self):
        from repro.amr import orszag_tang
        from repro.amr.sampling import resample_uniform

        p = orszag_tang()
        sim = p.build(adaptive=False)
        rho0 = resample_uniform(sim.forest, 0, var=0)
        assert np.ptp(rho0) < 1e-12  # initially uniform density
        sim.run(t_end=0.1)
        rho1 = resample_uniform(sim.forest, 0, var=0)
        assert np.ptp(rho1) > 0.1 * rho1.mean()  # compressions formed
        assert_finite(sim)

    def test_mass_and_energy_conserved(self):
        from repro.amr import orszag_tang

        p = orszag_tang()
        sim = p.build(adaptive=False)
        m0, e0 = sim.total(0), sim.total(4)
        sim.run(n_steps=10)
        # Mass is exactly conserved (the Powell source has no density
        # component); energy only approximately — the 8-wave source term
        # trades strict conservation for divergence control by design.
        assert sim.total(0) == pytest.approx(m0, rel=1e-12)
        assert sim.total(4) == pytest.approx(e0, rel=1e-3)

    def test_point_symmetry(self):
        # The OT vortex is symmetric under 180-degree rotation about the
        # domain center: rho(x, y) == rho(1-x, 1-y).
        from repro.amr import orszag_tang
        from repro.amr.sampling import resample_uniform

        p = orszag_tang()
        sim = p.build(adaptive=False)
        sim.run(t_end=0.05)
        rho = resample_uniform(sim.forest, 0, var=0)
        np.testing.assert_allclose(rho, rho[::-1, ::-1], rtol=1e-8, atol=1e-10)


class TestAlfvenWave:
    def test_initial_condition_exact(self):
        from repro.amr import alfven_wave

        p = alfven_wave()
        sim = p.build(adaptive=False)
        assert sim.error_vs(p.exact(0.0), var=6) < 1e-12

    def test_mhd_second_order_convergence(self):
        """The circularly polarized Alfven wave is an exact nonlinear
        MHD solution: the full 8-wave solver must converge at design
        order on it."""
        from repro.amr import SimulationConfig, alfven_wave

        errs = []
        for m in (16, 32):
            cfg = SimulationConfig(
                domain=Box((0.0,), (1.0,)), n_root=(2,), m=(m,),
                periodic=(True,), limiter="mc", cfl=0.3,
            )
            p = alfven_wave(config=cfg)
            sim = p.build(adaptive=False)
            sim.run(t_end=0.25, dt_max=0.05 / m)
            errs.append(sim.error_vs(p.exact(sim.time), var=6))
        rate = np.log2(errs[0] / errs[1])
        assert rate > 1.7

    def test_wave_speed_is_alfvenic(self):
        # After t = 0.5 (half a period at vA = 1) By is inverted.
        from repro.amr import SimulationConfig, alfven_wave

        cfg = SimulationConfig(
            domain=Box((0.0,), (1.0,)), n_root=(2,), m=(32,),
            periodic=(True,), limiter="mc", cfl=0.3,
        )
        p = alfven_wave(config=cfg)
        sim = p.build(adaptive=False)
        sim.run(t_end=0.5)
        err_half = sim.error_vs(p.exact(0.5), var=6)
        err_zero = sim.error_vs(p.exact(0.0), var=6)
        assert err_half < 0.2 * err_zero  # phase matches t=0.5, not t=0

    def test_density_stays_uniform(self):
        from repro.amr import alfven_wave

        p = alfven_wave()
        sim = p.build(adaptive=False)
        sim.run(t_end=0.2)
        for b in sim.forest:
            np.testing.assert_allclose(b.interior[0], 1.0, rtol=5e-3)


class TestRayleighTaylor:
    def test_hydrostatic_balance_without_seed(self):
        """With zero seed amplitude the layered atmosphere must stay
        (numerically) static: the gravity source balances the pressure
        gradient to truncation error."""
        from repro.amr import rayleigh_taylor

        p = rayleigh_taylor(amplitude=0.0)
        sim = p.build(adaptive=False)
        sim.run(t_end=0.2)
        vmax = 0.0
        for b in sim.forest:
            w = p.scheme.cons_to_prim(b.interior)
            vmax = max(vmax, float(np.abs(w[1:3]).max()))
        assert vmax < 0.02  # far below the seeded-run velocities

    def test_instability_grows(self):
        from repro.amr import rayleigh_taylor

        # Strong drive (g=2, Atwood 0.5) so the e-folding fits a test.
        p = rayleigh_taylor(amplitude=0.01, gravity=2.0, rho_heavy=3.0)
        sim = p.build(initial_adapt_rounds=1)

        def max_uy():
            out = 0.0
            for b in sim.forest:
                w = p.scheme.cons_to_prim(b.interior)
                out = max(out, float(np.abs(w[2]).max()))
            return out

        v0 = max_uy()
        sim.run(t_end=1.2)
        assert_finite(sim)
        assert max_uy() > 10.0 * v0  # exponential buoyant growth

    def test_reflecting_walls_trap_mass(self):
        from repro.amr import rayleigh_taylor

        p = rayleigh_taylor()
        sim = p.build(adaptive=False)
        m0 = sim.total()
        sim.run(t_end=0.5)
        assert sim.total() == pytest.approx(m0, rel=1e-10)

    def test_mirror_symmetry(self):
        # The cosine seed is even in x: the solution stays x-mirror
        # symmetric about the domain center.
        from repro.amr import rayleigh_taylor
        from repro.amr.sampling import resample_uniform

        p = rayleigh_taylor()
        sim = p.build(adaptive=False)
        sim.run(t_end=0.6)
        rho = resample_uniform(sim.forest, 0, var=0)
        np.testing.assert_allclose(rho, rho[::-1, :], rtol=1e-7, atol=1e-9)

    def test_gravity_validation(self):
        from repro.solvers import EulerScheme

        with pytest.raises(ValueError):
            EulerScheme(2, gravity=(1.0,))
        # All-zero gravity is dropped (no source allocated).
        sch = EulerScheme(2, gravity=(0.0, 0.0))
        assert sch.gravity is None


class TestKelvinHelmholtz:
    def test_shear_layer_rolls_up(self):
        from repro.amr import kelvin_helmholtz
        from repro.amr.sampling import resample_uniform

        # KH needs resolution: 64^2 uniform (numerical diffusion kills
        # the mode on very coarse grids).  The seed radiates a sound
        # transient first, so growth is measured after t = 0.4.
        cfg = SimulationConfig(
            domain=Box((0.0, 0.0), (1.0, 1.0)), n_root=(8, 8), m=(8, 8),
            periodic=(True, True), max_level=1,
        )
        p = kelvin_helmholtz(amplitude=0.05, config=cfg)
        sim = p.build(adaptive=False)
        sim.run(t_end=0.4)
        uy0 = np.abs(resample_uniform(sim.forest, 0)[2]).max()
        sim.run(t_end=1.2)
        assert_finite(sim)
        uy1 = np.abs(resample_uniform(sim.forest, 0)[2]).max()
        assert uy1 > 1.8 * uy0  # the billows grew

    def test_mass_and_x_momentum_conserved(self):
        from repro.amr import kelvin_helmholtz

        p = kelvin_helmholtz()
        sim = p.build(adaptive=False)
        m0, px0 = sim.total(0), sim.total(1)
        sim.run(n_steps=10)
        assert sim.total(0) == pytest.approx(m0, rel=1e-12)
        assert sim.total(1) == pytest.approx(px0, abs=1e-12)

    def test_amr_tracks_the_interface(self):
        from repro.amr import kelvin_helmholtz

        p = kelvin_helmholtz()
        sim = p.build(initial_adapt_rounds=2)
        # Finest blocks hug the two shear interfaces (y = 0.25, 0.75).
        top = sim.forest.levels[1]
        assert top >= 2
        for b in sim.forest:
            if b.level == top:
                yc = b.box.center[1]
                assert min(abs(yc - 0.25), abs(yc - 0.75)) < 0.2


class TestMHDRotor:
    def test_rotor_stable_and_positive(self):
        from repro.amr import mhd_rotor

        p = mhd_rotor()
        sim = p.build(initial_adapt_rounds=2)
        sim.run(t_end=0.05)
        assert_finite(sim)
        for b in sim.forest:
            w = p.scheme.cons_to_prim(b.interior)
            assert w[0].min() > 0 and w[4].min() > 0

    def test_torsional_waves_launch(self):
        # The spinning disc twists the field: By (initially zero)
        # develops as Alfven waves carry angular momentum outward.
        from repro.amr import mhd_rotor
        from repro.amr.sampling import resample_uniform

        p = mhd_rotor()
        sim = p.build(adaptive=False)
        by0 = np.abs(resample_uniform(sim.forest, 0)[6]).max()
        assert by0 < 1e-12
        sim.run(t_end=0.05)
        by1 = np.abs(resample_uniform(sim.forest, 0)[6]).max()
        assert by1 > 0.05

    def test_rotational_antisymmetry(self):
        # Initial uy is odd under (x, y) -> (-x, -y); the dynamics keep
        # the point antisymmetry (Bx background is even).
        from repro.amr import mhd_rotor
        from repro.amr.sampling import resample_uniform

        p = mhd_rotor()
        sim = p.build(adaptive=False)
        sim.run(t_end=0.03)
        uy = resample_uniform(sim.forest, 0)[2]
        np.testing.assert_allclose(uy, -uy[::-1, ::-1], atol=1e-8)
