"""Tests for the cell-based tree baseline (repro.tree)."""

import numpy as np
import pytest

from repro.solvers import AdvectionScheme, EulerScheme
from repro.tree import (
    CellTree,
    find_neighbor,
    neighbor_leaves,
    traversal_statistics,
    tree_stable_dt,
    tree_step,
    tree_total,
)
from repro.util.geometry import Box


def tree2d(n_root=(2, 2), nvar=1, **kw):
    return CellTree(Box((0.0, 0.0), (1.0, 1.0)), n_root, nvar, **kw)


class TestStructure:
    def test_roots(self):
        t = tree2d((3, 2))
        assert t.n_leaves == 6
        assert t.n_nodes == 6

    def test_refine_keeps_parent(self):
        # The defining difference from adaptive blocks: the parent node
        # remains after subdivision (double representation).
        t = tree2d()
        root = t.roots[(0, 0)]
        kids = t.refine(root)
        assert len(kids) == 4
        assert not root.is_leaf
        assert t.n_nodes == 4 + 4  # roots + children
        assert t.n_leaves == 3 + 4

    def test_refine_non_leaf_rejected(self):
        t = tree2d()
        t.refine(t.roots[(0, 0)])
        with pytest.raises(ValueError):
            t.refine(t.roots[(0, 0)])

    def test_coarsen(self):
        t = tree2d()
        root = t.roots[(0, 0)]
        kids = t.refine(root)
        for i, k in enumerate(kids):
            k.data = np.array([float(i)])
        t.coarsen(root)
        assert root.is_leaf
        assert root.data[0] == pytest.approx(1.5)
        assert t.n_nodes == 4

    def test_coarsen_with_grandchildren_rejected(self):
        t = tree2d()
        root = t.roots[(0, 0)]
        kids = t.refine(root)
        t.refine(kids[0])
        with pytest.raises(ValueError):
            t.coarsen(root)

    def test_uniform_refinement_counts(self):
        t = tree2d((1, 1))
        t.refine_uniformly(3)
        assert t.n_leaves == 64
        # Interior nodes: 1 + 4 + 16 = 21 extra representations.
        assert t.n_nodes == 64 + 21
        assert t.depth() == 3

    def test_refine_where(self):
        t = tree2d((2, 2))
        t.refine_where(
            lambda n: n.level < 2 and t.cell_box(n).contains((0.1, 0.1))
        )
        assert t.depth() == 2

    def test_geometry(self):
        t = tree2d()
        root = t.roots[(1, 0)]
        box = t.cell_box(root)
        assert box.lo == (0.5, 0.0) and box.hi == (1.0, 0.5)
        kid = t.refine(root)[0]
        assert t.cell_widths(kid) == (0.25, 0.25)

    def test_storage_pointers_exceed_block_equivalent(self):
        # Per-cell pointer overhead: one parent + 2^d children per node.
        t = tree2d((1, 1))
        t.refine_uniformly(3)
        assert t.storage_pointers() > t.n_leaves


class TestTraversal:
    def test_same_level_sibling(self):
        t = tree2d((1, 1))
        t.refine_uniformly(1)
        n00 = t.roots[(0, 0)].children[0]
        res = find_neighbor(t, n00, 1)  # +x
        assert res.node is t.roots[(0, 0)].children[1]
        assert res.hops >= 2  # up to parent, down to sibling

    def test_across_subtree_boundary_costs_more_hops(self):
        t = tree2d((1, 1))
        t.refine_uniformly(2)
        # Cell (1,0) at level 2: +x neighbor (2,0) lives in the adjacent
        # level-1 subtree -> longer up-down path than a sibling query.
        quad = t.roots[(0, 0)].children[0]  # level-1 (0,0)
        cell = quad.children[1]  # level-2 (1,0)
        res = find_neighbor(t, cell, 1)
        assert res.node.coords == (2, 0)
        sib = find_neighbor(t, quad.children[0], 1)
        assert res.hops > sib.hops

    def test_domain_boundary(self):
        t = tree2d()
        res = find_neighbor(t, t.roots[(0, 0)], 0)
        assert res.node is None

    def test_coarser_neighbor(self):
        t = tree2d()
        kids = t.refine(t.roots[(0, 0)])
        # Child (1,*) of root (0,0): +x neighbor is the unrefined root (1,0).
        res = find_neighbor(t, kids[1], 1)
        assert res.node is t.roots[(1, 0)]

    def test_finer_neighbors_collected(self):
        t = tree2d()
        t.refine(t.roots[(0, 0)])
        leaves, hops = neighbor_leaves(t, t.roots[(1, 0)], 0)
        assert len(leaves) == 2
        assert all(lf.level == 1 for lf in leaves)
        assert hops > 0

    def test_hops_grow_with_depth(self):
        stats = []
        for depth in (1, 2, 3):
            t = tree2d((1, 1))
            t.refine_uniformly(depth)
            stats.append(traversal_statistics(t))
        assert stats[0]["mean_hops"] < stats[1]["mean_hops"] < stats[2]["mean_hops"]

    def test_3d_traversal(self):
        t = CellTree(Box((0.0,) * 3, (1.0,) * 3), (2, 2, 2), 1)
        t.refine_uniformly(1)
        stats = traversal_statistics(t)
        assert stats["queries"] == 64 * 6
        assert stats["max_hops"] >= 2


class TestTreeSolver:
    def test_constant_state_fixed_point(self):
        t = tree2d((2, 2), nvar=1)
        t.refine_uniformly(2)
        t.set_state(lambda c: np.array([2.5]))
        sch = AdvectionScheme((1.0, 0.0), order=1)
        tree_step(t, sch, 0.01)
        for leaf in t.leaves():
            assert leaf.data[0] == pytest.approx(2.5)

    def test_conservation_interior(self):
        # With outflow boundaries and zero velocity at the edges the
        # total is conserved; use a pulse far from the boundary.
        t = tree2d((1, 1), nvar=1)
        t.refine_uniformly(4)  # 16x16 cells
        t.set_state(
            lambda c: np.array(
                [1.0 if abs(c[0] - 0.5) < 0.2 and abs(c[1] - 0.5) < 0.2 else 0.0]
            )
        )
        sch = AdvectionScheme((1.0, 0.5), order=1)
        total0 = tree_total(t)
        for _ in range(3):
            dt = tree_stable_dt(t, sch)
            tree_step(t, sch, dt)
        assert tree_total(t) == pytest.approx(total0, rel=1e-12)

    def test_advects_in_right_direction(self):
        t = tree2d((1, 1), nvar=1)
        t.refine_uniformly(4)
        t.set_state(lambda c: np.array([np.exp(-80 * (c[0] - 0.3) ** 2)]))
        sch = AdvectionScheme((1.0, 0.0), order=1)
        def centroid():
            num = den = 0.0
            for leaf in t.leaves():
                c = t.cell_center(leaf)
                num += c[0] * leaf.data[0]
                den += leaf.data[0]
            return num / den
        x0 = centroid()
        for _ in range(8):
            tree_step(t, sch, tree_stable_dt(t, sch))
        assert centroid() > x0

    def test_matches_block_solver_on_uniform_grid(self):
        """Integration oracle: the tree solver and the block scheme give
        identical first-order updates on a uniform grid."""
        n = 8
        sch = EulerScheme(2, order=1, riemann="rusanov")
        rng = np.random.default_rng(5)
        w = np.empty((4, n, n))
        w[0] = rng.random((n, n)) + 0.5
        w[1] = rng.standard_normal((n, n)) * 0.1
        w[2] = rng.standard_normal((n, n)) * 0.1
        w[3] = rng.random((n, n)) + 0.5
        u0 = sch.prim_to_cons(w)

        # Block path: one padded array with outflow ghosts.
        g = 1
        u = np.zeros((4, n + 2, n + 2))
        u[:, g:-g, g:-g] = u0
        u[:, 0, g:-g] = u0[:, 0]
        u[:, -1, g:-g] = u0[:, -1]
        u[:, g:-g, 0] = u0[:, :, 0]
        u[:, g:-g, -1] = u0[:, :, -1]
        u[:, 0, 0] = u0[:, 0, 0]
        u[:, 0, -1] = u0[:, 0, -1]
        u[:, -1, 0] = u0[:, -1, 0]
        u[:, -1, -1] = u0[:, -1, -1]
        dt = 1e-3
        sch.step(u, (1.0 / n, 1.0 / n), dt, g)

        # Tree path: a uniform depth-3 tree over the same domain.
        t = tree2d((1, 1), nvar=4)
        t.refine_uniformly(3)
        for leaf in t.leaves():
            i, j = leaf.coords
            leaf.data = u0[:, i, j].copy()
        tree_step(t, sch, dt)
        for leaf in t.leaves():
            i, j = leaf.coords
            np.testing.assert_allclose(
                leaf.data, u[:, g + i, g + j], rtol=1e-10, atol=1e-12
            )
