"""Tests for the text visualization helpers (repro.amr.visualize)."""

import numpy as np
import pytest

from repro.amr.visualize import RAMP, render_blocks, render_field, render_line
from repro.core import BlockForest, BlockID
from repro.util.geometry import Box


def make_forest(ndim=2):
    f = BlockForest(
        Box((0.0,) * ndim, (1.0,) * ndim), (2,) * ndim, (4,) * ndim,
        nvar=1, n_ghost=2,
    )
    f.adapt([BlockID(0, (0,) * ndim)])
    for b in f:
        grids = b.meshgrid()
        b.interior[0] = grids[0]
    return f


class TestRenderField:
    def test_shape_and_footer(self):
        out = render_field(make_forest(), width=20, height=10)
        lines = out.splitlines()
        assert len(lines) == 11
        assert all(len(l) == 20 for l in lines[:10])
        assert "var 0" in lines[-1]

    def test_gradient_direction(self):
        # Field is x: left column darkest, right brightest.
        out = render_field(make_forest(), width=20, height=10)
        top = out.splitlines()[0]
        assert RAMP.index(top[0]) < RAMP.index(top[-1])

    def test_constant_field(self):
        f = make_forest()
        for b in f:
            b.interior[0] = 5.0
        out = render_field(f, width=10, height=5)
        assert "5" in out  # range footer shows the value

    def test_3d_takes_slice(self):
        f = make_forest(ndim=3)
        out = render_field(f, width=12, height=6)
        assert len(out.splitlines()) == 7

    def test_1d_rejected(self):
        f = BlockForest(Box((0.0,), (1.0,)), (2,), (4,), nvar=1)
        with pytest.raises(ValueError):
            render_field(f)

    def test_fixed_range(self):
        out = render_field(make_forest(), width=10, height=5, vmin=0.0, vmax=10.0)
        # All values < 1 -> all in the darkest tenth of the ramp.
        for line in out.splitlines()[:5]:
            assert set(line) <= set(RAMP[:2])


class TestRenderBlocks:
    def test_levels_shown(self):
        out = render_blocks(make_forest(), width=16, height=8)
        body = "".join(out.splitlines()[:8])
        assert "0" in body and "1" in body
        assert "levels:" in out

    def test_refined_corner_is_level_1(self):
        out = render_blocks(make_forest(), width=16, height=16)
        rows = out.splitlines()[:16]
        # (x small, y small) corner is the refined block -> bottom-left.
        assert rows[-1][0] == "1"
        assert rows[0][-1] == "0"

    def test_1d_forest(self):
        f = BlockForest(Box((0.0,), (1.0,)), (2,), (4,), nvar=1)
        f.adapt([BlockID(0, (0,))])
        out = render_blocks(f)
        assert "1" in out and "0" in out


class TestRenderLine:
    def test_profile_shape(self):
        out = render_line(make_forest(), n=32, height=8)
        lines = out.splitlines()
        assert len(lines) == 10  # 8 rows + separator + footer
        assert all(len(l) == 32 for l in lines[:8])

    def test_monotone_field_monotone_profile(self):
        out = render_line(make_forest(), axis=0, n=32, height=8)
        bottom = out.splitlines()[7]  # lowest bar row
        # The x-field rises: right side filled, left side empty at top row.
        top = out.splitlines()[0]
        assert top.strip() != ""
        assert top[:4].strip() == ""
