"""Tests for the simulated parallel machine and partitioning."""

import numpy as np
import pytest

from repro.core import BlockForest, BlockID
from repro.parallel import (
    CRAY_T3D,
    MachineSpec,
    MessageSchedule,
    ParallelCostConfig,
    ParallelSimulation,
    VirtualMachine,
    build_schedule,
    fixed_size_speedup,
    gflops,
    migration_plan,
    partition_cut_fraction,
    partition_imbalance,
    rebalance,
    round_robin_partition,
    scaled_efficiency,
    sfc_partition,
)
from repro.util.geometry import Box


def forest2d(n_root=(4, 4), m=(4, 4), **kw):
    return BlockForest(Box((0.0, 0.0), (1.0, 1.0)), n_root, m, nvar=1, **kw)


class TestVirtualMachine:
    def test_compute_charges_one_rank(self):
        vm = VirtualMachine(4)
        vm.compute(1, 0.5)
        t = vm.finish_step()
        assert t == pytest.approx(0.5 + vm.spec.barrier_time(4))
        assert np.all(vm.clock == vm.clock[0])  # barrier synchronized

    def test_message_charges_both_endpoints(self):
        vm = VirtualMachine(2, MachineSpec("t", 1e-8, 1e-5, 1e-8, 0, 0))
        vm.message(0, 1, 1000)
        expect = 1e-5 + 1000 * 1e-8
        assert vm.clock[0] == pytest.approx(expect)
        assert vm.clock[1] == pytest.approx(expect)

    def test_local_message_free(self):
        vm = VirtualMachine(2)
        vm.message(0, 0, 10**6)
        assert vm.clock[0] == 0.0

    def test_step_time_is_slowest_rank(self):
        vm = VirtualMachine(3, MachineSpec("t", 1e-8, 0, 0, 0, 0))
        vm.compute(0, 0.1)
        vm.compute(1, 0.3)
        assert vm.finish_step() == pytest.approx(0.3)
        assert vm.totals["wait"] == pytest.approx(0.3 + 0.2 + 0.0)

    def test_bad_rank(self):
        vm = VirtualMachine(2)
        with pytest.raises(IndexError):
            vm.compute(2, 1.0)
        with pytest.raises(ValueError):
            VirtualMachine(0)

    def test_barrier_grows_with_log_p(self):
        assert CRAY_T3D.barrier_time(512) > CRAY_T3D.barrier_time(2)
        assert CRAY_T3D.barrier_time(1) == 0.0


class TestPartition:
    def test_sfc_all_blocks_assigned(self):
        f = forest2d()
        a = sfc_partition(f, 4)
        assert set(a) == set(f.blocks)
        assert set(a.values()) == {0, 1, 2, 3}

    def test_sfc_balanced_for_uniform_forest(self):
        f = forest2d()
        a = sfc_partition(f, 4)
        assert partition_imbalance(f, a, 4) == pytest.approx(1.0)

    def test_sfc_contiguous_along_curve(self):
        f = forest2d()
        a = sfc_partition(f, 4)
        ranks = [a[b] for b in f.sorted_ids()]
        assert ranks == sorted(ranks)

    def test_sfc_better_locality_than_round_robin(self):
        f = forest2d((8, 8))
        sfc = sfc_partition(f, 8)
        rr = round_robin_partition(f, 8)
        assert partition_cut_fraction(f, sfc) < partition_cut_fraction(f, rr)

    def test_single_rank_no_cut(self):
        f = forest2d()
        a = sfc_partition(f, 1)
        assert partition_cut_fraction(f, a) == 0.0

    def test_weighted_partition(self):
        f = forest2d((4, 1), m=(4, 4))
        ids = f.sorted_ids()
        weights = {b: (10.0 if i == 0 else 1.0) for i, b in enumerate(ids)}
        a = sfc_partition(f, 2, weights=weights)
        # The heavy block gets its own rank side; imbalance stays modest
        # compared with an unweighted split.
        unweighted = sfc_partition(f, 2)
        imb_w = partition_imbalance(f, a, 2, weights=weights)
        imb_u = partition_imbalance(f, unweighted, 2, weights=weights)
        assert imb_w <= imb_u

    def test_adapted_forest_imbalance_bounded(self):
        f = forest2d()
        f.adapt([BlockID(0, (0, 0))])
        a = sfc_partition(f, 3)
        assert partition_imbalance(f, a, 3) < 2.0

    def test_empty_forest_rejected_with_clear_error(self):
        f = forest2d()
        f.blocks.clear()
        with pytest.raises(ValueError, match="empty forest"):
            sfc_partition(f, 4)

    def test_all_zero_weights_fall_back_to_uniform(self):
        f = forest2d()
        zero = {b: 0.0 for b in f.blocks}
        a = sfc_partition(f, 4, weights=zero)
        assert a == sfc_partition(f, 4)

    def test_more_ranks_than_blocks(self):
        f = forest2d((2, 1))
        a = sfc_partition(f, 4)
        assert set(a) == set(f.blocks)
        # Some ranks own nothing; the metrics must still be finite.
        assert len(set(a.values())) == 2
        imb = partition_imbalance(f, a, 4)
        assert np.isfinite(imb) and imb == pytest.approx(2.0)
        assert partition_cut_fraction(f, a) <= 1.0


class TestSchedule:
    def test_single_rank_all_local(self):
        f = forest2d()
        s = build_schedule(f, sfc_partition(f, 1))
        assert s.n_messages == 0
        assert s.local_transfers == s.total_transfers > 0

    def test_aggregation_reduces_messages(self):
        f = forest2d((8, 8))
        a = sfc_partition(f, 8)
        agg = build_schedule(f, a, aggregate=True)
        per = build_schedule(f, a, aggregate=False)
        assert agg.total_bytes == per.total_bytes
        assert agg.n_messages < per.n_messages
        assert agg.n_messages == len(agg.pair_bytes)

    def test_messages_iterator_conserves_bytes(self):
        f = forest2d((8, 8))
        a = sfc_partition(f, 8)
        for aggregate in (True, False):
            s = build_schedule(f, a, aggregate=aggregate)
            msgs = list(s.messages())
            assert len(msgs) == s.n_messages
            assert sum(b for _, _, b in msgs) == s.total_bytes

    def test_nvar_scales_bytes(self):
        f = forest2d((4, 4))
        a = sfc_partition(f, 4)
        s1 = build_schedule(f, a, nvar=1)
        s8 = build_schedule(f, a, nvar=8)
        assert s8.total_bytes == 8 * s1.total_bytes

    def test_faces_only_less_traffic(self):
        f = forest2d((4, 4))
        a = sfc_partition(f, 4)
        full = build_schedule(f, a, fill_corners=True)
        faces = build_schedule(f, a, fill_corners=False)
        assert faces.total_bytes < full.total_bytes


class TestRebalance:
    def test_migration_plan_after_refinement(self):
        f = forest2d()
        old = sfc_partition(f, 4)
        f.adapt([BlockID(0, (0, 0))])
        new = rebalance(f, 4)
        moves = migration_plan(old, new)
        # Moves only include blocks present in both assignments.
        for bid, src, dst in moves:
            assert old[bid] == src and new[bid] == dst and src != dst

    def test_rebalance_restores_balance(self):
        f = forest2d((2, 2))
        f.adapt(list(f.blocks))  # uniform refine: 16 blocks
        a = rebalance(f, 4)
        assert partition_imbalance(f, a, 4) == pytest.approx(1.0)


class TestParallelSimulation:
    def test_step_time_positive_and_reported(self):
        f = forest2d()
        sim = ParallelSimulation(f, 4)
        rep = sim.run(3)
        assert rep.time_per_step > 0
        assert rep.n_steps == 3
        assert 0 < rep.parallel_utilization <= 1

    def test_more_ranks_same_forest_is_faster(self):
        times = {}
        for p in (1, 4, 16):
            f = forest2d((8, 8))
            sim = ParallelSimulation(f, p)
            times[p] = sim.run(3).time_per_step
        assert times[16] < times[4] < times[1]

    def test_scaled_efficiency_high(self):
        """Fig 6 sanity: constant work/PE keeps efficiency near 1."""
        times = {}
        for p, n in ((1, (2, 2)), (4, (4, 4)), (16, (8, 8))):
            f = forest2d(n, m=(8, 8))
            sim = ParallelSimulation(f, p)
            times[p] = sim.run(3).time_per_step
        eff = scaled_efficiency(times)
        assert eff[1] == 1.0
        assert eff[16] > 0.75

    def test_fixed_speedup_monotone(self):
        """Fig 7 sanity: fixed problem speeds up with more PEs."""
        times = {}
        for p in (4, 8, 16):
            f = forest2d((8, 8), m=(8, 8))
            sim = ParallelSimulation(f, p)
            times[p] = sim.run(3).time_per_step
        sp = fixed_size_speedup(times, base=4)
        assert sp[4] == 1.0
        assert 1.0 < sp[8] <= 2.1
        assert sp[16] > sp[8]

    def test_adapt_charges_time_and_updates_assignment(self):
        f = forest2d()
        sim = ParallelSimulation(f, 4)
        t = sim.adapt(refine=[BlockID(0, (0, 0))])
        assert t > 0
        assert set(sim.assignment) == set(f.blocks)

    def test_imbalanced_assignment_slows_step(self):
        f = forest2d((4, 4))
        sim = ParallelSimulation(f, 4)
        t_balanced = sim.run(1).time_per_step
        # Pile everything onto rank 0.
        sim.assignment = {bid: 0 for bid in f.blocks}
        sim.invalidate()
        t_imbalanced = sim.run(1).time_per_step
        assert t_imbalanced > 2.0 * t_balanced

    def test_total_flops(self):
        f = forest2d()
        sim = ParallelSimulation(f, 2)
        expect = f.n_cells * sim.cost.flops_per_cell_per_step * 5
        assert sim.total_flops(5) == pytest.approx(expect)


class TestMetrics:
    def test_scaled_efficiency_requires_base(self):
        with pytest.raises(ValueError):
            scaled_efficiency({2: 1.0}, base=1)

    def test_fixed_speedup_values(self):
        sp = fixed_size_speedup({64: 8.0, 128: 4.0, 256: 2.5}, base=64)
        assert sp[64] == 1.0
        assert sp[128] == pytest.approx(2.0)
        assert sp[256] == pytest.approx(3.2)

    def test_gflops(self):
        assert gflops(17e9, 1.0) == pytest.approx(17.0)
        assert gflops(1.0, 0.0) == 0.0


class TestTorusTopology:
    def test_shape_factorization(self):
        from repro.parallel import TorusTopology

        assert TorusTopology(512).shape == (8, 8, 8)
        assert TorusTopology(64).shape == (4, 4, 4)
        assert TorusTopology(2).shape == (2, 1, 1)
        dx, dy, dz = TorusTopology(100).shape
        assert dx * dy * dz == 100

    def test_coords_bijective(self):
        from repro.parallel import TorusTopology

        t = TorusTopology(24)
        seen = {t.coords(r) for r in range(24)}
        assert len(seen) == 24

    def test_hops_metric_properties(self):
        from repro.parallel import TorusTopology

        t = TorusTopology(64)
        for a, b in ((0, 0), (3, 17), (5, 63)):
            assert t.hops(a, b) == t.hops(b, a)  # symmetric
        assert t.hops(7, 7) == 0
        # Wraparound: opposite corners are close on a torus.
        far = max(t.hops(0, r) for r in range(64))
        assert far <= 3 * 2  # at most extent/2 per dimension

    def test_route_time_scales_with_hops(self):
        from repro.parallel import TorusTopology

        t = TorusTopology(64, hop_time=1e-6)
        assert t.route_time(0, 1) == pytest.approx(1e-6)
        assert t.route_time(0, 0) == 0.0

    def test_topology_slows_remote_messages(self):
        from repro.parallel import TorusTopology, VirtualMachine

        spec = MachineSpec("t", 1e-8, 1e-6, 1e-8, 0.0, 0.0)
        plain = VirtualMachine(64, spec)
        routed = VirtualMachine(64, spec, topology=TorusTopology(64, hop_time=1e-5))
        plain.message(0, 63, 100)
        routed.message(0, 63, 100)
        assert routed.clock[0] > plain.clock[0]

    def test_invalid_rank_count(self):
        from repro.parallel import TorusTopology

        with pytest.raises(ValueError):
            TorusTopology(0)
