"""Tests for the distributed-memory emulation (repro.parallel.emulator).

The headline oracle: an emulated multi-rank run — where ghost data moves
only through explicit messages — reproduces the serial driver
bit-for-bit.  This validates that the transfer geometry (and therefore
the cost model's message schedules) carries everything the algorithm
needs.
"""

import numpy as np
import pytest

from repro.amr import Simulation, advecting_pulse
from repro.amr.boundary import OutflowBC
from repro.core import BlockForest, BlockID
from repro.parallel import build_schedule, sfc_partition
from repro.parallel.emulator import EmulatedMachine
from repro.solvers import AdvectionScheme, EulerScheme
from repro.util.geometry import Box


def make_amr_forest(nvar, periodic=(True, True)):
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=nvar,
        n_ghost=2, periodic=periodic, max_level=3,
    )
    f.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
    f.adapt([BlockID(1, (1, 1))])
    return f


def init_pulse(forest, scheme):
    for b in forest:
        X, Y = b.meshgrid()
        if scheme.nvar == 1:
            b.interior[0] = np.exp(-50 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2))
        else:
            w = np.stack(
                [
                    1.0 + 0.3 * np.exp(-50 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2)),
                    0.4 * np.ones_like(X),
                    -0.2 * np.ones_like(X),
                    np.ones_like(X),
                ]
            )
            b.interior[...] = scheme.prim_to_cons(w)


@pytest.mark.parametrize("n_ranks", [1, 3, 7])
def test_emulated_matches_serial_bitwise_advection(n_ranks):
    scheme = AdvectionScheme((1.0, 0.5), order=2)
    # Serial reference.
    forest_ref = make_amr_forest(1)
    init_pulse(forest_ref, scheme)
    sim = Simulation(forest_ref, scheme)
    # Emulated machine from an identical forest.
    forest_emu = make_amr_forest(1)
    init_pulse(forest_emu, scheme)
    emu = EmulatedMachine(forest_emu, n_ranks, scheme)

    dt = 1e-3
    for _ in range(5):
        sim.advance(dt)
        emu.advance(dt)
    gathered = emu.gather()
    assert set(gathered) == set(forest_ref.blocks)
    for bid, block in forest_ref.blocks.items():
        np.testing.assert_array_equal(gathered[bid], block.interior)


def test_emulated_matches_serial_euler_with_bc():
    scheme = EulerScheme(2, order=2, limiter="mc")
    forest_ref = make_amr_forest(4, periodic=(False, False))
    init_pulse(forest_ref, scheme)
    sim = Simulation(forest_ref, scheme, bc=OutflowBC())
    forest_emu = make_amr_forest(4, periodic=(False, False))
    init_pulse(forest_emu, scheme)
    emu = EmulatedMachine(forest_emu, 4, scheme, bc=OutflowBC())
    dt = 5e-4
    for _ in range(4):
        sim.advance(dt)
        emu.advance(dt)
    gathered = emu.gather()
    for bid, block in forest_ref.blocks.items():
        np.testing.assert_array_equal(gathered[bid], block.interior)


class TestIsolation:
    def test_template_forest_not_modified(self):
        scheme = AdvectionScheme((1.0, 0.0))
        forest = make_amr_forest(1)
        init_pulse(forest, scheme)
        snap = {bid: b.data.copy() for bid, b in forest.blocks.items()}
        emu = EmulatedMachine(forest, 3, scheme)
        emu.advance(1e-3)
        for bid, b in forest.blocks.items():
            np.testing.assert_array_equal(b.data, snap[bid])

    def test_every_block_owned_exactly_once(self):
        scheme = AdvectionScheme((1.0, 0.0))
        forest = make_amr_forest(1)
        emu = EmulatedMachine(forest, 5, scheme)
        seen = []
        for rank in range(5):
            seen.extend(emu.rank_blocks[rank])
        assert sorted(seen) == sorted(forest.blocks)

    def test_rank_cells_sum_to_total(self):
        scheme = AdvectionScheme((1.0, 0.0))
        forest = make_amr_forest(1)
        emu = EmulatedMachine(forest, 4, scheme)
        assert sum(emu.rank_cells()) == forest.n_cells


class TestAccounting:
    def test_single_rank_sends_nothing(self):
        scheme = AdvectionScheme((1.0, 0.0))
        forest = make_amr_forest(1)
        init_pulse(forest, scheme)
        emu = EmulatedMachine(forest, 1, scheme)
        emu.exchange()
        assert emu.stats.n_messages == 0
        assert emu.stats.n_local > 0

    def test_message_count_matches_schedule(self):
        """Emulated per-transfer wire messages equal the cost model's
        per-transfer schedule count — the cross-validation that the
        simulated Figures 6-7 charge for the real traffic."""
        scheme = AdvectionScheme((1.0, 0.0))
        forest = make_amr_forest(1)
        init_pulse(forest, scheme)
        assignment = sfc_partition(forest, 4)
        emu = EmulatedMachine(forest, 4, scheme, assignment=assignment)
        emu.exchange()
        sched = build_schedule(forest, assignment, nvar=1, aggregate=False)
        assert emu.stats.n_messages == sched.n_messages

    def test_bytes_scale_with_rank_count(self):
        scheme = AdvectionScheme((1.0, 0.0))
        stats = {}
        for p in (2, 8):
            forest = make_amr_forest(1)
            init_pulse(forest, scheme)
            emu = EmulatedMachine(forest, p, scheme)
            emu.exchange()
            stats[p] = emu.stats.n_bytes
        assert stats[8] > stats[2]  # more ranks -> more remote faces
