"""Tests for coarse–fine flux correction (repro.core.reflux)."""

import numpy as np
import pytest

from repro.amr import Simulation, advecting_pulse
from repro.amr.driver import Simulation as Sim
from repro.core import BlockForest, BlockID, FluxRegister
from repro.solvers import AdvectionScheme, EulerScheme
from repro.util.geometry import Box


def amr_forest(nvar=1, periodic=(True, True), m=(8, 8)):
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (2, 2), m, nvar=nvar,
        n_ghost=2, periodic=periodic, max_level=3,
    )
    f.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
    f.adapt([BlockID(1, (1, 1)), BlockID(1, (0, 1))])
    return f


class TestFluxRegister:
    def test_interfaces_found(self):
        f = amr_forest()
        reg = FluxRegister(f)
        assert reg.n_interfaces > 0
        # Every interface's coarse side lists fine neighbors one level up.
        for (cid, face), fine_ids in reg.interfaces.items():
            for nid in fine_ids:
                assert nid.level == cid.level + 1

    def test_uniform_forest_has_no_interfaces(self):
        f = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=1, n_ghost=2
        )
        assert FluxRegister(f).n_interfaces == 0

    def test_jump2_rejected(self):
        f = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=1,
            n_ghost=2, max_level_jump=2,
        )
        with pytest.raises(ValueError):
            FluxRegister(f)

    def test_stale_register_rejected(self):
        f = amr_forest()
        reg = FluxRegister(f)
        f.adapt([next(iter(f.blocks))])
        with pytest.raises(RuntimeError):
            reg.apply(0.1)

    def test_missing_flux_rejected(self):
        f = amr_forest()
        reg = FluxRegister(f)
        reg.start_step()
        with pytest.raises(RuntimeError, match="no recorded flux"):
            reg.apply(0.1)

    def test_needed_faces_cover_both_sides(self):
        f = amr_forest()
        reg = FluxRegister(f)
        for (cid, face), fine_ids in reg.interfaces.items():
            assert face in reg.needed_faces[cid]
            for nid in fine_ids:
                assert (face ^ 1) in reg.needed_faces[nid]


def run_conservation(scheme_factory, init, reflux, steps=15):
    f = amr_forest(nvar=scheme_factory().nvar)
    scheme = scheme_factory()
    for b in f:
        X, Y = b.meshgrid()
        b.interior[...] = scheme.prim_to_cons(init(X, Y))
    sim = Sim(f, scheme, reflux=reflux)
    m0 = sim.total()
    sim.run(n_steps=steps)
    return abs(sim.total() - m0) / abs(m0)


class TestConservation:
    def test_advection_reflux_exact(self):
        def init(X, Y):
            return np.exp(-60 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2))[np.newaxis]

        drift_off = run_conservation(lambda: AdvectionScheme((1.0, 0.5)), init, False)
        drift_on = run_conservation(lambda: AdvectionScheme((1.0, 0.5)), init, True)
        assert drift_off > 1e-6      # interface error is real
        assert drift_on < 1e-13      # and refluxing removes it

    def test_euler_mass_reflux_exact(self):
        def init(X, Y):
            return np.stack(
                [
                    1.0 + 0.3 * np.exp(-60 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2)),
                    0.4 * np.ones_like(X),
                    0.2 * np.ones_like(X),
                    np.ones_like(X),
                ]
            )

        drift_on = run_conservation(lambda: EulerScheme(2, order=2), init, True)
        assert drift_on < 1e-12

    def test_first_order_scheme_reflux(self):
        def init(X, Y):
            return np.exp(-60 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2))[np.newaxis]

        drift_on = run_conservation(
            lambda: AdvectionScheme((1.0, 0.0), order=1), init, True
        )
        assert drift_on < 1e-13

    def test_constant_state_unchanged_by_reflux(self):
        f = amr_forest()
        scheme = AdvectionScheme((1.0, 1.0))
        for b in f:
            b.interior[...] = 2.5
        sim = Sim(f, scheme, reflux=True)
        sim.run(n_steps=3)
        for b in f:
            np.testing.assert_allclose(b.interior, 2.5, rtol=1e-13)

    def test_reflux_solution_still_accurate(self):
        # Refluxing must not degrade accuracy: error with reflux stays
        # within a hair of the error without.
        p = advecting_pulse(2)
        errs = {}
        for reflux in (False, True):
            q = advecting_pulse(2)
            sim = q.build()
            sim.reflux = reflux
            sim.run(t_end=0.1)
            errs[reflux] = sim.error_vs(q.exact(sim.time))
        assert errs[True] < 1.5 * errs[False] + 1e-6

    def test_register_rebuilt_after_adapt(self):
        p = advecting_pulse(2)
        sim = p.build()
        sim.reflux = True
        sim.run(n_steps=6)  # includes adaptation steps
        # If the register were stale this would have raised; sanity:
        assert sim._register is not None
        assert sim._register.revision == sim.forest.revision
