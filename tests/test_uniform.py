"""Tests for the uniform-grid reference solver (repro.solvers.uniform)."""

import numpy as np
import pytest

from repro.amr import Simulation
from repro.amr.sampling import resample_uniform
from repro.core import BlockForest
from repro.solvers import AdvectionScheme, EulerScheme
from repro.solvers.uniform import UniformGrid
from repro.util.geometry import Box


class TestConstruction:
    def test_bad_boundary(self):
        with pytest.raises(ValueError):
            UniformGrid(
                AdvectionScheme((1.0,)), Box((0.0,), (1.0,)), (16,),
                boundary="reflecting",
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            UniformGrid(AdvectionScheme((1.0,)), Box((0.0,), (1.0,)), (16, 16))

    def test_ghost_width_matches_scheme(self):
        g1 = UniformGrid(
            AdvectionScheme((1.0,), order=1), Box((0.0,), (1.0,)), (8,)
        )
        g2 = UniformGrid(
            AdvectionScheme((1.0,), order=2), Box((0.0,), (1.0,)), (8,)
        )
        assert g1.u.shape == (1, 10)
        assert g2.u.shape == (1, 12)


class TestPhysics:
    def test_periodic_translation(self):
        grid = UniformGrid(
            AdvectionScheme((1.0,), order=2, limiter="mc", cfl=0.4),
            Box((0.0,), (1.0,)),
            (128,),
        )
        grid.set_primitive(lambda x: np.sin(2 * np.pi * x)[np.newaxis])
        grid.run(1.0)
        (x,) = grid.meshgrid()
        assert grid.error_vs(lambda x: np.sin(2 * np.pi * x)) < 5e-3

    def test_mass_conserved(self):
        grid = UniformGrid(
            EulerScheme(1, order=2), Box((0.0,), (1.0,)), (64,)
        )
        grid.set_primitive(
            lambda x: np.stack(
                [1.0 + 0.2 * np.sin(2 * np.pi * x), 0.5 * np.ones_like(x),
                 np.ones_like(x)]
            )
        )
        m0 = grid.total()
        grid.run(0.2)
        assert grid.total() == pytest.approx(m0, rel=1e-12)

    def test_outflow_lets_pulse_leave(self):
        grid = UniformGrid(
            AdvectionScheme((1.0,), order=2),
            Box((0.0,), (1.0,)),
            (64,),
            boundary="outflow",
        )
        grid.set_primitive(
            lambda x: np.exp(-200 * (x - 0.8) ** 2)[np.newaxis]
        )
        m0 = grid.total()
        grid.run(0.5)
        assert grid.total() < 0.05 * m0  # the pulse exited the domain

    def test_matches_single_block_forest(self):
        """Oracle: UniformGrid equals a one-block periodic forest."""
        scheme = EulerScheme(2, order=2, limiter="mc")
        init = lambda X, Y: np.stack(
            [
                1.0 + 0.2 * np.sin(2 * np.pi * X) * np.cos(2 * np.pi * Y),
                0.3 * np.ones_like(X),
                -0.1 * np.ones_like(X),
                np.ones_like(X),
            ]
        )
        grid = UniformGrid(scheme, Box((0.0, 0.0), (1.0, 1.0)), (16, 16))
        grid.set_primitive(init)

        forest = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (1, 1), (16, 16),
            nvar=4, n_ghost=2, periodic=(True, True),
        )
        for b in forest:
            X, Y = b.meshgrid()
            b.interior[...] = scheme.prim_to_cons(init(X, Y))
        sim = Simulation(forest, scheme)
        dt = 1e-3
        for _ in range(5):
            grid.advance(dt)
            sim.advance(dt)
        np.testing.assert_allclose(
            grid.interior, resample_uniform(forest, 0),
            rtol=1e-13, atol=1e-14,
        )

    def test_step_counting(self):
        grid = UniformGrid(
            AdvectionScheme((1.0,)), Box((0.0,), (1.0,)), (32,)
        )
        grid.set_primitive(lambda x: np.ones_like(x)[np.newaxis])
        grid.run(0.05)
        assert grid.step_count > 0
        assert grid.time == pytest.approx(0.05)
