"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "pulse", "--steps", "5"])
        assert args.problem == "pulse"
        assert args.ndim == 2
        assert not args.no_adapt

    def test_unknown_problem_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "warp_drive", "--steps", "1"])


class TestRun:
    def test_run_needs_target(self, capsys):
        assert main(["run", "pulse"]) == 2
        assert "give --steps" in capsys.readouterr().err

    def test_run_pulse(self, capsys):
        rc = main(["run", "pulse", "--steps", "3", "--report-every", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "advecting_pulse_2d" in out
        assert "final grid" in out
        assert "phase timings" in out

    def test_run_static_grid(self, capsys):
        rc = main(["run", "pulse", "--steps", "2", "--no-adapt"])
        out = capsys.readouterr().out
        assert rc == 0
        # Static grid: all blocks at the root level.
        assert "levels: 0..0" in out

    def test_run_t_end(self, capsys):
        rc = main(["run", "pulse", "--t-end", "0.01", "--no-adapt"])
        assert rc == 0

    def test_run_with_reflux(self, capsys):
        rc = main(["run", "pulse", "--steps", "2", "--reflux"])
        assert rc == 0

    def test_save_and_info_roundtrip(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.npz")
        assert main(["run", "pulse", "--steps", "2", "--save", ck]) == 0
        capsys.readouterr()
        assert main(["info", ck]) == 0
        out = capsys.readouterr().out
        assert "conserved totals" in out
        assert "blocks:" in out

    def test_info_validate(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.npz")
        assert main(["run", "pulse", "--steps", "2", "--save", ck]) == 0
        capsys.readouterr()
        assert main(["info", ck, "--validate"]) == 0
        assert "forest invariants: OK" in capsys.readouterr().out

    def test_info_rejects_corrupt_checkpoint(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"garbage")
        assert main(["info", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestResilienceFlags:
    def test_checkpoint_every_rotates(self, tmp_path, capsys):
        ckdir = tmp_path / "ckpts"
        rc = main([
            "run", "pulse", "--steps", "5",
            "--checkpoint-every", "1", "--checkpoint-dir", str(ckdir),
            "--checkpoint-keep", "2",
        ])
        assert rc == 0
        assert "checkpoint ->" in capsys.readouterr().out
        names = sorted(p.name for p in ckdir.glob("*.npz"))
        assert names == ["ckpt-00000004.npz", "ckpt-00000005.npz"]

    def test_resume_continues_from_checkpoint(self, tmp_path, capsys):
        ckdir = tmp_path / "ckpts"
        assert main([
            "run", "pulse", "--steps", "3",
            "--checkpoint-every", "1", "--checkpoint-dir", str(ckdir),
        ]) == 0
        capsys.readouterr()
        rc = main([
            "run", "pulse", "--steps", "5", "--report-every", "1",
            "--resume", str(ckdir / "ckpt-00000003.npz"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resumed from" in out and "at step 3" in out
        assert "     5 " in out  # reached the absolute step target

    def test_resume_rejects_bad_checkpoint(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"garbage")
        rc = main(["run", "pulse", "--steps", "2", "--resume", str(bad)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_safe_mode_flag(self, capsys):
        rc = main(["run", "pulse", "--steps", "2", "--safe-mode"])
        assert rc == 0

    def test_checkpoint_every_must_be_positive(self, capsys):
        rc = main(["run", "pulse", "--steps", "2", "--checkpoint-every", "0"])
        assert rc == 2
        assert "--checkpoint-every" in capsys.readouterr().err


class TestOtherCommands:
    def test_fig5(self, capsys):
        rc = main(["fig5", "--sizes", "2,4"])
        out = capsys.readouterr().out
        assert rc == 0
        lines = [l for l in out.splitlines() if "^3" in l]
        assert len(lines) == 2
        # Per-cell time falls with block size.
        t2 = float(lines[0].split()[-1])
        t4 = float(lines[1].split()[-1])
        assert t4 < t2

    def test_scaling(self, capsys):
        rc = main(["scaling", "--steps", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "efficiency:" in out
        assert "P=512" in out


class TestEmulate:
    def test_emulate_matches_serial(self, capsys):
        rc = main(["emulate", "pulse", "--ranks", "3", "--steps", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "max |emulated - serial| = 0.000e+00" in out
        assert "OK" in out

    def test_emulate_reports_traffic(self, capsys):
        rc = main(["emulate", "pulse", "--ranks", "2", "--steps", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wire messages:" in out
        assert "cells/rank" in out

    def test_emulate_survives_rank_kill(self, tmp_path, capsys):
        rc = main([
            "emulate", "pulse", "--ranks", "4", "--steps", "5",
            "--kill", "2:1", "--checkpoint-every", "1",
            "--checkpoint-dir", str(tmp_path / "ck"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "recovered from rank-failure at step 2" in out
        assert "survivors: ranks [0, 2, 3]" in out
        assert "max |emulated - serial| = 0.000e+00" in out

    @pytest.mark.parametrize("flag,kind", [
        ("--drop-message", "message-drop"),
        ("--corrupt-message", "message-corrupt"),
    ])
    def test_emulate_survives_message_fault(self, flag, kind, capsys):
        rc = main([
            "emulate", "pulse", "--ranks", "3", "--steps", "4",
            flag, "1:5",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"recovered from {kind} at step 1" in out
        assert "max |emulated - serial| = 0.000e+00" in out

    def test_emulate_rejects_malformed_fault_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["emulate", "pulse", "--kill", "nonsense"])

    def test_emulate_record_writes_valid_stream(self, tmp_path, capsys):
        from repro.obs import read_events, validate_events

        out = tmp_path / "emulate.jsonl"
        rc = main([
            "emulate", "pulse", "--ranks", "2", "--steps", "2",
            "--record", str(out),
        ])
        assert rc == 0
        assert "event stream written to" in capsys.readouterr().out
        events = read_events(out)
        assert validate_events(events) == []
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "meta"
        assert kinds.count("step") == 2
        assert kinds[-1] == "exchange"
        assert events[-1]["n_messages"] > 0


class TestProfileAndReport:
    def _profile(self, tmp_path, *extra):
        out = tmp_path / "run.jsonl"
        rc = main([
            "profile", "pulse", "--steps", "2",
            "--engines", "blocked,batched", "--out", str(out), *extra,
        ])
        return rc, out

    def test_profile_writes_stream_and_report(self, tmp_path, capsys):
        from repro.obs import read_events, validate_events

        rc, out = self._profile(tmp_path)
        text = capsys.readouterr().out
        assert rc == 0
        assert "phase breakdown" in text
        assert "hottest blocks" in text
        assert "engine comparison" in text
        assert "batched speedup:" in text
        events = read_events(out)
        assert validate_events(events) == []
        kinds = [e["kind"] for e in events]
        assert kinds.count("profile") == 2
        assert kinds.count("summary") == 1

    def test_profile_single_engine(self, tmp_path, capsys):
        out = tmp_path / "one.jsonl"
        rc = main([
            "profile", "pulse", "--steps", "2",
            "--engines", "batched", "--out", str(out),
        ])
        assert rc == 0
        assert "engine: batched" in capsys.readouterr().out

    def test_profile_compare_bench_no_false_flags(self, tmp_path, capsys):
        # The committed bench record is a different workload, so only
        # the engine-relative check applies; it must not flag this run.
        rc, _ = self._profile(tmp_path, "--compare-bench")
        text = capsys.readouterr().out
        assert rc == 0
        assert "bench regression" not in text
        assert "within the committed trajectory" in text

    def test_profile_rejects_unknown_engine(self, tmp_path, capsys):
        rc = main([
            "profile", "pulse", "--steps", "1", "--engines", "warp",
            "--out", str(tmp_path / "x.jsonl"),
        ])
        assert rc == 2
        assert "--engines" in capsys.readouterr().err

    def test_profile_rejects_zero_steps(self, tmp_path, capsys):
        rc = main([
            "profile", "pulse", "--steps", "0",
            "--out", str(tmp_path / "x.jsonl"),
        ])
        assert rc == 2
        assert "--steps" in capsys.readouterr().err

    def test_report_roundtrip(self, tmp_path, capsys):
        rc, out = self._profile(tmp_path)
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "profile run" in text
        assert "engine comparison" in text

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_report_rejects_invalid_stream(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v": 1, "t": 0.0, "kind": "warp"}\n')
        assert main(["report", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "schema:" in err and "unknown kind" in err

    def test_report_rejects_truncated_stream(self, tmp_path, capsys):
        bad = tmp_path / "trunc.jsonl"
        bad.write_text('{"v": 1, "t": 0.0, "ki')
        assert main(["report", str(bad)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_report_strict_flags_regression(self, tmp_path, capsys):
        import json

        # Synthesize a stream whose workload matches the committed MHD
        # record but is absurdly slow: --strict must exit nonzero.
        from repro.obs import load_bench_record

        record = load_bench_record()
        assert record is not None
        stream = tmp_path / "slow.jsonl"
        events = [
            {"v": 1, "t": 0.0, "kind": "meta", "source": "profile"},
            {"v": 1, "t": 1.0, "kind": "profile", "engine": "batched",
             "wall_s": 1.0, "us_per_cell": 1e6, "ndim": 2,
             "workload": record["workload"], "phases": {"solve": 1.0}},
        ]
        stream.write_text(
            "".join(json.dumps(e) + "\n" for e in events))
        capsys.readouterr()
        rc = main(["report", str(stream), "--compare-bench", "--strict"])
        assert rc == 1
        assert "bench regression" in capsys.readouterr().out
