"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "pulse", "--steps", "5"])
        assert args.problem == "pulse"
        assert args.ndim == 2
        assert not args.no_adapt

    def test_unknown_problem_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "warp_drive", "--steps", "1"])


class TestRun:
    def test_run_needs_target(self, capsys):
        assert main(["run", "pulse"]) == 2
        assert "give --steps" in capsys.readouterr().err

    def test_run_pulse(self, capsys):
        rc = main(["run", "pulse", "--steps", "3", "--report-every", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "advecting_pulse_2d" in out
        assert "final grid" in out
        assert "phase timings" in out

    def test_run_static_grid(self, capsys):
        rc = main(["run", "pulse", "--steps", "2", "--no-adapt"])
        out = capsys.readouterr().out
        assert rc == 0
        # Static grid: all blocks at the root level.
        assert "levels: 0..0" in out

    def test_run_t_end(self, capsys):
        rc = main(["run", "pulse", "--t-end", "0.01", "--no-adapt"])
        assert rc == 0

    def test_run_with_reflux(self, capsys):
        rc = main(["run", "pulse", "--steps", "2", "--reflux"])
        assert rc == 0

    def test_save_and_info_roundtrip(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.npz")
        assert main(["run", "pulse", "--steps", "2", "--save", ck]) == 0
        capsys.readouterr()
        assert main(["info", ck]) == 0
        out = capsys.readouterr().out
        assert "conserved totals" in out
        assert "blocks:" in out


class TestOtherCommands:
    def test_fig5(self, capsys):
        rc = main(["fig5", "--sizes", "2,4"])
        out = capsys.readouterr().out
        assert rc == 0
        lines = [l for l in out.splitlines() if "^3" in l]
        assert len(lines) == 2
        # Per-cell time falls with block size.
        t2 = float(lines[0].split()[-1])
        t4 = float(lines[1].split()[-1])
        assert t4 < t2

    def test_scaling(self, capsys):
        rc = main(["scaling", "--steps", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "efficiency:" in out
        assert "P=512" in out


class TestEmulate:
    def test_emulate_matches_serial(self, capsys):
        rc = main(["emulate", "pulse", "--ranks", "3", "--steps", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "max |emulated - serial| = 0.000e+00" in out
        assert "OK" in out

    def test_emulate_reports_traffic(self, capsys):
        rc = main(["emulate", "pulse", "--ranks", "2", "--steps", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wire messages:" in out
        assert "cells/rank" in out
