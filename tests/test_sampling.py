"""Tests for forest sampling/diagnostics (repro.amr.sampling)."""

import numpy as np
import pytest

from repro.amr import advecting_pulse
from repro.amr.sampling import (
    ProbeSeries,
    integrate,
    line_cut,
    resample_uniform,
    sample_points,
)
from repro.core import BlockForest, BlockID
from repro.util.geometry import Box


def make_forest(refine=True):
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (4, 4), nvar=2, n_ghost=2
    )
    if refine:
        f.adapt([BlockID(0, (0, 0))])
    for b in f:
        X, Y = b.meshgrid()
        b.interior[0] = X
        b.interior[1] = 3.0
    return f


class TestResample:
    def test_shape(self):
        f = make_forest()
        out = resample_uniform(f, 1)
        assert out.shape == (2, 16, 16)

    def test_constant_exact_at_any_level(self):
        f = make_forest()
        for level in (0, 1, 2):
            out = resample_uniform(f, level, var=1)
            np.testing.assert_allclose(out, 3.0)

    def test_restriction_conserves_mean(self):
        f = make_forest()
        fine = resample_uniform(f, 2, var=0)
        coarse = resample_uniform(f, 0, var=0)
        assert fine.mean() == pytest.approx(coarse.mean(), rel=1e-12)

    def test_matches_cell_values_same_level(self):
        f = make_forest(refine=False)
        out = resample_uniform(f, 0, var=0)
        b = f.blocks[BlockID(0, (1, 1))]
        np.testing.assert_allclose(out[4:8, 4:8], b.interior[0])

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            resample_uniform(make_forest(), -1)


class TestSamplePoints:
    def test_values(self):
        f = make_forest()
        vals = sample_points(f, [(0.1, 0.1), (0.9, 0.9)])
        assert vals.shape == (2, 2)
        np.testing.assert_allclose(vals[1], 3.0)
        # var 0 is x at the containing cell center: close to the query x.
        assert abs(vals[0, 0] - 0.1) < 0.1
        assert abs(vals[0, 1] - 0.9) < 0.1

    def test_line_cut(self):
        f = make_forest()
        xs, vals = line_cut(f, 0, (0.0, 0.3), n=32)
        assert xs.shape == (32,)
        assert vals.shape == (2, 32)
        # x-values increase monotonically along the x cut.
        assert np.all(np.diff(vals[0]) >= -1e-12)

    def test_line_cut_bad_axis(self):
        with pytest.raises(ValueError):
            line_cut(make_forest(), 2, (0.0, 0.0))


class TestIntegrate:
    def test_conserved_totals(self):
        f = make_forest(refine=False)
        totals = integrate(f)
        # var 1 is the constant 3 over the unit square.
        assert totals[1] == pytest.approx(3.0, rel=1e-12)
        # var 0 is x: integral = 1/2.
        assert totals[0] == pytest.approx(0.5, rel=1e-3)

    def test_custom_function(self):
        f = make_forest(refine=False)
        sq = integrate(f, lambda u: u[1:2] ** 2)
        assert sq[0] == pytest.approx(9.0, rel=1e-12)

    def test_refinement_invariance(self):
        a = integrate(make_forest(refine=False))
        b = integrate(make_forest(refine=True))
        np.testing.assert_allclose(a, b, rtol=1e-3)


class TestProbeSeries:
    def test_as_driver_hook(self):
        p = advecting_pulse(2)
        sim = p.build(adaptive=False)
        probe = ProbeSeries(points=[(0.5, 0.5)], every=2)
        sim.hook = probe
        sim.run(n_steps=6)
        assert len(probe.times) == 3
        t, v = probe.series(var=0)
        assert t.shape == v.shape == (3,)
        # The pulse peak decays at the center as it advects away.
        assert v[-1] <= v[0] + 1e-12

    def test_manual_sampling(self):
        f = make_forest()
        probe = ProbeSeries(points=[(0.25, 0.25), (0.75, 0.75)])
        probe.sample(f, time=1.0)
        assert probe.times == [1.0]
        assert probe.values[0].shape == (2, 2)
