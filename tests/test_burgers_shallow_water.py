"""Tests for the Burgers and shallow-water schemes."""

import numpy as np
import pytest

from repro.solvers import BurgersScheme, ShallowWaterScheme


def periodic_fill(u, g):
    u[:, :g] = u[:, -2 * g : -g]
    u[:, -g:] = u[:, g : 2 * g]


def outflow_fill(u, g):
    u[:, :g] = u[:, g : g + 1]
    u[:, -g:] = u[:, -g - 1 : -g]


def run_1d(scheme, u, dx, t_end, fill, g=2):
    t = 0.0
    while t < t_end - 1e-14:
        fill(u, g)
        dt = min(scheme.stable_dt(u, (dx,), 1), t_end - t)
        scheme.step_midpoint(u, (dx,), dt, g, lambda a: fill(a, g))
        t += dt
    return u


class TestBurgers:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurgersScheme(())

    def test_constant_is_fixed_point(self):
        sch = BurgersScheme((1.0,))
        u = np.full((1, 20), 2.0)
        sch.step(u, (0.1,), 0.01, 2)
        np.testing.assert_allclose(u, 2.0, rtol=1e-14)

    def test_characteristic_speed_is_solution_value(self):
        sch = BurgersScheme((1.0,))
        w = np.array([[3.0, -2.0]])
        np.testing.assert_allclose(sch.normal_velocity(w, 0), [3.0, -2.0])

    def test_smooth_solution_via_characteristics(self):
        # Pre-shock: q(x,t) solves q = q0(x - q t) exactly.
        n, g = 256, 2
        sch = BurgersScheme((1.0,), order=2, limiter="mc", cfl=0.3)
        x = (np.arange(n) + 0.5) / n
        q0 = lambda s: 0.2 + 0.1 * np.sin(2 * np.pi * s)
        u = np.zeros((1, n + 2 * g))
        u[0, g:-g] = q0(x)
        t_end = 0.3  # shock time ~ 1/(0.2*pi) ~ 1.6, well before
        run_1d(sch, u, 1.0 / n, t_end, periodic_fill)
        # Invert the characteristic map numerically.
        exact = np.empty(n)
        for i, xi in enumerate(x):
            q = 0.2
            for _ in range(80):
                q = q0((xi - q * t_end) % 1.0)
            exact[i] = q
        assert np.abs(u[0, g:-g] - exact).max() < 2e-3

    def test_shock_forms_and_is_stable(self):
        n, g = 128, 2
        sch = BurgersScheme((1.0,), order=2)
        x = (np.arange(n) + 0.5) / n
        u = np.zeros((1, n + 2 * g))
        u[0, g:-g] = 0.5 + 0.5 * np.sin(2 * np.pi * x)
        run_1d(sch, u, 1.0 / n, 1.5, periodic_fill)  # well past shock time
        q = u[0, g:-g]
        assert np.all(np.isfinite(q))
        # TVD: no overshoot beyond the initial range.
        assert q.max() <= 1.0 + 1e-8 and q.min() >= 0.0 - 1e-8
        # A genuine shock: some cell-to-cell jump is large.
        assert np.abs(np.diff(q)).max() > 0.2

    def test_conservation(self):
        n, g = 64, 2
        sch = BurgersScheme((1.0,), order=2)
        x = (np.arange(n) + 0.5) / n
        u = np.zeros((1, n + 2 * g))
        u[0, g:-g] = 1.0 + 0.3 * np.cos(2 * np.pi * x)
        total0 = u[0, g:-g].sum()
        run_1d(sch, u, 1.0 / n, 0.5, periodic_fill)
        assert u[0, g:-g].sum() == pytest.approx(total0, rel=1e-12)

    def test_rankine_hugoniot_shock_speed(self):
        # Step q_l=1, q_r=0: shock speed = (f_l-f_r)/(q_l-q_r) = 1/2.
        n, g = 400, 2
        sch = BurgersScheme((1.0,), order=2, limiter="minmod")
        x = (np.arange(n) + 0.5) / n
        u = np.zeros((1, n + 2 * g))
        u[0, g:-g] = np.where(x < 0.25, 1.0, 0.0)
        t_end = 0.5
        run_1d(sch, u, 1.0 / n, t_end, outflow_fill)
        q = u[0, g:-g]
        front = x[np.argmin(np.abs(q - 0.5))]
        assert front == pytest.approx(0.25 + 0.5 * t_end, abs=0.02)


class TestShallowWater:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShallowWaterScheme(3)
        with pytest.raises(ValueError):
            ShallowWaterScheme(1, gravity=0.0)

    def test_prim_cons_roundtrip(self):
        sch = ShallowWaterScheme(2)
        rng = np.random.default_rng(0)
        w = np.empty((3, 8))
        w[0] = rng.random(8) + 0.5
        w[1:] = rng.standard_normal((2, 8))
        np.testing.assert_allclose(
            sch.cons_to_prim(sch.prim_to_cons(w)), w, rtol=1e-12
        )

    def test_lake_at_rest_is_fixed_point(self):
        sch = ShallowWaterScheme(2, gravity=9.81)
        w = np.zeros((3, 12, 12))
        w[0] = 2.0
        u = sch.prim_to_cons(w)
        sch.step(u, (0.1, 0.1), 0.001, 2)
        np.testing.assert_allclose(u[0], 2.0, rtol=1e-13)
        np.testing.assert_allclose(u[1:], 0.0, atol=1e-13)

    def test_gravity_wave_speed(self):
        sch = ShallowWaterScheme(1, gravity=9.81)
        w = np.array([[4.0], [0.0]])
        assert sch.char_speed(w, 0)[0] == pytest.approx(np.sqrt(9.81 * 4.0))

    def test_dam_break_structure(self):
        # Stoker's dam-break: h_l=1, h_r=0.2, g=1.  Solving the left-
        # rarefaction + right-shock jump conditions gives h* = 0.5078.
        n, g = 400, 2
        sch = ShallowWaterScheme(1, gravity=1.0, order=2, limiter="mc",
                                 riemann="hll")
        x = (np.arange(n) + 0.5) / n
        w = np.zeros((2, n))
        w[0] = np.where(x < 0.5, 1.0, 0.2)
        u = np.zeros((2, n + 2 * g))
        u[:, g:-g] = sch.prim_to_cons(w)
        run_1d(sch, u, 1.0 / n, 0.15, outflow_fill)
        we = sch.cons_to_prim(u[:, g:-g])
        assert np.all(np.isfinite(we))
        assert we[0].min() > 0
        mid = (x > 0.55) & (x < 0.62)
        assert abs(we[0][mid].mean() - 0.5078) < 0.01

    def test_mass_conserved(self):
        n, g = 64, 2
        sch = ShallowWaterScheme(1, gravity=1.0, order=2)
        x = (np.arange(n) + 0.5) / n
        w = np.zeros((2, n))
        w[0] = 1.0 + 0.2 * np.sin(2 * np.pi * x)
        u = np.zeros((2, n + 2 * g))
        u[:, g:-g] = sch.prim_to_cons(w)
        total0 = u[0, g:-g].sum()
        run_1d(sch, u, 1.0 / n, 0.3, periodic_fill)
        assert u[0, g:-g].sum() == pytest.approx(total0, rel=1e-12)

    def test_2d_radial_wave_symmetry(self):
        n, g = 32, 2
        sch = ShallowWaterScheme(2, gravity=1.0, order=2, cfl=0.3)
        x = (np.arange(n) + 0.5) / n - 0.5
        X, Y = np.meshgrid(x, x, indexing="ij")
        w = np.zeros((3, n, n))
        w[0] = 1.0 + 0.5 * np.exp(-100 * (X**2 + Y**2))
        u = np.zeros((3, n + 2 * g, n + 2 * g))
        u[:, g:-g, g:-g] = sch.prim_to_cons(w)

        def fill2(a):
            a[:, :g, :] = a[:, g : g + 1, :]
            a[:, -g:, :] = a[:, -g - 1 : -g, :]
            a[:, :, :g] = a[:, :, g : g + 1]
            a[:, :, -g:] = a[:, :, -g - 1 : -g]

        t = 0.0
        while t < 0.1:
            dt = min(sch.stable_dt(u, (1 / n, 1 / n), 2), 0.1 - t)
            sch.step_midpoint(u, (1 / n, 1 / n), dt, g, fill2)
            t += dt
        h = sch.cons_to_prim(u[:, g:-g, g:-g])[0]
        # 4-fold symmetry of the expanding ring.
        np.testing.assert_allclose(h, h[::-1, :], rtol=1e-10)
        np.testing.assert_allclose(h, h[:, ::-1], rtol=1e-10)
        np.testing.assert_allclose(h, h.T, rtol=1e-10)
