"""Tests for physical boundary conditions (repro.amr.boundary)."""

import numpy as np
import pytest

from repro.amr.boundary import (
    CompositeBC,
    ExtrapolationBC,
    FixedBC,
    OutflowBC,
    ReflectingBC,
    region_centers,
)
from repro.core.block_id import BlockID, IndexBox
from repro.core.forest import BlockForest
from repro.core.ghost import fill_ghosts
from repro.util.geometry import Box


def forest2d(nvar=1, **kw):
    return BlockForest(Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (4, 4), nvar, **kw)


def linear_field(forest, coeffs=(1.0, 2.0)):
    for b in forest:
        grids = b.meshgrid()
        b.interior[0] = sum(c * g for c, g in zip(coeffs, grids))


class TestOutflow:
    def test_ghosts_copy_nearest_interior(self):
        f = forest2d()
        linear_field(f)
        fill_ghosts(f, bc=OutflowBC())
        b = f.blocks[BlockID(0, (0, 0))]
        # x-low ghosts equal the first interior column.
        np.testing.assert_allclose(b.data[0, 0, 2:-2], b.data[0, 2, 2:-2])
        np.testing.assert_allclose(b.data[0, 1, 2:-2], b.data[0, 2, 2:-2])

    def test_corner_outside_domain_filled(self):
        f = forest2d()
        for b in f:
            b.interior[...] = 3.0
        fill_ghosts(f, bc=OutflowBC())
        b = f.blocks[BlockID(0, (0, 0))]
        assert np.all(b.data[0, :2, :2] == 3.0)  # (-x,-y) corner


class TestExtrapolation:
    def test_linear_exact(self):
        f = forest2d()
        linear_field(f, (2.0, -1.0))
        fill_ghosts(f, bc=ExtrapolationBC())
        for b in f:
            Xg, Yg = b.meshgrid(include_ghost=True)
            np.testing.assert_allclose(
                b.data[0], 2 * Xg - Yg, rtol=1e-12, atol=1e-12
            )


class TestReflecting:
    def test_flips_normal_momentum(self):
        f = forest2d(nvar=3)
        for b in f:
            b.interior[0] = 1.0
            b.interior[1] = 0.5   # "x-momentum"
            b.interior[2] = 0.25  # "y-momentum"
        bc = ReflectingBC({0: [1], 1: [2]})
        fill_ghosts(f, bc=bc)
        b = f.blocks[BlockID(0, (0, 0))]
        # Across x-low: var 1 flips, vars 0, 2 mirror unchanged.
        assert np.all(b.data[1, 0, 2:-2] == -0.5)
        assert np.all(b.data[0, 0, 2:-2] == 1.0)
        assert np.all(b.data[2, 0, 2:-2] == 0.25)
        # Across y-low: var 2 flips.
        assert np.all(b.data[2, 2:-2, 0] == -0.25)
        assert np.all(b.data[1, 2:-2, 0] == 0.5)

    def test_mirror_ordering(self):
        # Ghost layer q mirrors interior layer q (distance-symmetric).
        f = forest2d(nvar=1)
        b = f.blocks[BlockID(0, (0, 0))]
        for blk in f:
            X, _ = blk.meshgrid()
            blk.interior[0] = X
        fill_ghosts(f, bc=ReflectingBC())
        # interior columns at x = 1/16, 3/16 -> ghosts mirror: 1/16, 3/16.
        np.testing.assert_allclose(b.data[0, 1, 2:-2], b.data[0, 2, 2:-2])
        np.testing.assert_allclose(b.data[0, 0, 2:-2], b.data[0, 3, 2:-2])


class TestFixed:
    def test_values_from_centers(self):
        f = forest2d()
        linear_field(f)

        def values(centers):
            return (10.0 * centers[0] + centers[1])[np.newaxis]

        fill_ghosts(f, bc=FixedBC(values))
        b = f.blocks[BlockID(0, (0, 0))]
        Xg, Yg = b.meshgrid(include_ghost=True)
        np.testing.assert_allclose(
            b.data[0, :2, 2:-2], (10 * Xg + Yg)[:2, 2:-2], rtol=1e-12
        )


class TestComposite:
    def test_per_face_dispatch(self):
        f = forest2d()
        for b in f:
            b.interior[...] = 1.0
        bc = CompositeBC(
            {0: FixedBC(lambda c: np.full((1,) + c[0].shape, 9.0))},
            default=OutflowBC(),
        )
        fill_ghosts(f, bc=bc)
        b = f.blocks[BlockID(0, (0, 0))]
        assert np.all(b.data[0, :2, 2:-2] == 9.0)   # x-low fixed
        assert np.all(b.data[0, 2:-2, :2] == 1.0)   # y-low outflow


class TestRegionCenters:
    def test_matches_block_meshgrid(self):
        f = forest2d()
        b = f.blocks[BlockID(0, (1, 0))]
        centers = region_centers(f, 0, b.cell_box)
        X, Y = b.meshgrid()
        np.testing.assert_allclose(centers[0], X)
        np.testing.assert_allclose(centers[1], Y)

    def test_extends_outside_domain(self):
        f = forest2d()
        region = IndexBox((-2, 0), (0, 4))
        X, _ = region_centers(f, 0, region)
        assert X[0, 0] == pytest.approx(-2 * 0.125 + 0.0625)
