"""Tests for variable layouts and conversions (repro.solvers.state)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.solvers.state import DEFAULT_GAMMA, EulerLayout, MHDLayout, P_FLOOR, RHO_FLOOR


def physical_prims_euler(ndim, n=8):
    """Strategy: physically valid Euler primitive arrays."""
    pos = st.floats(1e-3, 1e3, allow_nan=False)
    vel = st.floats(-100, 100, allow_nan=False)
    rows = [arrays(np.float64, (n,), elements=pos)]
    rows += [arrays(np.float64, (n,), elements=vel) for _ in range(ndim)]
    rows += [arrays(np.float64, (n,), elements=pos)]
    return st.tuples(*rows).map(lambda rs: np.stack(rs))


def physical_prims_mhd(n=8):
    pos = st.floats(1e-3, 1e3, allow_nan=False)
    sym = st.floats(-50, 50, allow_nan=False)
    rows = [arrays(np.float64, (n,), elements=pos)]
    rows += [arrays(np.float64, (n,), elements=sym) for _ in range(3)]
    rows += [arrays(np.float64, (n,), elements=pos)]
    rows += [arrays(np.float64, (n,), elements=sym) for _ in range(3)]
    return st.tuples(*rows).map(lambda rs: np.stack(rs))


class TestEulerLayout:
    def test_nvar(self):
        assert EulerLayout(1).nvar == 3
        assert EulerLayout(2).nvar == 4
        assert EulerLayout(3).nvar == 5

    @given(physical_prims_euler(2))
    @settings(max_examples=50)
    def test_prim_cons_roundtrip(self, w):
        lay = EulerLayout(2)
        # Pressure recovery subtracts the kinetic energy, so the absolute
        # tolerance must cover cancellation at machine precision when the
        # kinetic energy dwarfs the pressure (KE ~ 1e6 here).
        np.testing.assert_allclose(
            lay.cons_to_prim(lay.prim_to_cons(w)), w, rtol=1e-8, atol=1e-6
        )

    def test_known_energy(self):
        lay = EulerLayout(1, gamma=1.4)
        w = np.array([[1.0], [2.0], [1.0]])  # rho=1, u=2, p=1
        u = lay.prim_to_cons(w)
        assert u[0, 0] == 1.0
        assert u[1, 0] == 2.0
        assert u[2, 0] == pytest.approx(1.0 / 0.4 + 0.5 * 4.0)

    def test_pressure_floor(self):
        lay = EulerLayout(1)
        # Negative internal energy -> pressure floored.
        u = np.array([[1.0], [10.0], [1.0]])  # huge KE, tiny E
        w = lay.cons_to_prim(u)
        assert w[2, 0] == P_FLOOR

    def test_density_floor(self):
        lay = EulerLayout(1)
        u = np.array([[0.0], [0.0], [1.0]])
        w = lay.cons_to_prim(u)
        assert w[0, 0] == RHO_FLOOR

    def test_sound_speed(self):
        lay = EulerLayout(1, gamma=1.4)
        w = np.array([[1.0], [0.0], [1.0]])
        assert lay.sound_speed(w)[0] == pytest.approx(np.sqrt(1.4))

    def test_flux_mass_is_momentum(self):
        lay = EulerLayout(2)
        w = np.array([[2.0], [3.0], [-1.0], [5.0]])
        f = lay.flux(w, 0)
        assert f[0, 0] == pytest.approx(6.0)
        # Momentum flux includes pressure on its own axis only.
        assert f[1, 0] == pytest.approx(2 * 3 * 3 + 5)
        assert f[2, 0] == pytest.approx(2 * 3 * (-1))

    def test_max_signal_speed(self):
        lay = EulerLayout(1, gamma=1.4)
        u = lay.prim_to_cons(np.array([[1.0], [3.0], [1.0]]))
        assert lay.max_signal_speed(u) == pytest.approx(3.0 + np.sqrt(1.4))


class TestMHDLayout:
    @given(physical_prims_mhd())
    @settings(max_examples=50)
    def test_prim_cons_roundtrip(self, w):
        lay = MHDLayout()
        np.testing.assert_allclose(
            lay.cons_to_prim(lay.prim_to_cons(w)), w, rtol=1e-9, atol=1e-8
        )

    def test_energy_includes_magnetic(self):
        lay = MHDLayout(gamma=2.0)
        w = np.zeros((8, 1))
        w[0] = 1.0
        w[4] = 1.0
        w[5] = 2.0  # Bx
        u = lay.prim_to_cons(w)
        assert u[4, 0] == pytest.approx(1.0 / 1.0 + 0.5 * 4.0)

    def test_fast_speed_reduces_to_sound_without_field(self):
        lay = MHDLayout(gamma=5 / 3)
        w = np.zeros((8, 1))
        w[0] = 1.0
        w[4] = 1.0
        cf = lay.fast_speed(w, 0)
        assert cf[0] == pytest.approx(np.sqrt(5 / 3))

    def test_fast_speed_perpendicular_field(self):
        # B perpendicular to the axis: cf^2 = a^2 + vA^2.
        lay = MHDLayout(gamma=5 / 3)
        w = np.zeros((8, 1))
        w[0] = 1.0
        w[4] = 1.0
        w[6] = 3.0  # By, axis=0
        cf = lay.fast_speed(w, 0)
        assert cf[0] == pytest.approx(np.sqrt(5 / 3 + 9.0))

    def test_fast_speed_exceeds_alfven_along_field(self):
        lay = MHDLayout()
        w = np.zeros((8, 1))
        w[0] = 4.0
        w[4] = 0.01
        w[5] = 2.0
        cf = lay.fast_speed(w, 0)
        v_alfven = 2.0 / 2.0
        assert cf[0] >= v_alfven - 1e-12

    def test_normal_flux_of_normal_b_is_zero(self):
        lay = MHDLayout()
        rng = np.random.default_rng(3)
        w = rng.random((8, 5)) + 0.5
        for axis in range(3):
            f = lay.flux(w, axis)
            np.testing.assert_allclose(f[5 + axis], 0.0)

    def test_flux_reduces_to_euler_without_field(self):
        lay = MHDLayout(gamma=1.4)
        euler = EulerLayout(3, gamma=1.4)
        w = np.zeros((8, 4))
        rng = np.random.default_rng(0)
        w[0] = rng.random(4) + 0.5
        w[1:4] = rng.standard_normal((3, 4))
        w[4] = rng.random(4) + 0.5
        f = lay.flux(w, 0)
        fe = euler.flux(w[:5], 0)
        np.testing.assert_allclose(f[0], fe[0])
        np.testing.assert_allclose(f[1:4], fe[1:4])
        np.testing.assert_allclose(f[4], fe[4])

    def test_div_b_constant_field_is_zero(self):
        lay = MHDLayout()
        u = np.zeros((8, 8, 8))
        u[5] = 1.0
        u[6] = -2.0
        div = lay.div_b(u, (0.1, 0.1), 2, 2)
        np.testing.assert_allclose(div, 0.0)

    def test_div_b_linear_field(self):
        lay = MHDLayout()
        u = np.zeros((8, 8, 8))
        x = np.arange(8) * 0.1
        u[5] = x[:, None] * np.ones(8)  # Bx = x -> divB = 1
        div = lay.div_b(u, (0.1, 0.1), 2, 2)
        np.testing.assert_allclose(div, 1.0)
