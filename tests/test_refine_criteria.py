"""Tests for refinement criteria (repro.core.refine_criteria)."""

import numpy as np
import pytest

from repro.core import BlockForest, BlockID, fill_ghosts
from repro.core.refine_criteria import (
    MonitorCriterion,
    RefinementCriterion,
    buffer_flags,
    compute_flags,
    curvature_indicator,
    geometric_indicator,
    gradient_indicator,
)
from repro.amr.boundary import ExtrapolationBC
from repro.util.geometry import Box

BC = ExtrapolationBC()


def make_forest(m=8, n_root=4):
    # Non-periodic: periodic wrap would add a seam discontinuity that
    # the sensors (correctly) flag, muddying the assertions.
    return BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (n_root, n_root), (m, m), nvar=1,
        n_ghost=2,
    )


def set_step_field(forest, edge=0.5):
    """Sharp step at x = edge (after ghost fill the sensor sees it)."""
    for b in forest:
        X, _ = b.meshgrid()
        b.interior[0] = np.where(X < edge, 1.0, 0.0)
    fill_ghosts(forest, bc=BC)


class TestGradientIndicator:
    def test_zero_on_constant(self):
        f = make_forest()
        for b in f:
            b.interior[0] = 3.0
        fill_ghosts(f, bc=BC)
        for b in f:
            assert gradient_indicator(b, lambda d: d[0]) == 0.0

    def test_detects_step(self):
        f = make_forest()
        set_step_field(f)
        vals = {b.id: gradient_indicator(b, lambda d: d[0], scale=1.0) for b in f}
        at_step = [v for bid, v in vals.items()
                   if f.blocks[bid].box.lo[0] <= 0.5 <= f.blocks[bid].box.hi[0]]
        far = [v for bid, v in vals.items()
               if f.blocks[bid].box.hi[0] < 0.45]
        # The forward-difference sensor catches the step from the left
        # side; blocks just right of it legitimately read zero.
        assert max(at_step) > 0.9
        assert max(far) < 0.1

    def test_resolution_halves_smooth_gradient(self):
        # Undivided differences: refining a smooth ramp halves the value.
        vals = {}
        for m in (8, 16):
            f = make_forest(m=m, n_root=2)
            for b in f:
                X, _ = b.meshgrid()
                b.interior[0] = X
            fill_ghosts(f, bc=BC)
            b = next(iter(f))
            vals[m] = gradient_indicator(b, lambda d: d[0], scale=1.0)
        assert vals[16] == pytest.approx(vals[8] / 2, rel=1e-10)


class TestCurvatureIndicator:
    def test_zero_on_linear(self):
        f = make_forest()
        for b in f:
            X, Y = b.meshgrid()
            b.interior[0] = 2 * X - Y
        fill_ghosts(f, bc=BC)
        for b in f:
            assert curvature_indicator(b, lambda d: d[0], scale=1.0) < 1e-10

    def test_near_one_at_discontinuity(self):
        f = make_forest()
        set_step_field(f)
        best = max(
            curvature_indicator(b, lambda d: d[0], scale=1.0) for b in f
        )
        assert best > 0.8

    def test_global_scale_suppresses_weak_tails(self):
        f = make_forest(n_root=2)
        for b in f:
            X, Y = b.meshgrid()
            b.interior[0] = np.exp(-200 * ((X - 0.25) ** 2 + (Y - 0.25) ** 2))
        fill_ghosts(f, bc=BC)
        far = f.blocks[BlockID(0, (1, 1))]
        local = curvature_indicator(far, lambda d: d[0])          # block scale
        scaled = curvature_indicator(far, lambda d: d[0], scale=1.0)  # global
        assert scaled < 0.05         # negligible relative to the pulse
        assert scaled < 0.2 * local  # block-local scale overstates it


class TestGeometricIndicator:
    def test_overlapping_sphere(self):
        f = make_forest(n_root=2)
        b = f.blocks[BlockID(0, (0, 0))]  # covers [0, 0.5]^2
        assert geometric_indicator(b, (0.25, 0.25), 0.1) == 1.0
        assert geometric_indicator(b, (0.9, 0.9), 0.1) == 0.0
        # Sphere touching the block edge counts.
        assert geometric_indicator(b, (0.6, 0.25), 0.1) == 1.0


class TestCriteria:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            MonitorCriterion(lambda d: d[0], 0.1, 0.5)
        with pytest.raises(ValueError):
            RefinementCriterion(lambda b: 0.0, 0.1, 0.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MonitorCriterion(lambda d: d[0], 0.5, 0.1, kind="wavelet")

    def test_monitor_flags_the_feature(self):
        f = make_forest()
        set_step_field(f)
        crit = MonitorCriterion(lambda d: d[0], 0.5, 0.05)
        refine, coarsen, values = crit.evaluate(f)
        assert refine
        for bid in refine:
            box = f.blocks[bid].box
            assert box.lo[0] <= 0.5 + 0.13 and box.hi[0] >= 0.5 - 0.13

    def test_max_level_respected(self):
        f = make_forest()
        set_step_field(f)
        crit = MonitorCriterion(lambda d: d[0], 0.5, 0.05, max_level=0)
        refine, _, _ = crit.evaluate(f)
        assert refine == []

    def test_min_level_blocks_coarsening(self):
        f = make_forest()
        for b in f:
            b.interior[0] = 1.0
        fill_ghosts(f, bc=BC)
        crit = MonitorCriterion(lambda d: d[0], 0.5, 0.05, min_level=0)
        _, coarsen, _ = crit.evaluate(f)
        assert coarsen == []  # already at min level

    def test_gradient_kind(self):
        f = make_forest()
        set_step_field(f)
        crit = MonitorCriterion(lambda d: d[0], 0.5, 0.05, kind="gradient")
        refine, _, _ = crit.evaluate(f)
        assert refine


class TestBufferFlags:
    def test_adds_one_ring(self):
        f = make_forest()
        seed = [BlockID(0, (1, 1))]
        out = buffer_flags(f, seed, band=1)
        assert BlockID(0, (0, 1)) in out
        assert BlockID(0, (2, 1)) in out
        assert BlockID(0, (1, 0)) in out
        assert BlockID(0, (1, 2)) in out
        assert len(out) == 5

    def test_band_zero_is_identity(self):
        f = make_forest()
        seed = [BlockID(0, (1, 1))]
        assert buffer_flags(f, seed, band=0) == seed

    def test_band_two_reaches_farther(self):
        f = make_forest()
        seed = [BlockID(0, (1, 1))]
        out2 = buffer_flags(f, seed, band=2)
        assert BlockID(0, (3, 1)) in out2
        assert len(out2) > len(buffer_flags(f, seed, band=1))

    def test_compute_flags_removes_conflicts(self):
        f = make_forest()
        set_step_field(f)
        crit = MonitorCriterion(lambda d: d[0], 0.5, 0.4)
        refine, coarsen = compute_flags(f, crit, buffer_band=1)
        assert not set(refine) & set(coarsen)
