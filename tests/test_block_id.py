"""Tests for logical block addressing and index-box algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.block_id import BlockID, IndexBox


def bid_strategy(ndim=2, max_level=5):
    def build(level):
        c = st.integers(0, (1 << level) * 4 - 1)
        return st.tuples(*([c] * ndim)).map(lambda cs: BlockID(level, cs))
    return st.integers(0, max_level).flatmap(build)


class TestBlockID:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockID(-1, (0, 0))
        with pytest.raises(ValueError):
            BlockID(0, (-1, 0))
        with pytest.raises(ValueError):
            BlockID(0, (0, 0, 0, 0))

    def test_parent_of_root_rejected(self):
        with pytest.raises(ValueError):
            _ = BlockID(0, (0, 0)).parent

    def test_children_parent_roundtrip(self):
        b = BlockID(2, (3, 1, 2))
        kids = b.children()
        assert len(kids) == 8
        assert all(k.parent == b for k in kids)
        assert len(set(kids)) == 8

    @given(bid_strategy(ndim=3, max_level=4))
    def test_child_index_consistent(self, b):
        for idx, child in enumerate(b.children()):
            assert child.child_index == idx

    def test_ancestor(self):
        b = BlockID(3, (5, 6))
        assert b.ancestor(3) == b
        assert b.ancestor(2) == b.parent
        assert b.ancestor(0) == BlockID(0, (0, 0))
        with pytest.raises(ValueError):
            b.ancestor(4)

    @given(bid_strategy(ndim=2, max_level=5))
    def test_ancestor_chain_matches_repeated_parent(self, b):
        cur = b
        for level in range(b.level - 1, -1, -1):
            cur = cur.parent
            assert b.ancestor(level) == cur

    def test_face_neighbor(self):
        b = BlockID(1, (1, 1))
        assert b.face_neighbor(0) == BlockID(1, (0, 1))  # x-low
        assert b.face_neighbor(1) == BlockID(1, (2, 1))  # x-high
        assert b.face_neighbor(2) == BlockID(1, (1, 0))  # y-low
        assert b.face_neighbor(3) == BlockID(1, (1, 2))  # y-high

    def test_face_neighbor_below_zero(self):
        assert BlockID(0, (0, 0)).face_neighbor(0) is None

    @given(bid_strategy(ndim=2, max_level=4))
    def test_face_neighbors_are_involutive(self, b):
        for face in range(4):
            n = b.face_neighbor(face)
            if n is not None:
                assert n.face_neighbor(face ^ 1) == b

    def test_neighbor_offset(self):
        b = BlockID(1, (1, 1))
        assert b.neighbor_offset((1, -1)) == BlockID(1, (2, 0))
        assert b.neighbor_offset((-2, 0)) is None

    def test_touches_parent_face(self):
        # Child (0,0) of a parent touches the parent's low faces.
        child = BlockID(1, (2, 3))  # x even -> low x face; y odd -> high y face
        assert child.touches_parent_face(0)
        assert not child.touches_parent_face(1)
        assert not child.touches_parent_face(2)
        assert child.touches_parent_face(3)

    def test_cell_box(self):
        b = BlockID(1, (1, 2))
        ib = b.cell_box((4, 8))
        assert ib.lo == (4, 16) and ib.hi == (8, 24)

    def test_morton_key_orders_levels(self):
        assert BlockID(0, (0, 0)).morton_key() < BlockID(1, (0, 0)).morton_key()

    def test_siblings(self):
        b = BlockID(1, (0, 1))
        assert b in b.siblings()
        assert len(b.siblings()) == 4


class TestIndexBox:
    def test_shape_and_size(self):
        b = IndexBox((1, 2), (4, 6))
        assert b.shape == (3, 4)
        assert b.size == 12
        assert not b.empty

    def test_empty(self):
        assert IndexBox((0, 0), (0, 3)).empty
        assert IndexBox((2, 0), (1, 3)).empty
        assert IndexBox((2, 0), (1, 3)).size == 0

    def test_intersect(self):
        a = IndexBox((0, 0), (4, 4))
        b = IndexBox((2, 2), (6, 6))
        assert a.intersect(b) == IndexBox((2, 2), (4, 4))
        assert a.intersect(IndexBox((5, 5), (6, 6))).empty

    def test_contains(self):
        a = IndexBox((0, 0), (4, 4))
        assert a.contains(IndexBox((1, 1), (3, 3)))
        assert a.contains(a)
        assert not a.contains(IndexBox((1, 1), (5, 3)))

    def test_shift(self):
        assert IndexBox((0,), (2,)).shift((3,)) == IndexBox((3,), (5,))

    def test_grow_scalar_and_vector(self):
        a = IndexBox((2, 2), (4, 4))
        assert a.grow(1) == IndexBox((1, 1), (5, 5))
        assert a.grow((1, 0)) == IndexBox((1, 2), (5, 4))

    def test_coarsened_rounds_outward(self):
        # [1, 5) at fine level covers coarse cells 0..2 inclusive.
        assert IndexBox((1,), (5,)).coarsened(1) == IndexBox((0,), (3,))
        assert IndexBox((2,), (4,)).coarsened(1) == IndexBox((1,), (2,))

    def test_refined(self):
        assert IndexBox((1,), (3,)).refined(1) == IndexBox((2,), (6,))
        assert IndexBox((1,), (3,)).refined(2) == IndexBox((4,), (12,))

    @given(
        st.integers(-16, 16), st.integers(1, 16), st.integers(0, 3)
    )
    def test_coarsen_refine_covers(self, lo, extent, shift):
        box = IndexBox((lo,), (lo + extent,))
        covered = box.coarsened(shift).refined(shift)
        assert covered.contains(box)
        # Coarsening adds less than one coarse cell per side.
        f = 1 << shift
        assert covered.lo[0] > box.lo[0] - f
        assert covered.hi[0] < box.hi[0] + f

    def test_slices(self):
        box = IndexBox((2, 3), (4, 7))
        sl = box.slices((1, 1))
        assert sl == (slice(1, 3), slice(2, 6))

    def test_iter_cells(self):
        cells = list(IndexBox((0, 0), (2, 2)).iter_cells())
        assert cells == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert list(IndexBox((0,), (0,)).iter_cells()) == []
