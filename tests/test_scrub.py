"""Tests for the silent-data-corruption defense (repro.resilience.scrub).

Four layers under test:

* the canonical checksum helpers and the arena :class:`RowLedger`
  (tags follow pool rows through compaction and growth);
* seeded bitflip injection (:class:`BitFlip`, :func:`apply_bitflip`);
* the phase-boundary :class:`Scrubber` on the serial driver and the
  emulated machine — with the acceptance criterion that scrub-enabled
  fault-free runs are **bit-for-bit identical** to baseline;
* the self-healing ladder: every corruption region (interior, ghost,
  mirror, staging) is detected, repaired from the verified mirror tier
  (or rewound/rolled back), and the recovered run still matches the
  fault-free serial reference bit-for-bit.

The real-process backend runs the same matrix in
``tests/test_procmachine.py`` (it needs that module's segment/zombie
sweep fixture).
"""

import numpy as np
import pytest

from repro.amr import Simulation
from repro.core import BlockForest, BlockID
from repro.core.integrity import RowLedger, content_crc, crc_text
from repro.obs import RunRecorder, read_events, validate_events
from repro.parallel.emulator import EmulatedMachine
from repro.resilience import (
    BitFlip,
    Checkpointer,
    CorruptionError,
    FaultPlan,
    PartnerStore,
    Scrubber,
    apply_bitflip,
    run_with_recovery,
)
from repro.solvers import AdvectionScheme
from repro.util.geometry import Box


def make_amr_forest(nvar=1, periodic=(True, True)):
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=nvar,
        n_ghost=2, periodic=periodic, max_level=3,
    )
    f.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
    f.adapt([BlockID(1, (1, 1))])
    return f


def init_pulse(forest):
    for b in forest:
        X, Y = b.meshgrid()
        b.interior[0] = np.exp(-50 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2))


def serial_reference(scheme, n_steps, dt):
    forest = make_amr_forest()
    init_pulse(forest)
    sim = Simulation(forest, scheme)
    for _ in range(n_steps):
        sim.advance(dt)
    return forest


DT = 1e-3


# ---------------------------------------------------------------------------
# checksum helpers + row ledger
# ---------------------------------------------------------------------------


class TestIntegrityHelpers:
    def test_content_crc_is_contiguity_normalized(self):
        rng = np.random.default_rng(3)
        a = rng.random((4, 12, 12))
        strided = a[:, 2:-2, 2:-2]
        assert not strided.flags.c_contiguous
        assert content_crc(strided) == content_crc(strided.copy())

    def test_content_crc_sees_every_element(self):
        a = np.zeros((3, 5))
        base = content_crc(a)
        for idx in np.ndindex(a.shape):
            b = a.copy()
            b[idx] = 1.0
            assert content_crc(b) != base

    def test_crc_text_is_deterministic(self):
        assert crc_text("repro:1:2") == crc_text("repro:1:2")
        assert crc_text("repro:1:2") != crc_text("repro:1:3")


class TestRowLedger:
    def test_tag_get_drop(self):
        led = RowLedger(epoch=5)
        assert led.get(0) is None
        led.tag(0, 111, 222)
        assert led.get(0) == (111, 222)
        assert len(led) == 1
        led.drop(0)
        assert led.get(0) is None and len(led) == 0
        led.drop(0)  # idempotent

    def test_permute_moves_tags_with_rows(self):
        led = RowLedger()
        led.tag(0, 10, 11)
        led.tag(2, 20, 21)
        led.tag(5, 50, 51)
        # Compaction wrote old rows [2, 0] into new rows [0, 1]; row 5
        # was freed and must lose its tag.
        led.permute(np.array([2, 0]), epoch=7)
        assert led.get(0) == (20, 21)
        assert led.get(1) == (10, 11)
        assert led.get(2) is None and led.get(5) is None
        assert led.epoch == 7

    def test_ledger_survives_driver_compaction(self):
        """Batched-engine compaction must permute tags, not orphan them:
        a scrub right after an adapt+compact sees zero mismatches."""
        problem_forest = make_amr_forest()
        init_pulse(problem_forest)
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        from repro.amr.problems import advecting_pulse

        problem = advecting_pulse(2)
        sim = problem.build(adaptive=True, engine="batched")
        scrubber = sim.attach_scrubber(Scrubber(every=1))
        for _ in range(6):
            sim.step(DT)
        assert scrubber.scrubs >= 5
        assert scrubber.mismatches == 0


# ---------------------------------------------------------------------------
# bitflip injection
# ---------------------------------------------------------------------------


class TestApplyBitflip:
    def test_flip_is_an_involution(self):
        rng = np.random.default_rng(0)
        a = rng.random((2, 6, 6))
        before = a.copy()
        apply_bitflip(a, 13, 5)
        assert not np.array_equal(a, before)
        apply_bitflip(a, 13, 5)
        np.testing.assert_array_equal(a, before)

    def test_flip_changes_exactly_one_bit(self):
        a = np.zeros((3, 4))
        apply_bitflip(a, 17, 2)
        raw = np.frombuffer(a.tobytes(), dtype=np.uint8)
        changed = np.flatnonzero(raw)
        assert len(changed) == 1
        assert changed[0] == 17
        assert int(raw[17]) == 1 << 2

    def test_flip_through_noncontiguous_view(self):
        base = np.zeros((2, 8, 8))
        view = base[:, 2:-2, 2:-2]
        apply_bitflip(view, 5, 7)
        # exactly one element changed, and it lies inside the view
        changed = np.argwhere(base != 0.0)
        assert len(changed) == 1
        _, i, j = changed[0]
        assert 2 <= i < 6 and 2 <= j < 6

    def test_offsets_wrap_the_region(self):
        a = np.zeros(4)
        b = np.zeros(4)
        apply_bitflip(a, 3, 1)
        apply_bitflip(b, 3 + a.size * a.itemsize, 1 + 8)
        np.testing.assert_array_equal(a, b)

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            BitFlip(step=1, target="register")

    def test_flips_are_one_shot(self):
        plan = FaultPlan(bitflips=[BitFlip(step=2), BitFlip(step=2, byte=9)])
        assert plan.pending == 2
        assert len(plan.flips_at(1)) == 0
        assert len(plan.flips_at(2)) == 2
        assert plan.flips_at(2) == []  # consumed: no re-fire on replay
        assert plan.pending == 0


# ---------------------------------------------------------------------------
# scrubber core
# ---------------------------------------------------------------------------


class TestScrubberCore:
    def _tagged(self):
        forest = make_amr_forest()
        init_pulse(forest)
        blocks = {bid: forest.blocks[bid] for bid in forest.sorted_ids()}
        scrubber = Scrubber(every=1)
        scrubber.retag_blocks(blocks)
        return forest, blocks, scrubber

    def test_interval_validation_and_due(self):
        with pytest.raises(ValueError):
            Scrubber(every=0)
        s = Scrubber(every=3)
        assert s.due(0) and not s.due(1) and not s.due(2) and s.due(3)

    def test_clean_blocks_verify_clean(self):
        _, blocks, scrubber = self._tagged()
        assert scrubber.scrub_blocks(blocks) == []
        assert scrubber.blocks_verified == len(blocks)
        assert scrubber.mismatches == 0

    def test_interior_flip_classified_interior(self):
        _, blocks, scrubber = self._tagged()
        bid, blk = next(iter(blocks.items()))
        apply_bitflip(blk.interior, 11, 3)
        entries = scrubber.scrub_blocks(blocks)
        assert [e.region for e in entries] == ["interior"]
        assert entries[0].block == bid
        assert entries[0].expected != entries[0].actual

    def test_ghost_flip_classified_ghost(self):
        _, blocks, scrubber = self._tagged()
        bid, blk = next(iter(blocks.items()))
        # first element of the padded row is a corner ghost cell
        apply_bitflip(blk.data, 0, 6)
        entries = scrubber.scrub_blocks(blocks)
        assert [e.region for e in entries] == ["ghost"]
        assert entries[0].block == bid

    def test_mismatch_reported_exactly_once(self):
        """Re-baseline on detect: the recovery tier decides what happens
        next; the same stale mismatch must not re-fire forever."""
        _, blocks, scrubber = self._tagged()
        _, blk = next(iter(blocks.items()))
        apply_bitflip(blk.interior, 11, 3)
        assert len(scrubber.scrub_blocks(blocks)) == 1
        assert scrubber.scrub_blocks(blocks) == []

    def test_untagged_blocks_are_skipped(self):
        _, blocks, scrubber = self._tagged()
        items = list(blocks.items())
        scrubber.drop(items[0][0])
        entries = scrubber.scrub_blocks(blocks)
        assert entries == []
        assert scrubber.blocks_verified == len(blocks) - 1

    def test_corruption_error_carries_diagnosis(self):
        _, blocks, scrubber = self._tagged()
        bid, blk = next(iter(blocks.items()))
        apply_bitflip(blk.interior, 0, 0)
        entries = scrubber.scrub_blocks(blocks)
        exc = CorruptionError(4, entries)
        assert exc.step == 4
        assert exc.regions == ("interior",)
        assert str(bid) in str(exc)
        assert "step 4" in str(exc)


# ---------------------------------------------------------------------------
# serial driver: transparency + loud detection
# ---------------------------------------------------------------------------


class TestSerialDriverScrub:
    @pytest.mark.parametrize("engine", ["blocked", "batched"])
    def test_scrub_enabled_run_is_bit_identical(self, engine):
        from repro.amr.problems import advecting_pulse

        problem = advecting_pulse(2)
        baseline = problem.build(adaptive=True, engine=engine)
        scrubbed = problem.build(adaptive=True, engine=engine)
        scrubber = scrubbed.attach_scrubber(Scrubber(every=1))
        for _ in range(6):
            baseline.step(DT)
            scrubbed.step(DT)
        assert set(baseline.forest.blocks) == set(scrubbed.forest.blocks)
        for bid, blk in baseline.forest.blocks.items():
            np.testing.assert_array_equal(
                blk.interior, scrubbed.forest.blocks[bid].interior
            )
        assert scrubber.scrubs >= 5
        assert scrubber.mismatches == 0

    def test_out_of_band_flip_raises_next_scrub(self):
        forest = make_amr_forest()
        init_pulse(forest)
        sim = Simulation(forest, AdvectionScheme((1.0, 0.5), order=2))
        sim.attach_scrubber(Scrubber(every=1))
        sim.step(DT)
        bid = forest.sorted_ids()[0]
        apply_bitflip(forest.blocks[bid].interior, 21, 4)
        with pytest.raises(CorruptionError) as err:
            sim.step(DT)
        assert err.value.regions == ("interior",)
        assert err.value.entries[0].block == bid

    def test_scrub_interval_is_honored(self):
        forest = make_amr_forest()
        init_pulse(forest)
        sim = Simulation(forest, AdvectionScheme((1.0, 0.5), order=2))
        scrubber = sim.attach_scrubber(Scrubber(every=3))
        for _ in range(6):
            sim.step(DT)
        # due at step_count 0 (skipped? executed at step start), 3, 6
        assert scrubber.scrubs == 2


# ---------------------------------------------------------------------------
# emulated machine: transparency, detection matrix, self-healing
# ---------------------------------------------------------------------------


def _machine(plan=None, n_ranks=4):
    scheme = AdvectionScheme((1.0, 0.5), order=2)
    forest = make_amr_forest()
    init_pulse(forest)
    return EmulatedMachine(forest, n_ranks, scheme, fault_plan=plan), scheme


def _gather_vs_reference(emu, scheme, n_steps):
    reference = serial_reference(scheme, n_steps, DT)
    gathered = emu.gather()
    worst = 0.0
    for bid, blk in reference.blocks.items():
        worst = max(worst, float(np.abs(gathered[bid] - blk.interior).max()))
    return worst


class TestEmulatorScrub:
    N_STEPS = 5

    def test_fault_free_scrub_run_is_bit_identical(self):
        emu, scheme = _machine()
        emu.attach_scrubber(Scrubber(every=1))
        for _ in range(self.N_STEPS):
            emu.advance(DT)
        assert _gather_vs_reference(emu, scheme, self.N_STEPS) == 0.0
        assert emu.scrubber.mismatches == 0

    @pytest.mark.parametrize(
        "target", ["interior", "ghost", "mirror", "staging"]
    )
    def test_flip_detected_and_healed_bit_for_bit(self, target, tmp_path):
        plan = FaultPlan(
            bitflips=[BitFlip(step=2, target=target, block=1, byte=7, bit=3)]
        )
        emu, scheme = _machine(plan)
        emu.attach_scrubber(Scrubber(every=1))
        report = run_with_recovery(
            emu, n_steps=self.N_STEPS, dt=DT,
            checkpointer=Checkpointer(tmp_path),
            checkpoint_every=1, strategy="local",
        )
        assert _gather_vs_reference(emu, scheme, self.N_STEPS) == 0.0
        (event,) = report.events
        assert event.kind == "corruption"
        assert event.step == 2
        assert event.strategy == "local"
        assert not event.escalated
        assert report.steps_completed == self.N_STEPS
        assert plan.pending == 0

    def test_ghost_flip_repairs_at_zero_restore_cost(self, tmp_path):
        plan = FaultPlan(bitflips=[BitFlip(step=2, target="ghost", block=0,
                                           byte=5, bit=1)])
        emu, scheme = _machine(plan)
        emu.attach_scrubber(Scrubber(every=1))
        report = run_with_recovery(
            emu, n_steps=self.N_STEPS, dt=DT,
            checkpointer=Checkpointer(tmp_path), strategy="local",
        )
        assert _gather_vs_reference(emu, scheme, self.N_STEPS) == 0.0
        (event,) = report.events
        # the halo is rewritten by the next exchange: nothing to copy
        assert event.blocks_restored == 0
        assert event.bytes_restored == 0

    def test_double_corruption_escalates_to_rollback(self, tmp_path):
        # Interior of SFC block 0 and the mirror copy of the same block:
        # the only valid repair source for the interior is itself
        # corrupt, so the ladder must fall through to the checkpoint.
        plan = FaultPlan(bitflips=[
            BitFlip(step=2, target="interior", block=0, byte=3, bit=2),
            BitFlip(step=2, target="mirror", block=0, byte=9, bit=6),
        ])
        emu, scheme = _machine(plan)
        emu.attach_scrubber(Scrubber(every=1))
        report = run_with_recovery(
            emu, n_steps=self.N_STEPS, dt=DT,
            checkpointer=Checkpointer(tmp_path),
            checkpoint_every=1, strategy="auto",
        )
        assert _gather_vs_reference(emu, scheme, self.N_STEPS) == 0.0
        assert [e.kind for e in report.events] == ["corruption", "corruption"]
        first = report.events[0]
        assert first.strategy == "global"
        assert first.escalated
        assert report.n_escalations == 1
        # the rollback restores live state from disk; the still-corrupt
        # mirror copy is then caught by the next scrub and re-mirrored
        second = report.events[1]
        assert second.strategy == "local"
        assert not second.escalated

    def test_scrub_interval_trades_coverage_for_cost(self, tmp_path):
        """Tags are re-baselined at the end of every advance (content
        legitimately changes each step), so ``every=N`` only guards the
        pre-exchange window of every Nth step.  A flip landing on a
        scrubbed step is caught before the exchange spreads it and the
        run heals bit-for-bit; a flip landing between scrubs is silently
        absorbed by the next retag — the coverage/cost tradeoff
        docs/resilience.md documents for every > 1."""
        covered = FaultPlan(bitflips=[BitFlip(step=4, target="interior",
                                              block=2, byte=1, bit=1)])
        emu, scheme = _machine(covered)
        emu.attach_scrubber(Scrubber(every=2))
        report = run_with_recovery(
            emu, n_steps=6, dt=DT,
            checkpointer=Checkpointer(tmp_path / "a"),
            checkpoint_every=1, strategy="auto",
        )
        assert _gather_vs_reference(emu, scheme, 6) == 0.0
        (event,) = report.events
        assert event.kind == "corruption"
        assert event.step == 4

        missed = FaultPlan(bitflips=[BitFlip(step=3, target="interior",
                                             block=2, byte=1, bit=1)])
        emu2, _ = _machine(missed)
        emu2.attach_scrubber(Scrubber(every=2))
        report2 = run_with_recovery(
            emu2, n_steps=6, dt=DT,
            checkpointer=Checkpointer(tmp_path / "b"),
            checkpoint_every=1, strategy="auto",
        )
        assert report2.events == []
        assert _gather_vs_reference(emu2, scheme, 6) > 0.0

    def test_unrecoverable_corruption_raises_diagnosis(self, tmp_path):
        """No checkpoint on disk and max_recoveries=0: the run must die
        with the per-block CorruptionError, not a bare CRC mismatch."""
        plan = FaultPlan(bitflips=[BitFlip(step=1, target="interior",
                                           block=0, byte=2, bit=2)])
        emu, _ = _machine(plan)
        emu.attach_scrubber(Scrubber(every=1))
        with pytest.raises(CorruptionError) as err:
            run_with_recovery(
                emu, n_steps=3, dt=DT,
                checkpointer=Checkpointer(tmp_path),
                strategy="local", max_recoveries=0,
            )
        assert err.value.regions == ("interior",)
        assert err.value.entries[0].block is not None

    def test_corruption_event_recorded_and_schema_valid(self, tmp_path):
        plan = FaultPlan(bitflips=[BitFlip(step=2, target="interior",
                                           block=1, byte=4, bit=4)])
        emu, _ = _machine(plan)
        emu.attach_scrubber(Scrubber(every=1))
        out = tmp_path / "run.jsonl"
        with RunRecorder(out) as recorder:
            run_with_recovery(
                emu, n_steps=4, dt=DT,
                checkpointer=Checkpointer(tmp_path / "ckpt"),
                strategy="local", recorder=recorder,
            )
        events = read_events(out)
        assert validate_events(events) == []
        (corr,) = [e for e in events if e.get("kind") == "corruption"]
        assert corr["step"] == 2
        assert corr["regions"] == ["interior"]
        assert corr["action"] == "mirror-repair"


# ---------------------------------------------------------------------------
# mirror repair accounting (satellite: charged exactly once, refresh
# stays consistent)
# ---------------------------------------------------------------------------


class TestMirrorRepairAccounting:
    def _setup(self):
        emu, scheme = _machine()
        partner = PartnerStore(emu)
        partner.refresh()
        scrubber = emu.attach_scrubber(Scrubber(every=1))
        scrubber.partner = partner
        return emu, partner, scrubber

    def test_repair_charges_exchange_stats_exactly_once(self):
        emu, partner, scrubber = self._setup()
        blocks = emu.blocks_by_id()
        bid, blk = next(iter(blocks.items()))
        owner = emu.assignment[bid]
        interior_values = blk.interior.size
        apply_bitflip(blk.interior, 6, 5)
        entries = scrubber.scrub_blocks(
            blocks, rank_of=emu.assignment, partner=partner
        )
        assert [e.region for e in entries] == ["interior"]
        before_bytes = emu.stats.n_bytes
        before_partner = emu.stats.n_partner_bytes
        assert partner.copy_is_valid(owner, bid)
        nbytes = partner.repair_block(owner, bid)
        assert nbytes == blk.interior.nbytes
        # exactly one interior's worth of wire traffic, charged once
        assert emu.stats.n_bytes - before_bytes == interior_values * 8
        # a repair is exchange traffic, not new redundancy traffic
        assert emu.stats.n_partner_bytes == before_partner

    def test_next_refresh_after_repair_copies_nothing(self):
        emu, partner, scrubber = self._setup()
        blocks = emu.blocks_by_id()
        bid, blk = next(iter(blocks.items()))
        owner = emu.assignment[bid]
        apply_bitflip(blk.interior, 6, 5)
        scrubber.scrub_blocks(blocks, rank_of=emu.assignment, partner=partner)
        partner.repair_block(owner, bid)
        emu.scrub_retag()
        # live state is bit-identical to the snapshot again: the
        # incremental refresh must see nothing to copy
        assert partner.refresh() == 0
        assert scrubber.scrub_blocks(
            blocks, rank_of=emu.assignment, partner=partner
        ) == []

    def test_corrupt_mirror_is_never_a_repair_source(self):
        emu, partner, scrubber = self._setup()
        (owner, bid) = partner.mirror_keys()[0]
        view = partner.copy_view(owner, bid)
        apply_bitflip(view, 10, 1)
        assert not partner.copy_is_valid(owner, bid)
        entries = scrubber.scrub_blocks(
            emu.blocks_by_id(), rank_of=emu.assignment, partner=partner
        )
        assert [e.region for e in entries] == ["mirror"]
        assert entries[0].block == bid
        assert entries[0].rank == owner
        # re-mirroring from the (verified clean) live block heals it
        partner.remirror_block(owner, bid)
        assert partner.copy_is_valid(owner, bid)


# ---------------------------------------------------------------------------
# sdc metrics
# ---------------------------------------------------------------------------


class TestSdcMetrics:
    def test_scrub_and_repair_metrics_flow(self, tmp_path):
        from repro.obs import METRICS

        plan = FaultPlan(bitflips=[BitFlip(step=2, target="interior",
                                           block=1, byte=7, bit=3)])
        emu, _ = _machine(plan)
        emu.attach_scrubber(Scrubber(every=1))
        METRICS.reset()
        with METRICS.enabled_scope():
            run_with_recovery(
                emu, n_steps=4, dt=DT,
                checkpointer=Checkpointer(tmp_path), strategy="local",
            )
            snap = METRICS.snapshot()["counters"]
        assert snap["sdc.scrubs"] >= 4
        assert snap["sdc.blocks_verified"] > 0
        assert snap["sdc.mismatches"] == 1
        assert snap["sdc.corruptions"] == 1
        assert snap["sdc.repairs"] == 1
        assert snap["sdc.bytes_repaired"] > 0
        assert "sdc.escalations" not in snap or snap["sdc.escalations"] == 0
