"""Tests for time-step subcycling (repro.amr.subcycle)."""

import numpy as np
import pytest

from repro.amr import Simulation, advecting_pulse
from repro.amr.subcycle import SubcycledSimulation
from repro.core import BlockID


def build(cls, levels=2):
    p = advecting_pulse(2)
    forest = p.config.make_forest(p.scheme.nvar)
    p.init_forest(forest)
    forest.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
    if levels >= 2:
        forest.adapt([BlockID(1, (1, 1))])
    p.init_forest(forest)
    return p, cls(forest, p.scheme)


def run_to(sim, t_end):
    while sim.time < t_end - 1e-12:
        dt = min(sim.stable_dt(), t_end - sim.time)
        sim.advance(dt)


class TestStableDt:
    def test_coarse_dt_larger_than_global(self):
        _, sim_g = build(Simulation)
        _, sim_s = build(SubcycledSimulation)
        from repro.solvers.timestep import stable_dt

        dt_global = stable_dt(sim_g.forest, sim_g.scheme)
        dt_coarse = sim_s.stable_dt()
        # Two levels present -> the coarse step is twice the fine limit.
        assert dt_coarse == pytest.approx(2.0 * dt_global, rel=1e-9)

    def test_uniform_forest_matches_global(self):
        p = advecting_pulse(2)
        forest = p.config.make_forest(p.scheme.nvar)
        p.init_forest(forest)
        sim = SubcycledSimulation(forest, p.scheme)
        from repro.solvers.timestep import stable_dt

        assert sim.stable_dt() == pytest.approx(
            stable_dt(forest, p.scheme), rel=1e-12
        )


class TestAccuracy:
    def test_comparable_to_global_stepping(self):
        t_end = 0.08
        p, sim_g = build(Simulation)
        sim_g.run(t_end=t_end, dt_max=2e-3)
        err_g = sim_g.error_vs(p.exact(t_end))
        p, sim_s = build(SubcycledSimulation)
        run_to(sim_s, t_end)
        err_s = sim_s.error_vs(p.exact(t_end))
        assert err_s < 2.0 * err_g + 1e-5

    def test_constant_state_preserved(self):
        _, sim = build(SubcycledSimulation)
        for b in sim.forest:
            b.interior[...] = 4.0
        run_to(sim, 0.05)
        for b in sim.forest:
            np.testing.assert_allclose(b.interior, 4.0, rtol=1e-12)

    def test_finite_and_bounded(self):
        _, sim = build(SubcycledSimulation)
        run_to(sim, 0.1)
        for b in sim.forest:
            assert np.all(np.isfinite(b.interior))
            assert b.interior.max() < 1.5  # TVD-ish: no blowup

    def test_mass_drift_small(self):
        _, sim = build(SubcycledSimulation)
        m0 = sim.total()
        run_to(sim, 0.08)
        assert abs(sim.total() - m0) / m0 < 1e-2

    def test_time_advances_exactly(self):
        _, sim = build(SubcycledSimulation)
        sim.advance(1e-3)
        assert sim.time == pytest.approx(1e-3)


class TestWorkSavings:
    def test_fewer_updates_than_global(self):
        """The point of subcycling: per unit physical time, coarse blocks
        take exponentially fewer steps."""
        t_end = 0.06
        p, sim_g = build(Simulation)
        sim_g.run(t_end=t_end)
        global_updates = sim_g.step_count * sim_g.forest.n_blocks

        _, sim_s = build(SubcycledSimulation)
        coarse_steps = 0
        while sim_s.time < t_end - 1e-12:
            dt = min(sim_s.stable_dt(), t_end - sim_s.time)
            sim_s.advance(dt)
            coarse_steps += 1
        sub_updates = coarse_steps * sim_s.updates_per_step()
        assert sub_updates < 0.7 * global_updates

    def test_updates_per_step_counts_levels(self):
        _, sim = build(SubcycledSimulation)
        hist = sim.forest.level_histogram()
        levels = sorted(hist)
        expect = sum(hist[l] * (1 << (l - levels[0])) for l in levels)
        assert sim.updates_per_step() == expect


class TestSparseLevels:
    def test_level_gap_handled(self):
        """Levels {0, 2} with no level-1 blocks: the finer group takes
        four substeps of dt/4."""
        p = advecting_pulse(2)
        forest = p.config.make_forest(p.scheme.nvar)
        p.init_forest(forest)
        # Refine one block twice; its siblings keep level 1 around it,
        # so build a gap artificially by checking histogram afterwards.
        forest.adapt([BlockID(0, (0, 0))])
        forest.adapt([BlockID(1, (0, 0))])
        p.init_forest(forest)
        sim = SubcycledSimulation(forest, p.scheme)
        run_to(sim, 0.02)
        for b in sim.forest:
            assert np.all(np.isfinite(b.interior))
        assert sim.time == pytest.approx(0.02)


class TestUniformEquivalence:
    def test_single_level_matches_global_bitwise(self):
        """On a uniform forest subcycling degenerates to exactly the
        global midpoint step — the results must be bit-identical."""
        results = []
        for cls in (Simulation, SubcycledSimulation):
            p = advecting_pulse(2)
            forest = p.config.make_forest(p.scheme.nvar)
            p.init_forest(forest)
            sim = cls(forest, p.scheme)
            for _ in range(5):
                sim.advance(1e-3)
            results.append({b.id: b.interior.copy() for b in sim.forest})
        serial, subcycled = results
        for bid in serial:
            np.testing.assert_array_equal(serial[bid], subcycled[bid])

# ---------------------------------------------------------------------------
# first-class driver mode (Simulation(subcycle=True)): engines, backends,
# reflux conservation, and regressions for the old stub's correctness holes
# ---------------------------------------------------------------------------

from repro.amr.config import SimulationConfig
from repro.amr.subcycle import interval_spans, level_divisors
from repro.solvers import AdvectionScheme
from repro.solvers.euler import EulerScheme
from repro.solvers.mhd import MHDScheme
from repro.solvers.shallow_water import ShallowWaterScheme
from repro.util.geometry import Box

BACKENDS = ("numpy", "numba")
ENGINES = ("blocked", "batched")


def require_backend(backend):
    """Skip (not fail) a numba leg in environments without the extra."""
    if backend != "numpy":
        pytest.importorskip(backend)
    return backend


def build_sim(levels=3, **kw):
    """Multi-level pulse forest driven by ``Simulation(**kw)``."""
    p = advecting_pulse(2)
    forest = p.config.make_forest(p.scheme.nvar)
    forest.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
    if levels >= 3:
        forest.adapt([BlockID(1, (1, 1))])
    p.init_forest(forest)
    return p, Simulation(forest, p.scheme, **kw)


def assert_forests_identical(a, b):
    assert sorted(a.blocks) == sorted(b.blocks)
    for bid in a.blocks:
        np.testing.assert_array_equal(
            a.blocks[bid].interior, b.blocks[bid].interior, err_msg=str(bid)
        )


class TestFirstClassMode:
    def test_shim_matches_flag_bitwise(self):
        _, flagged = build_sim(3, subcycle=True)
        p = advecting_pulse(2)
        forest = p.config.make_forest(p.scheme.nvar)
        forest.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
        forest.adapt([BlockID(1, (1, 1))])
        p.init_forest(forest)
        shim = SubcycledSimulation(forest, p.scheme)
        assert shim.subcycle
        for _ in range(3):
            dt = flagged.stable_dt()
            assert shim.stable_dt() == dt
            flagged.advance(dt)
            shim.advance(dt)
        assert_forests_identical(flagged.forest, shim.forest)

    def test_config_threads_through_problem_build(self):
        p = advecting_pulse(2)
        assert SimulationConfig.__dataclass_fields__["subcycle"].default is False
        with p.build(adaptive=False, subcycle=True) as sim:
            assert sim.subcycle
        p.config.subcycle = True
        with p.build(adaptive=False) as sim:
            assert sim.subcycle
        with p.build(adaptive=False, subcycle=False) as sim:
            assert not sim.subcycle


def build_euler_floored(levels=3, rho_floor=1.6, **kw):
    """Euler forest whose initial density dips *below* ``rho_floor``, so
    any update stage that skips ``apply_floors`` leaves cells under it."""
    cfg = SimulationConfig(
        domain=Box((0.0, 0.0), (1.0, 1.0)),
        n_root=(2, 2),
        m=(8, 8),
        periodic=(True, True),
        max_level=3,
    )
    scheme = EulerScheme(2, rho_floor=rho_floor)
    forest = cfg.make_forest(scheme.nvar)
    forest.adapt([BlockID(0, (0, 0))])
    if levels >= 3:
        forest.adapt([BlockID(1, (0, 0))])
    for b in forest:
        x, y = b.meshgrid()
        w = np.empty((scheme.nvar,) + x.shape)
        w[0] = 1.5 + 0.4 * np.sin(2 * np.pi * x) * np.sin(2 * np.pi * y)
        w[1] = 0.2
        w[2] = 0.1
        w[3] = 1.0
        b.interior[...] = scheme.prim_to_cons(w)
    return Simulation(forest, scheme, **kw)


class TestFloorsUnderSubcycling:
    """Regression: the old subcycled corrector wrote ``u_old + dt*rate``
    without ever calling ``scheme.apply_floors``, so configured floors
    were silently ignored on every final stage."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_floors_enforced_after_every_substep(self, engine):
        sim = build_euler_floored(3, subcycle=True, engine=engine)
        floor = sim.scheme.rho_floor
        assert min(float(b.interior[0].min()) for b in sim.forest) < floor
        for _ in range(2):
            sim.advance(sim.stable_dt())
        worst = min(float(b.interior[0].min()) for b in sim.forest)
        assert worst >= floor - 1e-12

    @pytest.mark.parametrize("engine", ENGINES)
    def test_floored_engines_bitwise_identical(self, engine):
        del engine  # parametrization documents both run below
        sims = {}
        for eng in ENGINES:
            sim = build_euler_floored(3, subcycle=True, engine=eng)
            for _ in range(2):
                sim.advance(sim.stable_dt())
            sims[eng] = sim
        assert_forests_identical(
            sims["blocked"].forest, sims["batched"].forest
        )


class TestSanitizerUnderSubcycling:
    """Regression: the old ``advance`` skipped ``_finish_advance``, so
    ``sanitize=True`` never ran the post-stage interior check."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_after_stage_runs_every_substep(self, engine):
        _, sim = build_sim(3, subcycle=True, engine=engine, sanitize=True)
        assert sim.sanitizer is not None
        calls = []
        orig = sim.sanitizer.after_stage

        def spy(blocks):
            calls.append(1)
            orig(blocks)

        sim.sanitizer.after_stage = spy
        n = 3
        for _ in range(n):
            sim.advance(sim.stable_dt())
        levels = sorted(sim.forest.level_histogram())
        divisor = level_divisors(levels)
        substeps = sum(divisor[lvl] for lvl in levels)
        # one check per (level, substep) plus one in _finish_advance
        assert len(calls) == n * (substeps + 1)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sanitized_run_bitwise_identical(self, engine):
        _, plain = build_sim(3, subcycle=True, engine=engine)
        _, sane = build_sim(3, subcycle=True, engine=engine, sanitize=True)
        for _ in range(3):
            dt = plain.stable_dt()
            assert sane.stable_dt() == dt
            plain.advance(dt)
            sane.advance(dt)
        assert_forests_identical(plain.forest, sane.forest)


class TestEngineAndBackendRouting:
    """Regression: the old stub silently ignored ``engine=`` and
    ``kernel_backend=`` — bogus values sailed through and ``batched``
    quietly ran the blocked path."""

    def test_unknown_engine_raises(self):
        p = advecting_pulse(2)
        forest = p.config.make_forest(p.scheme.nvar)
        p.init_forest(forest)
        with pytest.raises(ValueError, match="engine"):
            SubcycledSimulation(forest, p.scheme, engine="vectorized")

    def test_unknown_kernel_backend_raises(self):
        p = advecting_pulse(2)
        forest = p.config.make_forest(p.scheme.nvar)
        p.init_forest(forest)
        with pytest.raises(ValueError, match="backend"):
            SubcycledSimulation(forest, p.scheme, kernel_backend="fortran")

    def test_batched_engine_actually_batches(self):
        """The batched subcycled sweep compacts the arena level-major:
        after an advance every level is a contiguous run of rows."""
        _, sim = build_sim(3, subcycle=True, engine="batched")
        sim.advance(sim.stable_dt())
        blocks = [sim.forest.blocks[bid] for bid in sim.forest.sorted_ids()]
        blocks.sort(key=lambda b: b.level)
        assert [b.arena_row for b in blocks] == list(range(len(blocks)))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_engines_bitwise_identical_multilevel(self, backend):
        require_backend(backend)
        sims = {}
        for engine in ENGINES:
            _, sim = build_sim(
                3, subcycle=True, engine=engine, kernel_backend=backend
            )
            dts = []
            for _ in range(4):
                dt = sim.stable_dt()
                dts.append(dt)
                sim.advance(dt)
            sims[engine] = (sim, dts)
        (a, dts_a), (b, dts_b) = sims["blocked"], sims["batched"]
        assert dts_a == dts_b
        assert_forests_identical(a.forest, b.forest)


class TestInterpToleranceAndState:
    """Regression: the old ``_interp_fill`` used an absolute ``1e-14``
    time tolerance (misclassifying spanning intervals at tiny dt) and
    ``advance`` left the ``_t_old``/``_t_new`` dicts populated."""

    def test_interval_spans_is_dt_relative(self):
        # A tiny step still spans its own start (the old absolute
        # epsilon said it did not once dt < 1e-14).
        assert interval_spans(0.0, 0.0, 1e-15)
        assert interval_spans(0.0, 0.0, 1e-300)
        # The interval end and degenerate intervals never span.
        assert not interval_spans(1e-15, 0.0, 1e-15)
        assert not interval_spans(0.5, 0.5, 0.5)
        # Within the relative tolerance of the end: treated as the end.
        assert not interval_spans(1.0 + 1e-9 - 1e-22, 1.0, 1.0 + 1e-9)
        # Scale invariance: same classification at any magnitude.
        for scale in (1e-12, 1.0, 1e12):
            assert interval_spans(0.25 * scale, 0.0, scale)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_tiny_dt_multilevel_finite(self, engine):
        _, sim = build_sim(3, subcycle=True, engine=engine)
        before = {b.id: b.interior.copy() for b in sim.forest}
        sim.advance(1e-13)
        assert sim.time == pytest.approx(1e-13)
        for b in sim.forest:
            assert np.all(np.isfinite(b.interior))
            # a 1e-13 step must still be a real (interpolated) update,
            # not a frozen state from misclassified intervals
            assert b.interior.shape == before[b.id].shape

    def test_no_stale_per_step_state(self):
        """Per-step interpolation state lives and dies with one advance:
        nothing keyed by BlockID survives to go stale across adapts."""
        _, sim = build_sim(3, subcycle=True)
        sim.advance(sim.stable_dt())
        for attr in ("_u_old", "_t_old", "_t_new"):
            assert not hasattr(sim, attr)
        levels = sorted(sim.forest.level_histogram())
        assert sim._last_substeps == level_divisors(levels)

    def test_level_divisors_shared_and_sparse(self):
        assert level_divisors([0, 1, 2]) == {0: 1, 1: 2, 2: 4}
        assert level_divisors([0, 2, 5]) == {0: 1, 2: 4, 5: 32}
        assert level_divisors([3]) == {3: 1}
        _, sim = build_sim(3, subcycle=True)
        hist = sim.forest.level_histogram()
        divisor = level_divisors(sorted(hist))
        assert sim.updates_per_step() == sum(
            hist[lvl] * divisor[lvl] for lvl in hist
        )


class TestSubcycledReflux:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_conservation_matches_global_reflux(self, engine):
        """Time-weighted per-substep flux accumulation keeps subcycled
        AMR runs conservative to round-off, exactly like global-dt
        refluxing."""
        totals = {}
        t_end = 0.05
        for subcycle in (False, True):
            _, sim = build_sim(
                3, subcycle=subcycle, engine=engine, reflux=True
            )
            m0 = sim.total()
            run_to(sim, t_end)
            totals[subcycle] = (m0, sim.total())
        for m0, m1 in totals.values():
            assert abs(m1 - m0) < 1e-13
        assert abs(totals[True][1] - totals[False][1]) < 1e-13

    def test_unrefluxed_drift_is_visible(self):
        """Control: without the register the same run drifts measurably,
        so the conservation assertion above has teeth."""
        _, sim = build_sim(3, subcycle=True, reflux=False)
        m0 = sim.total()
        run_to(sim, 0.05)
        assert abs(sim.total() - m0) > 1e-9


class TestMidRunAdaptation:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_subcycled_run_adapts(self, engine):
        p = advecting_pulse(2)
        with p.build(subcycle=True, engine=engine) as sim:
            for _ in range(6):
                sim.step()
            assert any(r.adapted is not None for r in sim.history)
            for b in sim.forest:
                assert np.all(np.isfinite(b.interior))

    def test_adapting_engines_bitwise_identical(self):
        sims = {}
        for engine in ENGINES:
            p = advecting_pulse(2)
            sim = p.build(subcycle=True, engine=engine)
            with sim:
                for _ in range(6):
                    sim.step()
            sims[engine] = sim
        a, b = sims["blocked"], sims["batched"]
        assert [r.dt for r in a.history] == [r.dt for r in b.history]
        assert_forests_identical(a.forest, b.forest)


class TestUniformDegeneracyMatrix:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_subcycled_equals_global_bitwise(self, engine, backend):
        """On a uniform forest subcycling degenerates to the global
        stepper exactly, per engine and kernel backend."""
        require_backend(backend)
        results = {}
        for subcycle in (False, True):
            p = advecting_pulse(2)
            forest = p.config.make_forest(p.scheme.nvar)
            p.init_forest(forest)
            sim = Simulation(
                forest,
                p.scheme,
                subcycle=subcycle,
                engine=engine,
                kernel_backend=backend,
            )
            for _ in range(5):
                sim.advance(1e-3)
            results[subcycle] = sim.forest
        assert_forests_identical(results[False], results[True])


def _init_matrix_state(scheme, forest):
    for b in forest:
        x, y = b.meshgrid()
        bump = np.exp(-((x - 0.5) ** 2 + (y - 0.5) ** 2) / 0.02)
        w = np.empty((scheme.nvar,) + x.shape)
        if scheme.nvar == 1:          # advection
            w[0] = 0.1 + bump
            b.interior[...] = w
            continue
        if scheme.nvar == 3:          # shallow water
            w[0] = 1.0 + 0.2 * bump
            w[1] = 0.1
            w[2] = 0.05
        elif scheme.nvar == 4:        # euler
            w[0] = 1.0 + 0.2 * bump
            w[1] = 0.1
            w[2] = 0.05
            w[3] = 1.0
        else:                         # mhd (8)
            w[0] = 1.0 + 0.2 * bump
            w[1:4] = 0.1
            w[4] = 1.0
            w[5:8] = 0.2
        b.interior[...] = scheme.prim_to_cons(w)


MATRIX_SCHEMES = {
    "advection-o1": lambda: AdvectionScheme((1.0, 0.5), order=1),
    "advection-minmod": lambda: AdvectionScheme(
        (1.0, 0.5), order=2, limiter="minmod"
    ),
    "euler": lambda: EulerScheme(2),
    "shallow-water": lambda: ShallowWaterScheme(2),
    "mhd-mc": lambda: MHDScheme(2, limiter="mc"),
}


class TestPhysicsMatrix:
    """Tentpole acceptance: subcycled blocked and batched engines are
    bit-for-bit identical across physics x order x limiter x backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(MATRIX_SCHEMES))
    def test_engines_bitwise_identical(self, name, backend):
        require_backend(backend)
        sims = {}
        for engine in ENGINES:
            scheme = MATRIX_SCHEMES[name]()
            cfg = SimulationConfig(
                domain=Box((0.0, 0.0), (1.0, 1.0)),
                n_root=(2, 2),
                m=(8, 8),
                periodic=(True, True),
                max_level=2,
            )
            forest = cfg.make_forest(scheme.nvar)
            forest.adapt([BlockID(0, (1, 1))])
            _init_matrix_state(scheme, forest)
            sim = Simulation(
                forest,
                scheme,
                subcycle=True,
                engine=engine,
                kernel_backend=backend,
            )
            dts = []
            for _ in range(2):
                dt = sim.stable_dt()
                dts.append(dt)
                sim.advance(dt)
            sims[engine] = (sim, dts)
        (a, dts_a), (b, dts_b) = sims["blocked"], sims["batched"]
        assert dts_a == dts_b
        assert_forests_identical(a.forest, b.forest)


class TestRankKillRecovery:
    def test_recovered_run_matches_subcycled_serial(self, tmp_path):
        """Degeneracy bridge: on a uniform forest the subcycled serial
        driver, the global serial driver, and the emulated machine with
        a mid-run rank kill + local recovery all agree bit-for-bit."""
        from repro.parallel import EmulatedMachine
        from repro.resilience import (
            Checkpointer,
            FaultPlan,
            RankKill,
            run_with_recovery,
        )

        def make_forest():
            from repro.core import BlockForest

            forest = BlockForest(
                Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=1,
                n_ghost=2, periodic=(True, True),
            )
            rng = np.random.default_rng(3)
            for b in forest:
                b.interior[...] = rng.random(b.interior.shape)
            return forest

        serial = Simulation(
            make_forest(), AdvectionScheme((1.0, 0.5), order=2),
            subcycle=True,
        )
        for _ in range(4):
            serial.advance(1e-3)

        plan = FaultPlan(kills=[RankKill(step=2, rank=1)])
        emu = EmulatedMachine(
            make_forest(), 4, AdvectionScheme((1.0, 0.5), order=2),
            fault_plan=plan,
        )
        report = run_with_recovery(
            emu, n_steps=4, dt=1e-3,
            checkpointer=Checkpointer(tmp_path / "ckpt"), strategy="local",
        )
        assert report.n_recoveries
        state = emu.gather()
        assert sorted(state) == sorted(serial.forest.blocks)
        for bid, arr in state.items():
            np.testing.assert_array_equal(
                arr, serial.forest.blocks[bid].interior, err_msg=str(bid)
            )
