"""Tests for time-step subcycling (repro.amr.subcycle)."""

import numpy as np
import pytest

from repro.amr import Simulation, advecting_pulse
from repro.amr.subcycle import SubcycledSimulation
from repro.core import BlockID


def build(cls, levels=2):
    p = advecting_pulse(2)
    forest = p.config.make_forest(p.scheme.nvar)
    p.init_forest(forest)
    forest.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
    if levels >= 2:
        forest.adapt([BlockID(1, (1, 1))])
    p.init_forest(forest)
    return p, cls(forest, p.scheme)


def run_to(sim, t_end):
    while sim.time < t_end - 1e-12:
        dt = min(sim.stable_dt(), t_end - sim.time)
        sim.advance(dt)


class TestStableDt:
    def test_coarse_dt_larger_than_global(self):
        _, sim_g = build(Simulation)
        _, sim_s = build(SubcycledSimulation)
        from repro.solvers.timestep import stable_dt

        dt_global = stable_dt(sim_g.forest, sim_g.scheme)
        dt_coarse = sim_s.stable_dt()
        # Two levels present -> the coarse step is twice the fine limit.
        assert dt_coarse == pytest.approx(2.0 * dt_global, rel=1e-9)

    def test_uniform_forest_matches_global(self):
        p = advecting_pulse(2)
        forest = p.config.make_forest(p.scheme.nvar)
        p.init_forest(forest)
        sim = SubcycledSimulation(forest, p.scheme)
        from repro.solvers.timestep import stable_dt

        assert sim.stable_dt() == pytest.approx(
            stable_dt(forest, p.scheme), rel=1e-12
        )


class TestAccuracy:
    def test_comparable_to_global_stepping(self):
        t_end = 0.08
        p, sim_g = build(Simulation)
        sim_g.run(t_end=t_end, dt_max=2e-3)
        err_g = sim_g.error_vs(p.exact(t_end))
        p, sim_s = build(SubcycledSimulation)
        run_to(sim_s, t_end)
        err_s = sim_s.error_vs(p.exact(t_end))
        assert err_s < 2.0 * err_g + 1e-5

    def test_constant_state_preserved(self):
        _, sim = build(SubcycledSimulation)
        for b in sim.forest:
            b.interior[...] = 4.0
        run_to(sim, 0.05)
        for b in sim.forest:
            np.testing.assert_allclose(b.interior, 4.0, rtol=1e-12)

    def test_finite_and_bounded(self):
        _, sim = build(SubcycledSimulation)
        run_to(sim, 0.1)
        for b in sim.forest:
            assert np.all(np.isfinite(b.interior))
            assert b.interior.max() < 1.5  # TVD-ish: no blowup

    def test_mass_drift_small(self):
        _, sim = build(SubcycledSimulation)
        m0 = sim.total()
        run_to(sim, 0.08)
        assert abs(sim.total() - m0) / m0 < 1e-2

    def test_time_advances_exactly(self):
        _, sim = build(SubcycledSimulation)
        sim.advance(1e-3)
        assert sim.time == pytest.approx(1e-3)


class TestWorkSavings:
    def test_fewer_updates_than_global(self):
        """The point of subcycling: per unit physical time, coarse blocks
        take exponentially fewer steps."""
        t_end = 0.06
        p, sim_g = build(Simulation)
        sim_g.run(t_end=t_end)
        global_updates = sim_g.step_count * sim_g.forest.n_blocks

        _, sim_s = build(SubcycledSimulation)
        coarse_steps = 0
        while sim_s.time < t_end - 1e-12:
            dt = min(sim_s.stable_dt(), t_end - sim_s.time)
            sim_s.advance(dt)
            coarse_steps += 1
        sub_updates = coarse_steps * sim_s.updates_per_step()
        assert sub_updates < 0.7 * global_updates

    def test_updates_per_step_counts_levels(self):
        _, sim = build(SubcycledSimulation)
        hist = sim.forest.level_histogram()
        levels = sorted(hist)
        expect = sum(hist[l] * (1 << (l - levels[0])) for l in levels)
        assert sim.updates_per_step() == expect


class TestSparseLevels:
    def test_level_gap_handled(self):
        """Levels {0, 2} with no level-1 blocks: the finer group takes
        four substeps of dt/4."""
        p = advecting_pulse(2)
        forest = p.config.make_forest(p.scheme.nvar)
        p.init_forest(forest)
        # Refine one block twice; its siblings keep level 1 around it,
        # so build a gap artificially by checking histogram afterwards.
        forest.adapt([BlockID(0, (0, 0))])
        forest.adapt([BlockID(1, (0, 0))])
        p.init_forest(forest)
        sim = SubcycledSimulation(forest, p.scheme)
        run_to(sim, 0.02)
        for b in sim.forest:
            assert np.all(np.isfinite(b.interior))
        assert sim.time == pytest.approx(0.02)


class TestUniformEquivalence:
    def test_single_level_matches_global_bitwise(self):
        """On a uniform forest subcycling degenerates to exactly the
        global midpoint step — the results must be bit-identical."""
        results = []
        for cls in (Simulation, SubcycledSimulation):
            p = advecting_pulse(2)
            forest = p.config.make_forest(p.scheme.nvar)
            p.init_forest(forest)
            sim = cls(forest, p.scheme)
            for _ in range(5):
                sim.advance(1e-3)
            results.append({b.id: b.interior.copy() for b in sim.forest})
        serial, subcycled = results
        for bid in serial:
            np.testing.assert_array_equal(serial[bid], subcycled[bid])
