"""Tests for the cache simulator and Figure-5 cost model."""

import numpy as np
import pytest

from repro.machine import (
    ALPHA_21064_L1,
    CacheSpec,
    DirectMappedCache,
    T3DCostParams,
    fig5_model_curve,
    stencil_misses,
    stencil_stream,
    time_per_cell,
)


class TestCacheSpec:
    def test_t3d_geometry(self):
        assert ALPHA_21064_L1.n_lines == 256
        assert ALPHA_21064_L1.words_per_line == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheSpec(0, 32)
        with pytest.raises(ValueError):
            CacheSpec(100, 32)


class TestDirectMappedCache:
    def test_cold_miss_then_hit(self):
        c = DirectMappedCache()
        assert not c.access(0)
        assert c.access(0)
        assert c.access(3)  # same 4-word line
        assert not c.access(4)  # next line
        assert c.misses == 2 and c.hits == 2

    def test_conflict_eviction(self):
        c = DirectMappedCache()
        stride = c.spec.n_lines * c.spec.words_per_line  # same index, new tag
        assert not c.access(0)
        assert not c.access(stride)
        assert not c.access(0)  # evicted by the aliasing access
        assert c.misses == 3

    def test_run_stream_matches_scalar_access(self):
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 5000, size=400)
        c1 = DirectMappedCache()
        c1.run_stream(stream)
        c2 = DirectMappedCache()
        for a in stream:
            c2.access(int(a))
        assert c1.misses == c2.misses

    def test_sequential_stream_miss_rate(self):
        # Pure streaming: one miss per line.
        c = DirectMappedCache()
        c.run_stream(np.arange(4096))
        assert c.misses == 1024
        assert c.miss_rate == pytest.approx(0.25)

    def test_reset(self):
        c = DirectMappedCache()
        c.access(0)
        c.reset()
        assert c.accesses == 0
        assert not c.access(0)


class TestStencilStream:
    def test_stream_length(self):
        m, nvar = 4, 8
        s = stencil_stream(m, nvar=nvar)
        # 7 reads + 1 write per variable per cell.
        assert len(s) == m**3 * nvar * 8

    def test_subblocking_preserves_accesses(self):
        full = stencil_stream(8)
        tiled = stencil_stream(8, subblock=4)
        assert len(full) == len(tiled)
        assert sorted(full.tolist()) == sorted(tiled.tolist())

    def test_padding_changes_addresses_not_count(self):
        a = stencil_stream(4, pad=0)
        b = stencil_stream(4, pad=1)
        assert len(a) == len(b)
        assert not np.array_equal(a, b)


class TestFig5Model:
    def test_aliasing_peak_at_12(self):
        """The paper's 12^3 peak: padded 16^3 variable arrays alias in
        the 8KB direct-mapped cache -> ~100% miss rate."""
        miss12, acc12 = stencil_misses(12)
        miss10, acc10 = stencil_misses(10)
        assert miss12 / acc12 > 0.9
        assert miss10 / acc10 < 0.3

    def test_padding_removes_the_12_peak(self):
        """Paper: 'the peak at 12^3 can be removed by padding the array
        with an additional surface of cells.'"""
        t_plain = time_per_cell(12)
        t_padded = time_per_cell(12, pad=1)
        assert t_padded < 0.7 * t_plain

    def test_subblocking_reduces_misses_at_32(self):
        """Paper: 'the peak at 32^3 can be reduced by data mining the
        larger blocks into smaller ones ... optimal at sub-block size
        14^3.'"""
        m_full, a = stencil_misses(32)
        m_tiled, _ = stencil_misses(32, subblock=14)
        assert m_tiled < m_full

    def test_overall_shape_drop_then_plateau(self):
        """Fig. 5's dominant feature: time/cell drops dramatically from
        tiny blocks (per-block overhead), then flattens."""
        curve = fig5_model_curve([2, 4, 8, 16])
        assert curve[2] > 2.0 * curve[8]
        assert abs(curve[16] - curve[8]) < 0.3 * curve[8]

    def test_more_than_3x_over_2cubed(self):
        """Paper: 'more than a factor of 3 improvement over the 2x2x2
        case' at the plateau-optimal block size."""
        curve = fig5_model_curve([2, 16])
        assert curve[2] / curve[16] > 2.0  # conservative bound

    def test_params_scale_linearly(self):
        p1 = T3DCostParams()
        p2 = T3DCostParams(flops_per_cell=2 * p1.flops_per_cell)
        t1 = time_per_cell(8, p1)
        t2 = time_per_cell(8, p2)
        assert t2 - t1 == pytest.approx(p1.flops_per_cell * p1.t_flop, rel=1e-6)
