"""Tests for the observability layer (repro.obs).

Covers the metrics registry, the JSONL event recorder and its schema
validator, report rendering, the bench-comparison helper, and the
load-bearing contract of the whole subsystem: an instrumented run is
bit-for-bit identical to an uninstrumented one on both engines.
"""

import io
import json

import numpy as np
import pytest

from repro.amr import advecting_pulse
from repro.core import BlockForest
from repro.obs import (
    EVENT_SCHEMA,
    METRICS,
    MetricsRegistry,
    RunRecorder,
    SCHEMA_VERSION,
    Summary,
    compare_to_bench,
    engine_comparison,
    phase_breakdown,
    read_events,
    render_report,
    top_blocks_lines,
    validate_events,
)
from repro.util.benchio import make_bench_record, write_bench_json
from repro.util.geometry import Box


@pytest.fixture(autouse=True)
def clean_global_registry():
    """Tests toggle the process-global METRICS; always restore it."""
    yield
    METRICS.disable()
    METRICS.reset()


def scripted_clock(*times):
    """A clock callable yielding the given instants in order."""
    it = iter(times)
    return lambda: next(it)


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestSummary:
    def test_running_stats(self):
        s = Summary()
        for v in (2.0, -1.0, 5.0):
            s.add(v)
        assert s.count == 3
        assert s.total == pytest.approx(6.0)
        assert s.mean == pytest.approx(2.0)
        assert s.vmin == -1.0
        assert s.vmax == 5.0

    def test_empty_as_dict_has_finite_bounds(self):
        d = Summary().as_dict()
        assert d["count"] == 0
        assert d["min"] == 0.0 and d["max"] == 0.0
        assert d["mean"] == 0.0


class TestMetricsRegistry:
    def test_disabled_mutators_record_nothing(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.gauge("b", 1.0)
        reg.observe("c", 2.0)
        assert not reg.counters and not reg.gauges and not reg.summaries

    def test_enabled_mutators(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("hits")
        reg.inc("hits", 4)
        reg.gauge("cap", 32)
        reg.gauge("cap", 64)
        reg.observe("dt", 0.1)
        reg.observe("dt", 0.3)
        assert reg.counters["hits"] == 5
        assert reg.gauges["cap"] == 64.0
        assert reg.summaries["dt"].mean == pytest.approx(0.2)

    def test_reset_keeps_enabled_flag(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("x")
        reg.reset()
        assert reg.enabled
        assert not reg.counters

    def test_enabled_scope_restores_state(self):
        reg = MetricsRegistry()
        with reg.enabled_scope():
            reg.inc("inside")
        reg.inc("outside")
        assert reg.counters == {"inside": 1}
        assert not reg.enabled

    def test_enabled_scope_restores_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.enabled_scope():
                raise RuntimeError("boom")
        assert not reg.enabled

    def test_snapshot_is_json_ready_copy(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("n")
        reg.observe("v", 1.5)
        snap = reg.snapshot()
        json.dumps(snap)  # must serialize
        reg.inc("n")
        assert snap["counters"]["n"] == 1  # copy, not a view
        assert snap["summaries"]["v"]["count"] == 1


class TestHotPathInstrumentation:
    def test_arena_counters_and_gauges(self):
        with METRICS.enabled_scope():
            METRICS.reset()
            forest = BlockForest(
                Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (4, 4), nvar=1,
                n_ghost=2, periodic=(True, True), max_level=2,
            )
            forest.adapt(list(forest.blocks))  # forces growth
            snap = METRICS.snapshot()
        assert snap["counters"]["arena.acquires"] >= 4
        assert snap["counters"]["arena.grows"] >= 1
        assert snap["gauges"]["arena.capacity"] > 0
        assert 0.0 < snap["gauges"]["arena.occupancy"] <= 1.0

    def test_driver_and_ghost_metrics(self):
        with METRICS.enabled_scope():
            METRICS.reset()
            with advecting_pulse(2).build(engine="batched") as sim:
                sim.run(n_steps=2)
            snap = METRICS.snapshot()
        assert snap["counters"]["step.count"] == 2
        assert snap["counters"]["ghost.plan_misses"] >= 1
        assert snap["counters"]["ghost.plan_hits"] >= 1
        assert snap["summaries"]["step.dt"]["count"] == 2


# ---------------------------------------------------------------------------
# recorder + schema
# ---------------------------------------------------------------------------


class TestRunRecorder:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunRecorder(path, clock=scripted_clock(1.0, 2.0)) as rec:
            rec.emit("meta", source="test")
            rec.emit("step", step=1, t_sim=0.1, dt=0.1,
                     n_blocks=4, n_cells=64)
        events = read_events(path)
        assert [e["kind"] for e in events] == ["meta", "step"]
        assert [e["t"] for e in events] == [1.0, 2.0]
        assert all(e["v"] == SCHEMA_VERSION for e in events)
        assert validate_events(events) == []

    def test_stream_target_not_closed(self):
        buf = io.StringIO()
        with RunRecorder(buf, clock=scripted_clock(0.0)) as rec:
            rec.emit("meta", source="test")
        assert not buf.closed
        assert json.loads(buf.getvalue())["source"] == "test"

    def test_unknown_kind_rejected(self):
        rec = RunRecorder(io.StringIO())
        with pytest.raises(ValueError, match="unknown event kind"):
            rec.emit("explosion", boom=True)

    def test_missing_required_field_rejected(self):
        rec = RunRecorder(io.StringIO())
        with pytest.raises(ValueError, match="requires field"):
            rec.emit("step", step=1)

    def test_extra_fields_allowed(self):
        buf = io.StringIO()
        RunRecorder(buf, clock=scripted_clock(0.0)).emit(
            "exchange", n_messages=2, n_bytes=100, n_retries=1)
        assert json.loads(buf.getvalue())["n_retries"] == 1

    def test_emit_after_close_rejected(self, tmp_path):
        rec = RunRecorder(tmp_path / "r.jsonl")
        rec.close()
        rec.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            rec.emit("meta", source="late")

    def test_crashed_run_leaves_parseable_prefix(self, tmp_path):
        path = tmp_path / "crash.jsonl"
        rec = RunRecorder(path, clock=scripted_clock(0.0, 1.0))
        rec.emit("meta", source="test")
        rec.emit("adapt", step=1, refined=4, coarsened=0)
        # simulate a truncated final line from a crash
        with path.open("a") as f:
            f.write('{"v": 1, "t": 2.0, "ki')
        with pytest.raises(ValueError, match="not valid JSON"):
            read_events(path)


class TestValidateEvents:
    def _ok(self, **over):
        ev = {"v": SCHEMA_VERSION, "t": 1.0, "kind": "meta", "source": "x"}
        ev.update(over)
        return ev

    def test_valid_stream(self):
        assert validate_events([self._ok(), self._ok(t=2.0)]) == []

    def test_missing_envelope(self):
        problems = validate_events([{"kind": "meta", "source": "x"}])
        assert any("missing envelope field 'v'" in p for p in problems)
        assert any("missing envelope field 't'" in p for p in problems)

    def test_wrong_version(self):
        problems = validate_events([self._ok(v=99)])
        assert any("schema version" in p for p in problems)

    def test_unknown_kind(self):
        problems = validate_events([self._ok(kind="warp")])
        assert problems == ["event 0: unknown kind 'warp'"]

    def test_missing_payload_field(self):
        ev = {"v": SCHEMA_VERSION, "t": 1.0, "kind": "recovery", "step": 3}
        problems = validate_events([ev])
        assert len(problems) == 1
        assert "fault" in problems[0] and "strategy" in problems[0]

    def test_decreasing_timestamps_flagged(self):
        problems = validate_events([self._ok(t=5.0), self._ok(t=4.0)])
        assert any("decreases" in p for p in problems)

    def test_non_numeric_timestamp_flagged(self):
        problems = validate_events([self._ok(t="noon")])
        assert any("not a number" in p for p in problems)

    def test_every_schema_kind_is_emittable(self):
        payloads = {
            "meta": {"source": "s"},
            "step": {"step": 1, "t_sim": 0.0, "dt": 0.1,
                     "n_blocks": 1, "n_cells": 16},
            "adapt": {"step": 1, "refined": 0, "coarsened": 0},
            "exchange": {"n_messages": 0, "n_bytes": 0},
            "recovery": {"step": 1, "fault": "rank-failure",
                         "strategy": "local", "replayed_steps": 1},
            "profile": {"engine": "blocked", "wall_s": 0.1, "phases": {}},
            "summary": {"engines": {}},
            "supervisor": {"event": "rank-death", "rank": 1},
            "corruption": {"step": 2, "regions": ["interior"],
                           "action": "mirror-repair"},
        }
        assert set(payloads) == set(EVENT_SCHEMA)
        buf = io.StringIO()
        rec = RunRecorder(buf, clock=scripted_clock(*range(len(payloads))))
        for kind, payload in payloads.items():
            rec.emit(kind, **payload)
        events = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert validate_events(events) == []


# ---------------------------------------------------------------------------
# instrumentation must not perturb the simulation
# ---------------------------------------------------------------------------


class TestBitForBit:
    @pytest.mark.parametrize("engine", ["blocked", "batched"])
    def test_instrumented_run_identical(self, engine, tmp_path):
        problem = advecting_pulse(2)
        with problem.build(engine=engine) as plain:
            plain.run(n_steps=4)
        with METRICS.enabled_scope(), \
                RunRecorder(tmp_path / "run.jsonl") as rec, \
                problem.build(engine=engine) as instrumented:
            instrumented.recorder = rec
            instrumented.enable_block_profile()
            instrumented.run(n_steps=4)
        assert sorted(plain.forest.blocks) == sorted(
            instrumented.forest.blocks)
        for bid in plain.forest.blocks:
            np.testing.assert_array_equal(
                plain.forest.blocks[bid].interior,
                instrumented.forest.blocks[bid].interior,
            )
        # the stream recorded the run and validates clean
        events = read_events(tmp_path / "run.jsonl")
        steps = [e for e in events if e["kind"] == "step"]
        assert len(steps) == 4
        assert steps[-1]["engine"] == engine
        assert validate_events(events) == []

    @pytest.mark.parametrize("engine", ["blocked", "batched"])
    def test_instrumented_sanitized_run_identical(self, engine):
        # The sanitizer already reproduces plain runs bit-for-bit;
        # metrics on top must not break that.
        problem = advecting_pulse(2)
        with problem.build(engine=engine) as plain:
            plain.run(n_steps=3)
        with METRICS.enabled_scope(), \
                problem.build(engine=engine, sanitize=True) as sanitized:
            sanitized.run(n_steps=3)
        for bid in plain.forest.blocks:
            np.testing.assert_array_equal(
                plain.forest.blocks[bid].interior,
                sanitized.forest.blocks[bid].interior,
            )

    def test_instrumented_race_checked_emulation_matches_serial(self):
        from repro.parallel import EmulatedMachine
        from repro.solvers import AdvectionScheme

        scheme = AdvectionScheme((1.0, 0.5), order=2)

        def seeded_forest():
            forest = BlockForest(
                Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=1,
                n_ghost=2, periodic=(True, True),
            )
            rng = np.random.default_rng(5)
            for b in forest:
                b.interior[...] = rng.random(b.interior.shape)
            return forest

        reference = seeded_forest()
        emu_plain = EmulatedMachine(seeded_forest(), 3, scheme)
        with METRICS.enabled_scope():
            emu_obs = EmulatedMachine(seeded_forest(), 3, scheme,
                                      sanitize=True)
            emu_obs.attach_race_detector()
            for _ in range(3):
                emu_plain.advance(1e-3)
                emu_obs.advance(1e-3)
            assert METRICS.counters["exchange.messages"] > 0
        plain, observed = emu_plain.gather(), emu_obs.gather()
        for bid in reference.blocks:
            np.testing.assert_array_equal(plain[bid], observed[bid])

    def test_driver_emits_adapt_events(self, tmp_path):
        problem = advecting_pulse(2)
        with RunRecorder(tmp_path / "run.jsonl") as rec, \
                problem.build() as sim:
            sim.recorder = rec
            sim.run(n_steps=4)
        events = read_events(tmp_path / "run.jsonl")
        adapts = [e for e in events if e["kind"] == "adapt"]
        assert adapts  # the pulse problem adapts within a few steps
        assert all(e["refined"] + e["coarsened"] > 0 for e in adapts)

    def test_block_profile_shapes(self):
        problem = advecting_pulse(2)
        with problem.build(engine="blocked") as sim:
            sim.enable_block_profile()
            sim.run(n_steps=2)
            blocks = sim.block_profile()
        assert blocks
        for entry in blocks:
            assert entry["steps"] >= 1
            assert entry["time_s"] >= 0.0  # blocked engine measures time


class TestRecoveryRecorder:
    def test_recovery_events_recorded(self, tmp_path):
        from repro.parallel import EmulatedMachine
        from repro.resilience import (
            Checkpointer,
            FaultPlan,
            RankKill,
            run_with_recovery,
        )
        from repro.solvers import AdvectionScheme

        forest = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=1,
            n_ghost=2, periodic=(True, True),
        )
        rng = np.random.default_rng(7)
        for b in forest:
            b.interior[...] = rng.random(b.interior.shape)
        plan = FaultPlan(kills=[RankKill(step=2, rank=1)])
        emu = EmulatedMachine(
            forest, 4, AdvectionScheme((1.0, 0.5), order=2), fault_plan=plan)
        path = tmp_path / "rec.jsonl"
        with RunRecorder(path) as rec:
            run_with_recovery(
                emu, n_steps=4, dt=1e-3,
                checkpointer=Checkpointer(tmp_path / "ckpt"),
                strategy="local", recorder=rec,
            )
        events = read_events(path)
        assert validate_events(events) == []
        recoveries = [e for e in events if e["kind"] == "recovery"]
        assert len(recoveries) == 1
        assert recoveries[0]["fault"] == "rank-failure"
        assert recoveries[0]["step"] == 2
        steps = [e for e in events if e["kind"] == "step"]
        assert len(steps) == 4


# ---------------------------------------------------------------------------
# report rendering + bench comparison
# ---------------------------------------------------------------------------


class TestRendering:
    def test_phase_breakdown_sorted_with_fractions(self):
        text = phase_breakdown({"solve": 3.0, "ghosts": 1.0})
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("solve")
        assert "75.0%" in lines[0]
        assert "total (timed phases)" in lines[-1]

    def test_top_blocks_by_time_and_by_steps(self):
        by_time = top_blocks_lines(
            [{"id": "a", "level": 0, "time_s": 0.1},
             {"id": "b", "level": 1, "time_s": 0.5}], k=1)
        assert len(by_time) == 1 and "b" in by_time[0]
        by_steps = top_blocks_lines(
            [{"id": "a", "level": 0, "steps": 2},
             {"id": "b", "level": 1, "steps": 9}], k=2)
        assert "9 steps" in by_steps[0]
        assert top_blocks_lines([], k=3) == ["  (no per-block data)"]

    def test_engine_comparison_speedup_line(self):
        text = engine_comparison([
            {"engine": "blocked", "wall_s": 1.0, "us_per_cell": 4.0},
            {"engine": "batched", "wall_s": 0.5, "us_per_cell": 2.0},
        ])
        assert "batched speedup: 2.00x" in text

    def test_render_report_sections(self):
        events = [
            {"v": 1, "t": 0.0, "kind": "meta", "source": "profile",
             "problem": "pulse"},
            {"v": 1, "t": 1.0, "kind": "step", "step": 1, "t_sim": 0.1,
             "dt": 0.1, "n_blocks": 4, "n_cells": 64},
            {"v": 1, "t": 1.5, "kind": "adapt", "step": 1,
             "refined": 4, "coarsened": 0},
            {"v": 1, "t": 2.0, "kind": "profile", "engine": "blocked",
             "wall_s": 0.5, "us_per_cell": 3.0,
             "phases": {"solve": 0.4, "ghosts": 0.1}, "mflops": 120.0,
             "blocks": [{"id": "b", "level": 1, "time_s": 0.2}]},
            {"v": 1, "t": 3.0, "kind": "exchange", "n_messages": 10,
             "n_bytes": 4096, "n_retries": 2},
            {"v": 1, "t": 4.0, "kind": "recovery", "step": 2,
             "fault": "rank-failure", "strategy": "local",
             "replayed_steps": 1},
        ]
        assert validate_events(events) == []
        text = render_report(events)
        assert "profile run (problem=pulse)" in text
        assert "steps: 1" in text
        assert "adaptations: 1 (+4 refined, -0 coarsened)" in text
        assert "engine: blocked" in text
        assert "120 MFLOP/s" in text
        assert "hottest blocks" in text
        assert "2 retransmissions" in text
        assert "recovery at step 2: rank-failure [local]" in text

    def test_render_report_empty(self):
        assert render_report([]) == "(no events)"


class TestCompareToBench:
    RECORD = {
        "name": "batched_engine",
        "workload": "uniform periodic MHD",
        "cases": [
            {"ndim": 2, "speedup": 5.0,
             "blocked": {"us_per_cell": 10.0},
             "batched": {"us_per_cell": 2.0}},
            {"ndim": 3, "speedup": 2.5,
             "blocked": {"us_per_cell": 30.0},
             "batched": {"us_per_cell": 12.0}},
        ],
    }

    def _prof(self, engine, us, **over):
        p = {"engine": engine, "us_per_cell": us, "ndim": 2,
             "workload": "uniform periodic MHD"}
        p.update(over)
        return p

    def test_within_trajectory(self):
        flags = compare_to_bench(
            [self._prof("blocked", 11.0), self._prof("batched", 2.2)],
            self.RECORD)
        assert flags == []

    def test_us_per_cell_regression_flagged(self):
        flags = compare_to_bench([self._prof("batched", 9.0)], self.RECORD)
        assert len(flags) == 1
        assert "batched: 9.000 us/cell" in flags[0]
        assert "4.50x" in flags[0]

    def test_matches_on_ndim(self):
        # 30 us/cell is fine for the 3-D case but 3x the 2-D best.
        assert compare_to_bench(
            [self._prof("blocked", 30.0, ndim=3)], self.RECORD) == []
        assert compare_to_bench(
            [self._prof("blocked", 30.0, ndim=2)], self.RECORD)

    def test_different_workload_skips_absolute_check(self):
        # us/cell across workloads is meaningless: no flag even at 100x.
        flags = compare_to_bench(
            [self._prof("batched", 200.0, workload="adaptive pulse")],
            self.RECORD)
        assert flags == []

    def test_speedup_floor_is_workload_independent(self):
        flags = compare_to_bench(
            [self._prof("blocked", 10.0, workload="adaptive pulse"),
             self._prof("batched", 10.0, workload="adaptive pulse")],
            self.RECORD)
        assert len(flags) == 1
        assert "speedup 1.00x fell below" in flags[0]
        assert "2.50x worst case" in flags[0]

    def test_missing_record_is_not_a_failure(self, tmp_path):
        assert compare_to_bench(
            [self._prof("batched", 9.0)], None,
            name="nonexistent", directory=tmp_path) == []

    def test_loads_committed_record_from_directory(self, tmp_path):
        path = tmp_path / "BENCH_batched_engine.json"
        path.write_text(json.dumps(self.RECORD))
        flags = compare_to_bench(
            [self._prof("batched", 9.0)], directory=tmp_path)
        assert len(flags) == 1


# ---------------------------------------------------------------------------
# benchio atomic write (satellite bugfix)
# ---------------------------------------------------------------------------


class TestBenchWriteAtomicity:
    def test_write_leaves_no_tmp_file(self, tmp_path):
        record = make_bench_record("t", value=1)
        out = write_bench_json(record, directory=tmp_path)
        write_bench_json(make_bench_record("t", value=2), directory=tmp_path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["BENCH_t.json"]
        assert json.loads(out.read_text())["value"] == 2

    def test_failed_write_preserves_old_record(self, tmp_path):
        write_bench_json(make_bench_record("t", value=1), directory=tmp_path)
        bad = make_bench_record("t", value=object())  # not JSON-serializable
        with pytest.raises(TypeError):
            write_bench_json(bad, directory=tmp_path)
        out = tmp_path / "BENCH_t.json"
        assert json.loads(out.read_text())["value"] == 1
        assert sorted(p.name for p in tmp_path.iterdir()) == ["BENCH_t.json"]
