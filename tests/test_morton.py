"""Tests for space-filling-curve encodings (repro.util.morton)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.morton import (
    MAX_BITS,
    hilbert_decode2,
    hilbert_encode2,
    hilbert_encode3,
    morton_decode,
    morton_decode2,
    morton_decode3,
    morton_encode,
    morton_encode2,
    morton_encode3,
    sfc_key,
)

coords = st.integers(min_value=0, max_value=(1 << MAX_BITS) - 1)


class TestMorton2D:
    def test_origin(self):
        assert morton_encode2(0, 0) == 0

    def test_unit_steps(self):
        # Bit 0 is x, bit 1 is y.
        assert morton_encode2(1, 0) == 1
        assert morton_encode2(0, 1) == 2
        assert morton_encode2(1, 1) == 3

    def test_known_value(self):
        # x=5=0b0101, y=9=0b1001 -> interleaved (y_b x_b) pairs from the
        # high bit: 10 01 00 11 = 0b10010011 = 147.
        assert morton_encode2(5, 9) == 0b10010011

    @given(coords, coords)
    def test_roundtrip(self, i, j):
        assert morton_decode2(morton_encode2(i, j)) == (i, j)

    def test_z_order_locality_within_quads(self):
        # The four cells of any aligned 2x2 quad are consecutive.
        for qi in range(4):
            for qj in range(4):
                keys = sorted(
                    morton_encode2(2 * qi + a, 2 * qj + b)
                    for a in (0, 1)
                    for b in (0, 1)
                )
                assert keys == list(range(keys[0], keys[0] + 4))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            morton_encode2(-1, 0)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            morton_encode2(1 << MAX_BITS, 0)


class TestMorton3D:
    def test_unit_steps(self):
        assert morton_encode3(1, 0, 0) == 1
        assert morton_encode3(0, 1, 0) == 2
        assert morton_encode3(0, 0, 1) == 4
        assert morton_encode3(1, 1, 1) == 7

    @given(coords, coords, coords)
    @settings(max_examples=200)
    def test_roundtrip(self, i, j, k):
        assert morton_decode3(morton_encode3(i, j, k)) == (i, j, k)

    def test_max_coordinate_roundtrips(self):
        m = (1 << MAX_BITS) - 1
        assert morton_decode3(morton_encode3(m, m, m)) == (m, m, m)

    def test_octant_contiguity(self):
        keys = sorted(
            morton_encode3(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)
        )
        assert keys == list(range(8))


class TestMortonGeneric:
    @given(st.lists(coords, min_size=1, max_size=3))
    def test_roundtrip_any_dim(self, cs):
        key = morton_encode(tuple(cs))
        assert morton_decode(key, len(cs)) == tuple(cs)

    def test_1d_is_identity(self):
        assert morton_encode((42,)) == 42

    def test_bad_dimension(self):
        with pytest.raises(ValueError):
            morton_encode((1, 2, 3, 4))
        with pytest.raises(ValueError):
            morton_decode(0, 4)


class TestHilbert:
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_roundtrip_2d(self, i, j):
        d = hilbert_encode2(i, j, order=6)
        assert hilbert_decode2(d, order=6) == (i, j)

    def test_2d_is_bijection(self):
        order = 4
        n = 1 << order
        seen = {hilbert_encode2(i, j, order) for i in range(n) for j in range(n)}
        assert seen == set(range(n * n))

    def test_2d_curve_is_connected(self):
        # Consecutive curve positions are grid neighbors (distance 1).
        order = 4
        pts = [hilbert_decode2(d, order) for d in range((1 << order) ** 2)]
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            assert abs(x0 - x1) + abs(y0 - y1) == 1

    def test_3d_is_bijection(self):
        order = 2
        n = 1 << order
        seen = {
            hilbert_encode3(i, j, k, order)
            for i in range(n)
            for j in range(n)
            for k in range(n)
        }
        assert seen == set(range(n ** 3))

    def test_out_of_grid_rejected(self):
        with pytest.raises(ValueError):
            hilbert_encode2(4, 0, order=2)


class TestSfcKey:
    def test_levels_do_not_collide(self):
        k0 = sfc_key((3, 3), 0)
        k1 = sfc_key((3, 3), 1)
        assert k0 != k1 and k1 > k0

    def test_hilbert_variant(self):
        assert sfc_key((1, 2), 1, curve="hilbert") != sfc_key((2, 1), 1, curve="hilbert")

    def test_unknown_curve(self):
        with pytest.raises(ValueError):
            sfc_key((0, 0), 0, curve="peano")
