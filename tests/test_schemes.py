"""Tests for the finite-volume schemes (advection, Euler, MHD).

Verification problems with known answers:

* advection — exact translation of smooth and discontinuous profiles;
* Euler — Sod shock tube (standard intermediate states), isentropic
  consistency, exact preservation of uniform flow;
* MHD — Brio–Wu shock tube stability/positivity, reduction to Euler for
  zero field, Powell source behaviour.
"""

import numpy as np
import pytest

from repro.solvers import (
    AdvectionScheme,
    EulerScheme,
    MHDScheme,
    advection_flops_per_cell,
    euler_flops_per_cell,
    mhd_flops_per_cell,
    get_riemann,
    rusanov,
)


def periodic_fill_1d(u, g):
    u[:, :g] = u[:, -2 * g : -g]
    u[:, -g:] = u[:, g : 2 * g]


def outflow_fill_1d(u, g):
    u[:, :g] = u[:, g : g + 1]
    u[:, -g:] = u[:, -g - 1 : -g]


def run_1d(scheme, u, dx, t_end, fill, g=2):
    t = 0.0
    while t < t_end - 1e-14:
        fill(u, g)
        dt = min(scheme.stable_dt(u, (dx,), 1), t_end - t)
        scheme.step_midpoint(u, (dx,), dt, g, lambda a: fill(a, g))
        t += dt
    return u


class TestAdvection:
    def test_bad_velocity(self):
        with pytest.raises(ValueError):
            AdvectionScheme(())

    def test_constant_state_is_fixed_point(self):
        sch = AdvectionScheme((1.0, -2.0))
        u = np.full((1, 12, 12), 3.0)
        sch.step(u, (0.1, 0.1), 0.01, 2)
        np.testing.assert_allclose(u, 3.0, rtol=1e-14)

    def test_translation_periodic(self):
        n, g = 128, 2
        sch = AdvectionScheme((1.0,), order=2, limiter="mc")
        x = (np.arange(n) + 0.5) / n
        u = np.zeros((1, n + 2 * g))
        u[0, g:-g] = np.sin(2 * np.pi * x)
        run_1d(sch, u, 1.0 / n, 1.0, periodic_fill_1d)
        err = np.abs(u[0, g:-g] - np.sin(2 * np.pi * x)).max()
        assert err < 0.01

    def test_second_order_convergence(self):
        errs = []
        for n in (32, 64, 128):
            g = 2
            sch = AdvectionScheme((1.0,), order=2, limiter="mc", cfl=0.2)
            x = (np.arange(n) + 0.5) / n
            u = np.zeros((1, n + 2 * g))
            u[0, g:-g] = np.sin(2 * np.pi * x)
            run_1d(sch, u, 1.0 / n, 0.5, periodic_fill_1d)
            exact = np.sin(2 * np.pi * (x - 0.5))
            errs.append(np.abs(u[0, g:-g] - exact).mean())
        rate = np.log2(errs[0] / errs[1]), np.log2(errs[1] / errs[2])
        assert rate[0] > 1.5 and rate[1] > 1.5

    def test_first_order_more_diffusive(self):
        n, g = 64, 2
        results = []
        for order in (1, 2):
            sch = AdvectionScheme((1.0,), order=order)
            x = (np.arange(n) + 0.5) / n
            u = np.zeros((1, n + 2 * g))
            u[0, g:-g] = np.where(np.abs(x - 0.5) < 0.1, 1.0, 0.0)
            run_1d(sch, u, 1.0 / n, 0.3, periodic_fill_1d)
            results.append(u[0, g:-g].max())
        assert results[0] < results[1]  # order 1 smears the top harder

    def test_tvd_no_new_extrema(self):
        n, g = 64, 2
        sch = AdvectionScheme((1.0,), order=2, limiter="minmod")
        x = (np.arange(n) + 0.5) / n
        u = np.zeros((1, n + 2 * g))
        u[0, g:-g] = np.where(np.abs(x - 0.3) < 0.1, 1.0, 0.0)
        run_1d(sch, u, 1.0 / n, 0.4, periodic_fill_1d)
        assert u.max() <= 1.0 + 1e-10
        assert u.min() >= -1e-10

    def test_2d_diagonal_translation(self):
        n, g = 32, 2
        sch = AdvectionScheme((1.0, 1.0), order=2, cfl=0.3)
        x = (np.arange(n) + 0.5) / n
        X, Y = np.meshgrid(x, x, indexing="ij")
        u = np.zeros((1, n + 2 * g, n + 2 * g))
        u[0, g:-g, g:-g] = np.sin(2 * np.pi * X) * np.sin(2 * np.pi * Y)
        def fill2d(a):
            a[:, :g, :] = a[:, -2 * g : -g, :]
            a[:, -g:, :] = a[:, g : 2 * g, :]
            a[:, :, :g] = a[:, :, -2 * g : -g]
            a[:, :, -g:] = a[:, :, g : 2 * g]

        t = 0.0
        while t < 1.0 - 1e-14:
            dt = min(sch.stable_dt(u, (1 / n, 1 / n), 2), 1.0 - t)
            sch.step_midpoint(u, (1 / n, 1 / n), dt, g, fill2d)
            t += dt
        exact = np.sin(2 * np.pi * X) * np.sin(2 * np.pi * Y)
        assert np.abs(u[0, g:-g, g:-g] - exact).max() < 0.2


class TestEuler:
    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            EulerScheme(4)

    def test_uniform_flow_is_fixed_point(self):
        sch = EulerScheme(2, order=2)
        w = np.empty((4, 12, 12))
        w[0], w[1], w[2], w[3] = 1.0, 2.0, -1.0, 3.0
        u = sch.prim_to_cons(w)
        before = u.copy()
        sch.step(u, (0.1, 0.1), 0.005, 2)
        np.testing.assert_allclose(u, before, rtol=1e-12, atol=1e-13)

    @pytest.mark.parametrize("riemann", ["rusanov", "hll"])
    def test_sod_shock_tube(self, riemann):
        n, g = 400, 2
        sch = EulerScheme(1, gamma=1.4, order=2, riemann=riemann, limiter="mc")
        x = (np.arange(n) + 0.5) / n
        w = np.stack(
            [
                np.where(x < 0.5, 1.0, 0.125),
                np.zeros(n),
                np.where(x < 0.5, 1.0, 0.1),
            ]
        )
        u = np.zeros((3, n + 2 * g))
        u[:, g:-g] = sch.prim_to_cons(w)
        run_1d(sch, u, 1.0 / n, 0.2, outflow_fill_1d)
        wend = sch.cons_to_prim(u[:, g:-g])
        # Exact Sod solution at t=0.2 (gamma=1.4): rarefaction spans
        # [0.263, 0.486], contact at x=0.685, shock at x=0.850;
        # star-state left rho = 0.4263, right rho = 0.2656, p* = 0.3031.
        star_left = (x > 0.52) & (x < 0.66)
        assert np.abs(wend[0][star_left].mean() - 0.4263) < 0.02
        star_right = (x > 0.71) & (x < 0.83)
        assert np.abs(wend[0][star_right].mean() - 0.2656) < 0.02
        star_all = (x > 0.52) & (x < 0.83)
        assert np.abs(wend[2][star_all].mean() - 0.3031) < 0.02
        assert wend[0].min() > 0 and wend[2].min() > 0

    def test_mass_conserved_periodic(self):
        n, g = 64, 2
        sch = EulerScheme(1, order=2)
        x = (np.arange(n) + 0.5) / n
        w = np.stack([1.0 + 0.2 * np.sin(2 * np.pi * x), 0.5 * np.ones(n), np.ones(n)])
        u = np.zeros((3, n + 2 * g))
        u[:, g:-g] = sch.prim_to_cons(w)
        mass0 = u[0, g:-g].sum()
        run_1d(sch, u, 1.0 / n, 0.3, periodic_fill_1d)
        assert u[0, g:-g].sum() == pytest.approx(mass0, rel=1e-12)

    def test_positivity_strong_rarefaction(self):
        # Double rarefaction (123 problem): hard positivity test.
        n, g = 200, 2
        sch = EulerScheme(1, gamma=1.4, order=2, riemann="hll", cfl=0.3)
        x = (np.arange(n) + 0.5) / n
        w = np.stack(
            [np.ones(n), np.where(x < 0.5, -2.0, 2.0), 0.4 * np.ones(n)]
        )
        u = np.zeros((3, n + 2 * g))
        u[:, g:-g] = sch.prim_to_cons(w)
        run_1d(sch, u, 1.0 / n, 0.1, outflow_fill_1d)
        wend = sch.cons_to_prim(u[:, g:-g])
        assert np.all(np.isfinite(wend))
        assert wend[0].min() > 0


class TestMHD:
    def test_uniform_magnetized_flow_is_fixed_point(self):
        sch = MHDScheme(2, order=2)
        w = np.zeros((8, 12, 12))
        w[0], w[4] = 1.0, 1.0
        w[1], w[2], w[3] = 0.5, -0.25, 0.1
        w[5], w[6], w[7] = 1.0, 2.0, -0.5
        u = sch.prim_to_cons(w)
        before = u.copy()
        sch.step(u, (0.1, 0.1), 0.002, 2)
        np.testing.assert_allclose(u, before, rtol=1e-11, atol=1e-12)

    def test_reduces_to_euler_without_field(self):
        n, g = 100, 2
        mhd = MHDScheme(1, gamma=1.4, order=2, limiter="mc")
        eul = EulerScheme(1, gamma=1.4, order=2, limiter="mc")
        x = (np.arange(n) + 0.5) / n
        rho = np.where(x < 0.5, 1.0, 0.125)
        p = np.where(x < 0.5, 1.0, 0.1)
        wm = np.zeros((8, n))
        wm[0], wm[4] = rho, p
        we = np.stack([rho, np.zeros(n), p])
        um = np.zeros((8, n + 2 * g))
        ue = np.zeros((3, n + 2 * g))
        um[:, g:-g] = mhd.prim_to_cons(wm)
        ue[:, g:-g] = eul.prim_to_cons(we)
        run_1d(mhd, um, 1.0 / n, 0.1, outflow_fill_1d)
        run_1d(eul, ue, 1.0 / n, 0.1, outflow_fill_1d)
        np.testing.assert_allclose(
            um[0, g:-g], ue[0, g:-g], rtol=1e-8, atol=1e-10
        )

    def test_brio_wu_stable_and_positive(self):
        n, g = 256, 2
        sch = MHDScheme(1, gamma=2.0, order=2)
        x = (np.arange(n) + 0.5) / n
        w = np.zeros((8, n))
        w[0] = np.where(x < 0.5, 1.0, 0.125)
        w[4] = np.where(x < 0.5, 1.0, 0.1)
        w[5] = 0.75
        w[6] = np.where(x < 0.5, 1.0, -1.0)
        u = np.zeros((8, n + 2 * g))
        u[:, g:-g] = sch.prim_to_cons(w)
        run_1d(sch, u, 1.0 / n, 0.1, outflow_fill_1d)
        wend = sch.cons_to_prim(u[:, g:-g])
        assert np.all(np.isfinite(wend))
        assert wend[0].min() > 0 and wend[4].min() > 0
        # The compound-wave region develops intermediate densities;
        # tiny overshoots at the left fast rarefaction are acceptable.
        assert wend[0].max() <= 1.01
        assert 0.1 < wend[0][(x > 0.4) & (x < 0.6)].mean() < 1.0

    def test_powell_source_zero_for_divergence_free_field(self):
        sch = MHDScheme(2, order=2)
        w = np.zeros((8, 10, 10))
        w[0], w[4] = 1.0, 1.0
        w[1] = 0.3
        w[5], w[6] = 1.5, -2.0  # uniform field: div B = 0
        u = sch.prim_to_cons(w)
        src = sch.source(u[:, 2:-2, 2:-2], w, (0.1, 0.1), 2)
        np.testing.assert_allclose(src, 0.0, atol=1e-14)

    def test_powell_source_nonzero_for_divergent_field(self):
        sch = MHDScheme(2, order=2)
        w = np.zeros((8, 10, 10))
        w[0], w[4] = 1.0, 1.0
        w[1] = 1.0  # ux
        x = np.arange(10) * 0.1
        w[5] = x[:, None] * np.ones(10)  # Bx = x, div B = 1
        u = sch.prim_to_cons(w)
        src = sch.source(u[:, 2:-2, 2:-2], w, (0.1, 0.1), 2)
        # Induction source: -divB * u = -1 * 1 on Bx.
        np.testing.assert_allclose(src[5], -1.0, rtol=1e-12)

    def test_powell_disabled(self):
        sch = MHDScheme(2, powell_source=False)
        w = np.ones((8, 8, 8))
        u = sch.prim_to_cons(w)
        assert sch.source(u[:, 2:-2, 2:-2], w, (0.1, 0.1), 2) is None

    def test_div_b_diagnostic(self):
        sch = MHDScheme(2)
        u = np.zeros((8, 8, 8))
        u[5] = 5.0
        np.testing.assert_allclose(
            sch.div_b_interior(u, (0.1, 0.1), 2), 0.0
        )


class TestSchemeValidation:
    def test_bad_order(self):
        with pytest.raises(ValueError):
            AdvectionScheme((1.0,), order=3)

    def test_bad_cfl(self):
        with pytest.raises(ValueError):
            AdvectionScheme((1.0,), cfl=0.0)

    def test_required_ghost(self):
        assert AdvectionScheme((1.0,), order=1).required_ghost == 1
        assert AdvectionScheme((1.0,), order=2).required_ghost == 2

    def test_unknown_riemann(self):
        with pytest.raises(ValueError, match="unknown Riemann"):
            AdvectionScheme((1.0,), riemann="roe")

    def test_stable_dt_positive_and_scales(self):
        sch = EulerScheme(1)
        w = np.stack([np.ones(10), np.zeros(10), np.ones(10)])
        u = sch.prim_to_cons(w)
        dt1 = sch.stable_dt(u, (0.1,), 1)
        dt2 = sch.stable_dt(u, (0.05,), 1)
        assert dt2 == pytest.approx(dt1 / 2)

    def test_stable_dt_infinite_for_static_advection(self):
        sch = AdvectionScheme((0.0,))
        u = np.ones((1, 10))
        assert sch.stable_dt(u, (0.1,), 1) == np.inf


class TestFlopCounts:
    def test_mhd_heavier_than_euler(self):
        assert (
            mhd_flops_per_cell(3, 2).per_cell_per_step
            > euler_flops_per_cell(3, 2).per_cell_per_step
            > advection_flops_per_cell(3, 2).per_cell_per_step
        )

    def test_order2_doubles_stages(self):
        f1 = mhd_flops_per_cell(3, 1)
        f2 = mhd_flops_per_cell(3, 2)
        assert f2.stages == 2 and f1.stages == 1
        assert f2.per_cell_per_step > f1.per_cell_per_step

    def test_mhd_3d_order2_in_plausible_range(self):
        # The paper-era 3-D MHD codes ran ~1-3 kFLOPs per cell per step.
        n = mhd_flops_per_cell(3, 2).per_cell_per_step
        assert 500 < n < 5000
