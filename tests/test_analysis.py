"""Tests for the correctness tooling (repro.analysis).

Every layer is tested from both sides: each detector must *fire* on a
seeded violation, and must be *silent* on the clean code paths — a
sanitized/race-checked run reproduces the plain run bit-for-bit, and
the AMR lint reports zero violations over ``src/repro``.
"""

import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.amr import Simulation, advecting_pulse, sedov_blast
from repro.analysis import (
    POISON_BITS,
    ExchangeRaceError,
    GhostSanitizer,
    PoisonError,
    RaceDetector,
    check_interior_clean,
    check_stencil_ghosts,
    lint_paths,
    lint_source,
    poison_forest,
    poison_ghosts,
    poison_value,
    poisoned_mask,
    rule_codes,
)
from repro.core import BlockForest, BlockID
from repro.core.ghost import fill_ghosts
from repro.parallel.emulator import EmulatedMachine
from repro.util.geometry import Box

REPO = Path(__file__).resolve().parents[1]


def make_amr_forest(nvar=1):
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=nvar,
        n_ghost=2, periodic=(True, True), max_level=3,
    )
    f.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
    f.adapt([BlockID(1, (1, 1))])
    return f


# ---------------------------------------------------------------------------
# poison primitives
# ---------------------------------------------------------------------------

class TestPoisonPrimitives:
    def test_poison_value_is_nan_with_exact_bits(self):
        v = poison_value()
        assert np.isnan(v)
        assert np.float64(v).view(np.uint64) == POISON_BITS

    def test_mask_is_bit_exact_not_any_nan(self):
        arr = np.zeros(4)
        arr[1] = poison_value()
        arr[2] = np.nan  # ordinary quiet NaN must NOT match
        mask = poisoned_mask(arr)
        assert mask.tolist() == [False, True, False, False]

    def test_mask_survives_noncontiguous_views(self):
        arr = np.zeros((4, 4))
        arr[:, 3] = poison_value()
        assert poisoned_mask(arr[:, 1:])[:, 2].all()

    def test_arithmetic_on_poison_loses_the_pattern(self):
        # The whole attribution story rests on this IEEE fact: any
        # arithmetic involving an sNaN yields a (different) quiet NaN.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            out = np.float64(poison_value()) + 1.0
        assert np.isnan(out) and not poisoned_mask(np.array([out]))[0]

    def test_poison_ghosts_fills_ghosts_only(self):
        f = make_amr_forest()
        for b in f:
            b.data[...] = 7.0
        n = poison_forest(f)
        assert n > 0
        for b in f:
            assert (b.interior == 7.0).all()
            assert poisoned_mask(b.data).sum() * b.nvar == poison_ghosts(b)


class TestPoisonChecks:
    def test_clean_after_full_exchange(self):
        f = make_amr_forest()
        for b in f:
            b.data[...] = 1.0
        poison_forest(f)
        fill_ghosts(f, None)
        assert check_stencil_ghosts(f) == []
        # The exchange fills even corner ghosts on this forest.
        assert all(not poisoned_mask(b.data).any() for b in f)

    def test_unfilled_face_slab_is_reported_with_face_and_block(self):
        f = make_amr_forest()
        for b in f:
            b.data[...] = 1.0
        poison_forest(f)
        fill_ghosts(f, None)
        victim = next(iter(f))
        g = victim.n_ghost
        victim.data[0, :g, :] = poison_value()  # re-stale face 0 slab
        sites = check_stencil_ghosts(f)
        assert len(sites) == 1
        site = sites[0]
        assert site.block == victim.id and site.face == 0
        assert site.where == "ghost" and site.variables == (0,)

    def test_depth_limits_the_checked_slab(self):
        f = make_amr_forest()
        for b in f:
            b.data[...] = 1.0
        victim = next(iter(f))
        victim.data[0, 0, :] = poison_value()  # outermost layer only
        assert check_stencil_ghosts(f, depth=1) == []
        assert check_stencil_ghosts(f, depth=2) != []

    def test_interior_check_reports_nonfinite(self):
        f = make_amr_forest()
        for b in f:
            b.data[...] = 1.0
        victim = next(iter(f))
        victim.interior[0, 2, 2] = np.inf
        sites = check_interior_clean(f)
        assert [s.block for s in sites] == [victim.id]
        assert sites[0].where == "interior"


# ---------------------------------------------------------------------------
# sanitizer end-to-end (serial driver)
# ---------------------------------------------------------------------------

class TestGhostSanitizerSerial:
    def test_sanitized_run_matches_plain_run_bit_for_bit(self):
        plain = advecting_pulse().build(adaptive=True)
        sane = advecting_pulse().build(adaptive=True, sanitize=True)
        for _ in range(5):
            dt = plain.stable_dt()
            plain.step(dt)
            sane.step(dt)
        assert set(plain.forest.blocks) == set(sane.forest.blocks)
        for bid, blk in plain.forest.blocks.items():
            np.testing.assert_array_equal(
                blk.interior, sane.forest.blocks[bid].interior
            )
        assert sane.sanitizer.n_exchanges_checked > 0
        assert sane.sanitizer.n_cells_poisoned > 0

    def test_sanitized_adaptive_sedov_is_clean(self):
        sim = sedov_blast().build(adaptive=True, sanitize=True)
        for _ in range(3):
            sim.step(0.25 * sim.stable_dt())
        assert sim.sanitizer.n_exchanges_checked >= 3

    def test_skipped_exchange_trips_the_sanitizer(self):
        sim = advecting_pulse().build(adaptive=False, sanitize=True)
        sim.fill_ghosts = lambda: None  # seeded bug: exchange forgotten
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(PoisonError) as err:
                sim.advance(1e-4)
        assert err.value.sites

    def test_partial_exchange_trips_the_face_check(self):
        sim = advecting_pulse().build(adaptive=False, sanitize=True)
        orig = sim.forest
        real_fill = fill_ghosts

        def leaky_fill():
            # Seeded bug: the exchange runs, then one block's face slab
            # is re-staled — as if one message went missing.
            sim.sanitizer.before_exchange(orig)
            real_fill(orig, sim.bc)
            victim = next(iter(orig))
            victim.data[:, :victim.n_ghost, :] = poison_value()
            sim.sanitizer.after_exchange(orig)

        sim.fill_ghosts = leaky_fill
        with pytest.raises(PoisonError) as err:
            sim.advance(1e-4)
        assert any(s.where == "ghost" for s in err.value.sites)


# ---------------------------------------------------------------------------
# sanitizer + race detector on the emulated machine
# ---------------------------------------------------------------------------

class TestEmulatedMachineTooling:
    def _serial_and_machine(self, n_ranks=3, sanitize=True):
        prob = advecting_pulse()
        serial = prob.build(adaptive=False)
        forest = prob.config.make_forest(prob.scheme.nvar)
        prob.init_forest(forest)
        machine = EmulatedMachine(
            forest, n_ranks, prob.scheme, bc=prob.bc, sanitize=sanitize
        )
        return serial, machine

    def test_clean_run_is_silent_and_bit_exact(self):
        serial, machine = self._serial_and_machine()
        detector = machine.attach_race_detector()
        dt = 0.5 * serial.stable_dt()
        for _ in range(4):
            serial.advance(dt)
            machine.advance(dt)
        detector.check()
        assert detector.violations == []
        for bid, arr in machine.gather().items():
            np.testing.assert_array_equal(
                arr, serial.forest.blocks[bid].interior
            )

    def test_sanitizer_catches_dropped_plan_entry(self):
        _, machine = self._serial_and_machine()
        # Seeded bug: the derived schedule silently loses one message.
        machine._plan = machine._plan[1:]
        with pytest.raises(PoisonError) as err:
            machine.exchange()
        assert any(s.where == "ghost" for s in err.value.sites)

    def test_race_kernel_before_exchange(self):
        _, machine = self._serial_and_machine(sanitize=False)
        detector = machine.attach_race_detector()
        machine.advance(1e-4)  # clean step primes the receive ledger
        detector.begin_step()  # a new step begins...
        bid = next(iter(machine.topology.blocks))
        with pytest.raises(ExchangeRaceError) as err:
            detector.on_consume(bid, machine.owner_rank(bid))
        v = err.value.violations[0]
        assert v.kind == "read-before-receive"
        assert v.block == bid

    def test_race_write_after_publish(self):
        _, machine = self._serial_and_machine(sanitize=False)
        detector = machine.attach_race_detector()
        machine.advance(1e-4)
        # Seeded bug: mutate an interior mid-epoch after its data was
        # already sent (receivers now hold data that never existed).
        detector.begin_step()
        detector.begin_epoch()
        bid, offset, transfers = machine._plan[0]
        src = transfers[0].src_id
        detector.on_publish(src, bid, offset, machine.owner_rank(src))
        with pytest.raises(ExchangeRaceError) as err:
            detector.on_interior_write(src, machine.owner_rank(src))
        assert err.value.violations[0].kind == "write-after-publish"

    def test_race_report_carries_rank_block_face_epoch(self):
        _, machine = self._serial_and_machine(sanitize=False)
        detector = machine.attach_race_detector()
        machine.advance(1e-4)
        detector.begin_step()
        bid = next(iter(machine.topology.blocks))
        with pytest.raises(ExchangeRaceError) as err:
            detector.on_consume(bid, machine.owner_rank(bid))
        v = err.value.violations[0]
        assert v.rank == machine.owner_rank(bid)
        assert v.epoch == detector.epoch
        assert v.offset is not None
        text = str(err.value)
        assert str(bid) in text and "epoch" in text

    def test_deferred_mode_accumulates(self):
        _, machine = self._serial_and_machine(sanitize=False)
        detector = RaceDetector(raise_immediately=False)
        machine.attach_race_detector(detector)
        machine.advance(1e-4)
        detector.begin_step()
        bid = next(iter(machine.topology.blocks))
        detector.on_consume(bid, 0)  # does not raise
        assert detector.violations
        with pytest.raises(ExchangeRaceError):
            detector.check()

    def test_recovery_restore_is_not_flagged(self):
        # A checkpoint restore rewrites every interior; with a detector
        # attached this must not read as a race.
        from repro.resilience import Checkpointer, FaultPlan, RankKill
        from repro.resilience.recovery import run_with_recovery

        prob = advecting_pulse()
        forest = prob.config.make_forest(prob.scheme.nvar)
        prob.init_forest(forest)
        machine = EmulatedMachine(
            forest, 3, prob.scheme, bc=prob.bc,
            fault_plan=FaultPlan(kills=[RankKill(step=2, rank=1)]),
            sanitize=True,
        )
        detector = machine.attach_race_detector()
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            run_with_recovery(
                machine, n_steps=4, dt=1e-3,
                checkpointer=Checkpointer(d), checkpoint_every=1,
            )
        detector.check()
        assert detector.violations == []


# ---------------------------------------------------------------------------
# AMR lint
# ---------------------------------------------------------------------------

class TestLintRules:
    def test_repro101_direct_data_mutation(self):
        src = "def f(block):\n    block.data[0] += 1.0\n"
        v = lint_source(src, "repro/amr/driver2.py")
        assert [x.code for x in v] == ["REPRO101"]

    def test_repro101_allowed_in_kernel_modules(self):
        src = "def f(block):\n    block.data[0] += 1.0\n"
        assert lint_source(src, "repro/core/ghost.py") == []
        assert lint_source(src, "repro/solvers/scheme.py") == []

    def test_repro101_plain_assign_and_subscript(self):
        for stmt in ("b.data = x", "b.data[...] = x", "b.data[0][1] = x"):
            v = lint_source(f"{stmt}\n", "repro/parallel/emulator2.py")
            assert [x.code for x in v] == ["REPRO101"], stmt

    def test_repro102_unseeded_rng(self):
        bad = [
            "import numpy as np\nr = np.random.default_rng()\n",
            "import numpy as np\nx = np.random.random(3)\n",
            "import random\nx = random.random()\n",
            "from random import Random\nr = Random()\n",
        ]
        for src in bad:
            v = lint_source(src, "repro/util/anything.py")
            assert any(x.code == "REPRO102" for x in v), src

    def test_repro102_seeded_rng_is_fine(self):
        good = [
            "import numpy as np\nr = np.random.default_rng(0)\n",
            "import numpy as np\nr = np.random.default_rng(seed=7)\n",
            "from random import Random\nr = Random(3)\n",
        ]
        for src in good:
            assert lint_source(src, "repro/util/anything.py") == [], src

    def test_repro103_bare_except_everywhere(self):
        src = "try:\n    f()\nexcept:\n    handle()\n"
        v = lint_source(src, "repro/amr/driver2.py")
        assert [x.code for x in v] == ["REPRO103"]

    def test_repro103_swallow_only_in_recovery_paths(self):
        src = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert lint_source(src, "repro/resilience/recovery2.py") != []
        # Outside recovery paths a typed swallow is (only) questionable.
        assert lint_source(src, "repro/amr/driver2.py") == []

    def test_repro104_wall_clock_in_replay_code(self):
        bad = [
            "import time\nt = time.perf_counter()\n",
            "import time as _t\nt = _t.time()\n",
            "from time import monotonic\nt = monotonic()\n",
            "import datetime\nd = datetime.datetime.now()\n",
        ]
        for src in bad:
            v = lint_source(src, "repro/resilience/recovery2.py")
            assert any(x.code == "REPRO104" for x in v), src

    def test_repro104_scoped_to_replay_modules(self):
        src = "import time\nt = time.perf_counter()\n"
        assert lint_source(src, "repro/util/timing2.py") == []

    def test_repro105_raw_checksum_outside_owner_modules(self):
        bad = [
            "import zlib\nc = zlib.crc32(b'x')\n",
            "import zlib\nc = zlib.adler32(b'x')\n",
            "from zlib import crc32\nc = crc32(b'x')\n",
            "import hashlib\nh = hashlib.sha256(b'x')\n",
            "import hashlib\nh = hashlib.md5(b'x')\n",
            "from hashlib import sha256\nh = sha256(b'x')\n",
        ]
        for src in bad:
            v = lint_source(src, "repro/amr/driver2.py")
            assert any(x.code == "REPRO105" for x in v), src

    def test_repro105_allowed_in_checksum_owner_modules(self):
        src = "import zlib\nc = zlib.crc32(b'x')\n"
        for owner in (
            "repro/core/integrity.py",
            "repro/amr/io.py",
            "repro/resilience/checkpoint.py",
            "repro/parallel/supervisor.py",
        ):
            assert lint_source(src, owner) == [], owner

    def test_repro105_integrity_helpers_are_fine(self):
        src = (
            "from repro.core.integrity import content_crc, crc_bytes\n"
            "c = content_crc(arr)\n"
            "d = crc_bytes(b'x')\n"
        )
        assert lint_source(src, "repro/amr/driver2.py") == []

    def test_repro105_noqa_escape(self):
        src = (
            "import zlib\n"
            "c = zlib.crc32(b'x')  # repro: noqa[REPRO105]\n"
        )
        assert lint_source(src, "repro/amr/driver2.py") == []

    def test_repro108_flags_jit_imports_outside_kernels(self):
        bad = [
            "import numba\n",
            "import numba.core\n",
            "from numba import njit\n",
            "from numba.core import types\n",
            "import llvmlite\n",
            "from llvmlite import binding\n",
            "import numba as nb\n",
        ]
        for src in bad:
            for module in (
                "repro/amr/driver.py",
                "repro/solvers/scheme.py",
                "repro/analysis/engine_bench.py",
            ):
                v = lint_source(src, module)
                assert any(x.code == "REPRO108" for x in v), (src, module)

    def test_repro108_allowed_in_kernels_package(self):
        for module in (
            "repro/kernels/numba_backend.py",
            "repro/kernels/__init__.py",
        ):
            assert lint_source("from numba import njit\n", module) == []

    def test_repro108_ignores_lookalike_names(self):
        # Only the real top-level JIT distributions are restricted.
        ok = [
            "import numbad\n",
            "from mynumba import njit\n",
            "import repro.kernels.numba_backend\n",
            "from repro.kernels import numba_available\n",
        ]
        for src in ok:
            assert lint_source(src, "repro/amr/driver.py") == [], src

    def test_repro108_applies_to_tests_directory(self, tmp_path):
        # Tests must use pytest.importorskip, never a bare import — the
        # suite has to collect cleanly without the jit extra.
        f = tmp_path / "tests" / "test_x.py"
        f.parent.mkdir()
        f.write_text("import numba\n")
        v = lint_paths([str(f)])
        assert any(x.code == "REPRO108" for x in v)

    def test_noqa_suppression(self):
        src = "b.data = x  # repro: noqa[REPRO101]\n"
        assert lint_source(src, "repro/amr/driver2.py") == []
        # Bare noqa suppresses every rule on the line.
        src = "b.data = x  # repro: noqa\n"
        assert lint_source(src, "repro/amr/driver2.py") == []
        # A noqa for a different rule does not suppress.
        src = "b.data = x  # repro: noqa[REPRO102]\n"
        assert lint_source(src, "repro/amr/driver2.py") != []

    def test_select_restricts_rules(self):
        src = "b.data = x\nimport random\ny = random.random()\n"
        v = lint_source(src, "repro/amr/driver2.py", select={"REPRO102"})
        assert [x.code for x in v] == ["REPRO102"]

    def test_violation_carries_position(self):
        src = "x = 1\nb.data = x\n"
        v = lint_source(src, "repro/amr/driver2.py")[0]
        assert v.line == 2 and v.col >= 0

    def test_syntax_error_is_reported_not_raised(self):
        v = lint_source("def f(:\n", "repro/amr/driver2.py")
        assert v and v[0].code == "REPRO000"


class TestLintEdgeCases:
    def test_noqa_multi_rule_line(self):
        # One line, two violations, both named in a single bracket list.
        src = (
            "import random\n"
            "b.data = random.random()  # repro: noqa[REPRO101, REPRO102]\n"
        )
        assert lint_source(src, "repro/amr/driver2.py") == []
        # Naming only one of the two leaves the other reported.
        src = (
            "import random\n"
            "b.data = random.random()  # repro: noqa[REPRO101]\n"
        )
        v = lint_source(src, "repro/amr/driver2.py")
        assert [x.code for x in v] == ["REPRO102"]

    def test_noqa_is_case_insensitive(self):
        src = "b.data = x  # REPRO: NOQA[repro101]\n"
        assert lint_source(src, "repro/amr/driver2.py") == []

    def test_from_import_alias_resolution(self):
        # `from x import y as z` must resolve z back to x.y.
        cases = [
            ("from time import perf_counter as pc\nt = pc()\n",
             "REPRO104", "repro/resilience/recovery2.py"),
            ("from zlib import crc32 as c32\nc = c32(b'x')\n",
             "REPRO105", "repro/amr/driver2.py"),
            ("from random import Random as R\nr = R()\n",
             "REPRO102", "repro/util/anything.py"),
        ]
        for src, code, module in cases:
            v = lint_source(src, module)
            assert any(x.code == code for x in v), (src, code)

    def test_import_module_alias_resolution(self):
        src = "import datetime as dt\nd = dt.datetime.now()\n"
        v = lint_source(src, "repro/resilience/recovery2.py")
        assert any(x.code == "REPRO104" for x in v)

    def test_decorated_function_body_is_checked(self):
        src = (
            "import functools\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def f(block):\n"
            "    block.data[0] = 1.0\n"
        )
        v = lint_source(src, "repro/amr/driver2.py")
        assert [x.code for x in v] == ["REPRO101"]

    def test_nested_function_body_is_checked(self):
        src = (
            "def outer(block):\n"
            "    def inner():\n"
            "        import random\n"
            "        block.data[0] = random.random()\n"
            "    return inner\n"
        )
        codes = [x.code for x in
                 lint_source(src, "repro/amr/driver2.py")]
        assert "REPRO101" in codes and "REPRO102" in codes

    def test_alias_imported_inside_function_resolves(self):
        src = (
            "def f():\n"
            "    from time import monotonic as mono\n"
            "    return mono()\n"
        )
        v = lint_source(src, "repro/resilience/recovery2.py")
        assert any(x.code == "REPRO104" for x in v)

    def test_method_in_class_is_checked(self):
        src = (
            "class C:\n"
            "    def f(self, block):\n"
            "        block.data += 1\n"
        )
        v = lint_source(src, "repro/amr/driver2.py")
        assert [x.code for x in v] == ["REPRO101"]


class TestLintPerDirectoryConfig:
    def test_tests_directory_drops_repro101(self, tmp_path):
        f = tmp_path / "tests" / "test_x.py"
        f.parent.mkdir()
        f.write_text("b.data = x\n")
        assert lint_paths([str(f)]) == []

    def test_tests_directory_forces_repro104(self, tmp_path):
        f = tmp_path / "tests" / "test_x.py"
        f.parent.mkdir()
        f.write_text("import time\nt = time.perf_counter()\n")
        v = lint_paths([str(f)])
        assert [x.code for x in v] == ["REPRO104"]

    def test_tests_directory_keeps_repro102(self, tmp_path):
        f = tmp_path / "tests" / "test_x.py"
        f.parent.mkdir()
        f.write_text("import random\nx = random.random()\n")
        v = lint_paths([str(f)])
        assert [x.code for x in v] == ["REPRO102"]

    def test_benchmarks_keep_wall_clock(self, tmp_path):
        f = tmp_path / "benchmarks" / "bench_x.py"
        f.parent.mkdir()
        f.write_text("import time\nt = time.perf_counter()\n")
        assert lint_paths([str(f)]) == []

    def test_package_files_keep_default_scoping(self, tmp_path):
        # A package file under a directory named tests/ must not pick up
        # the per-directory config (REPRO101 still applies).
        f = tmp_path / "tests" / "repro" / "amr" / "mod.py"
        f.parent.mkdir(parents=True)
        f.write_text("b.data = x\n")
        v = lint_paths([str(f)])
        assert [x.code for x in v] == ["REPRO101"]

    def test_repo_tests_and_benchmarks_are_clean(self):
        violations = lint_paths([
            str(REPO / "tests"), str(REPO / "benchmarks"),
        ])
        assert violations == [], "\n".join(map(str, violations))


class TestLintFormats:
    def _seed(self, tmp_path):
        bad = tmp_path / "repro" / "amr" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        return bad

    def test_json_format(self, tmp_path, capsys):
        import json

        from repro.cli import main

        bad = self._seed(tmp_path)
        assert main(["lint", "--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        entry = payload["violations"][0]
        assert entry["code"] == "REPRO102"
        assert entry["path"] == str(bad)
        assert entry["line"] == 2

    def test_json_format_clean(self, tmp_path, capsys):
        import json

        from repro.cli import main

        assert main(["lint", "--format", "json", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"count": 0, "violations": []}

    def test_github_format(self, tmp_path, capsys):
        from repro.cli import main

        bad = self._seed(tmp_path)
        assert main(["lint", "--format", "github", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert out.startswith(f"::error file={bad},line=2,")
        assert "title=REPRO102::" in out


class TestLintOnRepo:
    def test_src_tree_is_clean(self):
        violations = lint_paths([str(REPO / "src" / "repro")])
        assert violations == [], "\n".join(map(str, violations))

    def test_cli_lint_clean_and_list_rules(self):
        from repro.cli import main

        assert main(["lint", str(REPO / "src" / "repro")]) == 0
        assert main(["lint", "--list-rules"]) == 0

    def test_cli_lint_fails_on_seeded_violation(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "amr" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        from repro.cli import main

        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REPRO102" in out

    def test_cli_lint_rejects_unknown_code(self):
        from repro.cli import main

        assert main(["lint", "--select", "REPRO999", "."]) == 2


# ---------------------------------------------------------------------------
# CLI: sanitize subcommand and --sanitize flags
# ---------------------------------------------------------------------------

class TestSanitizeCLI:
    def test_sanitize_subcommand_clean(self, capsys):
        from repro.cli import main

        assert main(["sanitize", "pulse", "--steps", "2", "--ranks", "2"]) == 0
        out = capsys.readouterr().out
        assert "race-checked: clean" in out

    def test_emulate_with_sanitize_flag(self, capsys):
        from repro.cli import main

        assert main(
            ["emulate", "pulse", "--steps", "2", "--ranks", "2", "--sanitize"]
        ) == 0
        out = capsys.readouterr().out
        assert "ghost sanitizer" in out and "0 violations" in out


# ---------------------------------------------------------------------------
# typing gate
# ---------------------------------------------------------------------------

def _unannotated_defs(tree):
    import ast

    missing = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            names = []
            for a in args.posonlyargs + args.args + args.kwonlyargs:
                if a.arg not in ("self", "cls") and a.annotation is None:
                    names.append(a.arg)
            for va in (args.vararg, args.kwarg):
                if va is not None and va.annotation is None:
                    names.append(va.arg)
            if node.returns is None and node.name != "__init__":
                names.append("return")
            if names:
                missing.append((node.lineno, node.name, names))
    return missing


class TestTypingGate:
    STRICT_PACKAGES = ("core", "parallel", "resilience", "analysis")

    def test_strict_packages_are_fully_annotated(self):
        # mypy --strict equivalent of disallow_untyped_defs /
        # disallow_incomplete_defs, enforced without mypy installed:
        # every definition in the strict packages carries complete
        # annotations (nested physics closures included).
        import ast

        problems = []
        for pkg in self.STRICT_PACKAGES:
            for path in sorted((REPO / "src" / "repro" / pkg).rglob("*.py")):
                tree = ast.parse(path.read_text(encoding="utf-8"))
                for lineno, name, names in _unannotated_defs(tree):
                    problems.append(f"{path}:{lineno} {name}: {names}")
        assert problems == [], "\n".join(problems)

    def test_pyproject_pins_the_toolchain(self):
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py3.10
            pytest.skip("tomllib unavailable")
        cfg = tomllib.loads((REPO / "pyproject.toml").read_text())
        dev = cfg["project"]["optional-dependencies"]["dev"]
        assert any(d.startswith("mypy==") for d in dev)
        assert any(d.startswith("ruff==") for d in dev)
        overrides = cfg["tool"]["mypy"]["overrides"]
        strict = [o for o in overrides if o.get("disallow_untyped_defs")]
        assert strict, "strict mypy override missing"
        mods = strict[0]["module"]
        for pkg in ("repro.core.*", "repro.parallel.*", "repro.resilience.*"):
            assert pkg in mods

    @pytest.mark.skipif(
        subprocess.run(
            [sys.executable, "-c", "import mypy"], capture_output=True
        ).returncode != 0,
        reason="mypy not installed (dev extra)",
    )
    def test_mypy_gate_passes(self):  # pragma: no cover - needs dev extra
        res = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file",
             str(REPO / "pyproject.toml")],
            capture_output=True, text=True, cwd=REPO,
        )
        assert res.returncode == 0, res.stdout + res.stderr

    @pytest.mark.skipif(
        subprocess.run(
            [sys.executable, "-c", "import ruff"], capture_output=True
        ).returncode != 0,
        reason="ruff not installed (dev extra)",
    )
    def test_ruff_gate_passes(self):  # pragma: no cover - needs dev extra
        res = subprocess.run(
            [sys.executable, "-m", "ruff", "check", "src", "tests"],
            capture_output=True, text=True, cwd=REPO,
        )
        assert res.returncode == 0, res.stdout + res.stderr
