"""Batched execution engine: arena storage + bit-for-bit equivalence.

The batched engine (``Simulation(engine="batched")``) must be *exactly*
the per-block engine with a different loop structure: same IEEE
elementwise kernels swept over arena tiles instead of per-block arrays.
These tests enforce that contract across kernel backends, physics,
orders, limiters, mid-run adaptation, refluxing, tile sizes, the ghost
sanitizer, the exchange race detector, and rank-kill recovery — plus
unit tests of the block arena the engine is built on.

Backend matrix: every engine-equivalence case runs once per kernel
backend (the numba legs skip when the jit extra is absent — REPRO108
bans a bare ``import numba`` here, so gating goes through
``pytest.importorskip``), and dedicated cross-backend cases pin the
numba backend against the numpy reference state directly.
"""

import numpy as np
import pytest

from repro.amr import Simulation, advecting_pulse
from repro.amr.problems import mhd_blast, sedov_blast
from repro.core import BlockForest, BlockID
from repro.core.arena import BlockArena
from repro.kernels import get_backend
from repro.solvers import AdvectionScheme
from repro.util.geometry import Box

BACKENDS = ("numpy", "numba")


def require_backend(backend):
    """Skip (not fail) a numba leg in environments without the extra."""
    if backend != "numpy":
        pytest.importorskip(backend)
    return backend


def assert_forests_identical(a, b):
    assert sorted(a.blocks) == sorted(b.blocks)
    for bid in a.blocks:
        assert np.array_equal(a.blocks[bid].interior, b.blocks[bid].interior), bid


def run_pair(problem, steps, kernel_backend="numpy", **sim_kwargs):
    """Run both engines on a problem; returns (blocked, batched) sims."""
    sims = {}
    for engine in ("blocked", "batched"):
        sim = problem.build(
            engine=engine, kernel_backend=kernel_backend, **sim_kwargs
        )
        with sim:
            for _ in range(steps):
                sim.step()
        sims[engine] = sim
    return sims["blocked"], sims["batched"]


def run_one(problem, steps, engine, kernel_backend, **sim_kwargs):
    sim = problem.build(
        engine=engine, kernel_backend=kernel_backend, **sim_kwargs
    )
    with sim:
        for _ in range(steps):
            sim.step()
    return sim


# ---------------------------------------------------------------------------
# arena unit tests
# ---------------------------------------------------------------------------


class TestBlockArena:
    def test_acquire_release_reuse(self):
        arena = BlockArena((4, 4), 2, 3, initial_capacity=2)
        r0 = arena.acquire()
        r1 = arena.acquire()
        assert r0 != r1
        assert arena.n_active == 2
        view = arena.view(r0)
        assert view.shape == (3, 8, 8)
        assert np.all(view == 0.0)

    def test_growth_rebinds_views(self):
        forest = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (4, 4), nvar=2,
            n_ghost=2, periodic=(True, True), max_level=3,
        )
        for blk in forest:
            blk.interior[...] = float(sum(blk.id.coords))
        before = {bid: blk.interior.copy() for bid, blk in forest.blocks.items()}
        grows = forest.arena.n_grows
        # Refining every block quadruples the count, forcing growth.
        forest.adapt(list(forest.blocks))
        assert forest.arena.n_grows >= grows
        for bid, blk in forest.blocks.items():
            # every block's data must still be a live view of the pool
            assert blk.arena_row is not None
            assert blk.data.base is forest.arena.pool
        # surviving data intact through growth: coarse values prolonged
        assert len(forest.blocks) == 4 * len(before)

    def test_compaction_morton_prefix(self):
        forest = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (4, 4), nvar=1,
            n_ghost=2, periodic=(True, True), max_level=2,
        )
        forest.adapt([BlockID(0, (0, 0))])
        forest.adapt([], [BlockID(1, (0, 0)), BlockID(1, (1, 0)),
                          BlockID(1, (0, 1)), BlockID(1, (1, 1))])
        blocks = [forest.blocks[b] for b in forest.sorted_ids()]
        for blk in blocks:
            blk.interior[...] = float(blk.id.level * 100 + sum(blk.id.coords))
        epoch = forest.arena.layout_epoch
        pool = forest.arena.ensure_compact(blocks)
        assert pool.shape[0] == len(blocks)
        for row, blk in enumerate(blocks):
            assert blk.arena_row == row
            assert np.array_equal(forest.arena.pool[row], blk.data)
        # idempotent: second call is a no-op
        epoch2 = forest.arena.layout_epoch
        forest.arena.ensure_compact(blocks)
        assert forest.arena.layout_epoch == epoch2
        assert epoch2 >= epoch

    def test_save_pool_lazy_shape(self):
        arena = BlockArena((4, 6), 2, 3, initial_capacity=2)
        assert arena._save is None
        save = arena.save_pool()
        assert save.shape == (2, 3, 4, 6)
        assert arena.save_pool() is save

    def test_rate_pool_lazy_shape_and_reuse(self):
        # per-call scratch for the sweep's rate accumulator: allocated
        # once, reused across calls, invalidated by growth
        arena = BlockArena((4, 6), 2, 3, initial_capacity=2)
        assert arena._rate is None
        rate = arena.rate_pool()
        assert rate.shape == (2, 3, 4, 6)
        assert arena.rate_pool() is rate
        r0 = arena.acquire()
        r1 = arena.acquire()
        arena.view(r0)
        arena.view(r1)
        arena.acquire()  # forces growth past initial_capacity
        grown = arena.rate_pool()
        assert grown is not rate
        assert grown.shape[0] == arena.capacity


# ---------------------------------------------------------------------------
# bit-for-bit equivalence across physics / orders / limiters
# ---------------------------------------------------------------------------


def _problem(name, **cfg_kwargs):
    makers = {
        "advection": advecting_pulse,
        "euler": sedov_blast,
        "mhd": mhd_blast,
    }
    maker = makers[name]
    base = maker(ndim=2).config
    if cfg_kwargs:
        from dataclasses import replace

        return maker(ndim=2, config=replace(base, **cfg_kwargs))
    return maker(ndim=2)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", ["advection", "euler", "mhd"])
@pytest.mark.parametrize("order", [1, 2])
def test_equivalence_problems_orders(name, order, backend):
    require_backend(backend)
    problem = _problem(name, order=order)
    blocked, batched = run_pair(problem, steps=6, kernel_backend=backend)
    assert_forests_identical(blocked.forest, batched.forest)
    assert [r.dt for r in blocked.history] == [r.dt for r in batched.history]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("limiter", ["minmod", "mc", "superbee"])
def test_equivalence_limiters(limiter, backend):
    require_backend(backend)
    problem = _problem("euler", limiter=limiter)
    blocked, batched = run_pair(problem, steps=5, kernel_backend=backend)
    assert_forests_identical(blocked.forest, batched.forest)


@pytest.mark.parametrize("name", ["advection", "euler", "mhd"])
@pytest.mark.parametrize("order", [1, 2])
@pytest.mark.parametrize("limiter", ["van_leer", "minmod", "mc", "superbee"])
def test_backend_equivalence_matrix(name, order, limiter):
    """Numba must land bit-for-bit on the numpy reference state across
    the full physics x order x limiter matrix (both engines)."""
    require_backend("numba")
    problem = _problem(name, order=order, limiter=limiter)
    for engine in ("blocked", "batched"):
        ref = run_one(problem, 5, engine, "numpy")
        jit = run_one(problem, 5, engine, "numba")
        assert_forests_identical(ref.forest, jit.forest)
        assert [r.dt for r in ref.history] == [r.dt for r in jit.history]


@pytest.mark.parametrize("backend", BACKENDS)
def test_equivalence_through_adaptation(backend):
    require_backend(backend)
    # enough steps to cross several adapt checks (interval 4) so blocks
    # refine/coarsen mid-run, exercising arena growth + recompaction
    problem = _problem("mhd")
    blocked, batched = run_pair(problem, steps=10, kernel_backend=backend)
    assert any(r.adapted is not None and r.adapted.changed
               for r in batched.history)
    assert_forests_identical(blocked.forest, batched.forest)


def test_backend_equivalence_through_adaptation():
    require_backend("numba")
    problem = _problem("mhd")
    ref = run_one(problem, 10, "batched", "numpy")
    jit = run_one(problem, 10, "batched", "numba")
    assert any(r.adapted is not None and r.adapted.changed
               for r in jit.history)
    assert_forests_identical(ref.forest, jit.forest)


@pytest.mark.parametrize("backend", BACKENDS)
def test_equivalence_with_reflux(backend):
    require_backend(backend)
    problem = _problem("euler")
    blocked, batched = run_pair(
        problem, steps=6, adaptive=True, kernel_backend=backend
    )
    # rerun with reflux on
    sims = {}
    for engine in ("blocked", "batched"):
        sim = problem.build(engine=engine, kernel_backend=backend)
        sim.reflux = True
        with sim:
            for _ in range(6):
                sim.step()
        sims[engine] = sim
    assert_forests_identical(sims["blocked"].forest, sims["batched"].forest)


def test_backend_equivalence_with_reflux():
    require_backend("numba")
    problem = _problem("euler")
    sims = {}
    for backend in BACKENDS:
        sim = problem.build(engine="batched", kernel_backend=backend)
        sim.reflux = True
        with sim:
            for _ in range(6):
                sim.step()
        sims[backend] = sim
    assert_forests_identical(sims["numpy"].forest, sims["numba"].forest)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_tile_invariance(backend):
    require_backend(backend)
    problem = _problem("mhd")
    results = []
    for tile in (1, 7, 64, None):
        sim = problem.build(engine="batched", kernel_backend=backend)
        sim.batch_tile = tile
        with sim:
            for _ in range(5):
                sim.step()
        results.append(sim.forest)
    for other in results[1:]:
        assert_forests_identical(results[0], other)


def test_equivalence_3d():
    problem = advecting_pulse(ndim=3)
    blocked, batched = run_pair(problem, steps=4)
    assert_forests_identical(blocked.forest, batched.forest)


# ---------------------------------------------------------------------------
# sanitizer / race detector / recovery
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_batched_under_ghost_sanitizer(backend):
    require_backend(backend)
    problem = _problem("mhd")
    plain = problem.build(engine="batched", kernel_backend=backend)
    with plain:
        for _ in range(5):
            plain.step()
    sanitized = problem.build(
        engine="batched", sanitize=True, kernel_backend=backend
    )
    with sanitized:
        for _ in range(5):
            sanitized.step()  # raises PoisonError on any violation
    assert sanitized.sanitizer is not None
    assert sanitized.sanitizer.n_exchanges_checked > 0
    assert_forests_identical(plain.forest, sanitized.forest)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batched_reference_vs_emulator_with_race_detector(backend):
    """The emulated distributed machine (race-checked) must match a
    batched-engine serial reference bit-for-bit."""
    require_backend(backend)
    from repro.parallel.emulator import EmulatedMachine

    def make_forest():
        f = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=1,
            n_ghost=2, periodic=(True, True), max_level=3,
        )
        f.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
        return f

    def init(forest):
        for b in forest:
            X, Y = b.meshgrid()
            b.interior[0] = np.exp(-50 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2))

    scheme = AdvectionScheme((1.0, 0.5), order=2)
    scheme.kernels = get_backend(backend)
    dt, n_steps = 2e-3, 5

    ref_forest = make_forest()
    init(ref_forest)
    with Simulation(ref_forest, scheme, engine="batched") as ref:
        for _ in range(n_steps):
            ref.advance(dt)

    emu_forest = make_forest()
    init(emu_forest)
    emu = EmulatedMachine(emu_forest, 4, scheme)
    detector = emu.attach_race_detector()
    for _ in range(n_steps):
        emu.advance(dt)
    detector.check()  # no exchange races
    gathered = emu.gather()
    for bid, blk in ref_forest.blocks.items():
        assert np.array_equal(gathered[bid], blk.interior), bid


@pytest.mark.parametrize("backend", BACKENDS)
def test_batched_reference_through_rank_kill_recovery(tmp_path, backend):
    """Rank-kill + checkpoint recovery must land bit-for-bit on the
    batched-engine reference (recovery deepcopies the forest, so this
    also exercises arena re-binding under deepcopy)."""
    require_backend(backend)
    from repro.parallel.emulator import EmulatedMachine
    from repro.resilience import (
        Checkpointer,
        FaultPlan,
        RankKill,
        run_with_recovery,
    )

    def make_forest():
        f = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=1,
            n_ghost=2, periodic=(True, True), max_level=3,
        )
        f.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
        return f

    def init(forest):
        for b in forest:
            X, Y = b.meshgrid()
            b.interior[0] = np.exp(-50 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2))

    scheme = AdvectionScheme((1.0, 0.5), order=2)
    scheme.kernels = get_backend(backend)
    dt, n_steps = 2e-3, 6

    ref_forest = make_forest()
    init(ref_forest)
    with Simulation(ref_forest, scheme, engine="batched") as ref:
        for _ in range(n_steps):
            ref.advance(dt)

    emu_forest = make_forest()
    init(emu_forest)
    emu = EmulatedMachine(
        emu_forest, 4, scheme,
        fault_plan=FaultPlan(kills=[RankKill(step=3, rank=1)]),
    )
    report = run_with_recovery(
        emu, n_steps=n_steps, dt=dt,
        checkpointer=Checkpointer(tmp_path), checkpoint_every=2,
    )
    assert report.steps_completed == n_steps
    gathered = emu.gather()
    for bid, blk in ref_forest.blocks.items():
        assert np.array_equal(gathered[bid], blk.interior), bid


# ---------------------------------------------------------------------------
# resource management
# ---------------------------------------------------------------------------


def test_close_shuts_down_executor():
    problem = _problem("advection")
    sim = problem.build()
    sim_threads = Simulation(sim.forest, sim.scheme, threads=2)
    assert sim_threads._executor is not None
    sim_threads.close()
    assert sim_threads._executor is None
    sim_threads.close()  # idempotent
    sim.close()


def test_context_manager_closes():
    problem = _problem("advection")
    built = problem.build()
    with Simulation(built.forest, built.scheme, threads=2) as sim:
        assert sim._executor is not None
        sim.step()
    assert sim._executor is None
    built.close()


def test_invalid_engine_rejected():
    problem = _problem("advection")
    with pytest.raises(ValueError, match="engine"):
        problem.build(engine="warp")
    cfg = problem.config
    from dataclasses import replace

    with pytest.raises(ValueError, match="engine"):
        replace(cfg, engine="warp")


def test_cli_engine_flag(capsys):
    from repro.cli import main

    assert main(["run", "pulse", "--steps", "2", "--engine", "batched"]) == 0
    out = capsys.readouterr().out
    assert "final grid" in out


def test_cli_kernel_backend_flag(capsys):
    from repro.cli import main

    assert main([
        "run", "pulse", "--steps", "2",
        "--engine", "batched", "--kernel-backend", "numpy",
    ]) == 0
    out = capsys.readouterr().out
    assert "final grid" in out
