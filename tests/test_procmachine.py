"""Tests for the real-process parallel backend (repro.parallel.procmachine).

Every rank is an actual OS process with its block pool in a POSIX
shared-memory segment, so these tests exercise genuinely independent
failure: ``--kill``-style faults deliver a real SIGKILL, hangs are
detected by heartbeat staleness, and recovery respawns a fresh process
and restores its blocks from the SFC buddy's shared-memory mirror with
zero disk reads.  The headline oracle stays the same as the emulator's:
bit-for-bit agreement with the serial driver, faults or no faults.

An autouse fixture sweeps for orphaned shared-memory segments and
zombie child processes after *every* test — leak-proof teardown is an
acceptance criterion, not a best effort.
"""

import multiprocessing as mp
import os
import sys

import numpy as np
import pytest

from repro.amr import Simulation
from repro.amr.boundary import OutflowBC
from repro.core import BlockForest, BlockID
from repro.core.arena import BlockArena
from repro.parallel import (
    FailureKind,
    ProcConfig,
    ProcessMachine,
    leaked_segments,
)
from repro.parallel.shared_arena import SharedBlockArena
from repro.resilience import (
    BitFlip,
    Checkpointer,
    FaultPlan,
    RankKill,
    RetryPolicy,
    Scrubber,
    run_with_recovery,
)
from repro.solvers import AdvectionScheme, EulerScheme
from repro.util.geometry import Box

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux") and sys.platform != "darwin",
    reason="process backend requires POSIX shared memory + fork",
)

#: Aggressive supervision so failure-path tests finish in seconds while
#: staying far above scheduler jitter on an oversubscribed CI box.
FAST = ProcConfig(
    phase_timeout=0.5,
    hard_timeout=20.0,
    heartbeat_interval=0.02,
    heartbeat_timeout=1.0,
)


@pytest.fixture(autouse=True)
def no_leaked_segments_no_zombies():
    """Acceptance sweep: every test leaves /dev/shm and the process
    table exactly as it found them."""
    yield
    for proc in mp.active_children():
        proc.join(timeout=10)
    assert mp.active_children() == [], "zombie worker processes remain"
    assert leaked_segments() == [], "orphaned shared-memory segments remain"


def make_amr_forest(nvar=1, periodic=(True, True)):
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=nvar,
        n_ghost=2, periodic=periodic, max_level=3,
    )
    f.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
    f.adapt([BlockID(1, (1, 1))])
    return f


def init_pulse(forest, scheme):
    for b in forest:
        X, Y = b.meshgrid()
        if scheme.nvar == 1:
            b.interior[0] = np.exp(-50 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2))
        else:
            w = np.stack(
                [
                    1.0
                    + 0.3 * np.exp(-50 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2)),
                    0.4 * np.ones_like(X),
                    -0.2 * np.ones_like(X),
                    np.ones_like(X),
                ]
            )
            b.interior[...] = scheme.prim_to_cons(w)


def serial_reference(scheme, n_steps, dt, *, nvar=1, periodic=(True, True),
                     bc=None):
    forest = make_amr_forest(nvar, periodic)
    init_pulse(forest, scheme)
    sim = Simulation(forest, scheme, bc=bc) if bc else Simulation(
        forest, scheme
    )
    for _ in range(n_steps):
        sim.advance(dt)
    return forest


def assert_bitwise(machine, forest_ref):
    gathered = machine.gather()
    assert set(gathered) == set(forest_ref.blocks)
    for bid, block in forest_ref.blocks.items():
        np.testing.assert_array_equal(gathered[bid], block.interior)


class CountingCheckpointer(Checkpointer):
    """Checkpointer that counts disk restores (localized recovery must
    never need one)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.n_disk_loads = 0

    def load_latest(self):
        self.n_disk_loads += 1
        return super().load_latest()


DT = 1e-3


def drive_with_recovery(machine, tmp_path, *, n_steps=4, strategy="auto",
                        checkpointer=None):
    ckpt = checkpointer or Checkpointer(tmp_path)
    report = run_with_recovery(
        machine, n_steps=n_steps, dt=DT, checkpointer=ckpt,
        checkpoint_every=1, strategy=strategy,
    )
    return report, ckpt


# ---------------------------------------------------------------------------
# fault-free correctness: real processes match the serial driver bitwise
# ---------------------------------------------------------------------------


class TestBitwiseAgreement:
    @pytest.mark.parametrize("n_ranks", [1, 3])
    def test_two_stage_advection_matches_serial(self, n_ranks):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        ref = serial_reference(scheme, 4, DT)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        with ProcessMachine(forest, n_ranks, scheme, config=FAST) as m:
            for _ in range(4):
                m.advance(DT)
            assert_bitwise(m, ref)
            assert m.stats.n_messages > 0 or n_ranks == 1

    def test_one_stage_scheme_matches_serial(self):
        scheme = AdvectionScheme((1.0, 0.5), order=1)
        ref = serial_reference(scheme, 4, DT)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        with ProcessMachine(forest, 3, scheme, config=FAST) as m:
            for _ in range(4):
                m.advance(DT)
            assert_bitwise(m, ref)

    def test_euler_outflow_bc_matches_serial(self):
        scheme = EulerScheme(2)
        bc = OutflowBC()
        ref = serial_reference(
            scheme, 3, DT, nvar=scheme.nvar, periodic=(False, False), bc=bc
        )
        forest = make_amr_forest(scheme.nvar, (False, False))
        init_pulse(forest, scheme)
        with ProcessMachine(forest, 3, scheme, bc=bc, config=FAST) as m:
            for _ in range(3):
                m.advance(DT)
            assert_bitwise(m, ref)

    def test_sanitizer_and_race_detector_attach(self):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        ref = serial_reference(scheme, 3, DT)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        with ProcessMachine(
            forest, 3, scheme, sanitize=True, config=FAST
        ) as m:
            m.attach_race_detector()
            for _ in range(3):
                m.advance(DT)
            assert m.sanitizer is not None
            assert m.sanitizer.n_exchanges_checked > 0
            assert m.race_detector.epoch > 0
            assert_bitwise(m, ref)

    def test_rank_cells_and_gather_cover_forest(self):
        scheme = AdvectionScheme((1.0, 0.5), order=1)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        with ProcessMachine(forest, 3, scheme, config=FAST) as m:
            cells = m.rank_cells()
            assert len(cells) == 3
            assert sum(cells) == m.topology.n_cells


# ---------------------------------------------------------------------------
# real SIGKILL -> localized recovery from shared-memory partner mirrors
# ---------------------------------------------------------------------------


class TestRealProcessDeath:
    def test_sigkill_recovers_locally_with_zero_disk_reads(self, tmp_path):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        ref = serial_reference(scheme, 4, DT)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        plan = FaultPlan(kills=[RankKill(step=2, rank=1)])
        ckpt = CountingCheckpointer(tmp_path)
        with ProcessMachine(
            forest, 3, scheme, fault_plan=plan,
            retry_policy=RetryPolicy(seed=1), config=FAST,
        ) as m:
            victim_pid = m._procs[1].pid
            report, _ = drive_with_recovery(m, tmp_path, checkpointer=ckpt)
            assert [(e.kind, e.strategy) for e in report.events] == [
                ("rank-failure", "local")
            ]
            # A real process died and a genuinely new one replaced it.
            assert [d.kind for d in m.deaths] == [FailureKind.SIGKILL]
            assert m.alive_ranks == [0, 1, 2]
            assert m._procs[1].pid != victim_pid
            # Localized recovery is pure shared-memory: no disk restore.
            assert ckpt.n_disk_loads == 0
            assert_bitwise(m, ref)

    def test_double_kill_escalates_to_checkpoint_rollback(self, tmp_path):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        ref = serial_reference(scheme, 4, DT)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        plan = FaultPlan(
            kills=[RankKill(step=3, rank=0), RankKill(step=3, rank=1)]
        )
        ckpt = CountingCheckpointer(tmp_path)
        with ProcessMachine(
            forest, 3, scheme, fault_plan=plan,
            retry_policy=RetryPolicy(seed=1), config=FAST,
        ) as m:
            report, _ = drive_with_recovery(m, tmp_path, checkpointer=ckpt)
            assert [(e.kind, e.strategy) for e in report.events] == [
                ("rank-failure", "global")
            ]
            assert report.events[0].escalated
            assert ckpt.n_disk_loads >= 1
            assert m.alive_ranks == [0, 1, 2]  # restore respawned both
            assert_bitwise(m, ref)

    def test_kill_empty_rank_is_absorbed(self, tmp_path):
        # With far more ranks than blocks, some ranks own nothing;
        # SIGKILLing one must not trigger recovery at all.
        scheme = AdvectionScheme((1.0, 0.5), order=1)
        ref = serial_reference(scheme, 3, DT)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        n_ranks = 25  # > 19 blocks: the partition leaves some ranks empty
        with ProcessMachine(forest, n_ranks, scheme, config=FAST) as m:
            empty = next(
                r for r in range(n_ranks) if not m.rank_blocks[r]
            )
            m.advance(DT)
            m.kill_rank(empty)
            for _ in range(2):
                m.advance(DT)  # no RankFailure: nothing was lost
            assert [d.kind for d in m.deaths] == [FailureKind.SIGKILL]
            assert empty not in m.alive_ranks
            assert_bitwise(m, ref)

    def test_respawn_failure_degrades_to_redistribution(self, tmp_path):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        ref = serial_reference(scheme, 4, DT)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        plan = FaultPlan(kills=[RankKill(step=2, rank=1)])
        with ProcessMachine(
            forest, 3, scheme, fault_plan=plan,
            retry_policy=RetryPolicy(seed=1), config=FAST,
        ) as m:
            m.fail_respawn.add(1)  # test hook: every respawn attempt fails
            report, _ = drive_with_recovery(m, tmp_path)
            assert [(e.kind, e.strategy) for e in report.events] == [
                ("rank-failure", "local")
            ]
            # The rank stays dead; its blocks now live on the survivors.
            assert m.alive_ranks == [0, 2]
            assert sum(len(m.rank_blocks[r]) for r in m.alive_ranks) == len(
                ref.blocks
            )
            assert_bitwise(m, ref)


# ---------------------------------------------------------------------------
# silent data corruption: scrub + mirror-verified healing on real processes
# ---------------------------------------------------------------------------


class TestSilentDataCorruption:
    """Bitflips injected into real worker address spaces (via the
    supervisor fault channel) must be detected at the next phase
    boundary and healed back to bit-for-bit agreement with the serial
    driver — the same oracle the SIGKILL tests use."""

    def test_fault_free_scrub_run_is_bit_identical(self):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        ref = serial_reference(scheme, 4, DT)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        with ProcessMachine(forest, 3, scheme, config=FAST) as m:
            scrubber = m.attach_scrubber(Scrubber(every=1))
            for _ in range(4):
                m.advance(DT)
            assert_bitwise(m, ref)
            assert scrubber.scrubs >= 4
            assert scrubber.mismatches == 0

    @pytest.mark.parametrize("target", ["interior", "mirror", "staging"])
    def test_flip_detected_and_healed_bit_for_bit(self, target, tmp_path):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        ref = serial_reference(scheme, 4, DT)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        plan = FaultPlan(
            bitflips=[BitFlip(step=2, target=target, block=1, byte=7,
                              bit=4)]
        )
        with ProcessMachine(
            forest, 3, scheme, fault_plan=plan, config=FAST,
        ) as m:
            m.attach_scrubber(Scrubber(every=1))
            report, _ = drive_with_recovery(m, tmp_path)
            events = [e for e in report.events if e.kind == "corruption"]
            assert events, "flip was never detected"
            assert events[0].step == 2
            # no rank died: the machine never lost a process to SDC
            assert m.deaths == []
            assert m.alive_ranks == [0, 1, 2]
            assert_bitwise(m, ref)

    def test_interior_flip_heals_from_mirror_with_zero_disk_reads(
        self, tmp_path
    ):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        ref = serial_reference(scheme, 4, DT)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        plan = FaultPlan(
            bitflips=[BitFlip(step=2, target="interior", block=0, byte=3,
                              bit=2)]
        )
        ckpt = CountingCheckpointer(tmp_path)
        with ProcessMachine(
            forest, 3, scheme, fault_plan=plan, config=FAST,
        ) as m:
            m.attach_scrubber(Scrubber(every=1))
            report, _ = drive_with_recovery(
                m, tmp_path, strategy="local", checkpointer=ckpt
            )
            assert [(e.kind, e.strategy) for e in report.events] == [
                ("corruption", "local")
            ]
            assert ckpt.n_disk_loads == 0
            assert_bitwise(m, ref)


# ---------------------------------------------------------------------------
# failure-detector edge cases (satellite: heartbeat vs slow, hang, retry)
# ---------------------------------------------------------------------------


class TestFailureDetector:
    def _run(self, tmp_path, hooks, *, retry_policy=None, config=FAST,
             n_steps=4):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        ref = serial_reference(scheme, n_steps, DT)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        with ProcessMachine(
            forest, 3, scheme,
            retry_policy=retry_policy or RetryPolicy(seed=3),
            config=config, test_hooks=hooks,
        ) as m:
            report, _ = drive_with_recovery(m, tmp_path, n_steps=n_steps)
            assert_bitwise(m, ref)
            return m, report

    def test_hang_detected_by_stale_heartbeat(self, tmp_path):
        m, report = self._run(tmp_path, {1: {(2, "exch1"): "hang"}})
        assert FailureKind.HANG in {d.kind for d in m.deaths}
        assert len(report.events) >= 1
        assert m.alive_ranks == [0, 1, 2]

    def test_slow_rank_is_not_falsely_killed(self, tmp_path):
        # Three times the phase timeout, but the heartbeat stays fresh:
        # the supervisor must wait, not kill.
        m, report = self._run(tmp_path, {1: {(2, "step"): "slow:1.5"}})
        assert m.deaths == []
        assert report.events == []

    def test_clean_exit_is_classified(self, tmp_path):
        m, report = self._run(tmp_path, {1: {(2, "exch2-write"): "exit"}})
        assert [d.kind for d in m.deaths][:1] == [FailureKind.CLEAN_EXIT]
        assert m.alive_ranks == [0, 1, 2]

    def test_mute_reply_recovered_by_probe(self, tmp_path):
        # The worker computes but "loses" its reply; the supervisor's
        # resend probe recovers it without declaring a death.
        m, report = self._run(tmp_path, {2: {(1, "exch1"): "mute"}})
        assert m.deaths == []
        assert report.events == []

    def test_corrupt_reply_retried_then_accepted(self, tmp_path):
        m, report = self._run(tmp_path, {0: {(1, "predictor"): "garble"}})
        assert m.deaths == []
        assert m.stats.n_retries >= 1

    def test_persistent_corruption_escalates_to_unreachable(self, tmp_path):
        m, report = self._run(
            tmp_path, {1: {(2, "exch1"): "garble-forever"}}
        )
        assert FailureKind.UNREACHABLE in {d.kind for d in m.deaths}
        assert m.alive_ranks == [0, 1, 2]
        assert m.stats.n_retries >= 1

    def test_retry_backoff_is_deterministic(self, tmp_path):
        # Same seed, same schedule of corrupt replies -> identical total
        # backoff, on real processes.
        waits = []
        for trial in ("a", "b"):
            m, _ = self._run(
                tmp_path / trial, {0: {(1, "predictor"): "garble"}},
                retry_policy=RetryPolicy(seed=7),
            )
            waits.append((m.stats.n_retries, m.stats.retry_wait))
        assert waits[0] == waits[1]
        assert waits[0][0] >= 1 and waits[0][1] > 0


# ---------------------------------------------------------------------------
# teardown discipline (satellite: no leaks on exception paths)
# ---------------------------------------------------------------------------


class TestTeardown:
    def test_exception_inside_context_leaks_nothing(self):
        scheme = AdvectionScheme((1.0, 0.5), order=1)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        with pytest.raises(RuntimeError, match="boom"):
            with ProcessMachine(forest, 3, scheme, config=FAST) as m:
                m.advance(DT)
                raise RuntimeError("boom")
        # the autouse fixture asserts no segments / no children remain

    def test_close_is_idempotent(self):
        scheme = AdvectionScheme((1.0, 0.5), order=1)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        m = ProcessMachine(forest, 2, scheme, config=FAST)
        m.advance(DT)
        m.close()
        m.close()
        assert leaked_segments() == []

    def test_close_after_unrecovered_kill_leaks_nothing(self, tmp_path):
        from repro.resilience import RankFailure

        scheme = AdvectionScheme((1.0, 0.5), order=1)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        plan = FaultPlan(kills=[RankKill(step=1, rank=0)])
        with ProcessMachine(
            forest, 3, scheme, fault_plan=plan, config=FAST
        ) as m:
            m.advance(DT)
            with pytest.raises(RankFailure) as exc:
                m.advance(DT)  # the scripted kill fires at step 1
            assert exc.value.kinds == (FailureKind.SIGKILL,)
        # no recovery ran: close() must still tear down the dead rank's
        # remains plus both survivors (fixture asserts)


# ---------------------------------------------------------------------------
# shared-arena unit tests
# ---------------------------------------------------------------------------


class TestSharedArena:
    def test_buffer_backed_arena_is_fixed_capacity(self):
        buf = bytearray(2 * 1 * 8 * 8 * 8)  # 2 rows of (1, 8, 8) float64
        arena = BlockArena((4, 4), 2, 1, initial_capacity=2, buffer=buf)
        arena.acquire()
        arena.acquire()
        with pytest.raises(RuntimeError, match="fixed"):
            arena.acquire()

    def test_segment_roundtrip_and_mirror(self):
        seg = SharedBlockArena(
            (4, 4), 2, 1, capacity=2, mirror_capacity=3
        )
        try:
            row = seg.arena.acquire()
            seg.pool_view(row)[...] = 7.5
            attached = SharedBlockArena(
                (4, 4), 2, 1, capacity=2, mirror_capacity=3,
                name=seg.name, create=False,
            )
            try:
                np.testing.assert_array_equal(
                    attached.pool_view(row), seg.pool_view(row)
                )
                attached.mirror_view(2)[...] = -1.0
                assert float(seg.mirror_view(2).max()) == -1.0
                assert seg.mirror_view(0).shape == (1, 4, 4)
            finally:
                attached.destroy()
        finally:
            seg.destroy()
        assert leaked_segments() == []

    def test_destroy_is_idempotent_and_views_fail_after(self):
        seg = SharedBlockArena((4, 4), 2, 1, capacity=1)
        seg.destroy()
        seg.destroy()
        with pytest.raises(RuntimeError):
            seg.pool_view(0)

    def test_attach_requires_name(self):
        with pytest.raises(ValueError):
            SharedBlockArena((4, 4), 2, 1, capacity=1, create=False)


# ---------------------------------------------------------------------------
# restore() API parity with the emulator (driver-level global rollback)
# ---------------------------------------------------------------------------


class TestRestoreParity:
    def test_restore_rebuilds_from_forest(self):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        forest = make_amr_forest()
        init_pulse(forest, scheme)
        snapshot = make_amr_forest()
        init_pulse(snapshot, scheme)
        with ProcessMachine(forest, 3, scheme, config=FAST) as m:
            for _ in range(2):
                m.advance(DT)
            m.restore(snapshot, time=0.0, step_index=0)
            assert m.time == 0.0 and m.step_index == 0
            gathered = m.gather()
            for bid, block in snapshot.blocks.items():
                np.testing.assert_array_equal(gathered[bid], block.interior)
            # and the machine still advances correctly after restore
            ref = serial_reference(scheme, 2, DT)
            for _ in range(2):
                m.advance(DT)
            assert_bitwise(m, ref)
