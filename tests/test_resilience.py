"""Tests for the resilience subsystem (repro.resilience).

Covers the three pillars:

* deterministic fault injection + rollback recovery on the emulated
  machine, with the headline oracle that a recovered faulty run matches
  the fault-free serial driver **bit-for-bit**;
* the rotating checkpoint manager (atomic writes, corrupt-newest
  fallback);
* the forest invariant validator and the driver's safe mode.
"""

import numpy as np
import pytest

from repro.amr import Simulation, advecting_pulse
from repro.amr.io import CheckpointError, save_forest
from repro.core import BlockForest, BlockID
from repro.core.forest import ForestError
from repro.core.ghost import fill_ghosts
from repro.parallel.emulator import EmulatedMachine
from repro.resilience import (
    Checkpointer,
    FaultPlan,
    HealthIssue,
    MessageFailure,
    MessageFault,
    PartnerStore,
    RankFailure,
    RankKill,
    RetryPolicy,
    UnrecoverableStep,
    assert_valid_forest,
    run_with_recovery,
    scan_forest_health,
    validate_forest,
)
from repro.solvers import AdvectionScheme, EulerScheme
from repro.util.geometry import Box


def make_amr_forest(nvar=1, periodic=(True, True)):
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=nvar,
        n_ghost=2, periodic=periodic, max_level=3,
    )
    f.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
    f.adapt([BlockID(1, (1, 1))])
    return f


def init_pulse(forest):
    for b in forest:
        X, Y = b.meshgrid()
        b.interior[0] = np.exp(-50 * ((X - 0.5) ** 2 + (Y - 0.5) ** 2))


def serial_reference(scheme, n_steps, dt):
    forest = make_amr_forest()
    init_pulse(forest)
    sim = Simulation(forest, scheme)
    for _ in range(n_steps):
        sim.advance(dt)
    return forest


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_random_is_deterministic(self):
        a = FaultPlan.random(seed=7, n_steps=10, n_ranks=4, n_kills=2,
                             n_message_faults=3)
        b = FaultPlan.random(seed=7, n_steps=10, n_ranks=4, n_kills=2,
                             n_message_faults=3)
        assert a.kills == b.kills
        assert a.message_faults == b.message_faults
        c = FaultPlan.random(seed=8, n_steps=10, n_ranks=4, n_kills=2,
                             n_message_faults=3)
        assert (a.kills, a.message_faults) != (c.kills, c.message_faults)

    def test_random_leaves_a_survivor(self):
        with pytest.raises(ValueError):
            FaultPlan.random(seed=0, n_steps=5, n_ranks=3, n_kills=3)

    def test_faults_are_one_shot(self):
        plan = FaultPlan(
            kills=[RankKill(step=2, rank=1)],
            message_faults=[MessageFault(step=3, index=0, mode="drop")],
        )
        assert plan.pending == 2
        assert plan.kills_at(1) == []
        assert plan.kills_at(2) == [1]
        assert plan.kills_at(2) == []  # consumed
        assert plan.message_fault(3, 0) == "drop"
        assert plan.message_fault(3, 0) is None  # consumed
        assert plan.pending == 0

    def test_bad_message_mode_rejected(self):
        with pytest.raises(ValueError):
            MessageFault(step=1, index=0, mode="explode")


# ---------------------------------------------------------------------------
# emulator fault handling
# ---------------------------------------------------------------------------


class TestEmulatorFaults:
    def test_kill_rank_updates_liveness_and_guards(self):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        forest = make_amr_forest()
        init_pulse(forest)
        emu = EmulatedMachine(forest, 4, scheme)
        assert emu.alive_ranks == [0, 1, 2, 3]
        emu.kill_rank(1)
        assert emu.alive_ranks == [0, 2, 3]
        assert emu.lost_blocks()  # its blocks are unowned now
        # gather()/rank_cells() skip the dead rank instead of crashing.
        gathered = emu.gather()
        assert len(gathered) < forest.n_blocks
        assert len(emu.rank_cells()) == 3
        # An exchange with unowned blocks is refused with a clear error.
        with pytest.raises(RuntimeError, match="lost"):
            emu.exchange()

    def test_restore_repartitions_over_survivors(self, tmp_path):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        forest = make_amr_forest()
        init_pulse(forest)
        emu = EmulatedMachine(forest, 4, scheme)
        ckpt = Checkpointer(tmp_path)
        ckpt.save(forest, step=0, time=0.0)
        emu.advance(1e-3)
        emu.kill_rank(2)
        restored, info = ckpt.load_latest()
        emu.restore(restored, time=info.time, step_index=info.step)
        assert not emu.lost_blocks()
        assert emu.time == 0.0 and emu.step_index == 0
        assert set(emu.assignment.values()) <= {0, 1, 3}
        gathered = emu.gather()
        for bid, blk in forest.blocks.items():
            np.testing.assert_array_equal(gathered[bid], blk.interior)

    def test_rank_kill_raises_rank_failure(self):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        forest = make_amr_forest()
        init_pulse(forest)
        plan = FaultPlan(kills=[RankKill(step=0, rank=0)])
        emu = EmulatedMachine(forest, 3, scheme, fault_plan=plan)
        with pytest.raises(RankFailure) as exc:
            emu.advance(1e-3)
        assert exc.value.ranks == (0,)
        assert exc.value.lost_blocks

    @pytest.mark.parametrize("mode", ["drop", "corrupt"])
    def test_message_fault_raises_message_failure(self, mode):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        forest = make_amr_forest()
        init_pulse(forest)
        plan = FaultPlan(
            message_faults=[MessageFault(step=0, index=3, mode=mode)]
        )
        emu = EmulatedMachine(forest, 4, scheme, fault_plan=plan)
        with pytest.raises(MessageFailure) as exc:
            emu.advance(1e-3)
        assert exc.value.mode == mode
        assert exc.value.index == 3


# ---------------------------------------------------------------------------
# recovery: the bit-for-bit acceptance criterion
# ---------------------------------------------------------------------------


class TestRecovery:
    N_STEPS = 6
    DT = 1e-3

    def _run(self, plan, tmp_path, n_ranks=4, checkpoint_every=2):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        forest = make_amr_forest()
        init_pulse(forest)
        emu = EmulatedMachine(forest, n_ranks, scheme, fault_plan=plan)
        report = run_with_recovery(
            emu,
            n_steps=self.N_STEPS,
            dt=self.DT,
            checkpointer=Checkpointer(tmp_path),
            checkpoint_every=checkpoint_every,
        )
        reference = serial_reference(scheme, self.N_STEPS, self.DT)
        gathered = emu.gather()
        worst = 0.0
        for bid, blk in reference.blocks.items():
            worst = max(worst, float(np.abs(gathered[bid] - blk.interior).max()))
        return emu, report, worst

    def test_rank_failure_recovers_bit_for_bit(self, tmp_path):
        plan = FaultPlan(kills=[RankKill(step=3, rank=1)])
        emu, report, worst = self._run(plan, tmp_path)
        assert worst == 0.0
        assert emu.alive_ranks == [0, 2, 3]
        assert report.steps_completed == self.N_STEPS
        (event,) = report.events
        assert event.kind == "rank-failure"
        assert event.step == 3
        assert event.restored_from_step == 2
        assert event.replayed_steps == 1

    @pytest.mark.parametrize("mode", ["drop", "corrupt"])
    def test_message_fault_recovers_bit_for_bit(self, mode, tmp_path):
        plan = FaultPlan(
            message_faults=[MessageFault(step=2, index=7, mode=mode)]
        )
        emu, report, worst = self._run(plan, tmp_path, n_ranks=3,
                                       checkpoint_every=1)
        assert worst == 0.0
        assert emu.alive_ranks == [0, 1, 2]
        (event,) = report.events
        assert event.kind == f"message-{mode}"

    def test_multiple_faults_recover_bit_for_bit(self, tmp_path):
        plan = FaultPlan(
            kills=[RankKill(step=1, rank=3), RankKill(step=4, rank=0)],
            message_faults=[MessageFault(step=2, index=0, mode="corrupt")],
        )
        emu, report, worst = self._run(plan, tmp_path, checkpoint_every=1)
        assert worst == 0.0
        assert emu.alive_ranks == [1, 2]
        assert len(report.events) == 3
        assert plan.pending == 0

    def test_recovery_budget_is_bounded(self, tmp_path):
        plan = FaultPlan(kills=[RankKill(step=1, rank=1)])
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        forest = make_amr_forest()
        init_pulse(forest)
        emu = EmulatedMachine(forest, 4, scheme, fault_plan=plan)
        with pytest.raises(RankFailure):
            run_with_recovery(
                emu, n_steps=4, dt=self.DT,
                checkpointer=Checkpointer(tmp_path),
                max_recoveries=0,
            )


# ---------------------------------------------------------------------------
# localized recovery: the partner-redundancy tier
# ---------------------------------------------------------------------------


class _CountingCheckpointer(Checkpointer):
    """Counts disk restores so tests can pin zero-disk local recovery."""

    def __init__(self, root, **kw):
        super().__init__(root, **kw)
        self.loads = 0

    def load_latest(self):
        self.loads += 1
        return super().load_latest()


class TestLocalizedRecovery:
    N_STEPS = 6
    DT = 1e-3

    def _run(self, plan, tmp_path, *, strategy="local", refresh_every=1,
             n_ranks=4, retry_policy=None):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        forest = make_amr_forest()
        init_pulse(forest)
        emu = EmulatedMachine(forest, n_ranks, scheme, fault_plan=plan,
                              retry_policy=retry_policy)
        ckpt = _CountingCheckpointer(tmp_path)
        report = run_with_recovery(
            emu, n_steps=self.N_STEPS, dt=self.DT, checkpointer=ckpt,
            checkpoint_every=2, strategy=strategy,
            partner_refresh_every=refresh_every,
        )
        reference = serial_reference(scheme, self.N_STEPS, self.DT)
        gathered = emu.gather()
        worst = 0.0
        for bid, blk in reference.blocks.items():
            worst = max(worst, float(np.abs(gathered[bid] - blk.interior).max()))
        return emu, report, ckpt, worst

    def test_rank_kill_recovers_locally_bit_for_bit(self, tmp_path):
        plan = FaultPlan(kills=[RankKill(step=3, rank=1)])
        emu, report, ckpt, worst = self._run(plan, tmp_path)
        assert worst == 0.0
        assert ckpt.loads == 0  # acceptance: zero disk reads
        (event,) = report.events
        assert event.strategy == "local"
        assert not event.escalated
        # Only the dead rank's blocks moved, not the whole forest.
        assert 0 < event.blocks_restored < emu.topology.n_blocks
        assert event.bytes_restored > 0
        # Snapshot cadence 1 + kill-before-step => nothing to replay.
        assert event.replayed_steps == 0
        assert report.n_local_recoveries == 1
        assert report.steps_completed == self.N_STEPS

    def test_stale_snapshot_rewinds_and_replays_window(self, tmp_path):
        plan = FaultPlan(kills=[RankKill(step=4, rank=2)])
        emu, report, ckpt, worst = self._run(plan, tmp_path,
                                             refresh_every=3)
        assert worst == 0.0
        assert ckpt.loads == 0
        (event,) = report.events
        assert event.strategy == "local"
        # Snapshot is from step 3; the kill hit before step 4.
        assert event.restored_from_step == 3
        assert event.replayed_steps == 1
        assert report.steps_replayed == 1

    def test_message_fault_recovers_locally(self, tmp_path):
        plan = FaultPlan(
            message_faults=[MessageFault(step=2, index=7, mode="corrupt")]
        )
        emu, report, ckpt, worst = self._run(plan, tmp_path)
        assert worst == 0.0
        assert ckpt.loads == 0
        (event,) = report.events
        assert event.kind == "message-corrupt"
        assert event.strategy == "local"

    def test_double_fault_escalates_to_global(self, tmp_path):
        # Ranks 1 and 2 die together; rank 1's partner copy lives on
        # rank 2, so localized recovery is impossible by construction.
        plan = FaultPlan(
            kills=[RankKill(step=3, rank=1), RankKill(step=3, rank=2)]
        )
        emu, report, ckpt, worst = self._run(plan, tmp_path,
                                             strategy="auto")
        assert worst == 0.0
        (event,) = report.events
        assert event.strategy == "global"
        assert event.escalated
        assert ckpt.loads == 1
        assert report.n_escalations == 1
        assert emu.alive_ranks == [0, 3]

    def test_lost_partner_copy_escalates(self, tmp_path):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        forest = make_amr_forest()
        init_pulse(forest)
        emu = EmulatedMachine(forest, 4, scheme)
        partner = PartnerStore(emu)
        partner.refresh()
        partner.invalidate(1)  # the holder lost its redundancy buffer
        emu.kill_rank(1)
        assert not partner.can_restore([1])

    def test_global_strategy_never_builds_partner_tier(self, tmp_path):
        plan = FaultPlan(kills=[RankKill(step=3, rank=1)])
        emu, report, ckpt, worst = self._run(plan, tmp_path,
                                             strategy="global")
        assert worst == 0.0
        (event,) = report.events
        assert event.strategy == "global"
        assert not event.escalated  # no partner tier, not an escalation
        assert ckpt.loads == 1
        assert emu.stats.n_partner_messages == 0

    def test_bad_strategy_rejected(self, tmp_path):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        forest = make_amr_forest()
        init_pulse(forest)
        emu = EmulatedMachine(forest, 4, scheme)
        with pytest.raises(ValueError, match="strategy"):
            run_with_recovery(
                emu, n_steps=1, dt=self.DT,
                checkpointer=Checkpointer(tmp_path), strategy="psychic",
            )

    def test_recovery_events_carry_wall_time(self, tmp_path):
        plan = FaultPlan(kills=[RankKill(step=3, rank=1)])
        emu, report, ckpt, worst = self._run(plan, tmp_path)
        (event,) = report.events
        assert event.duration > 0.0
        assert report.recovery_time == event.duration
        # The recovery cost lands on the step that finally succeeded.
        charged = [r for r in report.history if r.recovery_time]
        assert len(charged) == 1
        assert charged[0].recovery_time >= event.duration


class TestPartnerStore:
    def _machine(self, n_ranks=4):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        forest = make_amr_forest()
        init_pulse(forest)
        return EmulatedMachine(forest, n_ranks, scheme)

    def test_pairing_is_a_buddy_ring(self):
        emu = self._machine()
        partner = PartnerStore(emu)
        pairing = partner.pairing
        assert sorted(pairing) == [0, 1, 2, 3]
        assert sorted(pairing.values()) == [0, 1, 2, 3]
        assert all(pairing[r] != r for r in pairing)

    def test_refresh_is_incremental(self):
        emu = self._machine()
        partner = PartnerStore(emu)
        assert partner.refresh() == emu.topology.n_blocks
        # Nothing changed: the content tags skip every block.
        assert partner.refresh() == 0
        traffic = emu.stats.n_partner_bytes
        emu.advance(1e-3)
        assert partner.refresh() > 0
        assert emu.stats.n_partner_bytes > traffic

    def test_has_copy_requires_alive_holder(self):
        emu = self._machine()
        partner = PartnerStore(emu)
        partner.refresh()
        assert partner.has_copy(1)
        holder = partner.holder_of(1)
        emu.kill_rank(holder)
        assert not partner.has_copy(1)

    def test_refresh_rebuilds_after_membership_change(self):
        emu = self._machine()
        partner = PartnerStore(emu)
        partner.refresh()
        victim = 1
        emu.kill_rank(victim)
        partner.refresh()  # ring over [0, 2, 3] now
        assert victim not in partner.pairing
        assert sorted(partner.pairing) == [0, 2, 3]

    def test_single_rank_has_no_partner(self):
        emu = self._machine(n_ranks=1)
        partner = PartnerStore(emu)
        partner.refresh()
        assert partner.pairing == {}
        assert not partner.has_copy(0)
        assert not partner.can_rewind()


# ---------------------------------------------------------------------------
# transient message faults and retry supervision
# ---------------------------------------------------------------------------


class TestTransientRetry:
    def _machine(self, plan, policy):
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        forest = make_amr_forest()
        init_pulse(forest)
        return EmulatedMachine(forest, 4, scheme, fault_plan=plan,
                               retry_policy=policy)

    def test_transient_within_budget_is_invisible(self, tmp_path):
        plan = FaultPlan(
            message_faults=[
                MessageFault(step=2, index=4, mode="drop", transient=True)
            ]
        )
        emu = self._machine(plan, RetryPolicy(max_retries=3))
        report = run_with_recovery(
            emu, n_steps=4, dt=1e-3,
            checkpointer=Checkpointer(tmp_path), strategy="local",
        )
        # Acceptance: no rollback events at all, just a charged retry.
        assert report.events == []
        assert emu.stats.n_retries == 1
        assert emu.stats.retry_wait > 0.0
        reference = serial_reference(AdvectionScheme((1.0, 0.5), order=2),
                                     4, 1e-3)
        gathered = emu.gather()
        for bid, blk in reference.blocks.items():
            np.testing.assert_array_equal(gathered[bid], blk.interior)

    def test_retry_exhaustion_escalates_to_failure(self):
        # Three identical records: the message fails on the first send
        # and on both retransmissions allowed by the policy.
        fault = MessageFault(step=1, index=2, mode="drop", transient=True)
        plan = FaultPlan(message_faults=[fault, fault, fault])
        emu = self._machine(plan, RetryPolicy(max_retries=2))
        emu.advance(1e-3)
        with pytest.raises(MessageFailure) as exc:
            emu.advance(1e-3)
        assert exc.value.retries == 2
        assert "retransmission" in str(exc.value)
        assert emu.stats.n_retries == 2

    def test_transient_without_policy_is_fatal(self):
        plan = FaultPlan(
            message_faults=[
                MessageFault(step=0, index=0, mode="drop", transient=True)
            ]
        )
        emu = self._machine(plan, None)
        with pytest.raises(MessageFailure):
            emu.advance(1e-3)

    def test_backoff_is_deterministic_capped_and_growing(self):
        policy = RetryPolicy(max_retries=5, backoff_base=1e-3,
                             backoff_factor=2.0, backoff_cap=4e-3)
        a = [policy.backoff(k, step=3, index=1) for k in range(5)]
        b = [policy.backoff(k, step=3, index=1) for k in range(5)]
        assert a == b  # replays identically
        assert a[1] > a[0]
        assert max(a) <= 4e-3 * (1.0 + policy.jitter)
        # Different fault coordinates decorrelate the jitter.
        assert policy.backoff(0, step=3, index=1) != policy.backoff(
            0, step=4, index=1)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


# ---------------------------------------------------------------------------
# empty ranks (more ranks than blocks)
# ---------------------------------------------------------------------------


def make_tiny_forest():
    """Two root blocks — fewer blocks than ranks in these tests."""
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 0.5)), (2, 1), (8, 8), nvar=1,
        n_ghost=2, periodic=(True, True), max_level=2,
    )
    init_pulse(f)
    return f


class TestEmptyRanks:
    def test_partition_leaves_some_ranks_empty(self):
        emu = EmulatedMachine(make_tiny_forest(), 4,
                              AdvectionScheme((1.0, 0.5), order=2))
        empty = [r for r in range(4) if not emu.rank_blocks[r]]
        assert empty  # 2 blocks over 4 ranks
        assert len(emu.rank_cells()) == 4
        assert min(emu.rank_cells()) == 0

    def test_killing_an_empty_rank_is_uneventful(self, tmp_path):
        emu = EmulatedMachine(make_tiny_forest(), 4,
                              AdvectionScheme((1.0, 0.5), order=2))
        empty = [r for r in range(4) if not emu.rank_blocks[r]]
        plan = FaultPlan(kills=[RankKill(step=1, rank=empty[0])])
        emu2 = EmulatedMachine(make_tiny_forest(), 4,
                               AdvectionScheme((1.0, 0.5), order=2),
                               fault_plan=plan)
        report = run_with_recovery(
            emu2, n_steps=3, dt=1e-3,
            checkpointer=Checkpointer(tmp_path), strategy="local",
        )
        # Nothing was lost, so nothing needed recovering.
        assert report.events == []
        assert empty[0] not in emu2.alive_ranks
        assert report.steps_completed == 3

    def test_partner_store_skips_empty_ranks_payloads(self):
        emu = EmulatedMachine(make_tiny_forest(), 4,
                              AdvectionScheme((1.0, 0.5), order=2))
        partner = PartnerStore(emu)
        copied = partner.refresh()
        assert copied == emu.topology.n_blocks
        assert partner.can_rewind()

    def test_local_recovery_with_empty_ranks(self, tmp_path):
        loaded = [r for r in range(4)
                  if EmulatedMachine(make_tiny_forest(), 4,
                                     AdvectionScheme((1.0, 0.5), order=2)
                                     ).rank_blocks[r]]
        plan = FaultPlan(kills=[RankKill(step=2, rank=loaded[0])])
        emu = EmulatedMachine(make_tiny_forest(), 4,
                              AdvectionScheme((1.0, 0.5), order=2),
                              fault_plan=plan)
        report = run_with_recovery(
            emu, n_steps=4, dt=1e-3,
            checkpointer=Checkpointer(tmp_path), strategy="auto",
        )
        assert len(report.events) == 1
        reference = make_tiny_forest()
        sim = Simulation(reference, AdvectionScheme((1.0, 0.5), order=2))
        for _ in range(4):
            sim.advance(1e-3)
        gathered = emu.gather()
        for bid, blk in reference.blocks.items():
            np.testing.assert_array_equal(gathered[bid], blk.interior)


# ---------------------------------------------------------------------------
# checkpoint manager
# ---------------------------------------------------------------------------


class TestCheckpointer:
    def _forest(self):
        forest = make_amr_forest()
        init_pulse(forest)
        return forest

    def test_rotation_keeps_newest(self, tmp_path):
        forest = self._forest()
        ckpt = Checkpointer(tmp_path, keep=2)
        for step in (1, 2, 3, 4):
            ckpt.save(forest, step=step, time=0.1 * step)
        infos = ckpt.checkpoints()
        assert [i.step for i in infos] == [3, 4]
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_latest_skips_corrupt_newest(self, tmp_path):
        forest = self._forest()
        ckpt = Checkpointer(tmp_path, keep=3)
        ckpt.save(forest, step=1, time=0.1)
        info2 = ckpt.save(forest, step=2, time=0.2)
        info2.path.write_bytes(b"not a checkpoint at all")
        latest = ckpt.latest()
        assert latest is not None and latest.step == 1
        restored, info = ckpt.load_latest()
        assert info.step == 1
        assert set(restored.blocks) == set(forest.blocks)

    def test_empty_store_raises(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        assert ckpt.latest() is None
        with pytest.raises(CheckpointError):
            ckpt.load_latest()

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpointer(tmp_path, keep=0)


# ---------------------------------------------------------------------------
# torn-write hardening: a checkpoint store must never serve garbage
# ---------------------------------------------------------------------------


def _checkpoint_writer_loop(dirpath):
    """Child-process body: save checkpoints as fast as possible until
    SIGKILLed (torn-write victim for the tests below)."""
    forest = make_amr_forest()
    init_pulse(forest)
    ckpt = Checkpointer(dirpath, keep=1000)
    step = 0
    while True:
        step += 1
        ckpt.save(forest, step=step, time=0.001 * step)


class TestTornWrites:
    """A reader must see either a complete checkpoint or a clean
    :class:`CheckpointError` — never a partial payload — regardless of
    where a write was interrupted."""

    def _small_forest(self):
        # Smallest sensible forest so the byte-boundary sweep stays fast.
        forest = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (4, 4), nvar=1,
            n_ghost=2, periodic=(True, True), max_level=1,
        )
        for b in forest:
            X, Y = b.meshgrid()
            b.interior[0] = X + 2.0 * Y
        return forest

    def test_truncation_at_every_byte_boundary_raises(self, tmp_path):
        from repro.amr.io import load_forest

        path = tmp_path / "ckpt.npz"
        save_forest(self._small_forest(), path, time=0.5, step=3)
        payload = path.read_bytes()
        torn = tmp_path / "torn.npz"
        for cut in range(len(payload)):
            torn.write_bytes(payload[:cut])
            with pytest.raises(CheckpointError):
                load_forest(torn)
        # the untouched original still loads
        restored = load_forest(path)
        assert set(restored.blocks) == set(self._small_forest().blocks)

    def test_latest_falls_back_past_torn_newest(self, tmp_path):
        forest = make_amr_forest()
        init_pulse(forest)
        ckpt = Checkpointer(tmp_path, keep=5)
        ckpt.save(forest, step=1, time=0.1)
        info2 = ckpt.save(forest, step=2, time=0.2)
        payload = info2.path.read_bytes()
        # tear the newest checkpoint at a handful of spread-out points
        for cut in (0, 1, len(payload) // 4, len(payload) // 2,
                    len(payload) - 1):
            info2.path.write_bytes(payload[:cut])
            fresh = Checkpointer(tmp_path, keep=5)
            latest = fresh.latest()
            assert latest is not None and latest.step == 1
            assert info2.path in fresh.quarantined
            restored, info = fresh.load_latest()
            assert info.step == 1
            assert set(restored.blocks) == set(forest.blocks)

    def test_sigkill_mid_write_never_corrupts_store(self, tmp_path):
        import multiprocessing as mp
        import os
        import signal
        import time

        from repro.amr.io import load_forest

        writer = mp.Process(
            target=_checkpoint_writer_loop, args=(tmp_path,), daemon=True
        )
        writer.start()
        # Watching a real child process: wall clock is the point here.
        deadline = time.monotonic() + 30.0  # repro: noqa[REPRO104]
        while (
            len(list(tmp_path.glob("*.npz"))) < 3
            and time.monotonic() < deadline  # repro: noqa[REPRO104]
        ):
            time.sleep(0.01)
        assert writer.pid is not None
        os.kill(writer.pid, signal.SIGKILL)
        writer.join(timeout=10)
        files = sorted(tmp_path.glob("*.npz"))
        assert files, "writer never produced a checkpoint"
        # Every published file is complete (atomic rename); anything
        # unreadable must fail loudly, never return partial data.
        n_ok = 0
        for path in files:
            try:
                restored = load_forest(path)
            except CheckpointError:
                continue
            assert len(restored.blocks) > 0
            n_ok += 1
        assert n_ok >= 1
        # The store recovers to a usable state for the next run.
        ckpt = Checkpointer(tmp_path)
        restored, info = ckpt.load_latest()
        assert len(restored.blocks) > 0
        assert info.step >= 1


class TestBitflippedCheckpoints:
    """Single-bitflip fuzz over a v2 checkpoint file.  The oracle: a
    flipped file either fails loudly with :class:`CheckpointError` or
    loads **bit-identical** to the original — flips can land in zip
    padding/ignored header bytes, but must never surface as silently
    different state."""

    def _small_forest(self):
        forest = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (4, 4), nvar=1,
            n_ghost=2, periodic=(True, True), max_level=1,
        )
        for b in forest:
            X, Y = b.meshgrid()
            b.interior[0] = X + 2.0 * Y
        return forest

    @staticmethod
    def _bit_identical(a, b):
        if set(a.blocks) != set(b.blocks):
            return False
        return all(
            np.array_equal(blk.interior, b.blocks[bid].interior)
            for bid, blk in a.blocks.items()
        )

    def test_flip_at_every_byte_offset_is_detected_or_harmless(
        self, tmp_path
    ):
        from repro.amr.io import load_forest, verify_checkpoint

        path = tmp_path / "ckpt.npz"
        save_forest(self._small_forest(), path, time=0.5, step=3)
        original = load_forest(path)
        payload = bytearray(path.read_bytes())
        flipped = tmp_path / "flipped.npz"
        n_detected = n_harmless = 0
        for offset in range(len(payload)):
            bit = offset % 8  # vary the bit so sign/exponent/mantissa,
            payload[offset] ^= 1 << bit  # magic bytes and CRCs all get hit
            flipped.write_bytes(payload)
            payload[offset] ^= 1 << bit
            record = verify_checkpoint(flipped)
            try:
                restored = load_forest(flipped)
            except CheckpointError:
                n_detected += 1
                assert not record["ok"], (
                    f"verify_checkpoint passed a file load_forest "
                    f"rejects (offset {offset})"
                )
                continue
            n_harmless += 1
            assert self._bit_identical(restored, original), (
                f"bitflip at byte {offset} bit {bit} loaded silently "
                "different state"
            )
        assert n_detected + n_harmless == len(payload)
        # the data payload dominates the file, so most flips must trip
        # the checksum; only header/padding flips may be harmless
        assert n_detected > n_harmless

    def test_latest_quarantines_bitflipped_newest(self, tmp_path):
        forest = make_amr_forest()
        init_pulse(forest)
        ckpt = Checkpointer(tmp_path, keep=5)
        ckpt.save(forest, step=1, time=0.1)
        info2 = ckpt.save(forest, step=2, time=0.2)
        payload = bytearray(info2.path.read_bytes())
        # flip a byte in the middle of the member data, where the
        # array payload lives
        payload[len(payload) // 2] ^= 0x10
        info2.path.write_bytes(payload)
        fresh = Checkpointer(tmp_path, keep=5)
        latest = fresh.latest()
        assert latest is not None and latest.step == 1
        assert info2.path in fresh.quarantined
        restored, info = fresh.load_latest()
        assert info.step == 1
        assert set(restored.blocks) == set(forest.blocks)


# ---------------------------------------------------------------------------
# forest invariant validation
# ---------------------------------------------------------------------------


class TestValidateForest:
    def test_clean_forest_passes(self):
        forest = make_amr_forest()
        init_pulse(forest)
        fill_ghosts(forest)
        assert validate_forest(forest) == []
        assert_valid_forest(forest)  # should not raise

    def test_passes_after_every_adapt_of_a_driven_run(self):
        # Property: whatever sequence of refinements/coarsenings the
        # criterion produces, the forest invariants hold after each one.
        problem = advecting_pulse(2)
        sim = problem.build(adaptive=True)
        for _ in range(8):
            sim.step()
            sim.fill_ghosts()
            violations = validate_forest(sim.forest, bc=problem.bc)
            assert violations == [], [str(v) for v in violations]

    def test_missing_leaf_breaks_coverage(self):
        forest = make_amr_forest()
        dropped = next(iter(forest.blocks))
        del forest.blocks[dropped]
        checks = {v.check for v in validate_forest(forest, check_ghosts=False)}
        assert "coverage" in checks

    def test_level_jump_violation_detected(self):
        # Refine one corner three levels deep *without* the cascade
        # adapt() would perform: level 3 then touches level 0.
        forest = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (4, 4), nvar=1,
            n_ghost=2, periodic=(True, True), max_level=4,
        )
        forest.refine(BlockID(0, (0, 0)), update=False)
        forest.refine(BlockID(1, (0, 0)), update=False)
        forest.refine(BlockID(2, (0, 0)), update=False)
        forest.update_neighbors()
        checks = {v.check for v in validate_forest(forest, check_ghosts=False)}
        assert "level-jump" in checks
        with pytest.raises(ForestError):
            assert_valid_forest(forest, check_ghosts=False)

    def test_stale_neighbor_pointer_detected(self):
        forest = make_amr_forest()
        block = forest.blocks[next(iter(forest.blocks))]
        face, good = next(iter(block.face_neighbors.items()))
        other = next(f for f in block.face_neighbors if f != face)
        block.face_neighbors[face] = block.face_neighbors[other]
        violations = validate_forest(forest, check_ghosts=False)
        assert any(v.check == "neighbor" for v in violations)

    def test_scribbled_ghost_detected(self):
        forest = make_amr_forest()
        init_pulse(forest)
        fill_ghosts(forest)
        block = forest.blocks[next(iter(forest.blocks))]
        block.data[0, 0, 0] = 999.0  # corner ghost cell
        violations = validate_forest(forest)
        assert any(v.check == "ghost" for v in violations)
        # The check must not mutate the (broken) state it inspected.
        assert block.data[0, 0, 0] == 999.0


# ---------------------------------------------------------------------------
# safe stepping
# ---------------------------------------------------------------------------


class FragileAdvection(AdvectionScheme):
    """Poisons the predictor state whenever its dt exceeds a limit."""

    def __init__(self, *args, dt_limit, **kw):
        super().__init__(*args, **kw)
        self.dt_limit = dt_limit

    def step(self, u, dx, dt, g):
        super().step(u, dx, dt, g)
        if dt > self.dt_limit:
            u[0, g, g] = np.nan


class TestSafeMode:
    def _sim(self, dt_limit, **kw):
        scheme = FragileAdvection((1.0, 0.5), order=2, dt_limit=dt_limit)
        forest = make_amr_forest()
        init_pulse(forest)
        return Simulation(forest, scheme, safe_mode=True, **kw)

    def test_dt_halving_recovers(self):
        dt = 1e-3
        # The predictor runs at dt/2; make the first attempt poison and
        # the halved retry succeed.
        sim = self._sim(dt_limit=0.3 * dt)
        rec = sim.step(dt)
        assert rec.dt == pytest.approx(0.5 * dt)
        assert sim.time == pytest.approx(0.5 * dt)
        assert scan_forest_health(sim.forest, sim.scheme) is None

    def test_unrecoverable_step_is_structured(self):
        dt = 1e-3
        sim = self._sim(dt_limit=0.0, max_step_retries=2)  # always poisons
        with pytest.raises(UnrecoverableStep) as exc:
            sim.step(dt)
        failure = exc.value.failure
        assert failure.step == 0
        assert failure.time == 0.0
        assert len(failure.dt_attempts) == 3
        assert failure.dt_attempts[0] == pytest.approx(dt)
        assert failure.issue.reason == "non-finite"
        # The rollback left the pre-step state intact.
        assert sim.time == 0.0
        assert scan_forest_health(sim.forest, sim.scheme) is None

    def test_without_safe_mode_poison_persists(self):
        scheme = FragileAdvection((1.0, 0.5), order=2, dt_limit=0.0)
        forest = make_amr_forest()
        init_pulse(forest)
        sim = Simulation(forest, scheme)
        sim.step(1e-3)
        issue = scan_forest_health(sim.forest, sim.scheme)
        assert issue is not None and issue.reason == "non-finite"


class TestHealthScan:
    def _euler_forest(self, scheme):
        forest = make_amr_forest(nvar=scheme.nvar)
        for b in forest:
            X, _ = b.meshgrid()
            w = np.stack([
                np.ones_like(X), np.zeros_like(X), np.zeros_like(X),
                np.ones_like(X),
            ])
            b.interior[...] = scheme.prim_to_cons(w)
        return forest

    def test_healthy_euler_state_passes(self):
        scheme = EulerScheme(2)
        forest = self._euler_forest(scheme)
        assert scan_forest_health(forest, scheme) is None

    def test_negative_conserved_density_caught_despite_floor(self):
        # cons_to_prim floors density, so a primitive-only check would
        # miss this; the scan must inspect the conserved slot too.
        scheme = EulerScheme(2)
        forest = self._euler_forest(scheme)
        block = forest.blocks[next(iter(forest.blocks))]
        block.interior[0, 2, 2] = -0.5
        issue = scan_forest_health(forest, scheme)
        assert isinstance(issue, HealthIssue)
        assert issue.reason == "non-positive"
        assert issue.variable == 0
        assert issue.block == block.id

    def test_nan_caught(self):
        scheme = EulerScheme(2)
        forest = self._euler_forest(scheme)
        block = forest.blocks[next(iter(forest.blocks))]
        block.interior[1, 0, 0] = np.inf
        issue = scan_forest_health(forest, scheme)
        assert issue is not None
        assert issue.reason == "non-finite"
        assert issue.variable == 1
