"""Cross-module integration and property tests.

These exercise whole-system invariants that unit tests cannot see:
checkpoint/restart equivalence, run-to-run determinism, AMR invariants
under dynamic adaptation with real physics, and uniform-grid equivalence
between a single big block and many small ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr import Simulation, advecting_pulse, load_forest, save_forest
from repro.amr.boundary import OutflowBC
from repro.amr.sampling import resample_uniform
from repro.core import BlockForest, BlockID, fill_ghosts
from repro.solvers import AdvectionScheme, EulerScheme
from repro.util.geometry import Box


class TestRestart:
    def test_checkpoint_restart_equivalence(self, tmp_path):
        """Run 4+4 steps straight vs checkpoint-at-4 then 4 more: the
        final states must agree bit-for-bit (modulo ghost cells, which
        are not checkpointed)."""
        p = advecting_pulse(2)
        sim = p.build()
        sim.run(n_steps=4)
        ck = tmp_path / "mid.npz"
        save_forest(sim.forest, ck)
        sim.run(n_steps=4)
        reference = {b.id: b.interior.copy() for b in sim.forest}

        forest2 = load_forest(ck)
        sim2 = Simulation(
            forest2,
            p.scheme,
            criterion=p.make_criterion(),
            adapt_interval=p.config.adapt_interval,
            buffer_band=p.config.buffer_band,
        )
        # Restore step phase so the adaptation schedule lines up.
        sim2.step_count = 4
        sim2.time = sim.history[3].time
        sim2.run(n_steps=4)
        assert set(reference) == {b.id for b in sim2.forest}
        for b in sim2.forest:
            np.testing.assert_array_equal(b.interior, reference[b.id])

    def test_determinism_across_runs(self):
        states = []
        for _ in range(2):
            p = advecting_pulse(2)
            sim = p.build()
            sim.run(n_steps=7)
            states.append(
                {b.id: b.interior.copy() for b in sim.forest}
            )
        assert set(states[0]) == set(states[1])
        for bid in states[0]:
            np.testing.assert_array_equal(states[0][bid], states[1][bid])


class TestBlockSizeEquivalence:
    def test_one_big_block_equals_many_small(self):
        """A uniform grid gives identical physics whether held as one
        32x32 block or sixteen 8x8 blocks — the decomposition is purely
        an implementation concern (this is the property that makes the
        block size a pure performance knob)."""
        results = []
        for n_root, m in (((1, 1), (32, 32)), ((4, 4), (8, 8))):
            scheme = EulerScheme(2, order=2, limiter="mc")
            f = BlockForest(
                Box((0.0, 0.0), (1.0, 1.0)), n_root, m,
                nvar=scheme.nvar, n_ghost=2, periodic=(True, True),
            )
            for b in f:
                X, Y = b.meshgrid()
                w = np.stack(
                    [
                        1.0 + 0.2 * np.sin(2 * np.pi * X) * np.cos(2 * np.pi * Y),
                        0.3 * np.ones_like(X),
                        -0.1 * np.ones_like(X),
                        np.ones_like(X),
                    ]
                )
                b.interior[...] = scheme.prim_to_cons(w)
            sim = Simulation(f, scheme)
            for _ in range(5):
                sim.advance(1e-3)
            results.append(resample_uniform(f, 0))
        np.testing.assert_allclose(results[0], results[1], rtol=1e-12, atol=1e-13)

    def test_block_size_independence_with_outflow(self):
        for n_root, m in (((1,), (64,)), ((8,), (8,))):
            pass  # structure checked in 2-D above; 1-D variant below
        results = []
        for n_root, m in (((1,), (64,)), ((8,), (8,))):
            scheme = AdvectionScheme((1.0,), order=2)
            f = BlockForest(
                Box((0.0,), (1.0,)), n_root, m, nvar=1, n_ghost=2
            )
            for b in f:
                (x,) = b.meshgrid()
                b.interior[0] = np.exp(-100 * (x - 0.4) ** 2)
            sim = Simulation(f, scheme, bc=OutflowBC())
            for _ in range(10):
                sim.advance(2e-3)
            results.append(resample_uniform(f, 0))
        np.testing.assert_allclose(results[0], results[1], rtol=1e-12, atol=1e-14)


class TestDynamicAMRInvariants:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_physics_run_keeps_invariants(self, seed):
        """Property: a short AMR run from random smooth initial data
        keeps the forest valid and the state finite."""
        rng = np.random.default_rng(seed)
        p = advecting_pulse(2, velocity=(float(rng.uniform(-2, 2)),
                                         float(rng.uniform(-2, 2))))
        sim = p.build()
        for _ in range(4):
            sim.step()
            sim.forest.check_balance()
            sim.forest.check_coverage()
            for b in sim.forest:
                assert np.all(np.isfinite(b.interior))

    def test_exchange_idempotent_after_physics(self):
        p = advecting_pulse(2)
        sim = p.build()
        sim.run(n_steps=5)
        sim.fill_ghosts()
        snap = {b.id: b.data.copy() for b in sim.forest}
        sim.fill_ghosts()
        for b in sim.forest:
            np.testing.assert_array_equal(b.data, snap[b.id])

    def test_adaptation_transfers_solution_faithfully(self):
        """Refining then coarsening (no physics in between) returns the
        original cell means — adaptation must not corrupt the state."""
        p = advecting_pulse(2)
        sim = p.build(adaptive=False)
        before = resample_uniform(sim.forest, 0)
        ids = list(sim.forest.blocks)
        sim.fill_ghosts()
        sim.forest.adapt(ids)  # refine everything
        children = list(sim.forest.blocks)
        sim.forest.adapt([], children)  # coarsen everything back
        after = resample_uniform(sim.forest, 0)
        np.testing.assert_allclose(after, before, rtol=1e-12, atol=1e-14)


class TestMultiDimensional:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_pulse_runs_in_every_dimension(self, ndim):
        p = advecting_pulse(ndim)
        sim = p.build(adaptive=(ndim < 3))
        sim.run(n_steps=3)
        for b in sim.forest:
            assert np.all(np.isfinite(b.interior))
        assert sim.time > 0

    def test_3d_amr_euler_blast_short(self):
        from repro.amr import sedov_blast

        p = sedov_blast(3)
        sim = p.build(initial_adapt_rounds=1)
        sim.run(n_steps=2)
        sim.forest.check_balance()
        for b in sim.forest:
            w = p.scheme.cons_to_prim(b.interior)
            assert w[0].min() > 0 and w[-1].min() > 0
