"""Tests for timing utilities (repro.util.timing)."""

import time

import pytest

from repro.util.timing import PhaseTimer, measure


class TestMeasure:
    def test_returns_best_and_mean(self):
        calls = []
        res = measure(lambda: calls.append(1), repeats=4, warmup=2)
        assert len(calls) == 6  # warmup + repeats
        assert res.repeats == 4
        assert res.best <= res.mean

    def test_best_is_minimum(self):
        res = measure(lambda: time.sleep(0.001), repeats=3, warmup=0)
        assert res.best == min(res.times)
        assert res.best >= 0.001

    def test_bad_repeats(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            measure(lambda: None, repeats=1, warmup=-1)


class TestPhaseTimer:
    def test_accumulates(self):
        t = PhaseTimer()
        with t.phase("a"):
            time.sleep(0.002)
        with t.phase("a"):
            pass
        with t.phase("b"):
            pass
        assert t.counts["a"] == 2
        assert t.counts["b"] == 1
        assert t.totals["a"] >= 0.002
        assert t.total == pytest.approx(t.totals["a"] + t.totals["b"])

    def test_fraction(self):
        t = PhaseTimer()
        t.totals["x"] = 3.0
        t.totals["y"] = 1.0
        assert t.fraction("x") == pytest.approx(0.75)
        assert t.fraction("missing") == 0.0

    def test_fraction_empty_timer(self):
        assert PhaseTimer().fraction("x") == 0.0

    def test_report_sorted_by_time(self):
        t = PhaseTimer()
        t.totals["small"] = 1.0
        t.totals["big"] = 5.0
        t.counts["small"] = t.counts["big"] = 1
        lines = t.report().splitlines()
        assert lines[0].startswith("big")

    def test_exception_still_recorded(self):
        t = PhaseTimer()
        with pytest.raises(RuntimeError):
            with t.phase("broken"):
                raise RuntimeError("boom")
        assert t.counts["broken"] == 1

    def test_reset(self):
        t = PhaseTimer()
        with t.phase("a"):
            pass
        t.reset()
        assert t.total == 0.0
        assert not t.counts
        assert t.fraction("a") == 0.0

    def test_nested_phases_do_not_double_count(self):
        # Regression: a nested phase's time used to land in both its own
        # total and the enclosing phase's, inflating `total` beyond wall
        # time.  Each phase now records self time only.
        t = PhaseTimer()
        with t.phase("outer"):
            time.sleep(0.002)
            with t.phase("inner"):
                time.sleep(0.004)
        assert t.totals["inner"] >= 0.004
        # outer carries only its own ~2ms, not inner's 4ms too
        assert t.totals["outer"] < t.totals["inner"]
        wall = t.totals["outer"] + t.totals["inner"]
        assert t.total == pytest.approx(wall)

    def test_triple_nesting_totals_sum_to_wall(self):
        t = PhaseTimer()
        # Verifying the timer against the real clock is the test.
        t0 = time.perf_counter()  # repro: noqa[REPRO104]
        with t.phase("a"):
            with t.phase("b"):
                with t.phase("c"):
                    time.sleep(0.002)
            with t.phase("b"):
                pass
        wall = time.perf_counter() - t0  # repro: noqa[REPRO104]
        assert t.counts["b"] == 2
        assert t.total <= wall + 1e-4

    def test_sibling_phases_unaffected_by_nesting_fix(self):
        t = PhaseTimer()
        with t.phase("a"):
            pass
        with t.phase("b"):
            pass
        assert t.counts["a"] == t.counts["b"] == 1
        assert t.totals["a"] >= 0.0 and t.totals["b"] >= 0.0
