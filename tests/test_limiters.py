"""Tests for TVD slope limiters (repro.solvers.limiters)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.solvers.limiters import LIMITERS, get_limiter, mc, minmod, superbee, van_leer

# Magnitudes bounded away from the underflow range: products of two
# diffs must not underflow to zero (which would legitimately zero the
# limiter by the sign test).
diffs = arrays(
    np.float64,
    (16,),
    elements=st.floats(-1e3, 1e3, allow_nan=False).map(
        lambda v: 0.0 if abs(v) < 1e-120 else v
    ),
)

ALL = [minmod, van_leer, mc, superbee]


@pytest.mark.parametrize("lim", ALL, ids=lambda f: f.__name__)
class TestTVDProperties:
    @given(a=diffs, b=diffs)
    def test_zero_at_extrema(self, lim, a, b):
        # Where the one-sided differences disagree in sign, the slope is 0.
        s = lim(a, b)
        disagree = a * b <= 0.0
        np.testing.assert_allclose(s[disagree], 0.0)

    @given(a=diffs, b=diffs)
    def test_bounded_by_double_differences(self, lim, a, b):
        s = lim(a, b)
        bound = 2.0 * np.minimum(np.abs(a), np.abs(b)) + 1e-12
        assert np.all(np.abs(s) <= bound)

    @given(a=diffs)
    def test_exact_on_uniform_slope(self, lim, a):
        # a == b -> the limiter returns the common difference exactly.
        np.testing.assert_allclose(lim(a, a), a, rtol=1e-12, atol=1e-300)

    @given(a=diffs, b=diffs)
    def test_sign_matches_data(self, lim, a, b):
        s = lim(a, b)
        agree = a * b > 0.0
        assert np.all(s[agree] * a[agree] >= 0.0)


class TestSpecificValues:
    def test_minmod_picks_smaller(self):
        np.testing.assert_allclose(
            minmod(np.array([1.0]), np.array([3.0])), [1.0]
        )

    def test_van_leer_harmonic_mean(self):
        # 2ab/(a+b) for same-sign a, b.
        s = van_leer(np.array([1.0]), np.array([3.0]))
        assert s[0] == pytest.approx(1.5)

    def test_mc_central_in_smooth_region(self):
        # For nearly equal differences MC returns the central average.
        s = mc(np.array([1.0]), np.array([1.2]))
        assert s[0] == pytest.approx(1.1)

    def test_superbee_compressive(self):
        # Superbee returns the largest admissible slope: >= minmod.
        a, b = np.array([1.0]), np.array([0.4])
        assert superbee(a, b)[0] >= minmod(a, b)[0]

    def test_ordering_diffusive_to_compressive(self):
        rng = np.random.default_rng(1)
        a = rng.random(100) + 0.1
        b = rng.random(100) + 0.1
        assert np.all(np.abs(minmod(a, b)) <= np.abs(mc(a, b)) + 1e-12)
        assert np.all(np.abs(mc(a, b)) <= np.abs(superbee(a, b)) + 1e-12)


class TestRegistry:
    def test_all_registered(self):
        assert set(LIMITERS) == {"minmod", "van_leer", "mc", "superbee"}

    def test_lookup(self):
        assert get_limiter("minmod") is minmod

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown limiter"):
            get_limiter("koren")
