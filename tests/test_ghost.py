"""Tests for the ghost-cell exchange (repro.core.ghost).

Correctness oracles:

* constants must be reproduced exactly in every ghost cell that lies
  inside the (periodic closure of the) domain;
* linear fields must be reproduced exactly (order-2 prolongation is
  exact on linears, restriction of linears is exact);
* transfers must cover every interior ghost cell exactly once per
  variable (no double-writes with conflicting data, no gaps).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block_id import BlockID
from repro.core.forest import BlockForest
from repro.core.ghost import (
    all_offsets,
    fill_ghosts,
    ghost_region_for_offset,
    iter_transfers,
    region_owners,
)
from repro.amr.boundary import ExtrapolationBC
from repro.util.geometry import Box


def forest2d(**kw):
    kw.setdefault("nvar", 1)
    return BlockForest(Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (4, 4), **kw)


def forest3d(**kw):
    kw.setdefault("nvar", 1)
    return BlockForest(
        Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)), (2, 2, 2), (4, 4, 4), **kw
    )


def set_linear(forest, coeffs):
    for b in forest:
        grids = b.meshgrid()
        b.interior[0] = sum(c * g for c, g in zip(coeffs, grids))


def ghost_errors_inside_domain(forest, coeffs):
    """Max |ghost - exact| over ghost cells strictly inside the domain."""
    worst = 0.0
    for b in forest:
        grids = b.meshgrid(include_ghost=True)
        expect = sum(c * g for c, g in zip(coeffs, grids))
        g = b.n_ghost
        inside = np.ones(b.padded_shape, dtype=bool)
        for axis, grid in enumerate(grids):
            lo, hi = forest.domain.lo[axis], forest.domain.hi[axis]
            inside &= (grid > lo) & (grid < hi)
        interior = np.zeros(b.padded_shape, dtype=bool)
        interior[tuple(slice(g, -g) for _ in b.m)] = True
        check = inside & ~interior
        if check.any():
            worst = max(worst, float(np.abs(b.data[0] - expect)[check].max()))
    return worst


class TestOffsets:
    def test_counts(self):
        assert len(all_offsets(2)) == 8
        assert len(all_offsets(3)) == 26
        assert len(all_offsets(2, faces_only=True)) == 4
        assert len(all_offsets(3, faces_only=True)) == 6

    def test_faces_come_first(self):
        offs = all_offsets(3)
        assert all(sum(1 for v in o if v) == 1 for o in offs[:6])

    def test_ghost_region_geometry(self):
        f = forest2d()
        b = f.blocks[BlockID(0, (0, 0))]
        r = ghost_region_for_offset(b, (1, 0))
        assert r.lo == (4, 0) and r.hi == (6, 4)
        r = ghost_region_for_offset(b, (-1, 1))
        assert r.lo == (-2, 4) and r.hi == (0, 6)


class TestRegionOwners:
    def test_same_level(self):
        f = forest2d()
        wrap, owners = region_owners(f, BlockID(0, (0, 0)), (1, 0))
        assert wrap == (0, 0)
        assert owners == [BlockID(0, (1, 0))]

    def test_outside_nonperiodic(self):
        f = forest2d()
        assert region_owners(f, BlockID(0, (0, 0)), (-1, 0)) is None

    def test_periodic_wrap_sign(self):
        f = forest2d(periodic=(True, True))
        wrap, owners = region_owners(f, BlockID(0, (0, 0)), (-1, -1))
        assert wrap == (1, 1)
        assert owners == [BlockID(0, (1, 1))]

    def test_finer_owners_on_face(self):
        f = forest2d()
        f.adapt([BlockID(0, (0, 0))])
        wrap, owners = region_owners(f, BlockID(0, (1, 0)), (-1, 0))
        assert set(owners) == {BlockID(1, (1, 0)), BlockID(1, (1, 1))}

    def test_coarser_owner_diagonal(self):
        f = forest2d()
        f.adapt([BlockID(0, (0, 0))])
        wrap, owners = region_owners(f, BlockID(1, (1, 1)), (1, 1))
        assert owners == [BlockID(0, (1, 1))]


class TestExchangeExactness:
    @pytest.mark.parametrize("coeffs", [(0.0, 0.0), (1.0, 2.0), (-3.0, 0.5)])
    def test_2d_uniform_linear(self, coeffs):
        f = forest2d()
        set_linear(f, coeffs)
        fill_ghosts(f)
        assert ghost_errors_inside_domain(f, coeffs) < 1e-12

    @pytest.mark.parametrize(
        "refine",
        [
            [BlockID(0, (0, 0))],
            [BlockID(0, (0, 0)), BlockID(0, (1, 1))],
            [BlockID(0, (0, 0)), BlockID(0, (1, 0)), BlockID(0, (0, 1))],
        ],
    )
    def test_2d_amr_linear(self, refine):
        f = forest2d()
        f.adapt(refine)
        set_linear(f, (2.0, -1.0))
        fill_ghosts(f, bc=ExtrapolationBC())
        assert ghost_errors_inside_domain(f, (2.0, -1.0)) < 1e-12

    def test_2d_two_level_amr_linear(self):
        f = forest2d()
        f.adapt([BlockID(0, (0, 0))])
        f.adapt([BlockID(1, (0, 0)), BlockID(1, (1, 1))])
        f.check_balance()
        set_linear(f, (1.0, 1.0))
        fill_ghosts(f, bc=ExtrapolationBC())
        assert ghost_errors_inside_domain(f, (1.0, 1.0)) < 1e-12

    def test_3d_amr_linear(self):
        f = forest3d()
        f.adapt([BlockID(0, (0, 0, 0)), BlockID(0, (1, 1, 1))])
        set_linear(f, (1.0, -2.0, 0.5))
        fill_ghosts(f, bc=ExtrapolationBC())
        assert ghost_errors_inside_domain(f, (1.0, -2.0, 0.5)) < 1e-12

    def test_periodic_constant_everywhere(self):
        f = forest3d(periodic=(True, True, True))
        f.adapt([BlockID(0, (0, 0, 0))])
        for b in f:
            b.interior[...] = 4.25
            b.zero_ghosts()
            b.interior[...] = 4.25
        fill_ghosts(f)
        for b in f:
            assert float(np.abs(b.data - 4.25).max()) < 1e-13

    def test_mixed_periodicity(self):
        f = forest2d(periodic=(True, False))
        for b in f:
            b.interior[...] = 1.5
        fill_ghosts(f)
        for b in f:
            # x ghosts must be filled (periodic), interior-y only.
            g = b.n_ghost
            assert np.all(b.data[0, :, g:-g] == 1.5)

    def test_injection_prolongation_constant(self):
        f = forest2d(prolong_order=1)
        f.adapt([BlockID(0, (0, 0))])
        for b in f:
            b.interior[...] = -2.0
        fill_ghosts(f)
        assert ghost_errors_inside_domain(f, (0.0, 0.0)) == pytest.approx(2.0)
        # i.e. ghosts hold the constant -2 exactly (error vs 0-field is 2).

    def test_faces_only_leaves_corners_untouched(self):
        f = forest2d()
        for b in f:
            b.interior[...] = 1.0
        fill_ghosts(f, fill_corners=False)
        b = f.blocks[BlockID(0, (0, 0))]
        # The (+x,+y) corner ghost region was never written.
        assert np.all(b.data[0, -2:, -2:] == 0.0)
        # But the face slabs were.
        assert np.all(b.data[0, 2:-2, -2:] == 1.0)

    def test_smooth_field_second_order(self):
        # Prolonged ghosts converge at second order in h on smooth data.
        errs = []
        for m in (4, 8, 16):
            f = BlockForest(
                Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (m, m), nvar=1
            )
            f.adapt([BlockID(0, (0, 0))])
            for b in f:
                X, Y = b.meshgrid()
                b.interior[0] = np.sin(3 * X) * np.cos(2 * Y)
            fill_ghosts(f, bc=ExtrapolationBC())
            worst = 0.0
            for b in f:
                if b.level != 1:
                    continue
                Xg, Yg = b.meshgrid(include_ghost=True)
                expect = np.sin(3 * Xg) * np.cos(2 * Yg)
                g = b.n_ghost
                inside = (Xg > 0) & (Xg < 1) & (Yg > 0) & (Yg < 1)
                interior = np.zeros(b.padded_shape, dtype=bool)
                interior[g:-g, g:-g] = True
                check = inside & ~interior
                if check.any():
                    worst = max(worst, float(np.abs(b.data[0] - expect)[check].max()))
            errs.append(worst)
        # Halving h should cut the error by ~4; allow slack for the limiter.
        assert errs[1] < errs[0] / 2.5
        assert errs[2] < errs[1] / 2.5


class TestTransferStream:
    def test_every_transfer_geometry_consistent(self):
        f = forest3d()
        f.adapt([BlockID(0, (0, 0, 0))])
        for t in iter_transfers(f):
            assert not t.src_box.empty and not t.dst_box.empty
            if t.delta == 0:
                assert t.src_box.shape == t.dst_box.shape
            elif t.delta > 0:
                assert t.message_cells == t.dst_box.size
            else:
                assert t.message_cells == t.src_box.size

    def test_no_conflicting_double_writes(self):
        # Fill ghosts twice; second pass must be idempotent.
        f = forest2d()
        f.adapt([BlockID(0, (0, 0))])
        set_linear(f, (1.0, 2.0))
        fill_ghosts(f)
        snap = {bid: b.data.copy() for bid, b in f.blocks.items()}
        fill_ghosts(f)
        for bid, b in f.blocks.items():
            np.testing.assert_allclose(b.data, snap[bid], rtol=1e-14)

    def test_interior_never_modified(self):
        f = forest2d()
        f.adapt([BlockID(0, (1, 1))])
        rng = np.random.default_rng(7)
        for b in f:
            b.interior[...] = rng.random(b.interior.shape)
        snap = {bid: b.interior.copy() for bid, b in f.blocks.items()}
        fill_ghosts(f)
        for bid, b in f.blocks.items():
            np.testing.assert_array_equal(b.interior, snap[bid])

    def test_face_transfer_counts_match_pointers(self):
        f = forest2d()
        face_transfers = [t for t in iter_transfers(f) if t.is_face]
        # Uniform 2x2 grid, no periodicity: 4 interior face pairs -> 8
        # directed transfers.
        assert len(face_transfers) == 8


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_property_random_forest_constant_exactness(seed):
    """Property: after any (balanced) adaptation pattern, a constant field
    survives a ghost exchange exactly in every in-domain ghost cell."""
    rng = np.random.default_rng(seed)
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)),
        (2, 2),
        (4, 4),
        nvar=2,
        periodic=(True, True),
        max_level=3,
    )
    for _ in range(3):
        ids = list(f.blocks)
        picks = [b for b in ids if rng.random() < 0.3]
        f.adapt(picks)
    f.check_balance()
    for b in f:
        b.interior[0] = 3.75
        b.interior[1] = -1.25
    fill_ghosts(f)
    for b in f:
        assert float(np.abs(b.data[0] - 3.75).max()) < 1e-13
        assert float(np.abs(b.data[1] + 1.25).max()) < 1e-13


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_property_random_forest_linear_exactness_with_bc(seed):
    """Property: on any balanced random topology with extrapolation
    boundary conditions, a linear field survives the exchange exactly in
    every ghost cell (prolongation/restriction are linear-exact and the
    BC extrapolates linearly)."""
    rng = np.random.default_rng(seed)
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (4, 4), nvar=1, max_level=3
    )
    for _ in range(3):
        ids = list(f.blocks)
        f.adapt([b for b in ids if rng.random() < 0.3])
    coeffs = (float(rng.uniform(-3, 3)), float(rng.uniform(-3, 3)))
    set_linear(f, coeffs)
    fill_ghosts(f, bc=ExtrapolationBC())
    worst = 0.0
    for b in f:
        Xg, Yg = b.meshgrid(include_ghost=True)
        expect = coeffs[0] * Xg + coeffs[1] * Yg
        worst = max(worst, float(np.abs(b.data[0] - expect).max()))
    assert worst < 1e-10
