"""Tests for the BlockForest: topology, adaptation, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block import NeighborKind
from repro.core.block_id import BlockID
from repro.core.forest import BlockForest, ForestError
from repro.util.geometry import Box


def forest2d(n_root=(2, 2), m=(4, 4), periodic=None, **kw):
    return BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)), n_root, m, nvar=1, periodic=periodic, **kw
    )


def forest3d(**kw):
    return BlockForest(
        Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)), (2, 2, 2), (4, 4, 4), nvar=1, **kw
    )


class TestConstruction:
    def test_root_tiling(self):
        f = forest2d()
        assert f.n_blocks == 4
        assert f.n_cells == 64
        f.check_coverage()
        f.check_balance()

    def test_non_square_roots(self):
        f = BlockForest(Box((0.0, 0.0), (3.0, 1.0)), (3, 1), (4, 4), nvar=1)
        assert f.n_blocks == 3
        f.check_coverage()

    def test_block_box_geometry(self):
        f = forest2d()
        b = f.blocks[BlockID(0, (1, 0))]
        assert b.box.lo == (0.5, 0.0)
        assert b.box.hi == (1.0, 0.5)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            forest2d(n_root=(0, 2))
        with pytest.raises(ValueError):
            forest2d(max_level_jump=0)
        with pytest.raises(ValueError):
            forest2d(prolong_order=3)

    def test_level_extents(self):
        f = forest2d()
        assert f.level_extent(0) == (2, 2)
        assert f.level_extent(2) == (8, 8)
        assert f.level_cell_extent(1) == (16, 16)


class TestNeighbors:
    def test_interior_same_level(self):
        f = forest2d()
        fn = f.blocks[BlockID(0, (0, 0))].face_neighbors[1]
        assert fn.kind == NeighborKind.SAME
        assert fn.ids == (BlockID(0, (1, 0)),)

    def test_domain_boundary(self):
        f = forest2d()
        fn = f.blocks[BlockID(0, (0, 0))].face_neighbors[0]
        assert fn.kind == NeighborKind.BOUNDARY

    def test_periodic_wrap(self):
        f = forest2d(periodic=(True, False))
        fn = f.blocks[BlockID(0, (0, 0))].face_neighbors[0]
        assert fn.kind == NeighborKind.SAME
        assert fn.ids == (BlockID(0, (1, 0)),)
        assert fn.shift == (1, 0)
        # y stays a physical boundary
        assert f.blocks[BlockID(0, (0, 0))].face_neighbors[2].kind == NeighborKind.BOUNDARY

    def test_finer_and_coarser_after_refine(self):
        f = forest2d()
        f.adapt([BlockID(0, (0, 0))])
        coarse = f.blocks[BlockID(0, (1, 0))]
        fn = coarse.face_neighbors[0]
        assert fn.kind == NeighborKind.FINER
        assert set(fn.ids) == {BlockID(1, (1, 0)), BlockID(1, (1, 1))}
        fine = f.blocks[BlockID(1, (1, 0))]
        assert fine.face_neighbors[1].kind == NeighborKind.COARSER
        assert fine.face_neighbors[1].ids == (BlockID(0, (1, 0)),)

    def test_neighbor_count_bound_2to1(self):
        # Paper: at most 2^(d-1) neighbors per face with one-level jumps.
        f = forest3d()
        rng = np.random.default_rng(42)
        for _ in range(3):
            ids = list(f.blocks)
            picks = rng.choice(len(ids), size=max(1, len(ids) // 4), replace=False)
            f.adapt([ids[i] for i in picks])
        f.check_balance()
        stats = f.neighbor_count_stats()
        assert stats["max"] <= 2 ** (3 - 1)

    def test_pointers_are_symmetric(self):
        f = forest2d()
        f.adapt([BlockID(0, (0, 0)), BlockID(0, (1, 1))])
        for bid, block in f.blocks.items():
            for face, fn in block.face_neighbors.items():
                for nid in fn.ids:
                    back = f.blocks[nid].face_neighbors[face ^ 1]
                    assert bid in back.ids


class TestRefineCoarsen:
    def test_refine_replaces_block(self):
        f = forest2d()
        target = BlockID(0, (0, 0))
        children = f.refine(target)
        assert target not in f.blocks
        assert all(c in f.blocks for c in children)
        assert f.n_blocks == 7
        f.check_coverage()

    def test_refine_prolongs_data_conservatively(self):
        f = forest2d()
        rng = np.random.default_rng(0)
        target = BlockID(0, (0, 0))
        blk = f.blocks[target]
        blk.interior[...] = rng.random((1, 4, 4))
        total = blk.interior.sum() * np.prod(blk.dx)
        kids = f.refine(target)
        total_kids = sum(
            f.blocks[k].interior.sum() * np.prod(f.blocks[k].dx) for k in kids
        )
        assert total_kids == pytest.approx(total, rel=1e-12)

    def test_coarsen_restores_means(self):
        f = forest2d()
        target = BlockID(0, (0, 0))
        blk = f.blocks[target]
        X, Y = blk.meshgrid()
        blk.interior[0] = X + Y
        before = blk.interior.copy()
        f.refine(target)
        f.coarsen(target)
        after = f.blocks[target].interior
        np.testing.assert_allclose(after, before, rtol=1e-12)

    def test_refine_at_max_level_rejected(self):
        f = forest2d(max_level=0)
        with pytest.raises(ForestError):
            f.refine(BlockID(0, (0, 0)))

    def test_refine_non_leaf_rejected(self):
        f = forest2d()
        with pytest.raises(KeyError):
            f.refine(BlockID(1, (0, 0)))

    def test_coarsen_missing_child_rejected(self):
        f = forest2d()
        f.refine(BlockID(0, (0, 0)))
        f.refine(BlockID(1, (0, 0)))
        with pytest.raises(KeyError):
            f.coarsen(BlockID(0, (0, 0)))  # one child is itself refined


class TestAdapt:
    def test_cascade_maintains_balance(self):
        # Refining a block that touches a coarser neighbor forces the
        # neighbor to refine too ("refinement can potentially cascade
        # across the grid").
        f = forest2d(n_root=(4, 4))
        f.adapt([BlockID(0, (0, 0))])
        # L1(1,1)'s x-high neighbor is the level-0 block (1,0): refining
        # it to level 2 violates the jump-1 constraint unless (1,0) is
        # refined as well.
        summary = f.adapt([BlockID(1, (1, 1))])
        f.check_balance()
        assert summary.cascaded > 0
        assert BlockID(0, (1, 0)) not in f.blocks  # it was cascade-refined

    def test_coarsen_requires_all_siblings(self):
        f = forest2d()
        f.adapt([BlockID(0, (0, 0))])
        s = f.adapt([], [BlockID(1, (0, 0))])  # only one sibling flagged
        assert s.coarsened == 0
        assert s.coarsen_vetoed == 1

    def test_coarsen_all_siblings(self):
        f = forest2d()
        f.adapt([BlockID(0, (0, 0))])
        s = f.adapt([], BlockID(0, (0, 0)).children())
        assert s.coarsened == 1
        assert f.n_blocks == 4
        f.check_coverage()

    def test_coarsen_vetoed_by_balance(self):
        f = forest2d(n_root=(4, 4))
        f.adapt([BlockID(0, (0, 0))])
        f.adapt([BlockID(1, (0, 0))])
        f.check_balance()
        # Coarsening the level-1 siblings of the refined block would put
        # level-2 leaves next to a level-0 leaf.
        parent = BlockID(0, (0, 0))
        kids = [c for c in parent.children() if c in f.blocks]
        s = f.adapt([], kids)
        f.check_balance()
        assert s.coarsened == 0

    def test_refine_flag_beats_coarsen_flag(self):
        f = forest2d()
        f.adapt([BlockID(0, (0, 0))])
        kid = BlockID(1, (0, 0))
        s = f.adapt([kid], kid.siblings())
        assert s.coarsened == 0
        assert kid not in f.blocks  # it was refined

    def test_max_level_jump_2_allows_bigger_steps(self):
        f = forest2d(n_root=(4, 4), max_level_jump=2)
        f.adapt([BlockID(0, (0, 0))])
        s = f.adapt([BlockID(1, (0, 0))])
        # With jump 2 a level-2 block may touch level-0: no cascade needed.
        assert s.cascaded == 0
        f.check_balance()

    def test_refine_uniformly(self):
        f = forest2d()
        f.refine_uniformly(2)
        assert f.n_blocks == 64
        assert f.levels == (2, 2)

    def test_refine_where_geometric(self):
        f = forest2d(n_root=(4, 4))
        f.refine_where(
            lambda b: b.level < 2 and b.box.contains((0.1, 0.1)), max_rounds=8
        )
        f.check_balance()
        f.check_coverage()
        assert f.levels[1] == 2


class TestQueriesAndStats:
    def test_block_at(self):
        f = forest2d()
        f.adapt([BlockID(0, (0, 0))])
        assert f.block_at((0.1, 0.1)).id.level == 1
        assert f.block_at((0.9, 0.9)).id.level == 0
        with pytest.raises(ValueError):
            f.block_at((2.0, 0.0))

    def test_sorted_ids_deterministic_and_cached(self):
        f = forest2d()
        ids1 = f.sorted_ids()
        ids2 = f.sorted_ids()
        assert ids1 == ids2
        f.adapt([BlockID(0, (0, 0))])
        assert f.sorted_ids() != ids1

    def test_iteration_matches_sorted_order(self):
        f = forest2d()
        assert [b.id for b in f] == f.sorted_ids()

    def test_level_histogram(self):
        f = forest2d()
        f.adapt([BlockID(0, (0, 0))])
        assert f.level_histogram() == {0: 3, 1: 4}

    def test_ghost_cell_ratio_decreases_with_block_size(self):
        small = forest2d(m=(4, 4))
        big = forest2d(m=(16, 16))
        assert big.ghost_cell_ratio() < small.ghost_cell_ratio()

    def test_adaptation_counters(self):
        f = forest2d()
        f.adapt([BlockID(0, (0, 0))])
        f.adapt([], BlockID(0, (0, 0)).children())
        assert f.n_refinements == 1
        assert f.n_coarsenings == 1


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=6), st.integers(1, 2))
def test_random_adaptation_preserves_invariants(seeds, jump):
    """Property: any sequence of random adapt calls keeps the forest
    covering the domain with balanced levels and symmetric pointers."""
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)),
        (2, 2),
        (4, 4),
        nvar=1,
        max_level=3,
        max_level_jump=jump,
    )
    for seed in seeds:
        rng = np.random.default_rng(seed)
        ids = list(f.blocks)
        refine = [b for b in ids if rng.random() < 0.3]
        coarsen = [b for b in ids if rng.random() < 0.3]
        f.adapt(refine, coarsen)
        f.check_balance()
        f.check_coverage()
    for bid, block in f.blocks.items():
        for face, fn in block.face_neighbors.items():
            for nid in fn.ids:
                assert bid in f.blocks[nid].face_neighbors[face ^ 1].ids
