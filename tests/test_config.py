"""Tests for SimulationConfig (repro.amr.config)."""

import pytest

from repro.amr import SimulationConfig
from repro.util.geometry import Box


def base(**kw):
    kw.setdefault("domain", Box((0.0, 0.0), (1.0, 1.0)))
    kw.setdefault("n_root", (2, 2))
    return SimulationConfig(**kw)


class TestValidation:
    def test_defaults_valid(self):
        cfg = base()
        assert cfg.ndim == 2
        assert cfg.m == (8, 8)
        assert cfg.order == 2

    def test_adapt_interval_positive(self):
        with pytest.raises(ValueError):
            base(adapt_interval=0)

    def test_ghost_supports_order(self):
        with pytest.raises(ValueError):
            base(order=2, n_ghost=1)
        # Order 1 with one ghost layer is fine.
        cfg = base(order=1, n_ghost=1)
        assert cfg.n_ghost == 1


class TestMakeForest:
    def test_builds_matching_forest(self):
        cfg = base(m=(4, 4), max_level=2, max_level_jump=2,
                   periodic=(True, False), prolong_order=1)
        f = cfg.make_forest(nvar=3)
        assert f.m == (4, 4)
        assert f.nvar == 3
        assert f.max_level == 2
        assert f.max_level_jump == 2
        assert f.periodic == (True, False)
        assert f.prolong_order == 1
        assert f.n_blocks == 4

    def test_invalid_block_size_surfaces(self):
        cfg = base(m=(3, 4))
        with pytest.raises(ValueError):
            cfg.make_forest(nvar=1)
