"""Tests for geometric primitives (repro.util.geometry)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.geometry import (
    Box,
    child_offsets,
    face_axis,
    face_index,
    face_normal,
    face_side,
    iter_faces,
    opposite_face,
)


class TestFaceEnumeration:
    def test_axis_side_roundtrip(self):
        for face in iter_faces(3):
            assert face_index(face_axis(face), face_side(face)) == face

    def test_opposite(self):
        assert opposite_face(0) == 1
        assert opposite_face(1) == 0
        assert opposite_face(4) == 5

    def test_opposite_is_involution(self):
        for face in iter_faces(3):
            assert opposite_face(opposite_face(face)) == face

    def test_normals(self):
        assert face_normal(0, 3) == (-1, 0, 0)
        assert face_normal(1, 3) == (1, 0, 0)
        assert face_normal(5, 3) == (0, 0, 1)

    def test_face_count(self):
        assert len(list(iter_faces(2))) == 4
        assert len(list(iter_faces(3))) == 6

    def test_bad_side(self):
        with pytest.raises(ValueError):
            face_index(0, 2)


class TestChildOffsets:
    def test_counts(self):
        assert len(child_offsets(1)) == 2
        assert len(child_offsets(2)) == 4
        assert len(child_offsets(3)) == 8

    def test_binary_order(self):
        # Bit 0 of the child index is the x offset.
        offs = child_offsets(3)
        assert offs[0] == (0, 0, 0)
        assert offs[1] == (1, 0, 0)
        assert offs[2] == (0, 1, 0)
        assert offs[4] == (0, 0, 1)
        assert offs[7] == (1, 1, 1)

    def test_all_distinct(self):
        assert len(set(child_offsets(3))) == 8


class TestBox:
    def test_basic_properties(self):
        b = Box((0.0, 0.0), (2.0, 4.0))
        assert b.ndim == 2
        assert b.widths == (2.0, 4.0)
        assert b.center == (1.0, 2.0)
        assert b.volume == 8.0

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Box((0.0,), (0.0,))
        with pytest.raises(ValueError):
            Box((1.0, 0.0), (0.0, 1.0))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Box((0.0, 0.0), (1.0,))

    def test_contains(self):
        b = Box((0.0, 0.0), (1.0, 1.0))
        assert b.contains((0.5, 0.5))
        assert b.contains((0.0, 1.0))  # closed
        assert not b.contains((1.5, 0.5))
        assert b.contains((1.0001, 0.5), tol=0.001)

    def test_overlaps(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        assert a.overlaps(Box((0.5, 0.5), (2.0, 2.0)))
        # Touching faces do not overlap (zero measure).
        assert not a.overlaps(Box((1.0, 0.0), (2.0, 1.0)))

    def test_subbox_octants_tile_parent(self):
        b = Box((0.0, 0.0, 0.0), (2.0, 2.0, 2.0))
        subs = [b.subbox(off) for off in child_offsets(3)]
        assert np.isclose(sum(s.volume for s in subs), b.volume)
        assert all(s.widths == (1.0, 1.0, 1.0) for s in subs)
        assert subs[0].lo == (0.0, 0.0, 0.0)
        assert subs[7].lo == (1.0, 1.0, 1.0)

    def test_cell_widths_and_centers(self):
        b = Box((0.0,), (1.0,))
        assert b.cell_widths((4,)) == (0.25,)
        centers = b.cell_centers((4,))[0]
        np.testing.assert_allclose(centers, [0.125, 0.375, 0.625, 0.875])

    def test_meshgrid_shape(self):
        b = Box((0.0, 0.0), (1.0, 2.0))
        X, Y = b.meshgrid((3, 5))
        assert X.shape == (3, 5) and Y.shape == (3, 5)
        assert X[0, 0] == pytest.approx(1 / 6)
        assert Y[0, 0] == pytest.approx(0.2)

    @given(
        st.floats(-10, 10),
        st.floats(0.1, 10),
        st.integers(1, 16),
    )
    def test_cell_centers_inside_box(self, lo, width, n):
        b = Box((lo,), (lo + width,))
        c = b.cell_centers((n,))[0]
        assert (c > lo).all() and (c < lo + width).all()
        # Cells are uniformly spaced by width/n.
        if n > 1:
            np.testing.assert_allclose(np.diff(c), width / n)
