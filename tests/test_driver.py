"""Integration tests for the AMR driver (repro.amr.driver).

The key oracle: solving on an adaptively refined forest must agree with
solving the same problem on a uniformly fine grid, and conserved totals
must be preserved on periodic domains.
"""

import numpy as np
import pytest

from repro.amr import SimulationConfig, Simulation, advecting_pulse
from repro.amr.boundary import OutflowBC
from repro.core import BlockForest, BlockID
from repro.solvers import AdvectionScheme, EulerScheme
from repro.util.geometry import Box


class TestStepping:
    def test_ghost_requirement_checked(self):
        f = BlockForest(Box((0.0,), (1.0,)), (2,), (4,), 1, n_ghost=1)
        with pytest.raises(ValueError):
            Simulation(f, AdvectionScheme((1.0,), order=2))

    def test_run_requires_target(self):
        f = BlockForest(Box((0.0,), (1.0,)), (2,), (4,), 1, n_ghost=2,
                        periodic=(True,))
        sim = Simulation(f, AdvectionScheme((1.0,)))
        with pytest.raises(ValueError):
            sim.run()

    def test_run_to_time(self):
        p = advecting_pulse(1, velocity=(1.0,))
        sim = p.build(adaptive=False)
        sim.run(t_end=0.1)
        assert sim.time == pytest.approx(0.1)

    def test_run_step_count(self):
        p = advecting_pulse(1, velocity=(1.0,))
        sim = p.build(adaptive=False)
        sim.run(n_steps=5)
        assert sim.step_count == 5
        assert len(sim.history) == 5

    def test_history_records(self):
        p = advecting_pulse(2)
        sim = p.build(adaptive=False)
        sim.run(n_steps=3)
        rec = sim.history[-1]
        assert rec.step == 3
        assert rec.n_blocks == sim.forest.n_blocks
        assert rec.dt > 0

    def test_timer_phases_populated(self):
        p = advecting_pulse(2)
        sim = p.build(adaptive=False)
        sim.run(n_steps=2)
        assert sim.timer.totals["compute"] > 0
        assert sim.timer.totals["ghost_exchange"] > 0


class TestConservation:
    def test_mass_conserved_periodic_uniform(self):
        p = advecting_pulse(2)
        sim = p.build(adaptive=False)
        m0 = sim.total()
        sim.run(n_steps=10)
        assert sim.total() == pytest.approx(m0, rel=1e-12)

    def test_mass_nearly_conserved_with_amr(self):
        # Across refinement-level interfaces the unsynchronized fluxes
        # introduce a small conservation error (the paper's codes accept
        # this; flux fixup is an extension) — it must stay tiny.
        p = advecting_pulse(2)
        sim = p.build()
        m0 = sim.total()
        sim.run(n_steps=12)
        assert abs(sim.total() - m0) / m0 < 5e-3

    def test_euler_energy_conserved_periodic(self):
        cfg = SimulationConfig(
            domain=Box((0.0, 0.0), (1.0, 1.0)),
            n_root=(2, 2),
            m=(8, 8),
            periodic=(True, True),
        )
        scheme = EulerScheme(2, order=2)
        forest = cfg.make_forest(scheme.nvar)
        rng = np.random.default_rng(0)
        for b in forest:
            X, Y = b.meshgrid()
            w = np.stack(
                [
                    1.0 + 0.2 * np.sin(2 * np.pi * X),
                    0.3 * np.cos(2 * np.pi * Y),
                    np.zeros_like(X),
                    np.ones_like(X),
                ]
            )
            b.interior[...] = scheme.prim_to_cons(w)
        sim = Simulation(forest, scheme)
        e0 = sim.total(var=3)
        sim.run(n_steps=8)
        assert sim.total(var=3) == pytest.approx(e0, rel=1e-12)


class TestAMRvsUniform:
    def test_amr_matches_uniform_fine_solution(self):
        """Oracle: an AMR run with the pulse fully refined around it
        matches the uniformly fine run to tight tolerance."""
        # Uniform fine: level-2 everywhere.
        p_uni = advecting_pulse(2)
        sim_uni = p_uni.build(adaptive=False)
        sim_uni.forest.refine_uniformly(2)
        # AMR: adapt around the pulse (max level 2).
        cfg = SimulationConfig(
            domain=Box((0.0, 0.0), (1.0, 1.0)),
            n_root=(2, 2),
            m=(8, 8),
            periodic=(True, True),
            max_level=2,
            refine_threshold=0.04,   # aggressive: refine the whole pulse
            coarsen_threshold=0.005,
            adapt_interval=2,
        )
        p_amr = advecting_pulse(2, config=cfg)
        sim_amr = p_amr.build()
        assert sim_amr.forest.n_blocks <= sim_uni.forest.n_blocks

        t_end = 0.06
        sim_uni.run(t_end=t_end, dt_max=2e-3)
        sim_amr.run(t_end=t_end, dt_max=2e-3)
        e_uni = sim_uni.error_vs(p_uni.exact(t_end))
        e_amr = sim_amr.error_vs(p_amr.exact(t_end))
        # AMR error is within a small factor of the uniform-fine error.
        assert e_amr < 3.0 * e_uni + 1e-6

    def test_amr_beats_uniform_coarse(self):
        t_end = 0.08
        p_coarse = advecting_pulse(2)
        sim_coarse = p_coarse.build(adaptive=False)  # level 0 only
        sim_coarse.run(t_end=t_end, dt_max=2e-3)
        p_amr = advecting_pulse(2)
        sim_amr = p_amr.build()
        sim_amr.run(t_end=t_end, dt_max=2e-3)
        assert sim_amr.error_vs(p_amr.exact(t_end)) < sim_coarse.error_vs(
            p_coarse.exact(t_end)
        )


class TestAdaptationDynamics:
    def test_refinement_follows_the_pulse(self):
        p = advecting_pulse(2, velocity=(2.0, 0.0))
        sim = p.build()

        def fine_centroid_x():
            xs = []
            for b in sim.forest:
                if b.level == sim.forest.levels[1]:
                    xs.append(b.box.center[0])
            return np.mean(xs)

        x0 = fine_centroid_x()
        sim.run(t_end=0.15)
        x1 = fine_centroid_x()
        assert x1 > x0  # the refined region moved with the pulse

    def test_adapt_interval_respected(self):
        p = advecting_pulse(2)
        sim = p.build()
        sim.adapt_interval = 3
        sim.run(n_steps=7)
        checks = [r for r in sim.history if r.adapted is not None]
        assert len(checks) == 3  # steps 0, 3, 6 (0-based count at check)

    def test_blocks_stay_balanced_throughout(self):
        p = advecting_pulse(2)
        sim = p.build()
        for _ in range(6):
            sim.step()
            sim.forest.check_balance()
            sim.forest.check_coverage()


class TestThreadedExecution:
    def test_threaded_matches_serial_bitwise(self):
        import numpy as np

        results = []
        for threads in (None, 3):
            p = advecting_pulse(2)
            sim = p.build()
            if threads:
                from concurrent.futures import ThreadPoolExecutor

                sim.threads = threads
                sim._executor = ThreadPoolExecutor(max_workers=threads)
            sim.run(n_steps=6)
            results.append({b.id: b.interior.copy() for b in sim.forest})
        serial, threaded = results
        assert set(serial) == set(threaded)
        for bid in serial:
            np.testing.assert_array_equal(serial[bid], threaded[bid])

    def test_threads_constructor_arg(self):
        p = advecting_pulse(2)
        forest = p.config.make_forest(p.scheme.nvar)
        p.init_forest(forest)
        sim = Simulation(forest, p.scheme, threads=2)
        sim.run(n_steps=2)
        assert sim._executor is not None

    def test_bad_thread_count(self):
        p = advecting_pulse(2)
        forest = p.config.make_forest(p.scheme.nvar)
        with pytest.raises(ValueError):
            Simulation(forest, p.scheme, threads=0)


class TestStableDtRobustness:
    def test_ghost_garbage_does_not_throttle_dt(self):
        """Regression: CFL is computed over computational cells only.
        Extrapolation BCs can legitimately write unphysical states into
        ghost cells at strong boundary gradients (found by the solar-wind
        CME run, where dt collapsed to ~1e-14 when the shock reached the
        outer boundary); those ghosts must not drive the time step."""
        from repro.solvers import EulerScheme
        from repro.solvers.timestep import stable_dt as forest_dt

        scheme = EulerScheme(2, order=2)
        f = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (4, 4),
            nvar=4, n_ghost=2,
        )
        for b in f:
            w = np.zeros((4,) + b.interior.shape[1:])
            w[0], w[3] = 1.0, 1.0
            b.interior[...] = scheme.prim_to_cons(w)
        dt_clean = forest_dt(f, scheme)
        # Poison one ghost cell with a near-vacuum insane state.
        blk = next(iter(f))
        blk.data[:, 0, 0] = [1e-12, 1e3, -1e3, 1e6]
        assert forest_dt(f, scheme) == pytest.approx(dt_clean)
