"""Tests for the VTK export (repro.amr.vtk)."""

import numpy as np
import pytest

from repro.amr.vtk import save_vtk_blocks, save_vtk_uniform
from repro.core import BlockForest, BlockID
from repro.util.geometry import Box


def make_forest():
    f = BlockForest(
        Box((0.0, 0.0), (2.0, 1.0)), (2, 1), (4, 4), nvar=2, n_ghost=2
    )
    f.adapt([BlockID(0, (0, 0))])
    for b in f:
        X, Y = b.meshgrid()
        b.interior[0] = X
        b.interior[1] = 7.5
    return f


def parse_scalars(text, name):
    lines = text.splitlines()
    i = next(j for j, l in enumerate(lines) if l.startswith(f"SCALARS {name} "))
    vals = []
    for l in lines[i + 2 :]:
        if l and not l[0].isdigit() and not l.startswith("-"):
            break
        vals.extend(float(v) for v in l.split())
    return np.array(vals)


class TestUniform:
    def test_header_and_geometry(self, tmp_path):
        f = make_forest()
        out = save_vtk_uniform(f, tmp_path / "u.vtk", level=1)
        text = out.read_text()
        assert text.startswith("# vtk DataFile Version 3.0")
        assert "DATASET STRUCTURED_POINTS" in text
        # Level-1 grid: 16 x 8 cells -> 17 x 9 x 2 points.
        assert "DIMENSIONS 17 9 2" in text
        assert "CELL_DATA 128" in text

    def test_values_roundtrip(self, tmp_path):
        f = make_forest()
        out = save_vtk_uniform(f, tmp_path / "u.vtk", level=0,
                               var_names=["x", "c"])
        text = out.read_text()
        c = parse_scalars(text, "c")
        np.testing.assert_allclose(c, 7.5)
        x = parse_scalars(text, "x")
        assert len(x) == 8 * 4
        # x varies along the fast (x) axis of the VTK ordering.
        assert x[0] < x[1]

    def test_default_level_is_finest(self, tmp_path):
        f = make_forest()
        out = save_vtk_uniform(f, tmp_path / "u.vtk")
        assert "DIMENSIONS 17 9 2" in out.read_text()

    def test_wrong_name_count(self, tmp_path):
        with pytest.raises(ValueError):
            save_vtk_uniform(make_forest(), tmp_path / "u.vtk", var_names=["a"])


class TestBlocks:
    def test_one_piece_per_block(self, tmp_path):
        f = make_forest()
        index = save_vtk_blocks(f, tmp_path, basename="b")
        lines = index.read_text().splitlines()
        assert lines[0] == f"!NBLOCKS {f.n_blocks}"
        assert len(lines) == 1 + f.n_blocks
        for piece in lines[1:]:
            assert (tmp_path / piece).exists()

    def test_piece_contents(self, tmp_path):
        f = make_forest()
        save_vtk_blocks(f, tmp_path, basename="b", var_names=["x", "c"])
        text = (tmp_path / "b_00000.vtk").read_text()
        assert "DATASET RECTILINEAR_GRID" in text
        assert "X_COORDINATES 5 double" in text
        c = parse_scalars(text, "c")
        np.testing.assert_allclose(c, 7.5)
        lvl = parse_scalars(text, "amr_level")
        assert set(lvl) <= {0.0, 1.0}

    def test_levels_recorded(self, tmp_path):
        f = make_forest()
        save_vtk_blocks(f, tmp_path, basename="b")
        found = set()
        for i in range(f.n_blocks):
            text = (tmp_path / f"b_{i:05d}.vtk").read_text()
            found |= set(parse_scalars(text, "amr_level"))
        assert found == {0.0, 1.0}

    def test_3d_forest(self, tmp_path):
        f = BlockForest(
            Box((0.0,) * 3, (1.0,) * 3), (1, 1, 1), (4, 4, 4), nvar=1
        )
        index = save_vtk_blocks(f, tmp_path)
        text = (tmp_path / "blocks_00000.vtk").read_text()
        assert "DIMENSIONS 5 5 5" in text
        assert "Z_COORDINATES 5 double" in text
