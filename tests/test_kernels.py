"""Kernel-backend registry, numba-missing fallback, and per-op contract.

The registry (`repro.kernels`) must hand out cached process-wide
backends, reject unknown names with the available list, and degrade
``numba`` to the numpy reference (one warning, identical results) when
the jit extra is absent.  The per-op tests pin the `KernelBackend`
contract the engines rely on: hooks may decline (returning ``None``),
always-implemented ops match the reference arithmetic exactly, and the
numba ops — exercised only where the extra is installed, via
``pytest.importorskip`` (REPRO108 bans a bare import here) — are
bit-for-bit against the numpy machinery.
"""

import pickle
import sys
import warnings

import numpy as np
import pytest

from repro.amr import Simulation, advecting_pulse
from repro.kernels import (
    BACKEND_NAMES,
    NumpyBackend,
    available_backends,
    get_backend,
    numba_available,
    reset_backends,
)
from repro.solvers import AdvectionScheme, EulerScheme
from repro.solvers.mhd import MHDScheme


def assert_forests_identical(a, b):
    assert sorted(a.blocks) == sorted(b.blocks)
    for bid in a.blocks:
        assert np.array_equal(a.blocks[bid].interior, b.blocks[bid].interior), bid


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_default_is_numpy(self):
        b = get_backend()
        assert b.name == "numpy"
        assert isinstance(b, NumpyBackend)
        assert b is get_backend("numpy")

    def test_instances_are_process_wide(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_backend_lists_registry(self):
        with pytest.raises(ValueError, match="unknown kernel backend 'bogus'"):
            get_backend("bogus")
        with pytest.raises(ValueError, match="numpy, numba"):
            get_backend("bogus")

    def test_backend_names_registry(self):
        assert BACKEND_NAMES == ("numpy", "numba")
        avail = available_backends()
        assert "numpy" in avail
        assert set(avail) <= set(BACKEND_NAMES)
        # numba's availability report must agree with the listing
        assert ("numba" in avail) == numba_available()

    def test_pickle_resolves_process_instance(self):
        # schemes (and their backend) cross process boundaries in the
        # process-parallel backend; compiled JIT kernels are not
        # picklable, so backends pickle by name
        b = get_backend("numpy")
        assert pickle.loads(pickle.dumps(b)) is b

    def test_stats_shape(self):
        s = get_backend("numpy").stats()
        assert set(s) == {
            "backend", "dispatches", "fallbacks", "compile_s", "n_compiled",
        }
        assert s["backend"] == "numpy"


# ---------------------------------------------------------------------------
# numba-missing fallback
# ---------------------------------------------------------------------------


@pytest.fixture
def no_numba(monkeypatch):
    """Simulate an environment without the jit extra installed."""
    # A None entry makes `import numba` raise ImportError; dropping the
    # backend module forces get_backend to re-attempt that import.
    monkeypatch.setitem(sys.modules, "numba", None)
    monkeypatch.delitem(sys.modules, "repro.kernels.numba_backend", raising=False)
    reset_backends()
    yield
    reset_backends()


class TestNumbaFallback:
    def test_fallback_selects_numpy_and_warns_once(self, no_numba):
        with pytest.warns(RuntimeWarning, match="falling back to the 'numpy'"):
            b = get_backend("numba")
        assert b is get_backend("numpy")
        # the warning is one-time: later requests are silent
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_backend("numba") is b

    def test_fallback_reported_unavailable(self, no_numba):
        assert not numba_available()
        assert available_backends() == ("numpy",)

    def test_fallback_results_identical(self, no_numba):
        problem = advecting_pulse(ndim=2)
        ref = problem.build(engine="batched", kernel_backend="numpy")
        with ref:
            for _ in range(4):
                ref.step()
        with pytest.warns(RuntimeWarning, match="falling back"):
            fell = problem.build(engine="batched", kernel_backend="numba")
        with fell:
            for _ in range(4):
                fell.step()
        assert fell.scheme.kernels.name == "numpy"
        assert_forests_identical(ref.forest, fell.forest)
        assert [r.dt for r in ref.history] == [r.dt for r in fell.history]

    def test_reset_rearms_the_warning(self, no_numba):
        with pytest.warns(RuntimeWarning):
            get_backend("numba")
        reset_backends()
        with pytest.warns(RuntimeWarning):
            get_backend("numba")


# ---------------------------------------------------------------------------
# per-op contract (numpy reference backend)
# ---------------------------------------------------------------------------


class TestNumpyOps:
    def test_hooks_decline_and_count(self):
        b = NumpyBackend()
        scheme = AdvectionScheme((1.0, 0.5), order=2)
        u = np.zeros((3, 1, 12, 12))
        before = b.dispatches
        assert b.flux_divergence(scheme, u, [0.1, 0.1], 2, ndim=2) is None
        assert b.max_signal_speed_tile(scheme, u, 2) is None
        assert b.dispatches == before + 2

    def test_scatter_ghosts_is_flat_assignment(self):
        b = NumpyBackend()
        rng = np.random.default_rng(7)
        flat = rng.random(64)
        dst = np.array([1, 5, 9], dtype=np.intp)
        src = np.array([40, 41, 42], dtype=np.intp)
        want = flat.copy()
        want[dst] = want[src]
        b.scatter_ghosts(flat, dst, src)
        assert np.array_equal(flat, want)

    @pytest.mark.parametrize("limiter", ["minmod", "van_leer", "mc", "superbee"])
    def test_apply_limiter_matches_scheme(self, limiter):
        scheme = EulerScheme(2, limiter=limiter)
        rng = np.random.default_rng(11)
        a = rng.standard_normal((4, 9))
        bb = rng.standard_normal((4, 9))
        got = NumpyBackend().apply_limiter(scheme, a, bb)
        assert np.array_equal(got, scheme.limiter(a, bb))

    def test_riemann_flux_matches_scheme(self):
        scheme = EulerScheme(2)
        rng = np.random.default_rng(13)
        wl = np.abs(rng.standard_normal((4, 6))) + 0.5
        wr = np.abs(rng.standard_normal((4, 6))) + 0.5
        got = NumpyBackend().riemann_flux(scheme, wl, wr, 0)
        assert np.array_equal(got, scheme.riemann(scheme, wl, wr, 0))


# ---------------------------------------------------------------------------
# numba backend ops (skipped without the jit extra)
# ---------------------------------------------------------------------------


def _padded_state(scheme, ndim, g=2, m=8, b=3, seed=5):
    rng = np.random.default_rng(seed)
    shape = (b, scheme.nvar) + (m + 2 * g,) * ndim
    w = np.abs(rng.standard_normal(shape)) + 0.5
    u = np.empty_like(w)
    for i in range(b):
        u[i] = scheme.prim_to_cons(w[i])
    return np.ascontiguousarray(u)


class TestNumbaOps:
    @pytest.mark.parametrize(
        "scheme_factory",
        [
            lambda: AdvectionScheme((1.0, 0.5), order=2),
            lambda: EulerScheme(2),
            lambda: MHDScheme(2),
        ],
    )
    def test_flux_divergence_bitwise(self, scheme_factory):
        pytest.importorskip("numba")
        nb = get_backend("numba")
        scheme = scheme_factory()
        u = _padded_state(scheme, ndim=2)
        got = nb.flux_divergence(scheme, u.copy(), [0.1, 0.2], 2, ndim=2)
        assert got is not None
        ref = scheme.flux_divergence(u.copy(), [0.1, 0.2], 2, ndim=2)
        assert np.array_equal(got, ref)

    def test_flux_divergence_honors_out(self):
        pytest.importorskip("numba")
        nb = get_backend("numba")
        scheme = MHDScheme(2)
        u = _padded_state(scheme, ndim=2)
        out = np.empty((u.shape[0], scheme.nvar, 8, 8))
        got = nb.flux_divergence(scheme, u, [0.1, 0.1], 2, ndim=2, out=out)
        assert got is out

    def test_max_signal_speed_tile_bitwise(self):
        pytest.importorskip("numba")
        nb = get_backend("numba")
        scheme = MHDScheme(2)
        u = _padded_state(scheme, ndim=2)
        tile = np.ascontiguousarray(u[:, :, 2:-2, 2:-2])
        got = nb.max_signal_speed_tile(scheme, tile, 2)
        assert got is not None
        ref = scheme.max_signal_speed_batched(
            np.moveaxis(tile, 0, 1).copy(), 2
        )
        assert np.array_equal(got, ref)

    def test_compile_accounting(self):
        pytest.importorskip("numba")
        nb = get_backend("numba")
        scheme = EulerScheme(2)
        u = _padded_state(scheme, ndim=2)
        assert nb.flux_divergence(scheme, u, [0.1, 0.1], 2, ndim=2) is not None
        stats = nb.stats()
        assert stats["backend"] == "numba"
        assert stats["n_compiled"] >= 1
        assert stats["compile_s"] > 0.0

    def test_declines_unsupported_combo(self):
        pytest.importorskip("numba")
        nb = get_backend("numba")
        scheme = EulerScheme(2, riemann="hllc")
        u = _padded_state(scheme, ndim=2)
        before = nb.fallbacks
        assert nb.flux_divergence(scheme, u, [0.1, 0.1], 2, ndim=2) is None
        assert nb.fallbacks > before


# ---------------------------------------------------------------------------
# Simulation / tile-size wiring
# ---------------------------------------------------------------------------


class TestSimulationWiring:
    def test_kernel_backend_attaches_to_scheme(self):
        problem = advecting_pulse(ndim=2)
        sim = problem.build(kernel_backend="numpy")
        assert sim.scheme.kernels is get_backend("numpy")
        sim.close()

    def test_config_rejects_unknown_backend(self):
        from dataclasses import replace

        problem = advecting_pulse(ndim=2)
        with pytest.raises(ValueError, match="kernel_backend"):
            replace(problem.config, kernel_backend="warp")

    def test_tile_bytes_param(self):
        problem = advecting_pulse(ndim=2)
        sim = problem.build()
        custom = Simulation(
            sim.forest, sim.scheme, engine="batched", batch_tile_bytes=8192
        )
        assert custom.batch_tile_bytes == 8192
        custom.close()
        sim.close()

    def test_tile_bytes_validated(self):
        problem = advecting_pulse(ndim=2)
        sim = problem.build()
        with pytest.raises(ValueError, match=">= 4096"):
            Simulation(sim.forest, sim.scheme, batch_tile_bytes=1024)
        sim.close()

    def test_tile_bytes_env_var(self, monkeypatch):
        problem = advecting_pulse(ndim=2)
        base = problem.build()
        monkeypatch.setenv("REPRO_BATCH_TILE_BYTES", "16384")
        sim = Simulation(base.forest, base.scheme)
        assert sim.batch_tile_bytes == 16384
        sim.close()
        # explicit parameter wins over the env var
        sim = Simulation(base.forest, base.scheme, batch_tile_bytes=8192)
        assert sim.batch_tile_bytes == 8192
        sim.close()
        base.close()

    def test_tile_bytes_env_var_validated(self, monkeypatch):
        problem = advecting_pulse(ndim=2)
        base = problem.build()
        monkeypatch.setenv("REPRO_BATCH_TILE_BYTES", "zork")
        with pytest.raises(ValueError, match="must be an integer"):
            Simulation(base.forest, base.scheme)
        monkeypatch.setenv("REPRO_BATCH_TILE_BYTES", "1024")
        with pytest.raises(ValueError, match=">= 4096"):
            Simulation(base.forest, base.scheme)
        base.close()

    def test_default_tile_bytes(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_TILE_BYTES", raising=False)
        problem = advecting_pulse(ndim=2)
        sim = problem.build()
        assert sim.batch_tile_bytes == Simulation.BATCH_TILE_BYTES
        sim.close()

    def test_tile_bytes_reaches_tile_rows(self):
        problem = advecting_pulse(ndim=2)
        base = problem.build()
        small = Simulation(
            base.forest, base.scheme, engine="batched", batch_tile_bytes=4096
        )
        big = Simulation(
            base.forest, base.scheme, engine="batched",
            batch_tile_bytes=4096 * 64,
        )
        row_bytes = base.forest.arena.pool[:1].nbytes
        assert small._tile_rows(row_bytes) <= big._tile_rows(row_bytes)
        small.close()
        big.close()
        base.close()


# ---------------------------------------------------------------------------
# per-backend bench comparison
# ---------------------------------------------------------------------------


class TestBenchPerBackend:
    RECORD = {
        "name": "batched_engine",
        "workload": "w",
        "cases": [
            {
                "ndim": 2,
                "kernel_backend": "numpy",
                "speedup": 4.0,
                "blocked": {"us_per_cell": 2.0},
                "batched": {"us_per_cell": 0.5},
            },
            {
                "ndim": 2,
                "kernel_backend": "numba",
                "speedup": 10.0,
                "blocked": {"us_per_cell": 2.0},
                "batched": {"us_per_cell": 0.2},
            },
        ],
    }

    def test_backends_compared_independently(self):
        from repro.obs.report import compare_to_bench

        # 0.6 us/cell would be fine against numpy's 0.5 but is 3x the
        # numba reference — the numba profile must flag, numpy must not.
        profiles = [
            {"engine": "batched", "us_per_cell": 0.6, "ndim": 2,
             "workload": "w", "kernel_backend": "numpy"},
            {"engine": "batched", "us_per_cell": 0.6, "ndim": 2,
             "workload": "w", "kernel_backend": "numba"},
        ]
        flags = compare_to_bench(profiles, self.RECORD)
        assert len(flags) == 1
        assert flags[0].startswith("batched[numba]:")

    def test_speedup_floor_is_per_backend(self):
        from repro.obs.report import compare_to_bench

        profiles = [
            {"engine": "blocked", "us_per_cell": 2.0,
             "kernel_backend": "numba"},
            {"engine": "batched", "us_per_cell": 1.0,
             "kernel_backend": "numba"},
        ]
        # 2x observed vs a 10x committed numba floor (5x after tolerance)
        flags = compare_to_bench(profiles, self.RECORD)
        assert any(f.startswith("batched[numba] speedup") for f in flags)
        # same numbers under numpy (4x floor -> 2x tolerance) pass
        profiles = [
            {"engine": "blocked", "us_per_cell": 2.0},
            {"engine": "batched", "us_per_cell": 1.0},
        ]
        assert compare_to_bench(profiles, self.RECORD) == []

    def test_untagged_record_treated_as_numpy(self):
        from repro.obs.report import compare_to_bench

        record = {
            "name": "batched_engine",
            "workload": "w",
            "cases": [
                {"ndim": 2, "speedup": 4.0,
                 "blocked": {"us_per_cell": 2.0},
                 "batched": {"us_per_cell": 0.5}},
            ],
        }
        profiles = [
            {"engine": "batched", "us_per_cell": 10.0, "ndim": 2,
             "workload": "w"},
        ]
        flags = compare_to_bench(profiles, record)
        assert len(flags) == 1 and flags[0].startswith("batched:")

    def test_backend_equivalence_check_trivial_without_numba(self):
        from repro.analysis.engine_bench import (
            BenchCase,
            check_backend_equivalence,
        )

        # with one backend available the check degenerates to True
        assert check_backend_equivalence(
            BenchCase(2, 4, 2, 2), steps=1, backends=["numpy"]
        )
