"""Tests for checkpoint I/O (repro.amr.io)."""

import numpy as np
import pytest

from repro.amr.io import (
    FORMAT_VERSION,
    CheckpointError,
    _array_checksum,
    checkpoint_metadata,
    grid_report,
    load_forest,
    save_forest,
)
from repro.core import BlockForest, BlockID, fill_ghosts
from repro.util.geometry import Box


def make_forest():
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)),
        (2, 2),
        (4, 4),
        nvar=3,
        periodic=(True, False),
        max_level=4,
        max_level_jump=1,
    )
    f.adapt([BlockID(0, (0, 0))])
    f.adapt([BlockID(1, (0, 0))])
    rng = np.random.default_rng(11)
    for b in f:
        b.interior[...] = rng.random(b.interior.shape)
    return f


class TestRoundtrip:
    def test_topology_and_data_preserved(self, tmp_path):
        f = make_forest()
        path = tmp_path / "ckpt.npz"
        save_forest(f, path)
        g = load_forest(path)
        assert set(g.blocks) == set(f.blocks)
        for bid in f.blocks:
            np.testing.assert_array_equal(
                g.blocks[bid].interior, f.blocks[bid].interior
            )

    def test_parameters_preserved(self, tmp_path):
        f = make_forest()
        path = tmp_path / "ckpt.npz"
        save_forest(f, path)
        g = load_forest(path)
        assert g.m == f.m
        assert g.n_ghost == f.n_ghost
        assert g.periodic == f.periodic
        assert g.max_level == f.max_level
        assert g.domain.lo == f.domain.lo

    def test_loaded_forest_is_functional(self, tmp_path):
        f = make_forest()
        path = tmp_path / "ckpt.npz"
        save_forest(f, path)
        g = load_forest(path)
        g.check_balance()
        g.check_coverage()
        fill_ghosts(g)  # ghosts reconstructible
        g.adapt([next(iter(g.blocks))])  # still adaptable

    def test_uniform_forest_roundtrip(self, tmp_path):
        f = BlockForest(Box((0.0,), (1.0,)), (3,), (6,), nvar=1)
        for i, b in enumerate(f):
            b.interior[...] = float(i)
        path = tmp_path / "u.npz"
        save_forest(f, path)
        g = load_forest(path)
        assert [float(b.interior[0, 0]) for b in g] == [0.0, 1.0, 2.0]

    def test_adapted_and_coarsened_forest_roundtrip(self, tmp_path):
        # A topology produced by refinement *and* subsequent coarsening
        # must survive the save/load cycle exactly.
        f = make_forest()
        kids = [b for b in f.blocks if b.level == 2]
        f.adapt([], kids)  # coarsen the deepest family back out
        rng = np.random.default_rng(3)
        for b in f:
            b.interior[...] = rng.random(b.interior.shape)
        path = tmp_path / "adapted.npz"
        save_forest(f, path)
        g = load_forest(path)
        assert set(g.blocks) == set(f.blocks)
        for bid in f.blocks:
            np.testing.assert_array_equal(
                g.blocks[bid].interior, f.blocks[bid].interior
            )

    def test_metadata_roundtrip(self, tmp_path):
        f = make_forest()
        path = tmp_path / "meta.npz"
        save_forest(f, path, time=1.25, step=17)
        meta = checkpoint_metadata(path)
        assert meta["format_version"] == FORMAT_VERSION
        assert meta["n_blocks"] == f.n_blocks
        assert meta["time"] == 1.25
        assert meta["step"] == 17

    def test_atomic_write_leaves_no_tmp_file(self, tmp_path):
        f = make_forest()
        path = tmp_path / "ckpt.npz"
        save_forest(f, path)
        save_forest(f, path)  # overwrite goes through the same tmp path
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]


def _tamper(path, mutate):
    """Load a checkpoint's raw arrays, mutate them, re-checksum, rewrite."""
    with np.load(path) as f:
        payload = {name: f[name] for name in f.files}
    mutate(payload)
    if "checksum" in payload:
        payload["checksum"] = np.uint32(_array_checksum(payload))
    np.savez_compressed(path, **payload)


class TestLoadFailures:
    def _saved(self, tmp_path):
        f = make_forest()
        path = tmp_path / "ckpt.npz"
        save_forest(f, path)
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_forest(tmp_path / "nope.npz")

    def test_truncated_file(self, tmp_path):
        path = self._saved(tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError):
            load_forest(path)

    def test_bit_flip_fails_checksum(self, tmp_path):
        path = self._saved(tmp_path)
        _tamper(path, lambda p: None)  # sanity: re-checksummed copy loads
        load_forest(path)
        # Now alter the data while keeping the stale checksum.
        with np.load(path) as f:
            payload = {name: f[name] for name in f.files}
        payload["data"] = payload["data"].copy()
        payload["data"].flat[0] += 1.0
        np.savez_compressed(path, **payload)
        with pytest.raises(CheckpointError, match="checksum"):
            load_forest(path)

    def test_missing_required_key(self, tmp_path):
        path = self._saved(tmp_path)
        _tamper(path, lambda p: p.pop("m"))
        with pytest.raises(CheckpointError, match="missing required"):
            load_forest(path)

    def test_format_version_mismatch(self, tmp_path):
        path = self._saved(tmp_path)
        _tamper(
            path,
            lambda p: p.update(format_version=np.int64(FORMAT_VERSION + 1)),
        )
        with pytest.raises(CheckpointError, match="format version"):
            load_forest(path)

    def test_unreachable_topology(self, tmp_path):
        # Replace one root leaf with the child of *another* root: the
        # saved leaf set is then not reachable by pure refinement.
        f = BlockForest(Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (4, 4), nvar=1)
        path = tmp_path / "bad.npz"
        save_forest(f, path)

        def mutate(payload):
            levels = payload["levels"].copy()
            coords = payload["coords"].copy()
            levels[-1] = 1
            coords[-1] = (0, 0)
            payload["levels"], payload["coords"] = levels, coords

        _tamper(path, mutate)
        with pytest.raises(CheckpointError, match="not reachable"):
            load_forest(path)

    def test_metadata_shares_verification(self, tmp_path):
        path = self._saved(tmp_path)
        path.write_bytes(b"garbage")
        with pytest.raises(CheckpointError):
            checkpoint_metadata(path)


class TestCheckpointFuzzing:
    """Seeded corruption sweep: a damaged checkpoint must surface as
    :class:`CheckpointError` — never a stray exception, never silently
    loading wrong data."""

    def _saved(self, tmp_path):
        f = make_forest()
        path = tmp_path / "ckpt.npz"
        save_forest(f, path)
        return path, f

    @pytest.mark.parametrize("seed", range(10))
    def test_truncation_always_checkpoint_error(self, tmp_path, seed):
        path, _ = self._saved(tmp_path)
        raw = path.read_bytes()
        cut = int(np.random.default_rng(seed).integers(1, len(raw)))
        path.write_bytes(raw[:cut])
        with pytest.raises(CheckpointError):
            load_forest(path)

    @pytest.mark.parametrize("seed", range(10))
    def test_byte_flips_detected_or_harmless(self, tmp_path, seed):
        path, forest = self._saved(tmp_path)
        raw = bytearray(path.read_bytes())
        rng = np.random.default_rng(1000 + seed)
        for pos in rng.integers(0, len(raw), size=4):
            raw[pos] ^= 1 << int(rng.integers(0, 8))
        path.write_bytes(bytes(raw))
        try:
            loaded = load_forest(path)
        except CheckpointError:
            return  # corruption detected, the contract we want
        # Flips can land in zip padding and leave a valid file; then
        # the decoded data must be bit-identical to what was saved.
        for bid, blk in forest.blocks.items():
            np.testing.assert_array_equal(
                loaded.blocks[bid].interior, blk.interior
            )

    def test_latest_falls_back_past_corrupted_newest(self, tmp_path):
        from repro.resilience import Checkpointer

        ckpt = Checkpointer(tmp_path, keep=3)
        forest = make_forest()
        ckpt.save(forest, step=1, time=0.1)
        info2 = ckpt.save(forest, step=2, time=0.2)
        info3 = ckpt.save(forest, step=3, time=0.3)
        # Corrupt the newest file in place.
        info3.path.write_bytes(info3.path.read_bytes()[:100])
        info = ckpt.latest()
        assert info is not None
        assert info.step == 2
        loaded, loaded_info = ckpt.load_latest()
        assert loaded_info.path == info2.path
        for bid, blk in forest.blocks.items():
            np.testing.assert_array_equal(
                loaded.blocks[bid].interior, blk.interior
            )


class TestGridReport:
    def test_contains_key_stats(self):
        f = make_forest()
        text = grid_report(f)
        assert "blocks: " in text
        assert "ghost/computational cell ratio" in text
        assert "L0" in text and "L2" in text


class TestHistoryCsv:
    def test_csv_written(self, tmp_path):
        from repro.amr import advecting_pulse
        from repro.amr.io import history_to_csv

        p = advecting_pulse(2)
        sim = p.build()
        sim.run(n_steps=5)
        path = tmp_path / "hist.csv"
        history_to_csv(sim.history, path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("step,time,dt")
        assert len(lines) == 6
        first = lines[1].split(",")
        assert int(first[0]) == 1
        assert float(first[2]) > 0  # dt

    def test_wall_time_column(self, tmp_path):
        from repro.amr import advecting_pulse
        from repro.amr.io import history_to_csv

        p = advecting_pulse(2)
        sim = p.build()
        sim.run(n_steps=3)
        assert all(r.wall_time is not None for r in sim.history)
        path = tmp_path / "hist.csv"
        history_to_csv(sim.history, path)
        lines = path.read_text().splitlines()
        assert lines[0].endswith(",wall_time")
        for line in lines[1:]:
            assert float(line.split(",")[-1]) > 0

    def test_no_wall_time_column_for_synthetic_records(self, tmp_path):
        from repro.amr.driver import StepRecord
        from repro.amr.io import history_to_csv

        history = [StepRecord(1, 0.1, 0.1, 4, 64)]
        path = tmp_path / "hist.csv"
        history_to_csv(history, path)
        lines = path.read_text().splitlines()
        assert "wall_time" not in lines[0]
        assert lines[1].count(",") == lines[0].count(",")

    def test_empty_history_writes_header_only(self, tmp_path):
        from repro.amr.io import history_to_csv

        path = tmp_path / "empty.csv"
        history_to_csv([], path)
        lines = path.read_text().splitlines()
        assert lines == ["step,time,dt,n_blocks,n_cells,refined,coarsened"]

    def test_mixed_history_pads_missing_wall_time(self, tmp_path):
        # A history mixing measured and synthetic records (e.g. resumed
        # runs) keeps the column and leaves the missing cells empty, so
        # every row has the same arity.
        from repro.amr.driver import StepRecord
        from repro.amr.io import history_to_csv

        history = [
            StepRecord(1, 0.1, 0.1, 4, 64),
            StepRecord(2, 0.2, 0.1, 4, 64, wall_time=0.02),
        ]
        path = tmp_path / "hist.csv"
        history_to_csv(history, path)
        lines = path.read_text().splitlines()
        assert lines[0].endswith(",wall_time")
        assert all(ln.count(",") == lines[0].count(",") for ln in lines)
        assert lines[1].endswith(",")  # missing wall_time -> empty cell
        assert lines[2].endswith(",0.02")

    def test_recovery_time_column(self, tmp_path):
        from repro.amr.driver import StepRecord
        from repro.amr.io import history_to_csv

        history = [
            StepRecord(1, 0.1, 0.1, 4, 64, wall_time=0.01),
            StepRecord(2, 0.2, 0.1, 4, 64, wall_time=0.01,
                       recovery_time=0.5),
        ]
        path = tmp_path / "hist.csv"
        history_to_csv(history, path)
        lines = path.read_text().splitlines()
        assert lines[0].endswith(",wall_time,recovery_time")
        # Steps without a recovery leave the cell empty.
        assert lines[1].endswith(",")
        assert lines[2].endswith(",0.5")

    def test_recovery_report_history_round_trips(self, tmp_path):
        from repro.amr.io import history_to_csv
        from repro.parallel import EmulatedMachine
        from repro.resilience import (
            Checkpointer,
            FaultPlan,
            RankKill,
            run_with_recovery,
        )
        from repro.solvers import AdvectionScheme

        forest = BlockForest(
            Box((0.0, 0.0), (1.0, 1.0)), (2, 2), (8, 8), nvar=1,
            n_ghost=2, periodic=(True, True),
        )
        rng = np.random.default_rng(3)
        for b in forest:
            b.interior[...] = rng.random(b.interior.shape)
        plan = FaultPlan(kills=[RankKill(step=2, rank=1)])
        emu = EmulatedMachine(forest, 4, AdvectionScheme((1.0, 0.5), order=2),
                              fault_plan=plan)
        report = run_with_recovery(
            emu, n_steps=4, dt=1e-3,
            checkpointer=Checkpointer(tmp_path / "ckpt"), strategy="local",
        )
        assert len(report.history) == 4
        path = tmp_path / "hist.csv"
        history_to_csv(report.history, path)
        lines = path.read_text().splitlines()
        assert "recovery_time" in lines[0]
        charged = [ln for ln in lines[1:] if not ln.endswith(",")]
        assert len(charged) == 1  # only the recovered step carries cost
