"""Tests for checkpoint I/O (repro.amr.io)."""

import numpy as np
import pytest

from repro.amr.io import grid_report, load_forest, save_forest
from repro.core import BlockForest, BlockID, fill_ghosts
from repro.util.geometry import Box


def make_forest():
    f = BlockForest(
        Box((0.0, 0.0), (1.0, 1.0)),
        (2, 2),
        (4, 4),
        nvar=3,
        periodic=(True, False),
        max_level=4,
        max_level_jump=1,
    )
    f.adapt([BlockID(0, (0, 0))])
    f.adapt([BlockID(1, (0, 0))])
    rng = np.random.default_rng(11)
    for b in f:
        b.interior[...] = rng.random(b.interior.shape)
    return f


class TestRoundtrip:
    def test_topology_and_data_preserved(self, tmp_path):
        f = make_forest()
        path = tmp_path / "ckpt.npz"
        save_forest(f, path)
        g = load_forest(path)
        assert set(g.blocks) == set(f.blocks)
        for bid in f.blocks:
            np.testing.assert_array_equal(
                g.blocks[bid].interior, f.blocks[bid].interior
            )

    def test_parameters_preserved(self, tmp_path):
        f = make_forest()
        path = tmp_path / "ckpt.npz"
        save_forest(f, path)
        g = load_forest(path)
        assert g.m == f.m
        assert g.n_ghost == f.n_ghost
        assert g.periodic == f.periodic
        assert g.max_level == f.max_level
        assert g.domain.lo == f.domain.lo

    def test_loaded_forest_is_functional(self, tmp_path):
        f = make_forest()
        path = tmp_path / "ckpt.npz"
        save_forest(f, path)
        g = load_forest(path)
        g.check_balance()
        g.check_coverage()
        fill_ghosts(g)  # ghosts reconstructible
        g.adapt([next(iter(g.blocks))])  # still adaptable

    def test_uniform_forest_roundtrip(self, tmp_path):
        f = BlockForest(Box((0.0,), (1.0,)), (3,), (6,), nvar=1)
        for i, b in enumerate(f):
            b.interior[...] = float(i)
        path = tmp_path / "u.npz"
        save_forest(f, path)
        g = load_forest(path)
        assert [float(b.interior[0, 0]) for b in g] == [0.0, 1.0, 2.0]


class TestGridReport:
    def test_contains_key_stats(self):
        f = make_forest()
        text = grid_report(f)
        assert "blocks: " in text
        assert "ghost/computational cell ratio" in text
        assert "L0" in text and "L2" in text


class TestHistoryCsv:
    def test_csv_written(self, tmp_path):
        from repro.amr import advecting_pulse
        from repro.amr.io import history_to_csv

        p = advecting_pulse(2)
        sim = p.build()
        sim.run(n_steps=5)
        path = tmp_path / "hist.csv"
        history_to_csv(sim.history, path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("step,time,dt")
        assert len(lines) == 6
        first = lines[1].split(",")
        assert int(first[0]) == 1
        assert float(first[2]) > 0  # dt
