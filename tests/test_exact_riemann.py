"""Tests for the exact Euler Riemann solver and the HLLC flux."""

import numpy as np
import pytest

from repro.solvers import EulerScheme
from repro.solvers.exact import exact_riemann, sample_riemann, sod_solution
from repro.solvers.riemann import hllc


class TestExactRiemann:
    def test_sod_star_state(self):
        # Toro, Table 4.1 test 1.
        s = exact_riemann(1.0, 0.0, 1.0, 0.125, 0.0, 0.1)
        assert s.p_star == pytest.approx(0.30313, abs=1e-4)
        assert s.u_star == pytest.approx(0.92745, abs=1e-4)
        assert s.rho_star_l == pytest.approx(0.42632, abs=1e-4)
        assert s.rho_star_r == pytest.approx(0.26557, abs=1e-4)

    def test_123_problem(self):
        # Toro test 2: double rarefaction, near-vacuum star region.
        s = exact_riemann(1.0, -2.0, 0.4, 1.0, 2.0, 0.4)
        assert s.p_star == pytest.approx(0.00189, abs=2e-4)
        assert s.u_star == pytest.approx(0.0, abs=1e-6)

    def test_strong_shock(self):
        # Toro test 3: left blast, p* ~ 460.894.
        s = exact_riemann(1.0, 0.0, 1000.0, 1.0, 0.0, 0.01)
        assert s.p_star == pytest.approx(460.894, rel=1e-3)
        assert s.u_star == pytest.approx(19.5975, rel=1e-3)

    def test_symmetric_collision(self):
        s = exact_riemann(1.0, 2.0, 1.0, 1.0, -2.0, 1.0)
        assert s.u_star == pytest.approx(0.0, abs=1e-10)
        assert s.rho_star_l == pytest.approx(s.rho_star_r, rel=1e-10)
        assert s.p_star > 1.0  # compression

    def test_trivial_contact(self):
        # Identical pressure/velocity, different density: pure contact.
        s = exact_riemann(1.0, 0.5, 1.0, 0.25, 0.5, 1.0)
        assert s.p_star == pytest.approx(1.0, rel=1e-10)
        assert s.u_star == pytest.approx(0.5, rel=1e-10)

    def test_vacuum_rejected(self):
        with pytest.raises(ValueError, match="vacuum"):
            exact_riemann(1.0, -10.0, 0.01, 1.0, 10.0, 0.01)

    def test_invalid_state_rejected(self):
        with pytest.raises(ValueError):
            exact_riemann(-1.0, 0.0, 1.0, 1.0, 0.0, 1.0)


class TestSampling:
    def test_sod_regions(self):
        x = np.linspace(0, 1, 1001)
        rho, u, p = sod_solution(x, 0.2)
        # Undisturbed states far left/right.
        assert rho[0] == pytest.approx(1.0)
        assert rho[-1] == pytest.approx(0.125)
        # Star states between contact (x~0.685) and shock (x~0.850).
        mid = (x > 0.70) & (x < 0.84)
        np.testing.assert_allclose(rho[mid], 0.26557, rtol=1e-3)
        np.testing.assert_allclose(p[mid], 0.30313, rtol=1e-3)
        # The rarefaction fan is smooth and monotone.
        fan = (x > 0.27) & (x < 0.48)
        assert np.all(np.diff(rho[fan]) < 0)

    def test_t0_is_initial_condition(self):
        x = np.array([0.2, 0.8])
        rho, u, p = sod_solution(x, 0.0)
        np.testing.assert_allclose(rho, [1.0, 0.125])
        np.testing.assert_allclose(u, 0.0)

    def test_self_similarity(self):
        x = np.linspace(0, 1, 101)
        r1 = sod_solution(x, 0.1)[0]
        # Doubling both (x - x0) and t gives the same solution.
        x2 = 0.5 + 2 * (x - 0.5)
        r2 = sod_solution(x2, 0.2)[0]
        np.testing.assert_allclose(r1, r2, rtol=1e-12)

    def test_shock_satisfies_rankine_hugoniot(self):
        rho_l, u_l, p_l = 1.0, 0.0, 1000.0
        rho_r, u_r, p_r = 1.0, 0.0, 0.01
        gamma = 1.4
        star = exact_riemann(rho_l, u_l, p_l, rho_r, u_r, p_r, gamma)
        # Right shock speed from mass conservation across the jump.
        s = (star.rho_star_r * star.u_star - rho_r * u_r) / (
            star.rho_star_r - rho_r
        )
        # Momentum flux continuity across the shock.
        left_flux = star.rho_star_r * star.u_star * (star.u_star - s) + star.p_star
        right_flux = rho_r * u_r * (u_r - s) + p_r
        assert left_flux == pytest.approx(right_flux, rel=1e-6)


class TestHLLCFlux:
    def setup_method(self):
        self.scheme = EulerScheme(1, 1.4, riemann="hllc")

    def test_consistency_with_physical_flux(self):
        # Identical left/right states: the numerical flux is the flux.
        w = np.array([[1.0], [0.5], [2.0]])
        f = hllc(self.scheme, w, w, 0)
        np.testing.assert_allclose(f, self.scheme.flux(w, 0), rtol=1e-12)

    def test_supersonic_upwinding(self):
        wl = np.array([[1.0], [10.0], [1.0]])   # fast rightward flow
        wr = np.array([[0.5], [10.0], [0.5]])
        f = hllc(self.scheme, wl, wr, 0)
        np.testing.assert_allclose(f, self.scheme.flux(wl, 0), rtol=1e-12)

    def test_resolves_stationary_contact_exactly(self):
        # HLLC's defining property (HLL smears this).
        wl = np.array([[1.0], [0.0], [1.0]])
        wr = np.array([[0.25], [0.0], [1.0]])
        from repro.solvers.riemann import hll

        f_hllc = hllc(self.scheme, wl, wr, 0)
        f_hll = hll(self.scheme, wl, wr, 0)
        assert abs(f_hllc[0, 0]) < 1e-12            # no mass flux
        assert abs(f_hll[0, 0]) > 1e-3              # HLL leaks mass

    def test_sod_more_accurate_than_hll(self):
        def sod_err(riemann, n=200):
            g = 2
            sch = EulerScheme(1, 1.4, order=2, riemann=riemann, limiter="mc")
            xs = (np.arange(n) + 0.5) / n
            w = np.stack(
                [
                    np.where(xs < 0.5, 1.0, 0.125),
                    np.zeros(n),
                    np.where(xs < 0.5, 1.0, 0.1),
                ]
            )
            u = np.zeros((3, n + 4))
            u[:, 2:-2] = sch.prim_to_cons(w)

            def fill(a):
                a[:, :2] = a[:, 2:3]
                a[:, -2:] = a[:, -3:-2]

            t = 0.0
            while t < 0.2 - 1e-14:
                dt = min(sch.stable_dt(u, (1 / n,), 1), 0.2 - t)
                sch.step_midpoint(u, (1 / n,), dt, 2, fill)
                t += dt
            we = sch.cons_to_prim(u[:, 2:-2])
            rho_exact, _, _ = sod_solution(xs, 0.2)
            return float(np.abs(we[0] - rho_exact).mean())

        assert sod_err("hllc") < sod_err("hll") < sod_err("rusanov")

    def test_mhd_scheme_falls_back_to_hll(self):
        from repro.solvers import MHDScheme
        from repro.solvers.riemann import hll

        mhd = MHDScheme(1, riemann="hllc")
        w = np.zeros((8, 3))
        w[0], w[4] = 1.0, 1.0
        w[5] = 0.5
        wl, wr = w.copy(), w.copy()
        wr[0] = 0.5
        np.testing.assert_allclose(
            hllc(mhd, wl, wr, 0), hll(mhd, wl, wr, 0), rtol=1e-12
        )
