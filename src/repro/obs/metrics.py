"""Named run metrics: counters, gauges, and value summaries.

The hot paths of the whole stack — arena allocation
(:mod:`repro.core.arena`), the compiled ghost-plan cache
(:mod:`repro.core.ghost`), the serial driver (:mod:`repro.amr.driver`),
the emulated wire (:mod:`repro.parallel.emulator`), and fault recovery
(:mod:`repro.resilience.recovery`) — report into one process-global
:data:`METRICS` registry.  The registry is **disabled by default**: a
disabled call is one attribute load plus one branch, so instrumented
code costs effectively nothing unless a profiler (``repro profile``, a
test, a benchmark) switches it on.

Three instrument kinds, all keyed by dotted metric names (the catalog
lives in ``docs/observability.md``):

* **counter** — monotonically increasing count (``inc``): messages
  sent, arena grows, plan-cache hits;
* **gauge** — last-written value (``gauge``): arena capacity,
  occupancy fraction;
* **summary** — running count/sum/min/max of an observed value
  (``observe``): per-step dt, step wall time, recovery duration.
  Deliberately not a bucketed histogram: the four summary stats are
  what the report renders, and they need no configuration.

Metrics never touch simulation state, so an instrumented run is
bit-for-bit identical to an uninstrumented one (pinned by
``tests/test_obs.py``).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator

__all__ = ["MetricsRegistry", "Summary", "METRICS"]


@dataclass
class Summary:
    """Running count/sum/min/max of an observed value."""

    count: int = 0
    total: float = 0.0
    vmin: float = math.inf
    vmax: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Registry of named counters, gauges, and value summaries.

    Every mutator checks :attr:`enabled` first and returns immediately
    when the registry is off, so instrumentation left permanently in hot
    paths is near-free by default.
    """

    __slots__ = ("enabled", "counters", "gauges", "summaries")

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = enabled
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.summaries: Dict[str, Summary] = {}

    # -- mutators (no-ops while disabled) ------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        if not self.enabled:
            return
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the running summary ``name``."""
        if not self.enabled:
            return
        summary = self.summaries.get(name)
        if summary is None:
            summary = self.summaries[name] = Summary()
        summary.add(float(value))

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded value (the enabled flag is unchanged)."""
        self.counters.clear()
        self.gauges.clear()
        self.summaries.clear()

    @contextmanager
    def enabled_scope(self) -> Iterator["MetricsRegistry"]:
        """Enable the registry for the duration of a ``with`` block,
        restoring the previous enabled state afterwards."""
        prev = self.enabled
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = prev

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready copy of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "summaries": {k: s.as_dict() for k, s in self.summaries.items()},
        }

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"MetricsRegistry({state}, {len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.summaries)} summaries)"
        )


#: Process-global registry the built-in instrumentation reports into.
#: Disabled by default; ``repro profile`` (and tests) enable it.
METRICS = MetricsRegistry()
