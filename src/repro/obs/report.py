"""Render profiled runs and diff them against the benchmark trajectory.

Consumes the JSONL event stream a :class:`repro.obs.recorder.RunRecorder`
wrote (``repro profile`` produces one) and renders the human-readable
side of the observability layer:

* per-engine **phase breakdown** (self-time per phase, sorted, with
  fractions — the numbers every perf PR argues from);
* **top-k hottest blocks** (per-block wall time in the blocked engine,
  residency steps in the batched engine, where per-block time does not
  exist);
* **engine-vs-engine comparison** when a stream profiles both engines;
* :func:`compare_to_bench` — diff a profiled run against the committed
  ``BENCH_*.json`` trajectory (see :mod:`repro.util.benchio`) and flag
  apparent regressions.

Everything here is read-only over dicts, so the renderer is equally
usable on a live run's events and on a stream read back from disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.util.benchio import repo_root

__all__ = [
    "phase_breakdown",
    "top_blocks_lines",
    "engine_comparison",
    "render_report",
    "compare_to_bench",
    "load_bench_record",
]


def _events_of(events: Sequence[Dict[str, Any]], kind: str) -> List[Dict[str, Any]]:
    return [e for e in events if e.get("kind") == kind]


def phase_breakdown(phases: Dict[str, float]) -> str:
    """Phase self-time table, largest first, with fractions."""
    total = sum(phases.values())
    lines = []
    for name in sorted(phases, key=lambda n: -phases[n]):
        frac = phases[name] / total if total > 0 else 0.0
        lines.append(
            f"  {name:24s} {phases[name]:10.4f}s ({100 * frac:5.1f}%)"
        )
    lines.append(f"  {'total (timed phases)':24s} {total:10.4f}s")
    return "\n".join(lines)


def top_blocks_lines(blocks: List[Dict[str, Any]], k: int) -> List[str]:
    """The top-k hottest blocks of one profile event.

    Each entry carries ``id`` and ``level`` plus either ``time_s``
    (blocked engine: measured per-block wall time) or ``steps``
    (batched engine: residency — how many steps the block existed,
    which is the cost proxy when per-block time is not separable).
    """
    if not blocks:
        return ["  (no per-block data)"]
    by_time = blocks[0].get("time_s") is not None
    key = "time_s" if by_time else "steps"
    ranked = sorted(blocks, key=lambda b: -float(b.get(key, 0.0)))[:k]
    unit = "s" if by_time else " steps"
    lines = []
    for b in ranked:
        value = b.get(key, 0.0)
        shown = f"{value:.4f}{unit}" if by_time else f"{int(value)}{unit}"
        lines.append(f"  L{b.get('level', '?')} {b.get('id', '?'):<28} {shown}")
    return lines


def engine_comparison(profiles: List[Dict[str, Any]]) -> str:
    """One-line-per-engine table plus the speedup when both ran."""
    lines = [f"  {'engine':>8} {'wall s':>10} {'us/cell':>10} {'Mcells/s':>10}"]
    for p in profiles:
        us = p.get("us_per_cell")
        rate = 1.0 / us if us else 0.0
        lines.append(
            f"  {p['engine']:>8} {p['wall_s']:10.3f} "
            f"{us if us is not None else float('nan'):10.3f} {rate:10.2f}"
        )
    by_engine = {p["engine"]: p for p in profiles}
    if "blocked" in by_engine and "batched" in by_engine:
        a = by_engine["blocked"].get("us_per_cell")
        b = by_engine["batched"].get("us_per_cell")
        if a and b:
            lines.append(f"  batched speedup: {a / b:.2f}x")
    return "\n".join(lines)


def render_report(events: Sequence[Dict[str, Any]], *, top_k: int = 5) -> str:
    """Full human-readable report of one recorded run."""
    out: List[str] = []
    metas = _events_of(events, "meta")
    if metas:
        meta = metas[0]
        extra = {
            k: v for k, v in meta.items()
            if k not in ("v", "t", "kind", "source")
        }
        desc = ", ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        out.append(f"== {meta['source']} run" + (f" ({desc})" if desc else "") + " ==")

    steps = _events_of(events, "step")
    if steps:
        dts = [float(e["dt"]) for e in steps]
        out.append(
            f"\nsteps: {len(steps)}   "
            f"dt min/mean/max: {min(dts):.3e} / "
            f"{sum(dts) / len(dts):.3e} / {max(dts):.3e}   "
            f"final blocks: {steps[-1]['n_blocks']}, "
            f"cells: {steps[-1]['n_cells']}"
        )
    adapts = _events_of(events, "adapt")
    if adapts:
        refined = sum(int(e["refined"]) for e in adapts)
        coarsened = sum(int(e["coarsened"]) for e in adapts)
        out.append(
            f"adaptations: {len(adapts)} "
            f"(+{refined} refined, -{coarsened} coarsened)"
        )

    profiles = _events_of(events, "profile")
    for p in profiles:
        out.append(f"\n-- engine: {p['engine']} --")
        out.append("phase breakdown (self time):")
        out.append(phase_breakdown(dict(p["phases"])))
        if p.get("mflops") is not None:
            out.append(f"estimated useful rate: {p['mflops']:.0f} MFLOP/s")
        blocks = p.get("blocks")
        if blocks is not None:
            out.append(f"hottest blocks (top {top_k}):")
            out.extend(top_blocks_lines(blocks, top_k))

    if profiles:
        out.append("\nengine comparison:")
        out.append(engine_comparison(profiles))

    exchanges = _events_of(events, "exchange")
    for ex in exchanges:
        line = (
            f"\nwire traffic: {ex['n_messages']} messages, "
            f"{ex['n_bytes'] / 1024:.0f} KB"
        )
        if ex.get("n_retries"):
            line += f", {ex['n_retries']} retransmissions"
        if ex.get("n_partner_bytes"):
            line += (
                f", partner redundancy {ex['n_partner_bytes'] / 1024:.0f} KB"
            )
        out.append(line)

    recoveries = _events_of(events, "recovery")
    for rec in recoveries:
        out.append(
            f"recovery at step {rec['step']}: {rec['fault']} "
            f"[{rec['strategy']}] replayed {rec['replayed_steps']} step(s)"
            + (" (escalated)" if rec.get("escalated") else "")
        )

    if not out:
        return "(no events)"
    return "\n".join(out)


def load_bench_record(
    name: str = "batched_engine", directory: Optional[Union[str, Path]] = None
) -> Optional[Dict[str, Any]]:
    """The committed ``BENCH_<name>.json`` record, or None if absent."""
    path = Path(directory or repo_root()) / f"BENCH_{name}.json"
    if not path.exists():
        return None
    with path.open() as f:
        record = json.load(f)
    return record if isinstance(record, dict) else None


def compare_to_bench(
    profiles: Sequence[Dict[str, Any]],
    record: Optional[Dict[str, Any]] = None,
    *,
    name: str = "batched_engine",
    directory: Optional[Union[str, Path]] = None,
    rel_tol: float = 0.5,
) -> List[str]:
    """Diff profiled per-engine numbers against the committed benchmark
    trajectory; returns human-readable regression flags (empty = within
    the trajectory, or nothing comparable).

    ``profiles`` are ``profile`` events (or equivalent dicts) carrying
    ``engine``, ``us_per_cell``, and optionally ``ndim``, ``workload``
    and ``kernel_backend``.  Each kernel backend is diffed independently
    against the record's same-backend cases (entries without a
    ``kernel_backend`` tag — older records and profiles — are treated as
    the numpy backend), so a numba run is never compared against numpy
    timings or vice versa.  Absolute ``us_per_cell`` is only meaningful
    between runs of the *same* workload, so that check applies only to
    profiles whose ``workload`` string matches the record's: the
    reference is the best matching-ndim case, and a run is flagged when
    slower than it by more than ``rel_tol`` (relative).  The
    engine-relative check needs no matching workload: when both engines
    were profiled with the same backend, the observed batched speedup
    is compared against the record's worst (smallest) same-backend case
    speedup and flagged when it falls more than ``rel_tol`` below it.
    """
    if record is None:
        record = load_bench_record(name, directory)
    if record is None or not record.get("cases"):
        return []

    def backend_of(d: Dict[str, Any]) -> str:
        return str(d.get("kernel_backend") or "numpy")

    flags: List[str] = []
    by_key: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for p in profiles:
        engine = p.get("engine")
        if engine is not None and p.get("us_per_cell") is not None:
            by_key[(str(engine), backend_of(p))] = dict(p)
    cases = [c for c in record["cases"] if isinstance(c, dict)]

    for (engine, backend), prof in sorted(by_key.items()):
        if prof.get("workload") != record.get("workload"):
            continue
        # keep numpy messages in the historical single-backend format
        label = engine if backend == "numpy" else f"{engine}[{backend}]"
        ndim = prof.get("ndim")
        matching = [
            c for c in cases
            if backend_of(c) == backend
            and (ndim is None or c.get("ndim") == ndim)
        ]
        refs = [
            float(c[engine]["us_per_cell"])
            for c in matching
            if isinstance(c.get(engine), dict)
            and c[engine].get("us_per_cell") is not None
        ]
        if not refs:
            continue
        best = min(refs)
        ours = float(prof["us_per_cell"])
        if ours > best * (1.0 + rel_tol):
            flags.append(
                f"{label}: {ours:.3f} us/cell is "
                f"{ours / best:.2f}x the best committed case "
                f"({best:.3f} us/cell in {record.get('name', name)})"
            )

    backends = {backend for _, backend in by_key}
    for backend in sorted(backends):
        blocked = by_key.get(("blocked", backend))
        batched = by_key.get(("batched", backend))
        if blocked is None or batched is None:
            continue
        a = float(blocked["us_per_cell"])
        b = float(batched["us_per_cell"])
        speedups = [
            float(c["speedup"])
            for c in cases
            if c.get("speedup") is not None and backend_of(c) == backend
        ]
        if b > 0 and speedups:
            observed = a / b
            floor = min(speedups) * (1.0 - rel_tol)
            label = "batched" if backend == "numpy" else f"batched[{backend}]"
            if observed < floor:
                flags.append(
                    f"{label} speedup {observed:.2f}x fell below the "
                    f"committed trajectory floor "
                    f"({min(speedups):.2f}x worst case)"
                )
    return flags
