"""Structured JSONL run-event stream.

A :class:`RunRecorder` appends one JSON object per line to a file (or
any text stream): the machine-readable twin of the driver's progress
printout.  Every event carries the envelope

``{"v": <schema>, "t": <monotonic seconds>, "kind": <event kind>, ...}``

plus the kind's required payload (see :data:`EVENT_SCHEMA`).  Timestamps
are read through :func:`repro.util.timing.wall_clock` — the repo's only
sanctioned time source for deterministic-replay code — so recording a
sanitized, race-checked, or fault-recovered run never perturbs it and a
replay harness can stub one function to script time.

The stream is append-only and flushed per event, so a crashed run still
leaves a parseable prefix.  :func:`read_events` and
:func:`validate_events` are the consumer half: ``repro report`` and the
CI ``obs-smoke`` job read a stream back and check it against the schema
before rendering.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, FrozenSet, IO, List, Optional, Union

from repro.util.timing import wall_clock

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_SCHEMA",
    "RunRecorder",
    "read_events",
    "validate_events",
]

#: Version of the event envelope; bump on incompatible changes.
SCHEMA_VERSION = 1

#: Required payload fields per event kind (the envelope fields ``v``,
#: ``t``, ``kind`` are implicit).  Extra fields are always allowed —
#: consumers read only the keys they know, like the BENCH_*.json
#: records.
EVENT_SCHEMA: Dict[str, FrozenSet[str]] = {
    # run identification: what produced this stream
    "meta": frozenset({"source"}),
    # one completed driver/machine step
    "step": frozenset({"step", "t_sim", "dt", "n_blocks", "n_cells"}),
    # one adaptation that changed the forest
    "adapt": frozenset({"step", "refined", "coarsened"}),
    # wire-traffic totals of an emulated run
    "exchange": frozenset({"n_messages", "n_bytes"}),
    # one fault recovery (localized or global rollback)
    "recovery": frozenset({"step", "fault", "strategy", "replayed_steps"}),
    # one scrub-detected silent-data-corruption incident and the
    # self-healing action taken (mirror-repair | rewind | rollback)
    "corruption": frozenset({"step", "regions", "action"}),
    # one supervision action of the real-process backend (rank death,
    # respawn, degradation); the event name carries its own fields
    "supervisor": frozenset({"event"}),
    # one engine's profiled run: phase breakdown + headline numbers
    "profile": frozenset({"engine", "wall_s", "phases"}),
    # cross-engine comparison written once per profiled run
    "summary": frozenset({"engines"}),
}


class RunRecorder:
    """Append structured run events to a JSONL file or stream.

    Parameters
    ----------
    target:
        Path to create/truncate, or an open text stream to append to
        (the stream is then *not* closed by :meth:`close`).
    clock:
        Timestamp source; defaults to
        :func:`repro.util.timing.wall_clock`.  Tests inject a scripted
        clock to make streams reproducible.
    """

    def __init__(
        self,
        target: Union[str, Path, IO[str]],
        *,
        clock: Callable[[], float] = wall_clock,
    ) -> None:
        self._clock = clock
        self.n_events = 0
        self._stream: Optional[IO[str]]
        if isinstance(target, (str, Path)):
            self.path: Optional[Path] = Path(target)
            self._stream = self.path.open("w")
            self._owns_stream = True
        else:
            self.path = None
            self._stream = target
            self._owns_stream = False

    def emit(self, kind: str, **payload: Any) -> Dict[str, Any]:
        """Write one event; returns the full event dict.

        Raises ``ValueError`` for an unknown kind or missing required
        fields — a recorder bug should fail loudly at the write site,
        not show up later as an invalid stream.
        """
        required = EVENT_SCHEMA.get(kind)
        if required is None:
            raise ValueError(
                f"unknown event kind {kind!r}; known: "
                f"{', '.join(sorted(EVENT_SCHEMA))}"
            )
        missing = required - payload.keys()
        if missing:
            raise ValueError(
                f"event kind {kind!r} requires field(s) "
                f"{', '.join(sorted(missing))}"
            )
        if self._stream is None:
            raise ValueError("recorder is closed")
        event: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "t": self._clock(),
            "kind": kind,
        }
        event.update(payload)
        self._stream.write(json.dumps(event, sort_keys=True) + "\n")
        self._stream.flush()
        self.n_events += 1
        return event

    def close(self) -> None:
        """Close an owned file (idempotent; streams are left open)."""
        if self._stream is not None and self._owns_stream:
            self._stream.close()
        self._stream = None

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL event stream back into a list of event dicts.

    Raises ``ValueError`` on a line that is not a JSON object (a
    truncated final line from a crashed run is reported with its line
    number).
    """
    events: List[Dict[str, Any]] = []
    with Path(path).open() as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc.msg})"
                ) from exc
            if not isinstance(obj, dict):
                raise ValueError(f"{path}:{lineno}: event is not an object")
            events.append(obj)
    return events


def validate_events(events: List[Dict[str, Any]]) -> List[str]:
    """Check an event stream against the schema.

    Returns a list of human-readable problems (empty for a valid
    stream): envelope fields present, schema version known, event kinds
    known, required payload fields present, and timestamps
    non-decreasing (they come from one monotonic clock).
    """
    problems: List[str] = []
    last_t: Optional[float] = None
    for i, ev in enumerate(events):
        where = f"event {i}"
        for key in ("v", "t", "kind"):
            if key not in ev:
                problems.append(f"{where}: missing envelope field {key!r}")
        if ev.get("v") is not None and ev["v"] != SCHEMA_VERSION:
            problems.append(
                f"{where}: schema version {ev['v']!r} != {SCHEMA_VERSION}"
            )
        kind = ev.get("kind")
        if kind is not None:
            required = EVENT_SCHEMA.get(kind)
            if required is None:
                problems.append(f"{where}: unknown kind {kind!r}")
            else:
                missing = required - ev.keys()
                if missing:
                    problems.append(
                        f"{where} ({kind}): missing field(s) "
                        f"{', '.join(sorted(missing))}"
                    )
        t = ev.get("t")
        if isinstance(t, (int, float)):
            if last_t is not None and t < last_t:
                problems.append(
                    f"{where}: timestamp {t} decreases (previous {last_t})"
                )
            last_t = float(t)
        elif t is not None:
            problems.append(f"{where}: timestamp is not a number")
    return problems
