"""Run observability: metrics registry, JSONL event stream, reports.

The unifying layer over the stack's previously disconnected
instrumentation islands (``PhaseTimer``, ``ExchangeStats``, the tracing
machine, ``BENCH_*.json``):

* :mod:`repro.obs.metrics` — process-global :data:`METRICS` registry of
  counters/gauges/summaries wired into the hot paths, near-free while
  disabled (the default);
* :mod:`repro.obs.recorder` — :class:`RunRecorder`, a structured JSONL
  event stream with monotonic ``wall_clock()`` timestamps, plus the
  schema and its validator;
* :mod:`repro.obs.report` — renderers for ``repro report`` and
  :func:`compare_to_bench`, which diffs a profiled run against the
  committed benchmark trajectory.

See ``docs/observability.md`` for the metric catalog and the event
schema.
"""

from repro.obs.metrics import METRICS, MetricsRegistry, Summary
from repro.obs.recorder import (
    EVENT_SCHEMA,
    SCHEMA_VERSION,
    RunRecorder,
    read_events,
    validate_events,
)
from repro.obs.report import (
    compare_to_bench,
    engine_comparison,
    load_bench_record,
    phase_breakdown,
    render_report,
    top_blocks_lines,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "Summary",
    "EVENT_SCHEMA",
    "SCHEMA_VERSION",
    "RunRecorder",
    "read_events",
    "validate_events",
    "compare_to_bench",
    "engine_comparison",
    "load_bench_record",
    "phase_breakdown",
    "render_report",
    "top_blocks_lines",
]
