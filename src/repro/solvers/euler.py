"""Compressible Euler scheme (gas dynamics).

A Godunov-type finite-volume scheme for the Euler equations in 1/2/3
dimensions: the intermediate-complexity workload between advection and
the paper's production ideal-MHD system, and the system solved by the
De Zeeuw & Powell adaptive Cartesian-grid Euler solver that preceded it.
Supports an optional uniform gravitational acceleration (buoyancy-driven
problems such as Rayleigh–Taylor).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.solvers.scheme import FVScheme
from repro.solvers.state import DEFAULT_GAMMA, EulerLayout

__all__ = ["EulerScheme"]


class EulerScheme(FVScheme):
    """Finite-volume compressible Euler equations.

    Parameters
    ----------
    ndim:
        Grid (and velocity) dimension, 1–3.
    gamma:
        Ratio of specific heats.
    gravity:
        Optional uniform acceleration vector (length ``ndim``); adds the
        source ``d(rho u)/dt += rho g``, ``dE/dt += rho u·g``.
    rho_floor / p_floor:
        Optional positivity floors (same contract as
        :class:`repro.solvers.mhd.MHDScheme`): strong rarefactions and
        under-resolved blast interiors can drive density or pressure
        negative; the floors clip them up after every update stage,
        rebuilding the total energy consistently.  ``None`` (default)
        disables the fix-up.
    """

    def __init__(
        self,
        ndim: int,
        gamma: float = DEFAULT_GAMMA,
        *,
        gravity: Optional[Sequence[float]] = None,
        rho_floor: Optional[float] = None,
        p_floor: Optional[float] = None,
        **kw,
    ) -> None:
        super().__init__(**kw)
        if not 1 <= ndim <= 3:
            raise ValueError(f"ndim must be 1..3, got {ndim}")
        if rho_floor is not None and rho_floor <= 0:
            raise ValueError("rho_floor must be positive")
        if p_floor is not None and p_floor <= 0:
            raise ValueError("p_floor must be positive")
        self.layout = EulerLayout(ndim, gamma)
        self.ndim = ndim
        self.gamma = gamma
        self.rho_floor = rho_floor
        self.p_floor = p_floor
        if gravity is not None:
            gravity = tuple(float(g) for g in gravity)
            if len(gravity) != ndim:
                raise ValueError(
                    f"gravity needs {ndim} components, got {len(gravity)}"
                )
            if all(g == 0.0 for g in gravity):
                gravity = None
        self.gravity = gravity
        self.nvar = self.layout.nvar

    def source(self, u_interior, w, dx, g):
        # Elementwise in the conserved interior (var axis first, any
        # trailing layout — per-block or var-major batched stack).
        if self.gravity is None:
            return None
        src = np.zeros_like(u_interior)
        rho = u_interior[0]
        for a, grav in enumerate(self.gravity):
            if grav == 0.0:
                continue
            src[1 + a] += rho * grav
            src[self.layout.i_energy] += u_interior[1 + a] * grav
        return src

    def apply_floors(self, u: np.ndarray) -> None:
        """Clip density/pressure up to the configured floors, in place.

        Velocity is preserved; total energy is rebuilt consistently.
        No-op when no floors are configured.
        """
        if self.rho_floor is None and self.p_floor is None:
            return
        w = self.layout.cons_to_prim(u)
        if self.rho_floor is not None:
            np.maximum(w[0], self.rho_floor, out=w[0])
        if self.p_floor is not None:
            np.maximum(w[self.nvar - 1], self.p_floor, out=w[self.nvar - 1])
        u[...] = self.layout.prim_to_cons(w)

    @property
    def positivity_indices(self):
        # Density and pressure (primitive layout [rho, u..., p]); the
        # matching conserved slots (rho, E) must be positive too.
        return (0, self.nvar - 1)

    def cons_to_prim(self, u: np.ndarray) -> np.ndarray:
        return self.layout.cons_to_prim(u)

    def prim_to_cons(self, w: np.ndarray) -> np.ndarray:
        return self.layout.prim_to_cons(w)

    def flux(self, w: np.ndarray, axis: int) -> np.ndarray:
        return self.layout.flux(w, axis)

    def normal_velocity(self, w: np.ndarray, axis: int) -> np.ndarray:
        return w[1 + axis]

    def char_speed(self, w: np.ndarray, axis: int) -> np.ndarray:
        return self.layout.sound_speed(w)
