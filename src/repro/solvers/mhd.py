"""Ideal magnetohydrodynamics — the paper's production system.

The 8-variable ideal-MHD equations solved with a Godunov-type
finite-volume scheme and Powell's 8-wave divergence control: the
non-conservative source term ``-(div B) * (0, B, u·B, u)`` advects
magnetic-divergence errors with the flow instead of letting them
accumulate — the method used by the authors' solar-wind / CME / comet
simulations on the Cray T3D.

The per-cell arithmetic of this scheme (reconstruction in 8 variables,
two flux evaluations per face per stage, fast-magnetosonic dissipation)
is the high-FLOP workload whose per-cell time the paper's Figure 5
plots against block size.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.solvers.scheme import FVScheme
from repro.solvers.state import DEFAULT_GAMMA, MHDLayout

__all__ = ["MHDScheme"]


class MHDScheme(FVScheme):
    """Finite-volume ideal MHD with the Powell 8-wave source term.

    Parameters
    ----------
    ndim:
        Grid dimension 1–3; velocity and magnetic field always carry
        three components (2.5-D convention).
    gamma:
        Ratio of specific heats.
    powell_source:
        Enable the 8-wave divergence source (default True).
    """

    def __init__(
        self,
        ndim: int,
        gamma: float = DEFAULT_GAMMA,
        *,
        powell_source: bool = True,
        rho_floor: Optional[float] = None,
        p_floor: Optional[float] = None,
        **kw,
    ) -> None:
        super().__init__(**kw)
        if not 1 <= ndim <= 3:
            raise ValueError(f"ndim must be 1..3, got {ndim}")
        self.layout = MHDLayout(gamma)
        self.ndim = ndim
        self.gamma = gamma
        self.powell_source = powell_source
        # Problem-level floors (production MHD practice): strong
        # rarefactions can drive density toward vacuum, and the Alfvén
        # speed B/sqrt(rho) then blows up the CFL step.  A physical
        # density floor bounds it; the pressure floor keeps the EOS sane
        # behind strong shocks.  None disables the fix-up (defaults).
        if rho_floor is not None and rho_floor <= 0:
            raise ValueError("rho_floor must be positive")
        if p_floor is not None and p_floor <= 0:
            raise ValueError("p_floor must be positive")
        self.rho_floor = rho_floor
        self.p_floor = p_floor
        self.nvar = self.layout.nvar

    def apply_floors(self, u: np.ndarray) -> None:
        """Clip density/pressure up to the configured floors, in place.

        Velocity and magnetic field are preserved; energy is rebuilt
        consistently.  No-op when no floors are configured.
        """
        if self.rho_floor is None and self.p_floor is None:
            return
        w = self.layout.cons_to_prim(u)
        if self.rho_floor is not None:
            np.maximum(w[0], self.rho_floor, out=w[0])
        if self.p_floor is not None:
            np.maximum(w[4], self.p_floor, out=w[4])
        u[...] = self.layout.prim_to_cons(w)

    @property
    def positivity_indices(self):
        # Density and pressure (primitive layout [rho, u, p, B]); the
        # matching conserved slots (rho, E) must be positive too.
        return (0, 4)

    def cons_to_prim(self, u: np.ndarray) -> np.ndarray:
        return self.layout.cons_to_prim(u)

    def prim_to_cons(self, w: np.ndarray) -> np.ndarray:
        return self.layout.prim_to_cons(w)

    def flux(self, w: np.ndarray, axis: int) -> np.ndarray:
        return self.layout.flux(w, axis)

    def normal_velocity(self, w: np.ndarray, axis: int) -> np.ndarray:
        return w[1 + axis]

    def char_speed(self, w: np.ndarray, axis: int) -> np.ndarray:
        return self.layout.fast_speed(w, axis)

    def source(
        self,
        u_interior: np.ndarray,
        w: np.ndarray,
        dx: Sequence[float],
        g: int,
    ) -> Optional[np.ndarray]:
        """Powell 8-wave source: ``dU/dt -= (div B) (0, B, u·B, u)``.

        ``div B`` is the central-difference cell divergence; the source
        vector uses the cell's own velocity and field.  Evaluated on the
        interior only.
        """
        if not self.powell_source:
            return None
        # Spatial axes are the last ``self.ndim`` of ``w`` (the leading
        # axes are the variable axis plus, when batched, the block axis),
        # so per-block arrays and var-major stacks share this code.
        ndim = self.ndim
        lead = w.ndim - ndim  # 1 per-block, 2 batched
        shape = w.shape[lead:]
        interior = tuple(slice(g, s - g) for s in shape)
        batch = (slice(None),) * (lead - 1)
        div = np.zeros(w.shape[1:lead] + tuple(s - 2 * g for s in shape))
        for a in range(ndim):
            plus = list(batch + interior)
            minus = list(batch + interior)
            plus[lead - 1 + a] = slice(g + 1, shape[a] - g + 1)
            minus[lead - 1 + a] = slice(g - 1, shape[a] - g - 1)
            div += (w[5 + a][tuple(plus)] - w[5 + a][tuple(minus)]) / (2.0 * dx[a])
        wi = w[(slice(None),) + batch + interior]
        src = np.zeros_like(wi)
        udotb = wi[1] * wi[5] + wi[2] * wi[6] + wi[3] * wi[7]
        for c in range(3):
            src[1 + c] = -div * wi[5 + c]   # momentum: -divB * B
            src[5 + c] = -div * wi[1 + c]   # induction: -divB * u
        src[4] = -div * udotb               # energy:   -divB * (u . B)
        return src

    def div_b_interior(self, u: np.ndarray, dx: Sequence[float], g: int) -> np.ndarray:
        """Diagnostic: central-difference div B over the interior cells."""
        return self.layout.div_b(u, dx, u.ndim - 1, g)
