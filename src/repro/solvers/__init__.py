"""Finite-volume solver substrate: advection, Euler, ideal MHD."""

from repro.solvers.advection import AdvectionScheme
from repro.solvers.burgers import BurgersScheme
from repro.solvers.euler import EulerScheme
from repro.solvers.exact import exact_riemann, sample_riemann, sod_solution
from repro.solvers.flops import (
    KernelFlops,
    advection_flops_per_cell,
    euler_flops_per_cell,
    mhd_flops_per_cell,
)
from repro.solvers.limiters import LIMITERS, get_limiter, mc, minmod, superbee, van_leer
from repro.solvers.mhd import MHDScheme
from repro.solvers.riemann import RIEMANN_SOLVERS, get_riemann, hll, hllc, rusanov
from repro.solvers.scheme import FVScheme
from repro.solvers.shallow_water import ShallowWaterScheme
from repro.solvers.state import DEFAULT_GAMMA, EulerLayout, MHDLayout
from repro.solvers.timestep import stable_dt
from repro.solvers.uniform import UniformGrid

__all__ = [
    "AdvectionScheme",
    "BurgersScheme",
    "EulerScheme",
    "MHDScheme",
    "ShallowWaterScheme",
    "exact_riemann",
    "sample_riemann",
    "sod_solution",
    "hllc",
    "FVScheme",
    "EulerLayout",
    "MHDLayout",
    "DEFAULT_GAMMA",
    "KernelFlops",
    "advection_flops_per_cell",
    "euler_flops_per_cell",
    "mhd_flops_per_cell",
    "LIMITERS",
    "get_limiter",
    "mc",
    "minmod",
    "superbee",
    "van_leer",
    "RIEMANN_SOLVERS",
    "get_riemann",
    "hll",
    "rusanov",
    "stable_dt",
    "UniformGrid",
]
