"""Single-array uniform-grid solver — the no-AMR reference.

A convenience wrapper running any :class:`~repro.solvers.scheme.FVScheme`
on one padded numpy array with periodic or outflow boundaries: the
baseline every AMR result is compared against (and the configuration the
paper's Figure 5 times, one block = one grid).

Unlike the forest driver there is no adaptation, no exchange and no
block bookkeeping — just the kernel.  Used by the verification tests,
the convergence studies, and anyone wanting an honest uniform-grid
control run.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.solvers.scheme import FVScheme
from repro.util.geometry import Box

__all__ = ["UniformGrid"]


class UniformGrid:
    """A scheme running on one uniform padded array.

    Parameters
    ----------
    scheme:
        Any finite-volume scheme.
    domain:
        Physical box.
    shape:
        Cells per axis.
    boundary:
        ``"periodic"`` or ``"outflow"`` (zero-gradient), applied on every
        face.
    """

    def __init__(
        self,
        scheme: FVScheme,
        domain: Box,
        shape: Sequence[int],
        *,
        boundary: str = "periodic",
    ) -> None:
        if boundary not in ("periodic", "outflow"):
            raise ValueError(f"unknown boundary {boundary!r}")
        if len(shape) != domain.ndim:
            raise ValueError("shape dimension mismatch")
        self.scheme = scheme
        self.domain = domain
        self.shape = tuple(int(n) for n in shape)
        self.boundary = boundary
        self.g = scheme.required_ghost
        padded = tuple(n + 2 * self.g for n in self.shape)
        self.u = np.zeros((scheme.nvar,) + padded)
        self.dx = domain.cell_widths(self.shape)
        self.time = 0.0
        self.step_count = 0

    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return self.domain.ndim

    @property
    def interior(self) -> np.ndarray:
        sl = (slice(None),) + tuple(slice(self.g, -self.g) for _ in self.shape)
        return self.u[sl]

    def meshgrid(self) -> Tuple[np.ndarray, ...]:
        return self.domain.meshgrid(self.shape)

    def set_primitive(self, fn: Callable[..., np.ndarray]) -> None:
        """Initialize from a primitive-variable function of the meshgrid."""
        w = fn(*self.meshgrid())
        self.interior[...] = self.scheme.prim_to_cons(np.asarray(w))

    # ------------------------------------------------------------------

    def fill_ghosts(self, arr: Optional[np.ndarray] = None) -> None:
        u = self.u if arr is None else arr
        g = self.g
        for axis in range(self.ndim):
            lo = [slice(None)] * u.ndim
            hi = [slice(None)] * u.ndim
            src_lo = [slice(None)] * u.ndim
            src_hi = [slice(None)] * u.ndim
            ax = 1 + axis
            lo[ax] = slice(0, g)
            hi[ax] = slice(u.shape[ax] - g, u.shape[ax])
            if self.boundary == "periodic":
                src_lo[ax] = slice(u.shape[ax] - 2 * g, u.shape[ax] - g)
                src_hi[ax] = slice(g, 2 * g)
            else:
                src_lo[ax] = slice(g, g + 1)
                src_hi[ax] = slice(u.shape[ax] - g - 1, u.shape[ax] - g)
            u[tuple(lo)] = u[tuple(src_lo)]
            u[tuple(hi)] = u[tuple(src_hi)]

    def stable_dt(self) -> float:
        return self.scheme.stable_dt(self.u, self.dx, self.ndim)

    def advance(self, dt: float) -> None:
        """One full (midpoint for order 2) step with ghost refreshes."""
        self.scheme.step_midpoint(self.u, self.dx, dt, self.g, self.fill_ghosts)
        self.time += dt
        self.step_count += 1

    def run(
        self, t_end: float, *, dt_max: float = 1e30, max_steps: int = 10**6
    ) -> None:
        """Advance to ``t_end`` at the CFL-limited step."""
        while self.time < t_end - 1e-14 and self.step_count < max_steps:
            dt = min(self.stable_dt(), dt_max, t_end - self.time)
            self.advance(dt)

    # ------------------------------------------------------------------

    def primitive(self) -> np.ndarray:
        return self.scheme.cons_to_prim(self.interior)

    def total(self, var: int = 0) -> float:
        cell_vol = 1.0
        for w in self.dx:
            cell_vol *= w
        return float(self.interior[var].sum()) * cell_vol

    def error_vs(self, exact: Callable[..., np.ndarray], var: int = 0) -> float:
        """Volume-weighted L1 error of one variable."""
        diff = np.abs(self.interior[var] - exact(*self.meshgrid()))
        return float(diff.mean())
