"""Approximate Riemann solvers (numerical face fluxes).

Both solvers operate on arrays of left/right *primitive* face states of
shape ``(nvar, n_faces, ...)`` and delegate the physics (flux function,
characteristic speeds, variable conversion) to the scheme object, so the
same code serves advection, Euler and MHD.

* :func:`rusanov` — local Lax–Friedrichs: maximally robust, the default
  for the MHD runs (matching the diffusive Riemann solvers the original
  BATS-R-US era codes used for production robustness);
* :func:`hll` — two-wave HLL: sharper contact/shock resolution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.solvers.scheme import FVScheme

__all__ = ["rusanov", "hll", "get_riemann", "RIEMANN_SOLVERS"]


def rusanov(scheme: "FVScheme", wl: np.ndarray, wr: np.ndarray, axis: int) -> np.ndarray:
    """Local Lax–Friedrichs flux: central flux plus |lambda|max dissipation."""
    fl = scheme.flux(wl, axis)
    fr = scheme.flux(wr, axis)
    ul = scheme.prim_to_cons(wl)
    ur = scheme.prim_to_cons(wr)
    smax = np.maximum(scheme.max_char_speed(wl, axis), scheme.max_char_speed(wr, axis))
    return 0.5 * (fl + fr) - 0.5 * smax * (ur - ul)


def hll(scheme: "FVScheme", wl: np.ndarray, wr: np.ndarray, axis: int) -> np.ndarray:
    """Harten–Lax–van Leer two-wave flux."""
    fl = scheme.flux(wl, axis)
    fr = scheme.flux(wr, axis)
    ul = scheme.prim_to_cons(wl)
    ur = scheme.prim_to_cons(wr)
    unl = scheme.normal_velocity(wl, axis)
    unr = scheme.normal_velocity(wr, axis)
    cl = scheme.char_speed(wl, axis)
    cr = scheme.char_speed(wr, axis)
    sl = np.minimum(np.minimum(unl - cl, unr - cr), 0.0)
    sr = np.maximum(np.maximum(unl + cl, unr + cr), 0.0)
    width = np.where(sr - sl > 1e-300, sr - sl, 1.0)
    return (sr * fl - sl * fr + sl * sr * (ur - ul)) / width


def hllc(scheme: "FVScheme", wl: np.ndarray, wr: np.ndarray, axis: int) -> np.ndarray:
    """HLLC three-wave flux (restores the contact wave; Euler-family only).

    Requires the scheme to expose a hydrodynamic layout: density in slot
    0, one momentum per grid axis, pressure/energy last — i.e.
    :class:`repro.solvers.euler.EulerScheme`.  Schemes with additional
    waves (MHD) fall back to :func:`hll` automatically.
    """
    layout = getattr(scheme, "layout", None)
    if layout is None or not hasattr(layout, "i_energy"):
        return hll(scheme, wl, wr, axis)
    ie = layout.i_energy
    gamma = scheme.gamma

    rho_l, rho_r = wl[0], wr[0]
    u_l, u_r = wl[1 + axis], wr[1 + axis]
    p_l, p_r = wl[ie], wr[ie]
    c_l = scheme.char_speed(wl, axis)
    c_r = scheme.char_speed(wr, axis)
    s_l = np.minimum(u_l - c_l, u_r - c_r)
    s_r = np.maximum(u_l + c_l, u_r + c_r)
    # Contact speed (Toro eq. 10.37).
    num = p_r - p_l + rho_l * u_l * (s_l - u_l) - rho_r * u_r * (s_r - u_r)
    den = rho_l * (s_l - u_l) - rho_r * (s_r - u_r)
    s_star = num / np.where(np.abs(den) > 1e-300, den, 1e-300)

    ul = scheme.prim_to_cons(wl)
    ur = scheme.prim_to_cons(wr)
    fl = scheme.flux(wl, axis)
    fr = scheme.flux(wr, axis)

    def star_state(w, u_cons, s, un):
        rho = w[0]
        p = w[ie]
        factor = rho * (s - un) / np.where(
            np.abs(s - s_star) > 1e-300, s - s_star, 1e-300
        )
        star = np.empty_like(u_cons)
        star[0] = factor
        for a in range(scheme.ndim):
            star[1 + a] = factor * w[1 + a]
        star[1 + axis] = factor * s_star
        e = u_cons[ie] / np.where(rho > 1e-300, rho, 1e-300)
        star[ie] = factor * (
            e + (s_star - un) * (s_star + p / (rho * np.where(
                np.abs(s - un) > 1e-300, s - un, 1e-300)))
        )
        return star

    star_l = star_state(wl, ul, s_l, u_l)
    star_r = star_state(wr, ur, s_r, u_r)
    f_star_l = fl + s_l * (star_l - ul)
    f_star_r = fr + s_r * (star_r - ur)

    out = np.where(s_l >= 0.0, fl, 0.0)
    out = np.where((s_l < 0.0) & (s_star >= 0.0), f_star_l, out)
    out = np.where((s_star < 0.0) & (s_r > 0.0), f_star_r, out)
    out = np.where(s_r <= 0.0, fr, out)
    return out


RIEMANN_SOLVERS: Dict[str, Callable] = {
    "rusanov": rusanov,
    "hll": hll,
    "hllc": hllc,
}


def get_riemann(name: str) -> Callable:
    """Look up a Riemann solver by name."""
    try:
        return RIEMANN_SOLVERS[name]
    except KeyError:
        raise ValueError(
            f"unknown Riemann solver {name!r}; available: "
            f"{sorted(RIEMANN_SOLVERS)}"
        ) from None
