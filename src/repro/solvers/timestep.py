"""CFL time-step computation across a block forest.

All blocks advance with one global time step (the scheme used by the
paper's simulations; local time stepping is a later-era extension).  The
step is the minimum CFL-stable step over every block, which depends on
each block's *own* cell width — finer blocks constrain the step more.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.forest import BlockForest
    from repro.solvers.scheme import FVScheme

__all__ = ["stable_dt", "stable_dt_batched"]


def stable_dt(forest: "BlockForest", scheme: "FVScheme", *, dt_max: float = 1e30) -> float:
    """Largest time step satisfying the CFL condition on every block.

    Signal speeds are evaluated over computational cells only: ghost
    cells may legitimately hold extrapolated (or, right after topology
    changes, stale) data that must not throttle the step.
    """
    dt = dt_max
    for block in forest:
        dt = min(dt, scheme.stable_dt(block.interior, block.dx, forest.ndim))
    if not dt > 0.0:
        raise RuntimeError("non-positive stable time step; state is invalid")
    return dt


def stable_dt_batched(
    forest: "BlockForest",
    scheme: "FVScheme",
    *,
    dt_max: float = 1e30,
    tile: Optional[int] = None,
    blocks: Optional[list] = None,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Batched :func:`stable_dt`: tiled reductions over the arena pool.

    Compacts the arena (Morton order), evaluates every block's maximum
    signal speed with one ``(B,)`` reduction per tile of blocks
    (``tile`` rows per kernel call — None sweeps the whole pool at
    once), and folds the per-block CFL steps with the same arithmetic —
    same float64 divisions, same accumulation order over axes — as the
    per-block loop, so the result is bit-for-bit identical for any tile
    size.

    ``blocks`` overrides the compaction order (the subcycled driver
    passes level-major order so the CFL sweep shares the advance's
    arena layout instead of thrashing it); ``weights`` scales each
    block's CFL step before the fold (per-level substep divisors —
    exact powers of two, so the scaled fold stays bit-for-bit with the
    equivalent per-block ``min(own * divisor)`` loop).
    """
    if blocks is None:
        blocks = [forest.blocks[bid] for bid in forest.sorted_ids()]
    if not blocks:
        return dt_max
    g = forest.n_ghost
    pool = forest.arena.ensure_compact(blocks)
    n = len(blocks)
    interior = pool[
        (slice(None), slice(None)) + tuple(slice(g, g + mi) for mi in forest.m)
    ]
    step = n if tile is None else max(tile, 1)
    s = np.empty(n)
    # one reduction scratch for every tile (not a fresh one per tile)
    work = np.empty(min(step, n))
    kernels = scheme.kernels
    for lo in range(0, n, step):
        hi = min(lo + step, n)
        t = interior[lo:hi]
        buf = s[lo:hi]
        res = kernels.max_signal_speed_tile(scheme, t, forest.ndim, out=buf)
        if res is None:
            u = np.moveaxis(t, 0, 1)  # var-major (nvar, b, *m)
            scheme.max_signal_speed_batched(
                u, forest.ndim, out=buf, work=work[: hi - lo]
            )
        elif res is not buf:
            buf[:] = res
    dx = np.array([[b.dx[a] for a in range(forest.ndim)] for b in blocks])
    with np.errstate(divide="ignore", invalid="ignore"):
        denom = s / dx[:, 0]
        for a in range(1, forest.ndim):
            denom = denom + s / dx[:, a]
        dt_b = np.where(s > 0.0, scheme.cfl / denom, np.inf)
    if weights is not None:
        dt_b = dt_b * weights
    # fmin ignores NaN candidates, matching min()'s keep-current-on-
    # non-less semantics in the per-block loop; dt_max participates as
    # the loop's starting value.
    dt = float(np.fmin.reduce(np.append(dt_b, dt_max)))
    if not dt > 0.0:
        raise RuntimeError("non-positive stable time step; state is invalid")
    return dt
