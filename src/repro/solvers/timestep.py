"""CFL time-step computation across a block forest.

All blocks advance with one global time step (the scheme used by the
paper's simulations; local time stepping is a later-era extension).  The
step is the minimum CFL-stable step over every block, which depends on
each block's *own* cell width — finer blocks constrain the step more.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.forest import BlockForest
    from repro.solvers.scheme import FVScheme

__all__ = ["stable_dt"]


def stable_dt(forest: "BlockForest", scheme: "FVScheme", *, dt_max: float = 1e30) -> float:
    """Largest time step satisfying the CFL condition on every block.

    Signal speeds are evaluated over computational cells only: ghost
    cells may legitimately hold extrapolated (or, right after topology
    changes, stale) data that must not throttle the step.
    """
    dt = dt_max
    for block in forest:
        dt = min(dt, scheme.stable_dt(block.interior, block.dx, forest.ndim))
    if not dt > 0.0:
        raise RuntimeError("non-positive stable time step; state is invalid")
    return dt
