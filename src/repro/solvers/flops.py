"""Analytic floating-point-operation counts for the FV kernels.

Used by the GFLOPS benchmark (paper: "we were able to sustain 17 GFLOPS
... on a 512 processor Cray T3D") to convert simulated-machine timings
into a sustained-FLOP-rate estimate, and by the machine cost model to
set per-cell compute cost.

Counts are per *computational* cell per *time step* and follow the
actual structure of :class:`repro.solvers.scheme.FVScheme`:

* per axis: limiter on nvar variables, two face states, one Riemann
  flux (two physical flux evaluations + dissipation), flux difference;
* per stage: one cons↔prim conversion and the source term;
* order 2 doubles the stage count (midpoint method).

The numbers are deliberately conservative estimates of the *useful*
arithmetic (the convention used when reporting sustained GFLOPS).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "KernelFlops",
    "mhd_flops_per_cell",
    "euler_flops_per_cell",
    "advection_flops_per_cell",
    "flops_for_scheme",
]


@dataclass(frozen=True)
class KernelFlops:
    """Breakdown of per-cell-per-step FLOPs for one scheme configuration."""

    reconstruction: int
    riemann: int
    update: int
    conversion: int
    source: int
    stages: int

    @property
    def per_cell_per_step(self) -> int:
        per_stage = (
            self.reconstruction
            + self.riemann
            + self.update
            + self.conversion
            + self.source
        )
        return per_stage * self.stages


def _per_axis_counts(nvar: int, order: int, flux_cost: int, speed_cost: int):
    # Limiter: ~5 flops per variable (two differences + minmod/van-leer),
    # two face-state constructions at 2 flops/var, only for order 2.
    reconstruction = (5 + 4) * nvar if order == 2 else 0
    # Rusanov: two physical fluxes + two wave speeds + combine (4 flops/var).
    riemann = 2 * flux_cost + 2 * speed_cost + 4 * nvar
    # Flux difference + scale: 3 flops/var.
    update = 3 * nvar
    return reconstruction, riemann, update


def mhd_flops_per_cell(ndim: int = 3, order: int = 2) -> KernelFlops:
    """Ideal MHD with Powell source (8 variables)."""
    nvar = 8
    flux_cost = 60      # 8-var MHD flux: ~60 flops (ptot, u.B, per-component)
    speed_cost = 20     # fast magnetosonic speed: sqrt-heavy
    rec, rie, upd = _per_axis_counts(nvar, order, flux_cost, speed_cost)
    conversion = 30     # cons<->prim with B^2, kinetic energy
    source = 25 if ndim >= 1 else 0  # divB + 8-component source
    return KernelFlops(
        reconstruction=rec * ndim,
        riemann=rie * ndim,
        update=upd * ndim,
        conversion=conversion,
        source=source,
        stages=2 if order == 2 else 1,
    )


def euler_flops_per_cell(ndim: int = 3, order: int = 2) -> KernelFlops:
    """Compressible Euler (ndim + 2 variables)."""
    nvar = ndim + 2
    flux_cost = 8 * nvar
    speed_cost = 6
    rec, rie, upd = _per_axis_counts(nvar, order, flux_cost, speed_cost)
    return KernelFlops(
        reconstruction=rec * ndim,
        riemann=rie * ndim,
        update=upd * ndim,
        conversion=4 * nvar,
        source=0,
        stages=2 if order == 2 else 1,
    )


def advection_flops_per_cell(ndim: int = 2, order: int = 2) -> KernelFlops:
    """Scalar advection (1 variable)."""
    rec, rie, upd = _per_axis_counts(1, order, 2, 1)
    return KernelFlops(
        reconstruction=rec * ndim,
        riemann=rie * ndim,
        update=upd * ndim,
        conversion=0,
        source=0,
        stages=2 if order == 2 else 1,
    )


def flops_for_scheme(scheme) -> "KernelFlops | None":
    """The per-cell-per-step FLOP estimate matching a scheme instance,
    or None for physics without a calibrated count (Burgers, shallow
    water).  Used by the observability layer to annotate profiled runs
    with a sustained-MFLOP/s estimate."""
    from repro.solvers.advection import AdvectionScheme
    from repro.solvers.euler import EulerScheme
    from repro.solvers.mhd import MHDScheme

    order = getattr(scheme, "order", 2)
    if isinstance(scheme, AdvectionScheme):
        return advection_flops_per_cell(len(scheme.velocity), order)
    ndim = getattr(scheme, "ndim", None)
    if ndim is None:
        return None
    if isinstance(scheme, MHDScheme):
        return mhd_flops_per_cell(ndim, order)
    if isinstance(scheme, EulerScheme):
        return euler_flops_per_cell(ndim, order)
    return None
