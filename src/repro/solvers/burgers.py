"""Inviscid Burgers equation — the minimal nonlinear workload.

``q_t + div(q^2/2 * v_hat) = 0`` along a fixed unit direction.  Shocks
form from smooth data in finite time, which makes this the smallest
system that exercises the limiter/AMR machinery on self-steepening
solutions (with known exact pre-shock solutions via characteristics).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.solvers.scheme import FVScheme

__all__ = ["BurgersScheme"]


class BurgersScheme(FVScheme):
    """Scalar inviscid Burgers flow along a fixed direction.

    Parameters
    ----------
    direction:
        Unit-ish vector giving the flow direction per axis; the flux
        along axis ``a`` is ``direction[a] * q^2 / 2``.
    """

    def __init__(self, direction: Sequence[float] = (1.0,), **kw) -> None:
        super().__init__(**kw)
        self.direction = tuple(float(v) for v in direction)
        if not self.direction:
            raise ValueError("direction must have at least one component")
        self.nvar = 1

    def cons_to_prim(self, u: np.ndarray) -> np.ndarray:
        return u.copy()

    def prim_to_cons(self, w: np.ndarray) -> np.ndarray:
        return w.copy()

    def flux(self, w: np.ndarray, axis: int) -> np.ndarray:
        return 0.5 * self.direction[axis] * w * w

    def normal_velocity(self, w: np.ndarray, axis: int) -> np.ndarray:
        # Characteristic speed: f'(q) = direction * q.
        return self.direction[axis] * w[0]

    def char_speed(self, w: np.ndarray, axis: int) -> np.ndarray:
        return np.zeros(w.shape[1:])
