"""Linear advection scheme — the cheap correctness workload.

Advects a single scalar with a constant velocity.  Primitive and
conserved variables coincide, the flux is linear, and the exact solution
is a translation — which makes this scheme the library's main
convergence and conservation oracle.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.solvers.scheme import FVScheme

__all__ = ["AdvectionScheme"]


class AdvectionScheme(FVScheme):
    """Constant-velocity scalar advection in any dimension.

    Parameters
    ----------
    velocity:
        Advection velocity vector; its length fixes the grid dimension.
    """

    def __init__(self, velocity: Sequence[float], **kw) -> None:
        super().__init__(**kw)
        self.velocity = tuple(float(v) for v in velocity)
        if not self.velocity:
            raise ValueError("velocity must have at least one component")
        self.nvar = 1

    def cons_to_prim(self, u: np.ndarray) -> np.ndarray:
        return u.copy()

    def prim_to_cons(self, w: np.ndarray) -> np.ndarray:
        return w.copy()

    def flux(self, w: np.ndarray, axis: int) -> np.ndarray:
        return self.velocity[axis] * w

    def normal_velocity(self, w: np.ndarray, axis: int) -> np.ndarray:
        return np.full(w.shape[1:], self.velocity[axis])

    def char_speed(self, w: np.ndarray, axis: int) -> np.ndarray:
        return np.zeros(w.shape[1:])
