"""Finite-volume scheme framework operating on whole block arrays.

A :class:`FVScheme` advances one block's padded state array by one time
step with a Godunov-type finite-volume update:

* order 1 — piecewise-constant states, one ghost layer required;
* order 2 — MUSCL limited-linear reconstruction of primitive variables
  (the "higher-resolution methods" of the paper's reference [6]),
  two ghost layers required — exactly the ghost-width trade-off the
  paper discusses.

Every operation is a whole-array numpy expression over the block: this
is the Python analogue of the loop/cache optimization over per-block
Fortran arrays that motivated adaptive blocks, and what the Figure-5
benchmark measures.  Concrete schemes (advection, Euler, MHD) supply the
physics via a handful of hooks; the reconstruction/update machinery here
is shared.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.solvers.limiters import get_limiter
from repro.solvers.riemann import get_riemann

__all__ = ["FVScheme"]


class FVScheme(ABC):
    """Base class for block-array finite-volume schemes.

    Parameters
    ----------
    order:
        Spatial order: 1 (piecewise constant) or 2 (MUSCL).
    limiter:
        Slope-limiter name for order 2 (see
        :data:`repro.solvers.limiters.LIMITERS`).
    riemann:
        Face-flux solver name (see
        :data:`repro.solvers.riemann.RIEMANN_SOLVERS`).
    cfl:
        Default CFL number used by the drivers.
    """

    #: number of state variables — set by subclasses
    nvar: int

    def __init__(
        self,
        *,
        order: int = 2,
        limiter: str = "van_leer",
        riemann: str = "rusanov",
        cfl: float = 0.4,
    ) -> None:
        if order not in (1, 2):
            raise ValueError(f"order must be 1 or 2, got {order}")
        if not 0.0 < cfl <= 1.0:
            raise ValueError(f"cfl must be in (0, 1], got {cfl}")
        self.order = order
        self.limiter_name = limiter
        self.limiter = get_limiter(limiter)
        self.riemann_name = riemann
        self.riemann = get_riemann(riemann)
        self.cfl = cfl

    @property
    def required_ghost(self) -> int:
        """Ghost layers the scheme needs (1 for order 1, 2 for MUSCL)."""
        return self.order

    @property
    def positivity_indices(self) -> Tuple[int, ...]:
        """Primitive-variable indices that must stay strictly positive
        (density, pressure).  Used by the safe-stepping health scan;
        base schemes have none."""
        return ()

    # ------------------------------------------------------------------
    # physics hooks implemented by subclasses
    # ------------------------------------------------------------------

    @abstractmethod
    def cons_to_prim(self, u: np.ndarray) -> np.ndarray:
        """Conserved → primitive variables."""

    @abstractmethod
    def prim_to_cons(self, w: np.ndarray) -> np.ndarray:
        """Primitive → conserved variables."""

    @abstractmethod
    def flux(self, w: np.ndarray, axis: int) -> np.ndarray:
        """Physical flux along ``axis`` from primitives."""

    @abstractmethod
    def normal_velocity(self, w: np.ndarray, axis: int) -> np.ndarray:
        """Advective velocity component along ``axis``."""

    @abstractmethod
    def char_speed(self, w: np.ndarray, axis: int) -> np.ndarray:
        """Maximum characteristic speed relative to the flow (sound /
        fast magnetosonic / zero for advection)."""

    def max_char_speed(self, w: np.ndarray, axis: int) -> np.ndarray:
        """|u_n| + c — the Rusanov dissipation speed."""
        return np.abs(self.normal_velocity(w, axis)) + self.char_speed(w, axis)

    def source(
        self,
        u_interior: np.ndarray,
        w: np.ndarray,
        dx: Sequence[float],
        g: int,
    ) -> Optional[np.ndarray]:
        """Optional source term evaluated on the interior (e.g. the
        Powell divergence source for MHD).  Returns dU/dt or None."""
        return None

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------

    def max_signal_speed(self, u: np.ndarray, ndim: int) -> float:
        """Largest |u_n| + c over the array and all grid axes (for CFL)."""
        w = self.cons_to_prim(u)
        best = 0.0
        for a in range(ndim):
            best = max(best, float(np.max(self.max_char_speed(w, a))))
        return best

    def stable_dt(self, u: np.ndarray, dx: Sequence[float], ndim: int) -> float:
        """CFL-limited time step for one block array."""
        s = self.max_signal_speed(u, ndim)
        if s <= 0.0:
            return np.inf
        return self.cfl / sum(s / d for d in dx)

    def face_states(
        self, w: np.ndarray, axis: int, g: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Left/right primitive states at the m+1 interior faces of an axis.

        Face ``f`` (0-based) sits between cells ``g-1+f`` and ``g+f`` of
        the padded array.  Order 1 uses the adjacent cell values; order 2
        adds limited half-slopes (requires g >= 2).
        """
        n = w.shape[1 + axis]
        m = n - 2 * g

        def ax_slice(lo: int, hi: int) -> Tuple[slice, ...]:
            sl = [slice(None)] * w.ndim
            sl[1 + axis] = slice(lo, hi)
            return tuple(sl)

        if self.order == 1:
            wl = w[ax_slice(g - 1, g + m)]
            wr = w[ax_slice(g, g + m + 1)]
            return wl, wr
        # Limited slopes on cells [g-2+1, g+m+1) = [g-1, g+m+1).
        center = w[ax_slice(g - 1, g + m + 1)]
        left = w[ax_slice(g - 2, g + m)]
        right = w[ax_slice(g, g + m + 2)]
        slope = self.limiter(center - left, right - center)
        # slope index i corresponds to padded cell g-1+i, i in [0, m+2).
        sl_all = [slice(None)] * w.ndim
        sl_lo = list(sl_all)
        sl_hi = list(sl_all)
        sl_lo[1 + axis] = slice(0, m + 1)
        sl_hi[1 + axis] = slice(1, m + 2)
        wl = center[tuple(sl_lo)] + 0.5 * slope[tuple(sl_lo)]
        wr = center[tuple(sl_hi)] - 0.5 * slope[tuple(sl_hi)]
        return wl, wr

    def flux_divergence(
        self,
        u: np.ndarray,
        dx: Sequence[float],
        g: int,
        *,
        face_flux_out: Optional[dict] = None,
        faces: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """-div F over the interior cells (the conservative update rate).

        With ``face_flux_out`` (a dict) the numerical fluxes on the
        block's outer faces are captured per face index — shape
        ``(nvar, *transverse_interior)`` — for the flux-correction
        (refluxing) machinery.  ``faces`` limits capture to the listed
        faces (the coarse–fine interfaces the register needs).
        """
        ndim = u.ndim - 1
        w = self.cons_to_prim(u)
        interior_shape = tuple(s - 2 * g for s in u.shape[1:])
        dudt = np.zeros((self.nvar,) + interior_shape)
        for axis in range(ndim):
            wl, wr = self.face_states(w, axis, g)
            # Restrict face arrays to interior extent on transverse axes.
            trans = [slice(g, s - g) for s in u.shape[1:]]
            trans[axis] = slice(None)
            wl = wl[(slice(None),) + tuple(trans)]
            wr = wr[(slice(None),) + tuple(trans)]
            f = self.riemann(self, wl, wr, axis)
            sl_hi = [slice(None)] * (ndim + 1)
            sl_lo = [slice(None)] * (ndim + 1)
            n_faces = f.shape[1 + axis]
            sl_hi[1 + axis] = slice(1, n_faces)
            sl_lo[1 + axis] = slice(0, n_faces - 1)
            dudt -= (f[tuple(sl_hi)] - f[tuple(sl_lo)]) / dx[axis]
            if face_flux_out is not None:
                for side, idx in ((0, 0), (1, n_faces - 1)):
                    face = 2 * axis + side
                    if faces is not None and face not in faces:
                        continue
                    take = [slice(None)] * (ndim + 1)
                    take[1 + axis] = idx
                    face_flux_out[face] = f[tuple(take)].copy()
        src = self.source(
            u[(slice(None),) + tuple(slice(g, s - g) for s in u.shape[1:])],
            w,
            dx,
            g,
        )
        if src is not None:
            dudt += src
        return dudt

    @property
    def n_stages(self) -> int:
        """Time-integration stages per step (midpoint for order 2)."""
        return 2 if self.order == 2 else 1

    def apply_floors(self, u: np.ndarray) -> None:
        """Post-stage fix-up hook (density/pressure floors).

        Base schemes have none; systems prone to vacuum states (MHD)
        override this.  Drivers call it after every stage update."""
        return None

    def step(self, u: np.ndarray, dx: Sequence[float], dt: float, g: int) -> None:
        """Advance the interior of a padded block array by one forward-
        Euler *stage* of length ``dt``, in place.

        This is a single stage: time integration across stages (midpoint
        for second order) is orchestrated by the driver, which must
        refresh ghost cells *between* stages — computing both stages
        block-locally with stale ghosts would break conservation and
        accuracy at block boundaries.  See
        :func:`repro.amr.driver.advance` and
        :func:`repro.solvers.scheme.FVScheme.step_midpoint`.
        """
        interior = (slice(None),) + tuple(slice(g, s - g) for s in u.shape[1:])
        u[interior] += dt * self.flux_divergence(u, dx, g)
        self.apply_floors(u[interior])

    def step_midpoint(
        self,
        u: np.ndarray,
        dx: Sequence[float],
        dt: float,
        g: int,
        fill: Callable[[np.ndarray], None],
    ) -> None:
        """Full time step on a *single* padded array with a ghost-fill
        callback (used by single-block tests and the tree baseline):
        midpoint (2-stage) for order 2, forward Euler for order 1.

        ``fill`` must set the array's ghost cells from the current
        interior (periodic wrap, physical BC, ...).
        """
        interior = (slice(None),) + tuple(slice(g, s - g) for s in u.shape[1:])
        fill(u)
        if self.order == 1:
            u[interior] += dt * self.flux_divergence(u, dx, g)
            return
        u_half = u.copy()
        u_half[interior] += 0.5 * dt * self.flux_divergence(u, dx, g)
        self.apply_floors(u_half[interior])
        fill(u_half)
        u[interior] += dt * self.flux_divergence(u_half, dx, g)
        self.apply_floors(u[interior])
