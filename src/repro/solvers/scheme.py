"""Finite-volume scheme framework operating on whole block arrays.

A :class:`FVScheme` advances one block's padded state array by one time
step with a Godunov-type finite-volume update:

* order 1 — piecewise-constant states, one ghost layer required;
* order 2 — MUSCL limited-linear reconstruction of primitive variables
  (the "higher-resolution methods" of the paper's reference [6]),
  two ghost layers required — exactly the ghost-width trade-off the
  paper discusses.

Every operation is a whole-array numpy expression over the block: this
is the Python analogue of the loop/cache optimization over per-block
Fortran arrays that motivated adaptive blocks, and what the Figure-5
benchmark measures.  Concrete schemes (advection, Euler, MHD) supply the
physics via a handful of hooks; the reconstruction/update machinery here
is shared.

Batched (vectorized-over-blocks) arrays
---------------------------------------

The machinery methods (:meth:`FVScheme.face_states`,
:meth:`FVScheme.flux_divergence`, :meth:`FVScheme.step`) index spatial
axes *from the right*, so the same code serves two layouts:

* per-block ``(nvar, *spatial)`` padded arrays (``ndim`` defaults to
  ``u.ndim - 1``), and
* ``(B, nvar, *spatial)`` stacks of ``B`` same-shape blocks — pass the
  grid ``ndim`` explicitly and the leading axis is treated as a batch.

Internally a batched stack is normalized to a *var-major*
``(nvar, B, *spatial)`` view (``np.moveaxis`` — no copy), so the physics
hooks, which index the variable axis first (``u[0]`` is density
everywhere), operate on all blocks at once with the batch axis riding
along.  Every kernel is an elementwise IEEE ufunc expression, so batched
and per-block execution are bit-for-bit identical.

``dx`` entries may be Python floats (per-block path) or
``(B, 1, ..., 1)`` arrays broadcasting one width per block (batched
path); both divide each block's flux differences by the same float64
value, hence identical results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.kernels import get_backend
from repro.solvers.limiters import get_limiter
from repro.solvers.riemann import get_riemann

__all__ = ["FVScheme"]


class FVScheme(ABC):
    """Base class for block-array finite-volume schemes.

    Parameters
    ----------
    order:
        Spatial order: 1 (piecewise constant) or 2 (MUSCL).
    limiter:
        Slope-limiter name for order 2 (see
        :data:`repro.solvers.limiters.LIMITERS`).
    riemann:
        Face-flux solver name (see
        :data:`repro.solvers.riemann.RIEMANN_SOLVERS`).
    cfl:
        Default CFL number used by the drivers.
    """

    #: number of state variables — set by subclasses
    nvar: int

    def __init__(
        self,
        *,
        order: int = 2,
        limiter: str = "van_leer",
        riemann: str = "rusanov",
        cfl: float = 0.4,
    ) -> None:
        if order not in (1, 2):
            raise ValueError(f"order must be 1 or 2, got {order}")
        if not 0.0 < cfl <= 1.0:
            raise ValueError(f"cfl must be in (0, 1], got {cfl}")
        self.order = order
        self.limiter_name = limiter
        self.limiter = get_limiter(limiter)
        self.riemann_name = riemann
        self.riemann = get_riemann(riemann)
        self.cfl = cfl
        #: kernel backend the machinery dispatches hot ops through; swap
        #: with ``repro.kernels.get_backend(name)`` (see Simulation's
        #: ``kernel_backend=``).  Every backend is bit-for-bit with the
        #: reference numpy path.
        self.kernels = get_backend("numpy")

    @property
    def required_ghost(self) -> int:
        """Ghost layers the scheme needs (1 for order 1, 2 for MUSCL)."""
        return self.order

    @property
    def positivity_indices(self) -> Tuple[int, ...]:
        """Primitive-variable indices that must stay strictly positive
        (density, pressure).  Used by the safe-stepping health scan;
        base schemes have none."""
        return ()

    # ------------------------------------------------------------------
    # physics hooks implemented by subclasses
    # ------------------------------------------------------------------

    @abstractmethod
    def cons_to_prim(self, u: np.ndarray) -> np.ndarray:
        """Conserved → primitive variables."""

    @abstractmethod
    def prim_to_cons(self, w: np.ndarray) -> np.ndarray:
        """Primitive → conserved variables."""

    @abstractmethod
    def flux(self, w: np.ndarray, axis: int) -> np.ndarray:
        """Physical flux along ``axis`` from primitives."""

    @abstractmethod
    def normal_velocity(self, w: np.ndarray, axis: int) -> np.ndarray:
        """Advective velocity component along ``axis``."""

    @abstractmethod
    def char_speed(self, w: np.ndarray, axis: int) -> np.ndarray:
        """Maximum characteristic speed relative to the flow (sound /
        fast magnetosonic / zero for advection)."""

    def max_char_speed(self, w: np.ndarray, axis: int) -> np.ndarray:
        """|u_n| + c — the Rusanov dissipation speed."""
        return np.abs(self.normal_velocity(w, axis)) + self.char_speed(w, axis)

    def source(
        self,
        u_interior: np.ndarray,
        w: np.ndarray,
        dx: Sequence[float],
        g: int,
    ) -> Optional[np.ndarray]:
        """Optional source term evaluated on the interior (e.g. the
        Powell divergence source for MHD).  Returns dU/dt or None."""
        return None

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------

    def max_signal_speed(self, u: np.ndarray, ndim: int) -> float:
        """Largest |u_n| + c over the array and all grid axes (for CFL)."""
        w = self.cons_to_prim(u)
        best = 0.0
        for a in range(ndim):
            best = max(best, float(np.max(self.max_char_speed(w, a))))
        return best

    def max_signal_speed_batched(
        self,
        u: np.ndarray,
        ndim: int,
        out: Optional[np.ndarray] = None,
        work: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-block largest |u_n| + c over a var-major ``(nvar, B, *sp)``
        stack — one ``(B,)`` reduction instead of a Python loop.

        Mirrors :meth:`max_signal_speed` exactly, including its
        comparison semantics (the masked fold matches Python ``max``,
        which keeps the current best on a non-greater — e.g. NaN —
        candidate).  ``out`` (the ``(B,)`` result buffer) and ``work``
        (a ``(B,)`` reduction scratch) let tiled callers reuse
        allocations across calls; both are optional."""
        w = self.cons_to_prim(u)
        b = u.shape[1]
        if out is None:
            best = np.zeros(b)
        else:
            best = out
            best[:] = 0.0
        for a in range(ndim):
            speed = self.max_char_speed(w, a)
            flat = speed.reshape(speed.shape[0], -1)
            if work is not None and work.shape == (b,):
                m = flat.max(axis=1, out=work)
            else:
                m = flat.max(axis=1)
            # same values as ``best = np.where(m > best, m, best)``,
            # without the fresh array per axis
            np.copyto(best, m, where=m > best)
        return best

    def stable_dt(self, u: np.ndarray, dx: Sequence[float], ndim: int) -> float:
        """CFL-limited time step for one block array."""
        s = self.max_signal_speed(u, ndim)
        if s <= 0.0:
            return np.inf
        return self.cfl / sum(s / d for d in dx)

    def face_states(
        self, w: np.ndarray, axis: int, g: int, ndim: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Left/right primitive states at the m+1 interior faces of an axis.

        Face ``f`` (0-based) sits between cells ``g-1+f`` and ``g+f`` of
        the padded array.  Order 1 uses the adjacent cell values; order 2
        adds limited half-slopes (requires g >= 2).

        Spatial axes occupy the last ``ndim`` positions of ``w``
        (default ``w.ndim - 1``), so per-block arrays and batched stacks
        share this code — only spatial slicing and elementwise limiter
        algebra happen here, never variable-axis indexing.
        """
        nd = w.ndim - 1 if ndim is None else ndim
        ax = w.ndim - nd + axis
        n = w.shape[ax]
        m = n - 2 * g

        def ax_slice(lo: int, hi: int) -> Tuple[slice, ...]:
            sl = [slice(None)] * w.ndim
            sl[ax] = slice(lo, hi)
            return tuple(sl)

        if self.order == 1:
            wl = w[ax_slice(g - 1, g + m)]
            wr = w[ax_slice(g, g + m + 1)]
            return wl, wr
        # Limited slopes on cells [g-2+1, g+m+1) = [g-1, g+m+1).
        center = w[ax_slice(g - 1, g + m + 1)]
        left = w[ax_slice(g - 2, g + m)]
        right = w[ax_slice(g, g + m + 2)]
        slope = self.limiter(center - left, right - center)
        # slope index i corresponds to padded cell g-1+i, i in [0, m+2).
        sl_all = [slice(None)] * w.ndim
        sl_lo = list(sl_all)
        sl_hi = list(sl_all)
        sl_lo[ax] = slice(0, m + 1)
        sl_hi[ax] = slice(1, m + 2)
        wl = center[tuple(sl_lo)] + 0.5 * slope[tuple(sl_lo)]
        wr = center[tuple(sl_hi)] - 0.5 * slope[tuple(sl_hi)]
        return wl, wr

    def flux_divergence(
        self,
        u: np.ndarray,
        dx: Sequence,
        g: int,
        *,
        face_flux_out: Optional[dict] = None,
        faces: Optional[Sequence[int]] = None,
        ndim: Optional[int] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """-div F over the interior cells (the conservative update rate).

        With ``face_flux_out`` (a dict) the numerical fluxes on the
        block's outer faces are captured per face index — shape
        ``(nvar, *transverse_interior)`` — for the flux-correction
        (refluxing) machinery.  ``faces`` limits capture to the listed
        faces (the coarse–fine interfaces the register needs).

        With an explicit ``ndim`` and a ``(B, nvar, *spatial)`` stack
        (``u.ndim == ndim + 2``) every block is processed in one sweep;
        the result has shape ``(B, nvar, *interior)``.  ``dx`` then
        holds per-axis ``(B, 1, ..., 1)`` cell-width arrays.

        ``out`` is a result buffer in the *caller's* layout (interior
        shape) — a scratch hint that skips the per-call allocation.
        Callers must consume the returned array, which may or may not
        alias ``out``.

        Unless face fluxes are being captured, the call first offers the
        sweep to the scheme's kernel backend (``self.kernels``); a
        backend either computes the identical result fused or declines,
        in which case the reference whole-array path below runs.
        """
        nd = u.ndim - 1 if ndim is None else ndim
        if face_flux_out is None:
            res = self.kernels.flux_divergence(self, u, dx, g, ndim=nd, out=out)
            if res is not None:
                return res
        batched = u.ndim == nd + 2
        uv = np.moveaxis(u, 0, 1) if batched else u  # var-major view
        lead = uv.ndim - nd
        spatial = uv.shape[lead:]
        w = self.cons_to_prim(uv)
        interior_shape = tuple(s - 2 * g for s in spatial)
        want = uv.shape[:lead] + interior_shape
        dudt = None
        if out is not None and out.dtype == np.float64:
            cand = np.moveaxis(out, 0, 1) if batched else out
            if cand.shape == want:
                dudt = cand
                dudt[...] = 0.0
        if dudt is None:
            dudt = np.zeros(want)
        for axis in range(nd):
            # Crop to interior extent on transverse axes *before*
            # reconstruction: face_states only slices along ``axis``, so
            # feeding it the cropped view yields bitwise-identical face
            # states while skipping the limiter algebra on transverse
            # ghost cells it would otherwise compute and discard.
            trans = [slice(g, s - g) for s in spatial]
            trans[axis] = slice(None)
            sel = (slice(None),) * lead + tuple(trans)
            wl, wr = self.face_states(w[sel], axis, g, ndim=nd)
            f = self.riemann(self, wl, wr, axis)
            ax = f.ndim - nd + axis
            sl_hi = [slice(None)] * f.ndim
            sl_lo = [slice(None)] * f.ndim
            n_faces = f.shape[ax]
            sl_hi[ax] = slice(1, n_faces)
            sl_lo[ax] = slice(0, n_faces - 1)
            dudt -= (f[tuple(sl_hi)] - f[tuple(sl_lo)]) / dx[axis]
            if face_flux_out is not None:
                for side, idx in ((0, 0), (1, n_faces - 1)):
                    face = 2 * axis + side
                    if faces is not None and face not in faces:
                        continue
                    take: list = [slice(None)] * f.ndim
                    take[ax] = idx
                    face_flux_out[face] = f[tuple(take)].copy()
        src = self.source(
            uv[(slice(None),) * lead + tuple(slice(g, s - g) for s in spatial)],
            w,
            dx,
            g,
        )
        if src is not None:
            dudt += src
        return np.moveaxis(dudt, 0, 1) if batched else dudt

    @property
    def n_stages(self) -> int:
        """Time-integration stages per step (midpoint for order 2)."""
        return 2 if self.order == 2 else 1

    def apply_floors(self, u: np.ndarray) -> None:
        """Post-stage fix-up hook (density/pressure floors).

        Base schemes have none; systems prone to vacuum states (MHD)
        override this.  Drivers call it after every stage update.

        ``u`` must have the variable axis first; implementations are
        elementwise over whatever trails it, so a per-block interior
        ``(nvar, *m)`` and a var-major batched stack ``(nvar, B, *m)``
        both work — the batched engine hands it a transposed view of the
        whole ``(B, nvar, *m)`` interior stack."""
        return None

    def step(
        self,
        u: np.ndarray,
        dx: Sequence,
        dt: float,
        g: int,
        ndim: Optional[int] = None,
        rate_out: Optional[np.ndarray] = None,
    ) -> None:
        """Advance the interior of a padded block array by one forward-
        Euler *stage* of length ``dt``, in place.  ``rate_out`` is an
        optional scratch buffer (interior shape) for the update rate.

        This is a single stage: time integration across stages (midpoint
        for second order) is orchestrated by the driver, which must
        refresh ghost cells *between* stages — computing both stages
        block-locally with stale ghosts would break conservation and
        accuracy at block boundaries.  See
        :func:`repro.amr.driver.advance` and
        :func:`repro.solvers.scheme.FVScheme.step_midpoint`.

        With an explicit ``ndim`` and a ``(B, nvar, *spatial)`` stack
        the whole batch advances in one sweep.
        """
        nd = u.ndim - 1 if ndim is None else ndim
        lead = u.ndim - nd
        interior = (slice(None),) * lead + tuple(
            slice(g, s - g) for s in u.shape[lead:]
        )
        rate = self.flux_divergence(u, dx, g, ndim=ndim, out=rate_out)
        if rate_out is not None:
            # same two IEEE ops per element as ``u += dt * rate``,
            # without the broadcast temporary
            rate *= dt
            u[interior] += rate
        else:
            u[interior] += dt * rate
        ui = u[interior]
        # the floors hook wants the variable axis first
        self.apply_floors(np.moveaxis(ui, 0, 1) if lead == 2 else ui)

    def step_midpoint(
        self,
        u: np.ndarray,
        dx: Sequence[float],
        dt: float,
        g: int,
        fill: Callable[[np.ndarray], None],
    ) -> None:
        """Full time step on a *single* padded array with a ghost-fill
        callback (used by single-block tests and the tree baseline):
        midpoint (2-stage) for order 2, forward Euler for order 1.

        ``fill`` must set the array's ghost cells from the current
        interior (periodic wrap, physical BC, ...).
        """
        interior = (slice(None),) + tuple(slice(g, s - g) for s in u.shape[1:])
        fill(u)
        if self.order == 1:
            u[interior] += dt * self.flux_divergence(u, dx, g)
            return
        u_half = u.copy()
        u_half[interior] += 0.5 * dt * self.flux_divergence(u, dx, g)
        self.apply_floors(u_half[interior])
        fill(u_half)
        u[interior] += dt * self.flux_divergence(u_half, dx, g)
        self.apply_floors(u[interior])
