"""Exact Riemann solver for the 1-D Euler equations (Toro's algorithm).

Provides the reference solutions the verification tests compare against:
given left/right primitive states, :func:`exact_riemann` finds the star
pressure/velocity by Newton iteration on the pressure function, and
:func:`sample_riemann` evaluates the self-similar solution
``W(x/t)`` — rarefaction fans, contacts and shocks placed exactly.

Also provides :func:`sod_solution`, the canonical Sod shock-tube
reference used throughout the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["RiemannStates", "exact_riemann", "sample_riemann", "sod_solution"]


@dataclass(frozen=True)
class RiemannStates:
    """Star-region solution of a 1-D Euler Riemann problem."""

    p_star: float
    u_star: float
    rho_star_l: float
    rho_star_r: float


def _pressure_function(p: float, rho: float, pk: float, ck: float, gamma: float):
    """f_K(p) and its derivative for one side (Toro §4.3)."""
    if p > pk:  # shock
        a = 2.0 / ((gamma + 1.0) * rho)
        b = (gamma - 1.0) / (gamma + 1.0) * pk
        sqrt_term = np.sqrt(a / (p + b))
        f = (p - pk) * sqrt_term
        df = sqrt_term * (1.0 - 0.5 * (p - pk) / (p + b))
    else:  # rarefaction
        f = (
            2.0 * ck / (gamma - 1.0)
            * ((p / pk) ** ((gamma - 1.0) / (2.0 * gamma)) - 1.0)
        )
        df = (1.0 / (rho * ck)) * (p / pk) ** (-(gamma + 1.0) / (2.0 * gamma))
    return f, df


def exact_riemann(
    rho_l: float,
    u_l: float,
    p_l: float,
    rho_r: float,
    u_r: float,
    p_r: float,
    gamma: float = 1.4,
    *,
    tol: float = 1e-12,
    max_iter: int = 100,
) -> RiemannStates:
    """Solve for the star region of the Euler Riemann problem."""
    if min(rho_l, rho_r, p_l, p_r) <= 0.0:
        raise ValueError("states must have positive density and pressure")
    c_l = np.sqrt(gamma * p_l / rho_l)
    c_r = np.sqrt(gamma * p_r / rho_r)
    # Vacuum check (Toro eq. 4.40).
    if 2.0 * (c_l + c_r) / (gamma - 1.0) <= u_r - u_l:
        raise ValueError("initial states generate vacuum")
    # Initial guess: two-rarefaction approximation.
    z = (gamma - 1.0) / (2.0 * gamma)
    p = (
        (c_l + c_r - 0.5 * (gamma - 1.0) * (u_r - u_l))
        / (c_l / p_l**z + c_r / p_r**z)
    ) ** (1.0 / z)
    p = max(p, 1e-12)
    for _ in range(max_iter):
        f_l, df_l = _pressure_function(p, rho_l, p_l, c_l, gamma)
        f_r, df_r = _pressure_function(p, rho_r, p_r, c_r, gamma)
        delta = (f_l + f_r + (u_r - u_l)) / (df_l + df_r)
        p_new = max(p - delta, 1e-14)
        if abs(p_new - p) < tol * max(p, 1e-14):
            p = p_new
            break
        p = p_new
    f_l, _ = _pressure_function(p, rho_l, p_l, c_l, gamma)
    f_r, _ = _pressure_function(p, rho_r, p_r, c_r, gamma)
    u_star = 0.5 * (u_l + u_r) + 0.5 * (f_r - f_l)
    gm = (gamma - 1.0) / (gamma + 1.0)
    if p > p_l:  # left shock
        rho_star_l = rho_l * ((p / p_l + gm) / (gm * p / p_l + 1.0))
    else:  # left rarefaction: isentropic
        rho_star_l = rho_l * (p / p_l) ** (1.0 / gamma)
    if p > p_r:  # right shock
        rho_star_r = rho_r * ((p / p_r + gm) / (gm * p / p_r + 1.0))
    else:
        rho_star_r = rho_r * (p / p_r) ** (1.0 / gamma)
    return RiemannStates(p, u_star, rho_star_l, rho_star_r)


def sample_riemann(
    xi: np.ndarray,
    rho_l: float,
    u_l: float,
    p_l: float,
    rho_r: float,
    u_r: float,
    p_r: float,
    gamma: float = 1.4,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate the exact solution at similarity coordinates xi = x/t.

    Returns (rho, u, p) arrays.
    """
    xi = np.asarray(xi, dtype=float)
    star = exact_riemann(rho_l, u_l, p_l, rho_r, u_r, p_r, gamma)
    c_l = np.sqrt(gamma * p_l / rho_l)
    c_r = np.sqrt(gamma * p_r / rho_r)
    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)

    left_of_contact = xi <= star.u_star

    # ---- left side -------------------------------------------------
    if star.p_star > p_l:  # left shock
        s_l = u_l - c_l * np.sqrt(
            (gamma + 1.0) / (2.0 * gamma) * star.p_star / p_l
            + (gamma - 1.0) / (2.0 * gamma)
        )
        pre = xi < s_l
        region = left_of_contact
        rho[region & pre] = rho_l
        u[region & pre] = u_l
        p[region & pre] = p_l
        post = region & ~pre
        rho[post] = star.rho_star_l
        u[post] = star.u_star
        p[post] = star.p_star
    else:  # left rarefaction
        c_star_l = c_l * (star.p_star / p_l) ** ((gamma - 1.0) / (2.0 * gamma))
        head = u_l - c_l
        tail = star.u_star - c_star_l
        region = left_of_contact
        pre = region & (xi < head)
        fan = region & (xi >= head) & (xi <= tail)
        post = region & (xi > tail)
        rho[pre] = rho_l
        u[pre] = u_l
        p[pre] = p_l
        u[fan] = 2.0 / (gamma + 1.0) * (c_l + 0.5 * (gamma - 1.0) * u_l + xi[fan])
        c_fan = u[fan] - xi[fan]
        rho[fan] = rho_l * (c_fan / c_l) ** (2.0 / (gamma - 1.0))
        p[fan] = p_l * (c_fan / c_l) ** (2.0 * gamma / (gamma - 1.0))
        rho[post] = star.rho_star_l
        u[post] = star.u_star
        p[post] = star.p_star

    # ---- right side ------------------------------------------------
    right = ~left_of_contact
    if star.p_star > p_r:  # right shock
        s_r = u_r + c_r * np.sqrt(
            (gamma + 1.0) / (2.0 * gamma) * star.p_star / p_r
            + (gamma - 1.0) / (2.0 * gamma)
        )
        post = right & (xi < s_r)
        pre = right & ~ (xi < s_r)
        rho[post] = star.rho_star_r
        u[post] = star.u_star
        p[post] = star.p_star
        rho[pre] = rho_r
        u[pre] = u_r
        p[pre] = p_r
    else:  # right rarefaction
        c_star_r = c_r * (star.p_star / p_r) ** ((gamma - 1.0) / (2.0 * gamma))
        head = u_r + c_r
        tail = star.u_star + c_star_r
        pre = right & (xi > head)
        fan = right & (xi <= head) & (xi >= tail)
        post = right & (xi < tail)
        rho[pre] = rho_r
        u[pre] = u_r
        p[pre] = p_r
        u[fan] = 2.0 / (gamma + 1.0) * (-c_r + 0.5 * (gamma - 1.0) * u_r + xi[fan])
        c_fan = xi[fan] - u[fan]
        rho[fan] = rho_r * (c_fan / c_r) ** (2.0 / (gamma - 1.0))
        p[fan] = p_r * (c_fan / c_r) ** (2.0 * gamma / (gamma - 1.0))
        rho[post] = star.rho_star_r
        u[post] = star.u_star
        p[post] = star.p_star

    return rho, u, p


def sod_solution(
    x: np.ndarray, t: float, x0: float = 0.5, gamma: float = 1.4
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact Sod shock-tube solution at time ``t`` (diaphragm at x0).

    Left state (1, 0, 1), right state (0.125, 0, 0.1).
    """
    if t <= 0:
        rho = np.where(x < x0, 1.0, 0.125)
        return rho, np.zeros_like(rho), np.where(x < x0, 1.0, 0.1)
    xi = (np.asarray(x, dtype=float) - x0) / t
    return sample_riemann(xi, 1.0, 0.0, 1.0, 0.125, 0.0, 0.1, gamma)
