"""Shallow-water equations — the geophysical-flow workload.

``h_t + div(h u) = 0``, ``(h u)_t + div(h u u) + grad(g h^2 / 2) = 0``:
a 2-variable-per-axis hyperbolic system with gravity-wave dynamics.
Structurally it is the Euler system with a ``p = g h^2 / 2`` barotropic
closure, so it reuses the whole MUSCL/Riemann machinery and adds a
second physical regime (dam breaks, gravity waves) for the AMR tests.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.scheme import FVScheme
from repro.solvers.state import RHO_FLOOR

__all__ = ["ShallowWaterScheme"]


class ShallowWaterScheme(FVScheme):
    """Finite-volume shallow-water equations in 1 or 2 dimensions.

    Conserved: ``[h, hu_0(, hu_1)]``.  Primitive: ``[h, u_0(, u_1)]``.

    Parameters
    ----------
    ndim:
        Spatial dimension, 1 or 2.
    gravity:
        Gravitational acceleration ``g``.
    h_floor:
        Optional water-depth floor: drying fronts can pull ``h``
        negative after an update stage; the floor clips it up in place
        (momentum untouched).  ``None`` (default) disables the fix-up.
    """

    def __init__(
        self,
        ndim: int,
        gravity: float = 9.81,
        *,
        h_floor: float | None = None,
        **kw,
    ) -> None:
        super().__init__(**kw)
        if ndim not in (1, 2):
            raise ValueError(f"ndim must be 1 or 2, got {ndim}")
        if gravity <= 0:
            raise ValueError("gravity must be positive")
        if h_floor is not None and h_floor <= 0:
            raise ValueError("h_floor must be positive")
        self.ndim = ndim
        self.gravity = gravity
        self.h_floor = h_floor
        self.nvar = ndim + 1

    def apply_floors(self, u: np.ndarray) -> None:
        """Clip the water depth up to ``h_floor``, in place (no-op when
        unconfigured)."""
        if self.h_floor is None:
            return
        np.maximum(u[0], self.h_floor, out=u[0])

    def cons_to_prim(self, u: np.ndarray) -> np.ndarray:
        w = np.empty_like(u)
        h = np.maximum(u[0], RHO_FLOOR)
        w[0] = h
        for a in range(self.ndim):
            w[1 + a] = u[1 + a] / h
        return w

    def prim_to_cons(self, w: np.ndarray) -> np.ndarray:
        u = np.empty_like(w)
        h = np.maximum(w[0], RHO_FLOOR)
        u[0] = h
        for a in range(self.ndim):
            u[1 + a] = h * w[1 + a]
        return u

    def flux(self, w: np.ndarray, axis: int) -> np.ndarray:
        h = w[0]
        un = w[1 + axis]
        f = np.empty_like(w)
        f[0] = h * un
        for a in range(self.ndim):
            f[1 + a] = h * un * w[1 + a]
        f[1 + axis] += 0.5 * self.gravity * h * h
        return f

    def normal_velocity(self, w: np.ndarray, axis: int) -> np.ndarray:
        return w[1 + axis]

    def char_speed(self, w: np.ndarray, axis: int) -> np.ndarray:
        return np.sqrt(self.gravity * np.maximum(w[0], RHO_FLOOR))
