"""Slope limiters for MUSCL (higher-resolution) reconstruction.

Given the one-sided differences ``a = q_i - q_{i-1}`` and
``b = q_{i+1} - q_i``, a limiter returns the limited cell slope.  All
limiters are total-variation-diminishing: they return zero at extrema
(where the differences disagree in sign) so reconstruction introduces no
new extrema — the van Leer higher-resolution framework the paper cites
as reference [6].
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = ["minmod", "van_leer", "mc", "superbee", "get_limiter", "LIMITERS"]

Limiter = Callable[[np.ndarray, np.ndarray], np.ndarray]


def minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The most diffusive TVD limiter: smaller-magnitude difference."""
    same = a * b > 0.0
    return np.where(same, np.where(np.abs(a) < np.abs(b), a, b), 0.0)


def van_leer(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Van Leer's harmonic-mean limiter (smooth, second order)."""
    same = a * b > 0.0
    denom = a + b
    safe = np.where(np.abs(denom) > 1e-300, denom, 1.0)
    return np.where(same, 2.0 * a * b / safe, 0.0)


def mc(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Monotonized-central limiter: min(2|a|, 2|b|, |a+b|/2), signed."""
    same = a * b > 0.0
    central = 0.5 * (a + b)
    lim = np.minimum(np.minimum(2.0 * np.abs(a), 2.0 * np.abs(b)), np.abs(central))
    return np.where(same, np.sign(central) * lim, 0.0)


def superbee(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Roe's superbee: the most compressive classic TVD limiter."""
    same = a * b > 0.0
    s1 = np.where(np.abs(a) < np.abs(2 * b), a, 2 * b)
    s2 = np.where(np.abs(2 * a) < np.abs(b), 2 * a, b)
    pick = np.where(np.abs(s1) > np.abs(s2), s1, s2)
    return np.where(same, pick, 0.0)


LIMITERS: Dict[str, Limiter] = {
    "minmod": minmod,
    "van_leer": van_leer,
    "mc": mc,
    "superbee": superbee,
}


def get_limiter(name: str) -> Limiter:
    """Look up a limiter by name; raises ValueError for unknown names."""
    try:
        return LIMITERS[name]
    except KeyError:
        raise ValueError(
            f"unknown limiter {name!r}; available: {sorted(LIMITERS)}"
        ) from None
