"""State-variable layouts and primitive/conserved conversions.

Three equation systems are supported, in increasing complexity:

* **Advection** — one scalar, used as the cheap correctness workload;
* **Euler** — compressible gas dynamics, ``ndim + 2`` variables;
* **Ideal MHD** — the paper's production system: 8 variables
  ``[rho, mx, my, mz, E, Bx, By, Bz]`` regardless of grid dimension
  (velocity and magnetic field always carry three components — the
  standard 2.5-D convention), with total energy including the magnetic
  contribution ``B^2/2`` (Lorentz–Heaviside units, mu0 = 1).

All conversions are vectorized over arrays of shape ``(nvar, ...)``.
Density and pressure floors keep the conversions robust near vacuum —
production block-AMR flow codes all do this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EulerLayout",
    "MHDLayout",
    "DEFAULT_GAMMA",
    "RHO_FLOOR",
    "P_FLOOR",
]

DEFAULT_GAMMA = 5.0 / 3.0
RHO_FLOOR = 1e-12
P_FLOOR = 1e-14


@dataclass(frozen=True)
class EulerLayout:
    """Compressible Euler equations in ``ndim`` dimensions.

    Conserved: ``[rho, mom_0..mom_{d-1}, E]``.
    Primitive: ``[rho, u_0..u_{d-1}, p]``.
    """

    ndim: int
    gamma: float = DEFAULT_GAMMA

    @property
    def nvar(self) -> int:
        return self.ndim + 2

    @property
    def i_energy(self) -> int:
        return self.ndim + 1

    def momentum_index(self, axis: int) -> int:
        return 1 + axis

    def cons_to_prim(self, u: np.ndarray) -> np.ndarray:
        """Conserved → primitive, with floors applied."""
        w = np.empty_like(u)
        rho = np.maximum(u[0], RHO_FLOOR)
        w[0] = rho
        ke = np.zeros_like(rho)
        for a in range(self.ndim):
            w[1 + a] = u[1 + a] / rho
            ke += u[1 + a] * w[1 + a]
        p = (self.gamma - 1.0) * (u[self.i_energy] - 0.5 * ke)
        w[self.i_energy] = np.maximum(p, P_FLOOR)
        return w

    def prim_to_cons(self, w: np.ndarray) -> np.ndarray:
        """Primitive → conserved."""
        u = np.empty_like(w)
        rho = np.maximum(w[0], RHO_FLOOR)
        u[0] = rho
        ke = np.zeros_like(rho)
        for a in range(self.ndim):
            u[1 + a] = rho * w[1 + a]
            ke += rho * w[1 + a] ** 2
        u[self.i_energy] = (
            np.maximum(w[self.i_energy], P_FLOOR) / (self.gamma - 1.0) + 0.5 * ke
        )
        return u

    def pressure(self, u: np.ndarray) -> np.ndarray:
        return self.cons_to_prim(u)[self.i_energy]

    def sound_speed(self, w: np.ndarray) -> np.ndarray:
        """Acoustic speed from primitives."""
        return np.sqrt(self.gamma * w[self.i_energy] / np.maximum(w[0], RHO_FLOOR))

    def max_signal_speed(self, u: np.ndarray) -> float:
        """max(|u_a| + c) over all cells and axes (CFL speed)."""
        w = self.cons_to_prim(u)
        c = self.sound_speed(w)
        best = 0.0
        for a in range(self.ndim):
            best = max(best, float(np.max(np.abs(w[1 + a]) + c)))
        return best

    def flux(self, w: np.ndarray, axis: int) -> np.ndarray:
        """Physical flux along ``axis`` from primitive variables."""
        rho = w[0]
        un = w[1 + axis]
        p = w[self.i_energy]
        f = np.empty_like(w)
        f[0] = rho * un
        for a in range(self.ndim):
            f[1 + a] = rho * un * w[1 + a]
        f[1 + axis] += p
        e = p / (self.gamma - 1.0)
        for a in range(self.ndim):
            e += 0.5 * rho * w[1 + a] ** 2
        f[self.i_energy] = un * (e + p)
        return f


@dataclass(frozen=True)
class MHDLayout:
    """Ideal MHD, 8 variables, any grid dimension (2.5-D convention).

    Conserved: ``[rho, mx, my, mz, E, Bx, By, Bz]`` with
    ``E = p/(gamma-1) + rho |u|^2 / 2 + |B|^2 / 2``.
    Primitive: ``[rho, ux, uy, uz, p, Bx, By, Bz]``.
    """

    gamma: float = DEFAULT_GAMMA

    nvar: int = 8
    I_RHO: int = 0
    I_MX: int = 1
    I_E: int = 4
    I_BX: int = 5

    def momentum_index(self, comp: int) -> int:
        return self.I_MX + comp

    def b_index(self, comp: int) -> int:
        return self.I_BX + comp

    def cons_to_prim(self, u: np.ndarray) -> np.ndarray:
        w = np.empty_like(u)
        rho = np.maximum(u[0], RHO_FLOOR)
        w[0] = rho
        ke = np.zeros_like(rho)
        for c in range(3):
            w[1 + c] = u[1 + c] / rho
            ke += u[1 + c] * w[1 + c]
        b2 = u[5] ** 2 + u[6] ** 2 + u[7] ** 2
        p = (self.gamma - 1.0) * (u[4] - 0.5 * ke - 0.5 * b2)
        w[4] = np.maximum(p, P_FLOOR)
        w[5:8] = u[5:8]
        return w

    def prim_to_cons(self, w: np.ndarray) -> np.ndarray:
        u = np.empty_like(w)
        rho = np.maximum(w[0], RHO_FLOOR)
        u[0] = rho
        ke = np.zeros_like(rho)
        for c in range(3):
            u[1 + c] = rho * w[1 + c]
            ke += rho * w[1 + c] ** 2
        b2 = w[5] ** 2 + w[6] ** 2 + w[7] ** 2
        u[4] = np.maximum(w[4], P_FLOOR) / (self.gamma - 1.0) + 0.5 * ke + 0.5 * b2
        u[5:8] = w[5:8]
        return u

    def fast_speed(self, w: np.ndarray, axis: int) -> np.ndarray:
        """Fast magnetosonic speed normal to ``axis`` from primitives."""
        rho = np.maximum(w[0], RHO_FLOOR)
        a2 = self.gamma * np.maximum(w[4], P_FLOOR) / rho
        b2 = (w[5] ** 2 + w[6] ** 2 + w[7] ** 2) / rho
        bn2 = w[5 + axis] ** 2 / rho
        s = a2 + b2
        disc = np.sqrt(np.maximum(s * s - 4.0 * a2 * bn2, 0.0))
        return np.sqrt(np.maximum(0.5 * (s + disc), 0.0))

    def max_signal_speed(self, u: np.ndarray, ndim: int) -> float:
        """max(|u_a| + c_fast,a) over cells and grid axes (CFL speed)."""
        w = self.cons_to_prim(u)
        best = 0.0
        for a in range(ndim):
            cf = self.fast_speed(w, a)
            best = max(best, float(np.max(np.abs(w[1 + a]) + cf)))
        return best

    def flux(self, w: np.ndarray, axis: int) -> np.ndarray:
        """Physical ideal-MHD flux along grid ``axis`` from primitives."""
        rho = w[0]
        un = w[1 + axis]
        p = w[4]
        bn = w[5 + axis]
        b2 = w[5] ** 2 + w[6] ** 2 + w[7] ** 2
        ptot = p + 0.5 * b2
        udotb = w[1] * w[5] + w[2] * w[6] + w[3] * w[7]
        f = np.empty_like(w)
        f[0] = rho * un
        for c in range(3):
            f[1 + c] = rho * un * w[1 + c] - bn * w[5 + c]
        f[1 + axis] += ptot
        e = p / (self.gamma - 1.0) + 0.5 * rho * (
            w[1] ** 2 + w[2] ** 2 + w[3] ** 2
        ) + 0.5 * b2
        f[4] = un * (e + ptot) - bn * udotb
        for c in range(3):
            f[5 + c] = un * w[5 + c] - w[1 + c] * bn
        f[5 + axis] = 0.0
        return f

    def div_b(self, u: np.ndarray, dx, ndim: int, g: int) -> np.ndarray:
        """Central-difference divergence of B over the interior cells.

        Shape: the interior (unpadded) cell array.  Used both by the
        Powell source term and as a diagnostic.
        """
        shape = u.shape[1:]
        interior = tuple(slice(g, s - g) for s in shape)
        div = np.zeros(tuple(s - 2 * g for s in shape))
        for a in range(ndim):
            plus = list(interior)
            minus = list(interior)
            plus[a] = slice(g + 1, shape[a] - g + 1)
            minus[a] = slice(g - 1, shape[a] - g - 1)
            div += (u[5 + a][tuple(plus)] - u[5 + a][tuple(minus)]) / (2.0 * dx[a])
        return div
