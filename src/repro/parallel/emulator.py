"""In-process distributed-memory emulation of the parallel algorithm.

The cost model (:mod:`repro.parallel.parallel_driver`) simulates *time*;
this module executes the parallel algorithm *for real*: every rank owns
private copies of its blocks, and ghost data moves **only** through
explicit messages — same-level slabs, source-side-restricted partial
sums, and bordered coarse regions prolonged receiver-side, exactly the
three payload kinds a production block-AMR code sends.  Nothing reads
another rank's memory.

Purpose:

* **validation** — an emulated run must reproduce the serial driver
  bit-for-bit (tested), proving the message schedule derived from the
  transfer geometry carries *all* the data the algorithm needs — the
  strongest correctness check the cost model's schedules can get;
* **accounting** — real message/byte counts to cross-check
  :func:`repro.parallel.exchange.build_schedule`.

Topology metadata (the forest structure) is replicated on every rank,
matching the paper-era design where each PE holds the full (small)
block tree but only its own block data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.block import Block
from repro.core.block_id import BlockID, IndexBox
from repro.core.forest import BlockForest
from repro.core.ghost import (
    BoundaryHandler,
    NeighborKind,
    Transfer,
    _neg,
    all_offsets,
    _region_transfers,
    apply_restrictions,
    gather_bordered,
    prolong_bordered,
    prolongation_border,
    restriction_contribution,
)
from repro.parallel.partition import Assignment, sfc_partition
from repro.solvers.scheme import FVScheme

__all__ = ["EmulatedMachine", "ExchangeStats"]


@dataclass
class ExchangeStats:
    """Wire traffic of the emulated exchanges."""

    n_messages: int = 0
    n_bytes: int = 0
    n_local: int = 0

    def add(self, payload_values: int) -> None:
        self.n_messages += 1
        self.n_bytes += payload_values * 8


class EmulatedMachine:
    """Run a block-AMR time step across emulated distributed ranks.

    Parameters
    ----------
    forest:
        Template forest carrying the topology and the initial data; its
        block data is *copied* into per-rank storage (the template is
        not modified by emulated stepping).
    n_ranks:
        Number of emulated ranks.
    scheme:
        Finite-volume scheme for stepping.
    bc:
        Physical boundary handler (applied rank-locally).
    """

    def __init__(
        self,
        forest: BlockForest,
        n_ranks: int,
        scheme: FVScheme,
        *,
        bc: Optional[BoundaryHandler] = None,
        assignment: Optional[Assignment] = None,
    ) -> None:
        self.topology = forest  # replicated metadata (structure only)
        self.scheme = scheme
        self.bc = bc
        self.n_ranks = n_ranks
        self.assignment = (
            assignment if assignment is not None else sfc_partition(forest, n_ranks)
        )
        # Private per-rank block storage (deep copies).
        self.rank_blocks: List[Dict[BlockID, Block]] = [
            {} for _ in range(n_ranks)
        ]
        for bid, block in forest.blocks.items():
            rank = self.assignment[bid]
            clone = Block(
                id=block.id,
                box=block.box,
                m=block.m,
                n_ghost=block.n_ghost,
                nvar=block.nvar,
                data=block.data.copy(),
            )
            clone.face_neighbors = block.face_neighbors
            self.rank_blocks[rank][bid] = clone
        self.stats = ExchangeStats()
        self.time = 0.0
        self._plan = self._build_plan()

    # ------------------------------------------------------------------

    def _build_plan(self):
        """All transfers of one exchange, from the replicated topology."""
        plan: List[Tuple[BlockID, Tuple[int, ...], List[Transfer]]] = []
        offsets = all_offsets(self.topology.ndim)
        for bid in self.topology.sorted_ids():
            block = self.topology.blocks[bid]
            for offset in offsets:
                ts = list(_region_transfers(self.topology, block, offset))
                if ts:
                    plan.append((bid, offset, ts))
        return plan

    def owner_rank(self, bid: BlockID) -> int:
        return self.assignment[bid]

    def local_block(self, bid: BlockID) -> Block:
        return self.rank_blocks[self.assignment[bid]][bid]

    # ------------------------------------------------------------------

    def exchange(self) -> None:
        """One full ghost exchange through explicit messages.

        Stage 1: same-level copies and restrictions (source side
        restricts before sending).  Stage 2: prolongations (source sends
        the bordered coarse region; the receiver prolongs).  Physical
        BCs run rank-locally after each stage, mirroring
        :func:`repro.core.ghost.fill_ghosts`.
        """
        ndim = self.topology.ndim
        order = self.topology.prolong_order

        # ---- stage 1: same + restriction --------------------------------
        for bid, _offset, transfers in self._plan:
            dst_rank = self.owner_rank(bid)
            dst = self.rank_blocks[dst_rank][bid]
            restrict_items = []
            for t in transfers:
                src_rank = self.owner_rank(t.src_id)
                src = self.rank_blocks[src_rank][t.src_id]
                if t.delta == 0:
                    payload = src.view(t.src_box).copy()  # the message
                    if src_rank != dst_rank:
                        self.stats.add(payload.size)
                    else:
                        self.stats.n_local += 1
                    dst.view(t.dst_box)[...] = payload
                elif t.delta > 0:
                    coarse_box, csum, wsum = restriction_contribution(
                        src, t, ndim
                    )
                    if src_rank != dst_rank:
                        self.stats.add(csum.size + wsum.size)
                    else:
                        self.stats.n_local += 1
                    restrict_items.append((t.dst_box, coarse_box, csum, wsum))
            if restrict_items:
                apply_restrictions(dst, restrict_items)
        self._apply_bc()

        # ---- stage 2: prolongation ---------------------------------------
        for bid, _offset, transfers in self._plan:
            dst_rank = self.owner_rank(bid)
            dst = self.rank_blocks[dst_rank][bid]
            for t in transfers:
                if t.delta >= 0:
                    continue
                src_rank = self.owner_rank(t.src_id)
                src = self.rank_blocks[src_rank][t.src_id]
                up = -t.delta
                border = prolongation_border(up, order)
                payload = gather_bordered(src, t.src_box, border)
                if src_rank != dst_rank:
                    self.stats.add(payload.size)
                else:
                    self.stats.n_local += 1
                fine = prolong_bordered(payload, t.src_box, up, order, ndim)
                cover = t.src_box.refined(up).shift(_neg(t.shift))
                sub = t.dst_box.slices(cover.lo)
                dst.view(t.dst_box)[...] = fine[(slice(None),) + sub]
        self._apply_bc()

    def _apply_bc(self) -> None:
        if self.bc is None:
            return
        for rank in range(self.n_ranks):
            for bid, block in self.rank_blocks[rank].items():
                for axis in range(self.topology.ndim):
                    other = tuple(
                        a for a in range(self.topology.ndim) if a != axis
                    )
                    for side in (0, 1):
                        face = 2 * axis + side
                        fn = block.face_neighbors.get(face)
                        if fn is not None and fn.kind == NeighborKind.BOUNDARY:
                            region = block.ghost_region(face, other)
                            self.bc(block, face, region, self.topology)

    # ------------------------------------------------------------------

    def advance(self, dt: float) -> None:
        """One (two-stage for order 2) time step across all ranks."""
        scheme = self.scheme
        g = self.topology.n_ghost
        self.exchange()
        if scheme.n_stages == 1:
            for rank in range(self.n_ranks):
                for block in self.rank_blocks[rank].values():
                    scheme.step(block.data, block.dx, dt, g)
        else:
            saved: Dict[BlockID, np.ndarray] = {}
            for rank in range(self.n_ranks):
                for block in self.rank_blocks[rank].values():
                    saved[block.id] = block.interior.copy()
                    scheme.step(block.data, block.dx, 0.5 * dt, g)
            self.exchange()
            for rank in range(self.n_ranks):
                for block in self.rank_blocks[rank].values():
                    rate = scheme.flux_divergence(block.data, block.dx, g)
                    block.interior[...] = saved[block.id] + dt * rate
        self.time += dt

    def gather(self) -> Dict[BlockID, np.ndarray]:
        """Collect every block's interior (the 'MPI_Gather' at the end)."""
        out: Dict[BlockID, np.ndarray] = {}
        for rank in range(self.n_ranks):
            for bid, block in self.rank_blocks[rank].items():
                out[bid] = block.interior.copy()
        return out

    def rank_cells(self) -> List[int]:
        """Computational cells owned per rank (load distribution)."""
        return [
            sum(b.n_cells for b in blocks.values())
            for blocks in self.rank_blocks
        ]
