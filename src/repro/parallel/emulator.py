"""In-process distributed-memory emulation of the parallel algorithm.

The cost model (:mod:`repro.parallel.parallel_driver`) simulates *time*;
this module executes the parallel algorithm *for real*: every rank owns
private copies of its blocks, and ghost data moves **only** through
explicit messages — same-level slabs, source-side-restricted partial
sums, and bordered coarse regions prolonged receiver-side, exactly the
three payload kinds a production block-AMR code sends.  Nothing reads
another rank's memory.

Purpose:

* **validation** — an emulated run must reproduce the serial driver
  bit-for-bit (tested), proving the message schedule derived from the
  transfer geometry carries *all* the data the algorithm needs — the
  strongest correctness check the cost model's schedules can get;
* **accounting** — real message/byte counts to cross-check
  :func:`repro.parallel.exchange.build_schedule`.

Topology metadata (the forest structure) is replicated on every rank,
matching the paper-era design where each PE holds the full (small)
block tree but only its own block data.

The machine is failure-aware: a :class:`repro.resilience.faults.FaultPlan`
can kill ranks and drop/corrupt wire messages at scripted steps.  The
machine *detects* such failures (lost blocks; missing or
checksum-mismatched payloads) and raises
:class:`~repro.resilience.faults.RankFailure` /
:class:`~repro.resilience.faults.MessageFailure`;
:func:`repro.resilience.recovery.run_with_recovery` then rolls the run
back to the last checkpoint, repartitions over the surviving ranks, and
replays — bit-for-bit identical to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.analysis.protocol import phase_effect
from repro.core.block import Block
from repro.core.block_id import BlockID, IndexBox
from repro.core.forest import BlockForest
from repro.core.ghost import (
    BoundaryHandler,
    NeighborKind,
    Transfer,
    _neg,
    all_offsets,
    _region_transfers,
    apply_restrictions,
    gather_bordered,
    prolong_bordered,
    prolongation_border,
    restriction_contribution,
)
from repro.obs.metrics import METRICS
from repro.parallel.partition import Assignment, sfc_partition
from repro.solvers.scheme import FVScheme

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.poison import GhostSanitizer
    from repro.analysis.races import InboundKey, RaceDetector
    from repro.resilience.faults import BitFlip, FaultPlan, RetryPolicy
    from repro.resilience.scrub import Scrubber

__all__ = ["EmulatedMachine", "ExchangeStats"]


@dataclass
class ExchangeStats:
    """Wire traffic of the emulated exchanges.

    Besides the ghost-exchange payloads, the stats charge the two
    resilience overheads so their cost is measurable against the
    productive traffic: partner-snapshot refreshes (the in-memory
    redundancy tier of :mod:`repro.resilience.partner`) and transient
    message retransmissions with their backoff wait.
    """

    n_messages: int = 0
    n_bytes: int = 0
    n_local: int = 0
    #: partner-redundancy snapshot traffic (localized-recovery tier)
    n_partner_messages: int = 0
    n_partner_bytes: int = 0
    #: transient-fault retransmissions and their summed backoff wait
    n_retries: int = 0
    retry_wait: float = 0.0

    def add(self, payload_values: int) -> None:
        self.n_messages += 1
        self.n_bytes += payload_values * 8
        if METRICS.enabled:
            METRICS.inc("exchange.messages")
            METRICS.inc("exchange.bytes", payload_values * 8)

    def add_partner(self, payload_values: int) -> None:
        self.n_partner_messages += 1
        self.n_partner_bytes += payload_values * 8
        if METRICS.enabled:
            METRICS.inc("exchange.partner_messages")
            METRICS.inc("exchange.partner_bytes", payload_values * 8)

    def add_retry(self, wait: float) -> None:
        self.n_retries += 1
        self.retry_wait += wait
        if METRICS.enabled:
            METRICS.inc("exchange.retries")


class EmulatedMachine:
    """Run a block-AMR time step across emulated distributed ranks.

    Parameters
    ----------
    forest:
        Template forest carrying the topology and the initial data; its
        block data is *copied* into per-rank storage (the template is
        not modified by emulated stepping).
    n_ranks:
        Number of emulated ranks.
    scheme:
        Finite-volume scheme for stepping.
    bc:
        Physical boundary handler (applied rank-locally).
    fault_plan:
        Optional scripted failures (see
        :class:`repro.resilience.faults.FaultPlan`).
    retry_policy:
        Optional :class:`repro.resilience.faults.RetryPolicy`; when
        given, message faults marked transient are retransmitted with
        capped exponential backoff instead of raising, and only retry
        exhaustion escalates to a :class:`MessageFailure`.
    sanitize:
        When True, run under the ghost-poison sanitizer: every rank's
        ghost layers are poisoned at construction and before each
        exchange, and verified filled afterwards (see
        :class:`repro.analysis.poison.GhostSanitizer`).  Because ghost
        data moves only through explicit messages here, a sanitizer trip
        pinpoints a missing message in the derived schedule.

    A :class:`repro.analysis.races.RaceDetector` can additionally be
    attached with :meth:`attach_race_detector`; the machine then emits
    publish / receive / ghost-read / consume / interior-write events so
    ordering violations in the bulk-synchronous schedule (write-after-
    publish, read-before-receive) surface immediately.
    """

    def __init__(
        self,
        forest: BlockForest,
        n_ranks: int,
        scheme: FVScheme,
        *,
        bc: Optional[BoundaryHandler] = None,
        assignment: Optional[Assignment] = None,
        fault_plan: Optional["FaultPlan"] = None,
        retry_policy: Optional["RetryPolicy"] = None,
        sanitize: bool = False,
    ) -> None:
        self.topology = forest  # replicated metadata (structure only)
        self.scheme = scheme
        self.bc = bc
        self.n_ranks = n_ranks
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.alive: List[bool] = [True] * n_ranks
        self.step_index = 0
        self._msg_index = 0
        self.assignment = (
            assignment if assignment is not None else sfc_partition(forest, n_ranks)
        )
        # Private per-rank block storage (deep copies).
        self.rank_blocks: List[Dict[BlockID, Block]] = [
            {} for _ in range(n_ranks)
        ]
        self._populate(forest, self.assignment)
        self.stats = ExchangeStats()
        self.time = 0.0
        self._plan = self._build_plan()
        self.race_detector: Optional["RaceDetector"] = None
        self.sanitizer: Optional["GhostSanitizer"] = None
        self.scrubber: Optional["Scrubber"] = None
        self._staged_flips: List["BitFlip"] = []
        if sanitize:
            from repro.analysis.poison import GhostSanitizer, poison_forest

            self.sanitizer = GhostSanitizer(depth=scheme.required_ghost)
            poison_forest(self._all_blocks())

    def _populate(self, forest: BlockForest, assignment: Assignment) -> None:
        """Fill per-rank storage with private copies of the block data."""
        for bid, block in forest.blocks.items():
            rank = assignment[bid]
            clone = Block(
                id=block.id,
                box=block.box,
                m=block.m,
                n_ghost=block.n_ghost,
                nvar=block.nvar,
                data=block.data.copy(),
            )
            # Connectivity metadata is replicated: take it from the
            # machine's own topology so restores from a checkpoint use
            # identical pointers.
            clone.face_neighbors = self.topology.blocks[bid].face_neighbors
            self.rank_blocks[rank][bid] = clone

    # ------------------------------------------------------------------

    def _build_plan(
        self,
    ) -> List[Tuple[BlockID, Tuple[int, ...], List[Transfer]]]:
        """All transfers of one exchange, from the replicated topology."""
        plan: List[Tuple[BlockID, Tuple[int, ...], List[Transfer]]] = []
        offsets = all_offsets(self.topology.ndim)
        for bid in self.topology.sorted_ids():
            block = self.topology.blocks[bid]
            for offset in offsets:
                ts = list(_region_transfers(self.topology, block, offset))
                if ts:
                    plan.append((bid, offset, ts))
        return plan

    def owner_rank(self, bid: BlockID) -> int:
        return self.assignment[bid]

    def local_block(self, bid: BlockID) -> Block:
        return self.rank_blocks[self.assignment[bid]][bid]

    def _all_blocks(self) -> Iterator[Block]:
        """Every block on every alive rank (sanitizer traversal)."""
        for rank in range(self.n_ranks):
            if self.alive[rank]:
                yield from self.rank_blocks[rank].values()

    def blocks_by_id(self) -> Dict[BlockID, Block]:
        """Every live block keyed by id, in deterministic SFC order —
        the traversal the scrubber and bitflip injection index into."""
        out: Dict[BlockID, Block] = {}
        for bid in self.topology.sorted_ids():
            rank = self.assignment.get(bid)
            if rank is None or not self.alive[rank]:
                continue
            block = self.rank_blocks[rank].get(bid)
            if block is not None:
                out[bid] = block
        return out

    def attach_scrubber(self, scrubber: "Scrubber") -> "Scrubber":
        """Attach a memory scrubber and tag the current state as the
        trusted baseline."""
        self.scrubber = scrubber
        scrubber.retag_blocks(self.blocks_by_id())
        return scrubber

    def scrub_retag(self) -> None:
        """Re-baseline every live block's integrity tag (called at the
        write boundaries: post-step, post-restore, post-repair)."""
        if self.scrubber is not None:
            self.scrubber.retag_blocks(self.blocks_by_id())

    def attach_race_detector(
        self, detector: Optional["RaceDetector"] = None
    ) -> "RaceDetector":
        """Attach (and return) an exchange race detector.

        The expected-inbound message sets are derived from the machine's
        own transfer plan — the same source of truth the exchange
        executes — keyed ``(src block, ghost-region offset)`` and split
        into stage 1 (same-level copies + restrictions, ``delta >= 0``)
        and stage 2 (prolongations, ``delta < 0``).
        """
        from repro.analysis.races import RaceDetector

        if detector is None:
            detector = RaceDetector()
        expected: Dict[object, Tuple[Set["InboundKey"], Set["InboundKey"]]] = {}
        for bid, offset, transfers in self._plan:
            stage1, stage2 = expected.setdefault(bid, (set(), set()))
            for t in transfers:
                (stage1 if t.delta >= 0 else stage2).add((t.src_id, offset))
        detector.set_expected_inbound(expected)
        self.race_detector = detector
        return detector

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    @property
    def alive_ranks(self) -> List[int]:
        """Ranks that have not failed (all of them before any fault)."""
        return [r for r in range(self.n_ranks) if self.alive[r]]

    def kill_rank(self, rank: int) -> None:
        """Simulate a node loss: the rank's private block data vanishes."""
        if not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} out of range")
        self.alive[rank] = False
        self.rank_blocks[rank] = {}

    def lost_blocks(self) -> List[BlockID]:
        """Blocks of the replicated topology no surviving rank owns."""
        owned = set()
        for rank in self.alive_ranks:
            owned.update(self.rank_blocks[rank])
        return [bid for bid in self.topology.sorted_ids() if bid not in owned]

    def restore(
        self,
        forest: BlockForest,
        *,
        time: float,
        step_index: Optional[int] = None,
        assignment: Optional[Assignment] = None,
    ) -> None:
        """Rebuild the machine's global state from a checkpoint forest.

        The block-to-rank assignment is recomputed over the *surviving*
        ranks (SFC repartition) unless one is given, every block's data
        is repopulated from ``forest``, and the simulation clock rewinds
        to the checkpoint — the receiving half of the global
        rollback-and-replay recovery protocol.
        """
        if set(forest.blocks) != set(self.topology.blocks):
            raise ValueError(
                "checkpoint topology does not match the machine's "
                "replicated topology"
            )
        alive = self.alive_ranks
        if not alive:
            raise RuntimeError("cannot restore: every rank has failed")
        if assignment is None:
            chunks = sfc_partition(self.topology, len(alive))
            assignment = {bid: alive[r] for bid, r in chunks.items()}
        else:
            bad = {assignment[bid] for bid in assignment} - set(alive)
            if bad:
                raise ValueError(f"assignment targets dead rank(s) {sorted(bad)}")
        self.assignment = assignment
        self.rank_blocks = [{} for _ in range(self.n_ranks)]
        self._populate(forest, assignment)
        if self.race_detector is not None:
            # A restore is the rollback after a failure that may have
            # aborted an exchange mid-epoch; close that dead epoch so
            # the checkpoint repopulation is not a write-after-publish.
            self.race_detector.end_epoch()
            for bid, rank in assignment.items():
                self.race_detector.on_interior_write(bid, rank)
        self.time = time
        if step_index is not None:
            self.step_index = step_index
        self._staged_flips.clear()
        self.scrub_retag()

    @phase_effect("heal")
    def adopt_block(self, bid: BlockID, rank: int, interior: np.ndarray) -> None:
        """Recreate one block on ``rank`` from a redundant interior copy.

        The receiving half of *localized* recovery: only the lost block
        is rebuilt (ghosts are garbage until the next exchange refills
        them from live neighbors) and the assignment is updated in
        place — no other rank's data moves.
        """
        if not self.alive[rank]:
            raise ValueError(f"cannot adopt block onto dead rank {rank}")
        tmpl = self.topology.blocks[bid]
        clone = Block(
            id=tmpl.id,
            box=tmpl.box,
            m=tmpl.m,
            n_ghost=tmpl.n_ghost,
            nvar=tmpl.nvar,
            data=np.zeros_like(tmpl.data),
        )
        clone.face_neighbors = tmpl.face_neighbors
        clone.interior[...] = interior
        old = self.assignment.get(bid)
        if old is not None and old != rank:
            self.rank_blocks[old].pop(bid, None)
        self.rank_blocks[rank][bid] = clone
        self.assignment[bid] = rank
        if self.race_detector is not None:
            self.race_detector.on_interior_write(bid, rank)
        if self.scrubber is not None:
            self.scrubber.retag_block(bid, clone)

    def _send(self, payload: np.ndarray, src_rank: int, dst_rank: int,
              t: Transfer, *, extra_values: int = 0) -> np.ndarray:
        """Move one payload between ranks, injecting planned faults.

        Remote payloads are counted in the wire stats and checked
        against the fault plan: a "drop" fault never arrives (the
        timeout analogue), a "corrupt" fault flips the payload and is
        caught by the receiver's content checksum.  Faults marked
        transient are retransmitted under the machine's
        :class:`~repro.resilience.faults.RetryPolicy` — each attempt
        re-charges the wire stats plus the backoff wait — and only
        retry exhaustion (or a fatal fault) raises
        :class:`~repro.resilience.faults.MessageFailure`.
        """
        if src_rank == dst_rank:
            self.stats.n_local += 1
            if METRICS.enabled:
                METRICS.inc("exchange.local")
            return payload
        index = self._msg_index
        self._msg_index += 1
        if self._staged_flips:
            for f in list(self._staged_flips):
                if f.block == index:
                    # The staging buffer is corrupted after the sender
                    # computed its content CRC, so the receiver's
                    # independent check catches the mismatch — loud,
                    # like a scripted "corrupt" message fault, but
                    # classified as silent-corruption for the ladder.
                    self._staged_flips.remove(f)
                    from repro.resilience.faults import apply_bitflip
                    from repro.resilience.scrub import (
                        CorruptEntry,
                        CorruptionError,
                    )

                    self.stats.add(payload.size + extra_values)
                    apply_bitflip(payload, f.byte, f.bit)
                    raise CorruptionError(
                        self.step_index,
                        [
                            CorruptEntry(
                                "staging", block=t.dst_id, rank=dst_rank
                            )
                        ],
                    )
        attempt = 0
        while True:
            self.stats.add(payload.size + extra_values)
            fault = None
            if self.fault_plan is not None:
                fault = self.fault_plan.take_message_fault(
                    self.step_index, index
                )
            if fault is None:
                return payload
            # The receiver notices the failure: a dropped payload times
            # out, a corrupted one fails the CRC32 content check (any
            # tampering breaks the checksum computed independently on
            # both sides of the wire — a flipped-in NaN always does).
            if (
                fault.transient
                and self.retry_policy is not None
                and attempt < self.retry_policy.max_retries
            ):
                wait = self.retry_policy.backoff(
                    attempt, step=self.step_index, index=index
                )
                self.stats.add_retry(wait)
                attempt += 1
                continue
            from repro.resilience.faults import MessageFailure

            raise MessageFailure(
                self.step_index, index, fault.mode, t.dst_id, t.src_id,
                retries=attempt,
            )

    # ------------------------------------------------------------------

    @phase_effect("exchange")
    def exchange(self) -> None:
        """One full ghost exchange through explicit messages.

        Stage 1: same-level copies and restrictions (source side
        restricts before sending).  Stage 2: prolongations (source sends
        the bordered coarse region; the receiver prolongs).  Physical
        BCs run rank-locally after each stage, mirroring
        :func:`repro.core.ghost.fill_ghosts`.
        """
        ndim = self.topology.ndim
        order = self.topology.prolong_order
        if not all(self.alive):
            lost = self.lost_blocks()
            if lost:
                raise RuntimeError(
                    f"cannot exchange: {len(lost)} block(s) lost to failed "
                    "ranks; restore from a checkpoint first"
                )
        det = self.race_detector
        if self.sanitizer is not None:
            self.sanitizer.before_exchange(self._all_blocks())
        if det is not None:
            det.begin_epoch()

        # ---- stage 1: same + restriction --------------------------------
        for bid, offset, transfers in self._plan:
            dst_rank = self.owner_rank(bid)
            dst = self.rank_blocks[dst_rank][bid]
            restrict_items = []
            for t in transfers:
                src_rank = self.owner_rank(t.src_id)
                src = self.rank_blocks[src_rank][t.src_id]
                if t.delta == 0:
                    if det is not None:
                        det.on_publish(t.src_id, bid, offset, src_rank)
                    payload = src.view(t.src_box).copy()  # the message
                    payload = self._send(payload, src_rank, dst_rank, t)
                    dst.view(t.dst_box)[...] = payload
                    if det is not None:
                        det.on_receive(bid, t.src_id, offset, dst_rank)
                elif t.delta > 0:
                    if det is not None:
                        det.on_publish(t.src_id, bid, offset, src_rank)
                    coarse_box, csum, wsum = restriction_contribution(
                        src, t, ndim
                    )
                    csum = self._send(
                        csum, src_rank, dst_rank, t, extra_values=wsum.size
                    )
                    restrict_items.append((t.dst_box, coarse_box, csum, wsum))
                    if det is not None:
                        det.on_receive(bid, t.src_id, offset, dst_rank)
            if restrict_items:
                apply_restrictions(dst, restrict_items)
        self._apply_bc()

        # ---- stage 2: prolongation ---------------------------------------
        for bid, offset, transfers in self._plan:
            dst_rank = self.owner_rank(bid)
            dst = self.rank_blocks[dst_rank][bid]
            for t in transfers:
                if t.delta >= 0:
                    continue
                src_rank = self.owner_rank(t.src_id)
                src = self.rank_blocks[src_rank][t.src_id]
                up = -t.delta
                border = prolongation_border(up, order)
                if det is not None:
                    # The bordered gather may read the source's own
                    # ghost cells — legal only once its stage-1 inbound
                    # messages have all arrived in this epoch.
                    det.on_ghost_read(t.src_id, src_rank)
                    det.on_publish(t.src_id, bid, offset, src_rank)
                payload = gather_bordered(src, t.src_box, border)
                payload = self._send(payload, src_rank, dst_rank, t)
                fine = prolong_bordered(payload, t.src_box, up, order, ndim)
                cover = t.src_box.refined(up).shift(_neg(t.shift))
                sub = t.dst_box.slices(cover.lo)
                dst.view(t.dst_box)[...] = fine[(slice(None),) + sub]
                if det is not None:
                    det.on_receive(bid, t.src_id, offset, dst_rank)
        self._apply_bc()
        if det is not None:
            det.end_epoch()
        if self.sanitizer is not None:
            self.sanitizer.after_exchange(self._all_blocks())

    def _apply_bc(self) -> None:
        if self.bc is None:
            return
        for rank in range(self.n_ranks):
            for bid, block in self.rank_blocks[rank].items():
                for axis in range(self.topology.ndim):
                    other = tuple(
                        a for a in range(self.topology.ndim) if a != axis
                    )
                    for side in (0, 1):
                        face = 2 * axis + side
                        fn = block.face_neighbors.get(face)
                        if fn is not None and fn.kind == NeighborKind.BOUNDARY:
                            region = block.ghost_region(face, other)
                            self.bc(block, face, region, self.topology)

    # ------------------------------------------------------------------

    def advance(self, dt: float) -> None:
        """One (two-stage for order 2) time step across all ranks.

        With a fault plan attached, scripted rank deaths fire before the
        step executes; the resulting lost blocks are detected and
        reported by raising :class:`~repro.resilience.faults.RankFailure`
        (message faults surface mid-exchange as
        :class:`~repro.resilience.faults.MessageFailure`).  The machine
        is then in a partial state; recover with :meth:`restore`.
        """
        if self.fault_plan is not None:
            killed = [
                r for r in self.fault_plan.kills_at(self.step_index)
                if 0 <= r < self.n_ranks and self.alive[r]
            ]
            if killed:
                for rank in killed:
                    self.kill_rank(rank)
                lost = self.lost_blocks()
                # Killing a rank that owned no blocks (possible when
                # n_ranks > n_blocks) loses no data, so the step simply
                # proceeds over the survivors instead of raising.
                if lost:
                    from repro.resilience.faults import RankFailure

                    raise RankFailure(
                        self.step_index, tuple(killed), tuple(lost)
                    )
        if self.fault_plan is not None and self.fault_plan.bitflips:
            from repro.resilience.scrub import apply_scripted_flips

            partner = self.scrubber.partner if self.scrubber is not None else None
            self._staged_flips.extend(
                apply_scripted_flips(
                    self.fault_plan.flips_at(self.step_index),
                    self.blocks_by_id(),
                    partner,
                )
            )
        if self.scrubber is not None and self.scrubber.due(self.step_index):
            from repro.resilience.scrub import CorruptionError

            entries = self.scrubber.scrub_blocks(
                self.blocks_by_id(),
                rank_of=self.assignment,
                partner=self.scrubber.partner,
            )
            if entries:
                raise CorruptionError(self.step_index, entries)
        self._msg_index = 0
        scheme = self.scheme
        g = self.topology.n_ghost
        det = self.race_detector
        if det is not None:
            det.begin_step()
        self.exchange()
        if scheme.n_stages == 1:
            for rank in self.alive_ranks:
                for block in self.rank_blocks[rank].values():
                    if det is not None:
                        det.on_consume(block.id, rank)
                    scheme.step(block.data, block.dx, dt, g)
                    if det is not None:
                        det.on_interior_write(block.id, rank)
        else:
            saved: Dict[BlockID, np.ndarray] = {}
            for rank in self.alive_ranks:
                for block in self.rank_blocks[rank].values():
                    if det is not None:
                        det.on_consume(block.id, rank)
                    saved[block.id] = block.interior.copy()
                    scheme.step(block.data, block.dx, 0.5 * dt, g)
                    if det is not None:
                        det.on_interior_write(block.id, rank)
            self.exchange()
            for rank in self.alive_ranks:
                for block in self.rank_blocks[rank].values():
                    if det is not None:
                        det.on_consume(block.id, rank)
                    rate = scheme.flux_divergence(block.data, block.dx, g)
                    block.interior[...] = saved[block.id] + dt * rate
                    if det is not None:
                        det.on_interior_write(block.id, rank)
        if self.sanitizer is not None:
            self.sanitizer.after_stage(self._all_blocks())
        self.time += dt
        self.step_index += 1
        # Staging flips whose message index never came up this step are
        # dropped — the staging buffers they targeted no longer exist.
        self._staged_flips.clear()
        self.scrub_retag()

    def gather(self) -> Dict[BlockID, np.ndarray]:
        """Collect every surviving block's interior (the 'MPI_Gather' at
        the end).  After a clean run or a completed recovery this covers
        the whole topology; blocks lost to an unrecovered rank failure
        are absent (see :meth:`lost_blocks`)."""
        out: Dict[BlockID, np.ndarray] = {}
        for rank in self.alive_ranks:
            for bid, block in self.rank_blocks[rank].items():
                out[bid] = block.interior.copy()
        return out

    def rank_cells(self) -> List[int]:
        """Computational cells owned per *alive* rank (load distribution).

        Dead ranks are excluded so post-recovery imbalance metrics
        reflect the surviving machine rather than averaging in zeros."""
        return [
            sum(b.n_cells for b in self.rank_blocks[rank].values())
            for rank in self.alive_ranks
        ]
