"""Rank supervision for the real-process backend.

The supervisor side of :mod:`repro.parallel.procmachine`: heartbeat
monitoring, per-phase reply deadlines, and the failure taxonomy.  The
design separates two questions a distributed runtime must answer about
an unresponsive peer:

* **is the process alive?** — the OS answers exactly (``Process.
  is_alive`` / exit codes), and a tiny shared-memory heartbeat board
  (one counter per rank, bumped by a daemon thread in each worker)
  distinguishes *computing slowly* from *wedged*: a rank that blows the
  soft reply deadline but keeps heartbeating is given until the hard
  deadline; a rank whose heartbeat has gone stale is declared hung and
  killed, because a wedged process would otherwise stall the whole
  step barrier forever.
* **did the reply arrive intact?** — every control-plane reply carries
  a CRC32 over its body; a corrupted or dropped reply is retried with
  the machine's :class:`~repro.resilience.faults.RetryPolicy` capped
  exponential backoff (seeded jitter, so a replayed recovery window
  backs off identically), and only retry exhaustion escalates the rank
  to *unreachable*.

All wall-clock reads go through :func:`repro.util.timing.wall_clock`
(the repro-lint REPRO104 contract); heartbeat freshness is judged by
*counter movement observed by the supervisor*, never by comparing raw
clock values across processes.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.util.timing import wall_clock

__all__ = [
    "ProcConfig",
    "FailureKind",
    "RankDeath",
    "HeartbeatMonitor",
    "reply_crc",
]


@dataclass(frozen=True)
class ProcConfig:
    """Timeout and supervision tuning for the process backend.

    The defaults suit tests and CI on oversubscribed cores: the soft
    deadline only triggers a probe, so false positives cost one resend;
    only the heartbeat and hard deadlines can declare a rank dead.
    """

    #: soft per-phase reply deadline; passing it sends a resend probe
    phase_timeout: float = 10.0
    #: absolute per-phase deadline — a heartbeating but never-replying
    #: rank is declared hung when this expires
    hard_timeout: float = 60.0
    #: worker heartbeat period
    heartbeat_interval: float = 0.05
    #: heartbeat silence after which a rank is declared hung
    heartbeat_timeout: float = 5.0
    #: supervisor polling granularity while awaiting replies
    poll_interval: float = 0.005
    #: respawn attempts per dead rank before degrading to redistribution
    respawn_max: int = 3
    #: grace period for a worker to exit after a shutdown command
    shutdown_timeout: float = 2.0

    def __post_init__(self) -> None:
        if self.phase_timeout <= 0 or self.hard_timeout <= 0:
            raise ValueError("timeouts must be > 0")
        if self.hard_timeout < self.phase_timeout:
            raise ValueError("hard_timeout must be >= phase_timeout")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat settings must be > 0")
        if self.respawn_max < 0:
            raise ValueError("respawn_max must be >= 0")


class FailureKind:
    """How a rank died, as classified by the supervisor."""

    CLEAN_EXIT = "clean-exit"  #: exited with status 0 without being asked
    SIGKILL = "sigkill"  #: killed by SIGKILL (scripted fault or operator)
    CRASH = "crash"  #: non-zero exit / other signal
    HANG = "hang"  #: heartbeat went stale or hard deadline expired
    UNREACHABLE = "unreachable"  #: reply retries exhausted (drop/corrupt)

    ALL = (CLEAN_EXIT, SIGKILL, CRASH, HANG, UNREACHABLE)


@dataclass(frozen=True)
class RankDeath:
    """One classified rank failure."""

    rank: int
    kind: str
    detail: str
    #: step index at which the supervisor declared the death
    step: int = -1


def classify_exit(exitcode: Optional[int]) -> str:
    """Map a ``multiprocessing.Process.exitcode`` to a failure kind."""
    if exitcode is None:
        return FailureKind.HANG
    if exitcode == 0:
        return FailureKind.CLEAN_EXIT
    if exitcode == -9:  # SIGKILL
        return FailureKind.SIGKILL
    return FailureKind.CRASH


def reply_crc(body: Dict[str, Any], seq: int, rank: int) -> int:
    """Content checksum both sides compute independently over a reply."""
    text = json.dumps(body, sort_keys=True, default=str)
    return zlib.crc32(f"{seq}:{rank}:{text}".encode())


class HeartbeatMonitor:
    """Supervisor-side view of the shared heartbeat board.

    The board is a ``(n_ranks,)`` float64 counter array in shared
    memory; each worker's heartbeat thread increments its slot.  The
    monitor records *when it last saw each counter move* on its own
    clock, so freshness never depends on cross-process clock agreement.
    """

    def __init__(self, board: np.ndarray) -> None:
        self.board = board
        now = wall_clock()
        self._last_value: List[float] = [float(v) for v in board]
        self._last_seen: List[float] = [now] * board.shape[0]

    def reset(self, rank: int) -> None:
        """Forget history for ``rank`` (respawn reuses its slot)."""
        self._last_value[rank] = float(self.board[rank])
        self._last_seen[rank] = wall_clock()

    def age(self, rank: int) -> float:
        """Seconds since the supervisor saw ``rank``'s counter move."""
        now = wall_clock()
        value = float(self.board[rank])
        if value != self._last_value[rank]:
            self._last_value[rank] = value
            self._last_seen[rank] = now
        return now - self._last_seen[rank]

    def is_fresh(self, rank: int, timeout: float) -> bool:
        return self.age(rank) <= timeout
