"""Simulated distributed-memory machine and parallel AMR driver."""

from repro.parallel.emulator import EmulatedMachine, ExchangeStats
from repro.parallel.procmachine import ProcessMachine
from repro.parallel.shared_arena import SharedBlockArena, leaked_segments
from repro.parallel.supervisor import (
    FailureKind,
    HeartbeatMonitor,
    ProcConfig,
    RankDeath,
)
from repro.parallel.exchange import BYTES_PER_VALUE, MessageSchedule, build_schedule
from repro.parallel.loadbalance import migration_bytes, migration_plan, rebalance
from repro.parallel.machine import CRAY_T3D, MachineSpec, TorusTopology, VirtualMachine
from repro.parallel.metrics import (
    StepTimeReport,
    fixed_size_speedup,
    gflops,
    redundancy_overhead,
    scaled_efficiency,
)
from repro.parallel.parallel_driver import ParallelCostConfig, ParallelSimulation
from repro.parallel.trace import TraceEvent, TracingMachine, render_gantt
from repro.parallel.partition import (
    Assignment,
    partition_cut_fraction,
    partition_imbalance,
    round_robin_partition,
    sfc_partition,
)

__all__ = [
    "EmulatedMachine",
    "ExchangeStats",
    "ProcessMachine",
    "SharedBlockArena",
    "leaked_segments",
    "FailureKind",
    "HeartbeatMonitor",
    "ProcConfig",
    "RankDeath",
    "BYTES_PER_VALUE",
    "MessageSchedule",
    "build_schedule",
    "migration_bytes",
    "migration_plan",
    "rebalance",
    "CRAY_T3D",
    "MachineSpec",
    "TorusTopology",
    "VirtualMachine",
    "StepTimeReport",
    "fixed_size_speedup",
    "gflops",
    "redundancy_overhead",
    "scaled_efficiency",
    "ParallelCostConfig",
    "ParallelSimulation",
    "TraceEvent",
    "TracingMachine",
    "render_gantt",
    "Assignment",
    "partition_cut_fraction",
    "partition_imbalance",
    "round_robin_partition",
    "sfc_partition",
]
