"""Worker-process side of the real-process parallel backend.

Each rank of a :class:`~repro.parallel.procmachine.ProcessMachine` runs
:func:`worker_main` in a forked OS process.  The worker is a pure
command executor: it blocks on its control pipe, executes one *phase*
per command — a barrier-synchronous slice of the step — and replies
with a CRC32-checksummed acknowledgement.  All block data lives in the
shared-memory segments (:mod:`repro.parallel.shared_arena`); the pipes
carry only control messages, never payloads.

Phase protocol (each command is a global barrier: the supervisor sends
the next phase only after every alive rank acknowledged the previous
one):

``exch1``
    Stage 1 of the ghost exchange for the rank's own blocks: same-level
    copies and source-side restrictions, reading only *interiors* of
    neighbor segments (stable during the exchange), then physical BCs.
``exch2-gather``
    Read-only half of stage 2: gather every bordered coarse source
    region (which may read ghosts stage 1 just filled) into private
    scratch.  Nothing is written, so concurrent readers cannot race.
``exch2-write``
    Write half of stage 2: prolong the gathered payloads into the
    rank's own ghost regions, then BCs.  Splitting stage 2 around a
    barrier makes the concurrent exchange bit-for-bit equal to the
    serial one regardless of cross-rank timing: every gather sees
    exactly the post-stage-1 state, matching the two-stage data
    dependency contract checked by the race detector.
``step``, ``predictor``, ``corrector``
    Rank-local compute on own blocks (reads own ghosts, writes own
    interiors).
``config``
    (Re)build the worker's view of the world: attach segments, create
    Block views per the row locator, recompute the exchange plan
    filter.  Sent at spawn, after recoveries, and after respawns.
``resend``
    Supervision probe: retransmit the cached reply for the last
    executed sequence number (idempotent recovery for dropped or
    corrupted acknowledgements).
``shutdown``
    Acknowledge and exit cleanly.

Deterministic scripted misbehavior for the failure-detector tests is
injected through ``test_hooks`` — ``hang``, ``slow:<seconds>``,
``exit``, ``mute``, ``garble``, ``garble-forever`` keyed by
``(step, phase)`` — so edge cases like "slow but alive" and "heartbeat
stale" are exactly reproducible.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from multiprocessing.connection import Connection
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.protocol import phase_effect
from repro.core.block import Block
from repro.core.block_id import BlockID
from repro.core.forest import BlockForest
from repro.core.integrity import content_crc
from repro.core.ghost import (
    BoundaryHandler,
    NeighborKind,
    Transfer,
    _neg,
    all_offsets,
    _region_transfers,
    apply_restrictions,
    gather_bordered,
    prolong_bordered,
    prolongation_border,
    restriction_contribution,
)
from repro.parallel.shared_arena import SharedBlockArena
from repro.resilience.faults import apply_bitflip
from repro.solvers.scheme import FVScheme

__all__ = ["WorkerSpec", "worker_main", "build_exchange_plan"]

#: transfer plan entry: (dst block, ghost-region offset, transfers)
PlanEntry = Tuple[BlockID, Tuple[int, ...], List[Transfer]]


def build_exchange_plan(topology: BlockForest) -> List[PlanEntry]:
    """All transfers of one exchange, from the replicated topology.

    Identical to the emulated machine's plan — both sides of the
    process backend (supervisor and workers) derive their schedules
    from this single source of truth, in the same deterministic order.
    """
    plan: List[PlanEntry] = []
    offsets = all_offsets(topology.ndim)
    for bid in topology.sorted_ids():
        block = topology.blocks[bid]
        for offset in offsets:
            ts = list(_region_transfers(topology, block, offset))
            if ts:
                plan.append((bid, offset, ts))
    return plan


@dataclass
class WorkerSpec:
    """Everything a freshly forked worker needs (passed through fork)."""

    rank: int
    conn: Connection
    topology: BlockForest
    scheme: FVScheme
    bc: Optional[BoundaryHandler]
    heartbeat_name: str
    heartbeat_interval: float
    config: Dict[str, Any]
    #: scripted misbehavior: (step, phase) -> action
    test_hooks: Dict[Tuple[int, str], str] = field(default_factory=dict)
    #: connections inherited from the parent that this worker must close
    #: so a dead supervisor EOFs every worker instead of leaking pipes
    inherited: List[Connection] = field(default_factory=list)


class _Heartbeat:
    """Daemon thread bumping this rank's slot on the shared board."""

    def __init__(self, name: str, rank: int, interval: float) -> None:
        # Forked workers share the creator's resource tracker, so the
        # attach re-registers the name there (a set: no-op) — never
        # unregister, that would erase the creator's registration.
        self.shm = shared_memory.SharedMemory(name=name)
        self.board: Optional[np.ndarray] = np.frombuffer(
            self.shm.buf, dtype=np.float64
        )
        self.rank = rank
        self.interval = interval
        self.paused = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            board = self.board
            if board is None:
                return
            if not self.paused.is_set():
                board[self.rank] += 1.0
            time.sleep(self.interval)

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=1.0)
        # Drop the board view so the mapping can actually close.
        self.board = None
        try:
            self.shm.close()
        except BufferError:
            # The join timed out with the thread mid-increment; the
            # mapping dies with the process instead.
            pass


class _Worker:
    """Mutable worker state: segments, block views, exchange plan."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.rank = spec.rank
        self.conn = spec.conn
        self.topology = spec.topology
        self.scheme = spec.scheme
        self.bc = spec.bc
        self.hooks = dict(spec.test_hooks)
        self.plan = build_exchange_plan(spec.topology)
        self.segments: Dict[int, SharedBlockArena] = {}
        self.blocks: Dict[BlockID, Block] = {}
        self.assignment: Dict[BlockID, int] = {}
        self.saved: Dict[BlockID, np.ndarray] = {}
        self._payloads: List[np.ndarray] = []
        self._payload_crcs: List[int] = []

    # -- configuration --------------------------------------------------

    @phase_effect("config")
    def apply_config(self, cfg: Dict[str, Any]) -> Dict[str, Any]:
        """Attach segments and rebuild block views per the row locator."""
        wanted: Dict[int, Tuple[str, int, int]] = cfg["segments"]
        # Drop every old Block view first: a stale segment cannot close
        # while views into its pool are still referenced.
        self.blocks = {}
        self.saved = {}
        self._payloads = []
        self._payload_crcs = []
        for rank in list(self.segments):
            seg = self.segments[rank]
            if rank not in wanted or wanted[rank][0] != seg.name:
                seg.destroy()  # attach-side: close only, never unlink
                del self.segments[rank]
        geom = self.topology
        for rank, (name, capacity, mirror_capacity) in wanted.items():
            if rank not in self.segments:
                self.segments[rank] = SharedBlockArena(
                    geom.m, geom.n_ghost, geom.nvar,
                    capacity=capacity, mirror_capacity=mirror_capacity,
                    name=name, create=False,
                )
        self.assignment = dict(cfg["assignment"])
        locator: Dict[BlockID, Tuple[int, int]] = cfg["locator"]
        self.blocks = {}
        for bid, (rank, row) in locator.items():
            tmpl = self.topology.blocks[bid]
            blk = Block(
                id=tmpl.id, box=tmpl.box, m=tmpl.m,
                n_ghost=tmpl.n_ghost, nvar=tmpl.nvar,
                data=self.segments[rank].pool_view(row),
            )
            blk.face_neighbors = tmpl.face_neighbors
            self.blocks[bid] = blk
        self.saved = {}
        self._payloads = []
        self._payload_crcs = []
        return {"status": "ok", "n_blocks": len(self.own_blocks())}

    def own_blocks(self) -> List[Block]:
        """This rank's blocks in deterministic (Morton) order."""
        return [
            self.blocks[bid]
            for bid in self.topology.sorted_ids()
            if self.assignment.get(bid) == self.rank
            and bid in self.blocks
        ]

    # -- exchange phases ------------------------------------------------

    def _apply_bc(self) -> None:
        if self.bc is None:
            return
        ndim = self.topology.ndim
        for block in self.own_blocks():
            for axis in range(ndim):
                other = tuple(a for a in range(ndim) if a != axis)
                for side in (0, 1):
                    face = 2 * axis + side
                    fn = block.face_neighbors.get(face)
                    if fn is not None and fn.kind == NeighborKind.BOUNDARY:
                        region = block.ghost_region(face, other)
                        self.bc(block, face, region, self.topology)

    @phase_effect("exch1")
    def exch1(self) -> Dict[str, Any]:
        """Stage 1: same-level copies + restrictions into own ghosts."""
        ndim = self.topology.ndim
        n_remote = 0
        n_values = 0
        n_local = 0
        for bid, offset, transfers in self.plan:
            if self.assignment.get(bid) != self.rank:
                continue
            dst = self.blocks[bid]
            restrict_items = []
            for t in transfers:
                src = self.blocks[t.src_id]
                remote = self.assignment[t.src_id] != self.rank
                if t.delta == 0:
                    payload = src.view(t.src_box)
                    dst.view(t.dst_box)[...] = payload
                    if remote:
                        n_remote += 1
                        n_values += payload.size
                    else:
                        n_local += 1
                elif t.delta > 0:
                    coarse_box, csum, wsum = restriction_contribution(
                        src, t, ndim
                    )
                    restrict_items.append((t.dst_box, coarse_box, csum, wsum))
                    if remote:
                        n_remote += 1
                        n_values += csum.size + wsum.size
                    else:
                        n_local += 1
            if restrict_items:
                apply_restrictions(dst, restrict_items)
        self._apply_bc()
        return {
            "status": "ok", "n_messages": n_remote,
            "n_values": n_values, "n_local": n_local,
        }

    @phase_effect("exch2-gather")
    def exch2_gather(self, cmd: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Read-only half of stage 2: gather bordered coarse sources.

        When the supervisor asks (``payload={"verify": True}`` — the
        scrub tier is on), the worker CRC-tags every gathered payload;
        :meth:`exch2_write` re-checks the tags before prolonging, so a
        bit flipped in the staging buffers between the two phases is
        caught before it ever reaches a ghost region.
        """
        order = self.topology.prolong_order
        n_remote = 0
        n_values = 0
        n_local = 0
        payloads: List[np.ndarray] = []
        for bid, offset, transfers in self.plan:
            if self.assignment.get(bid) != self.rank:
                continue
            for t in transfers:
                if t.delta >= 0:
                    continue
                src = self.blocks[t.src_id]
                border = prolongation_border(-t.delta, order)
                payload = gather_bordered(src, t.src_box, border)
                payloads.append(payload)
                if self.assignment[t.src_id] != self.rank:
                    n_remote += 1
                    n_values += payload.size
                else:
                    n_local += 1
        self._payloads = payloads
        if cmd is not None and cmd.get("verify"):
            self._payload_crcs = [content_crc(p) for p in payloads]
        else:
            self._payload_crcs = []
        return {
            "status": "ok", "n_messages": n_remote,
            "n_values": n_values, "n_local": n_local,
            "n_payloads": len(payloads),
        }

    @phase_effect("exch2-write")
    def exch2_write(self, cmd: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Write half of stage 2: prolong gathered payloads, then BCs.

        Scripted staging bitflips addressed to this rank are applied
        first (after the gather-side CRC tags were taken), then every
        payload is re-checked against its tag: a mismatched payload is
        *not* prolonged — the corruption stays contained in the staging
        buffer — and its index is reported back so the supervisor can
        raise the corruption for the recovery ladder.
        """
        ndim = self.topology.ndim
        order = self.topology.prolong_order
        payloads = self._payloads
        if cmd is not None and payloads:
            for f in cmd.get("flips", ()):
                if int(f["rank"]) == self.rank:
                    apply_bitflip(
                        payloads[int(f["index"]) % len(payloads)],
                        f["byte"], f["bit"],
                    )
        bad = set()
        if self._payload_crcs:
            bad = {
                i for i, p in enumerate(payloads)
                if content_crc(p) != self._payload_crcs[i]
            }
        i = 0
        for bid, offset, transfers in self.plan:
            if self.assignment.get(bid) != self.rank:
                continue
            dst = self.blocks[bid]
            for t in transfers:
                if t.delta >= 0:
                    continue
                if i in bad:
                    i += 1
                    continue
                up = -t.delta
                fine = prolong_bordered(payloads[i], t.src_box, up, order, ndim)
                i += 1
                cover = t.src_box.refined(up).shift(_neg(t.shift))
                sub = t.dst_box.slices(cover.lo)
                dst.view(t.dst_box)[...] = fine[(slice(None),) + sub]
        self._payloads = []
        self._payload_crcs = []
        self._apply_bc()
        body: Dict[str, Any] = {"status": "ok", "n_prolonged": i}
        if bad:
            body["staging_bad"] = sorted(bad)
        return body

    # -- compute phases -------------------------------------------------

    @phase_effect("step")
    def step_single(self, dt: float) -> Dict[str, Any]:
        g = self.topology.n_ghost
        for block in self.own_blocks():
            self.scheme.step(block.data, block.dx, dt, g)
        return {"status": "ok"}

    @phase_effect("predictor")
    def predictor(self, dt: float) -> Dict[str, Any]:
        g = self.topology.n_ghost
        for block in self.own_blocks():
            self.saved[block.id] = block.interior.copy()
            self.scheme.step(block.data, block.dx, 0.5 * dt, g)
        return {"status": "ok"}

    @phase_effect("corrector")
    def corrector(self, dt: float) -> Dict[str, Any]:
        g = self.topology.n_ghost
        for block in self.own_blocks():
            rate = self.scheme.flux_divergence(block.data, block.dx, g)
            block.interior[...] = self.saved[block.id] + dt * rate
        self.saved = {}
        return {"status": "ok"}


def _execute(worker: _Worker, msg: Dict[str, Any]) -> Dict[str, Any]:
    op = msg["op"]
    if op == "config":
        return worker.apply_config(msg["payload"])
    if op == "exch1":
        return worker.exch1()
    if op == "exch2-gather":
        return worker.exch2_gather(msg.get("payload"))
    if op == "exch2-write":
        return worker.exch2_write(msg.get("payload"))
    if op == "step":
        return worker.step_single(msg["dt"])
    if op == "predictor":
        return worker.predictor(msg["dt"])
    if op == "corrector":
        return worker.corrector(msg["dt"])
    if op == "shutdown":
        return {"status": "ok"}
    raise ValueError(f"unknown worker op {op!r}")


def worker_main(spec: WorkerSpec) -> None:
    """Entry point of one rank process (the fork target)."""
    from repro.parallel.supervisor import reply_crc

    # Close inherited control pipes of other ranks: otherwise siblings
    # keep each other's (and the dead supervisor's) pipe ends open and
    # orphaned workers never see EOF.
    for conn in spec.inherited:
        conn.close()
    heartbeat = _Heartbeat(
        spec.heartbeat_name, spec.rank, spec.heartbeat_interval
    )
    heartbeat.start()
    worker = _Worker(spec)
    cached: Optional[Dict[str, Any]] = None
    last_seq = -1

    def send_reply(seq: int, body: Dict[str, Any], *, garbled: bool) -> Dict[str, Any]:
        reply = {
            "seq": seq,
            "rank": spec.rank,
            "body": body,
            "crc": reply_crc(body, seq, spec.rank) + (1 if garbled else 0),
        }
        spec.conn.send(reply)
        return reply

    try:
        # Bootstrap: apply the config carried through the fork and
        # acknowledge it — this reply is the spawn handshake.
        boot_seq = int(spec.config["seq"])
        boot_body = worker.apply_config(spec.config["payload"])
        cached = {
            "seq": boot_seq,
            "rank": spec.rank,
            "body": boot_body,
            "crc": reply_crc(boot_body, boot_seq, spec.rank),
        }
        last_seq = boot_seq
        spec.conn.send(cached)
        while True:
            try:
                msg = spec.conn.recv()
            except EOFError:
                break  # supervisor is gone; die quietly
            op = msg.get("op")
            if op == "resend":
                if msg.get("seq") == last_seq and cached is not None:
                    spec.conn.send(cached)
                continue
            seq = int(msg["seq"])
            if seq == last_seq and cached is not None:
                spec.conn.send(cached)  # duplicate command: idempotent
                continue
            body = _execute(worker, msg)
            step = int(msg.get("step", -1))
            action = worker.hooks.pop((step, str(op)), None)
            if action == "exit":
                heartbeat.stop()
                return  # clean exit without replying
            if action == "hang":
                heartbeat.paused.set()
                time.sleep(600.0)  # wedged: the supervisor must kill us
            if action is not None and action.startswith("slow:"):
                time.sleep(float(action.split(":", 1)[1]))
            if action == "mute":
                # Compute and cache the reply but never send it — the
                # supervisor's resend probe recovers it.
                cached = {
                    "seq": seq, "rank": spec.rank, "body": body,
                    "crc": reply_crc(body, seq, spec.rank),
                }
                last_seq = seq
                continue
            if action == "garble-forever":
                # Corrupt this reply and every future resend of it.
                cached = send_reply(seq, body, garbled=True)
                last_seq = seq
                continue
            garbled_once = action == "garble"
            good = {
                "seq": seq, "rank": spec.rank, "body": body,
                "crc": reply_crc(body, seq, spec.rank),
            }
            if garbled_once:
                send_reply(seq, body, garbled=True)
            else:
                spec.conn.send(good)
            cached = good  # resends always carry the intact reply
            last_seq = seq
            if op == "shutdown":
                break
    finally:
        heartbeat.stop()
        # Drop every Block view before closing the mappings, otherwise
        # the exported-pointer check keeps the segments pinned.
        worker.blocks = {}
        worker.saved = {}
        worker._payloads = []
        for seg in worker.segments.values():
            seg.destroy()
        spec.conn.close()
