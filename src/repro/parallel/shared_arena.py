"""Shared-memory block storage: one rank's arena pool in a POSIX segment.

The process backend (:mod:`repro.parallel.procmachine`) gives every rank
a real OS process, and same-node ghost exchange becomes a flat index
copy into the neighbor's pool — which requires every rank's
:class:`~repro.core.arena.BlockArena` pool to live in memory all ranks
can map.  :class:`SharedBlockArena` wraps one
:class:`multiprocessing.shared_memory.SharedMemory` segment laid out as

* ``capacity`` padded pool rows (``(capacity, nvar, *padded)``, float64),
  managed through a buffer-backed :class:`~repro.core.arena.BlockArena`
  on the creating (supervisor) side, and
* ``mirror_capacity`` interior-shaped rows (``(mc, nvar, *m)``) used by
  the shared partner ring (:mod:`repro.resilience.procpartner`) to hold
  the SFC buddy's redundant block copies *inside this rank's segment* —
  so losing the rank really does lose the copies it held.

Leak-proofing: the creator owns the segment name and unlinks it exactly
once — on :meth:`destroy`, or from a :func:`weakref.finalize` guard that
fires at interpreter exit / garbage collection if ``destroy`` was never
reached (a supervisor crash mid-run).  The finalizer records the
creating PID so that worker processes forked with a copy of this object
never unlink the parent's segment on their own exit.  Attaching sides
deregister from :mod:`multiprocessing.resource_tracker`, which would
otherwise unlink the creator's segment when the *attacher* exits.
"""

from __future__ import annotations

import itertools
import os
import weakref
from multiprocessing import shared_memory
from typing import List, Optional, Sequence

import numpy as np

from repro.core.arena import BlockArena

__all__ = ["SharedBlockArena", "segment_name", "leaked_segments"]

#: Prefix of every segment this module creates; the post-test leak sweep
#: and :func:`leaked_segments` key on it.
SEGMENT_PREFIX = "repro-shm"

_counter = itertools.count()


def segment_name(tag: str) -> str:
    """A unique-per-process segment name (no RNG: PID + counter)."""
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_counter)}-{tag}"


def leaked_segments() -> List[str]:
    """Names of this module's segments still registered in /dev/shm."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # non-POSIX fallback: nothing to scan
        return []
    return sorted(
        n for n in os.listdir(shm_dir) if n.startswith(SEGMENT_PREFIX)
    )


def _release_segment(shm: shared_memory.SharedMemory, created: bool,
                     owner_pid: int) -> None:
    """Best-effort close (+ unlink when we created it).

    Runs at most once per segment from either :meth:`~SharedBlockArena.
    destroy` or the finalizer.  A forked child inherits the parent's
    finalizers; the PID guard keeps it from unlinking segments it does
    not own.
    """
    if os.getpid() != owner_pid:
        return
    try:
        shm.close()
    except BufferError:
        # Outstanding numpy views pin the mapping; the name can still be
        # removed below and the mapping goes away when the views die.
        # Disarm the handle so ``SharedMemory.__del__`` does not retry
        # the close (noisily) at garbage-collection time; only the fd
        # must be returned eagerly.
        shm._buf = None
        shm._mmap = None
        if shm._fd >= 0:
            try:
                os.close(shm._fd)
            except OSError:
                pass
            shm._fd = -1
    if created:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class SharedBlockArena:
    """One rank's pool + partner-mirror region in a shared segment.

    Parameters
    ----------
    m, n_ghost, nvar:
        Block geometry (shared by every block in the forest).
    capacity:
        Pool rows (padded block slots) in the segment.
    mirror_capacity:
        Interior-shaped rows reserved for the partner ring's redundant
        copies of the SFC buddy's blocks.
    name:
        Segment name; required when attaching, generated when creating.
    create:
        True on the supervisor (owns the name, unlinks on destroy);
        False in a worker attaching to an existing segment.
    """

    def __init__(
        self,
        m: Sequence[int],
        n_ghost: int,
        nvar: int,
        *,
        capacity: int,
        mirror_capacity: int = 0,
        name: Optional[str] = None,
        create: bool = True,
    ) -> None:
        self.m = tuple(int(mi) for mi in m)
        self.n_ghost = int(n_ghost)
        self.nvar = int(nvar)
        self.capacity = int(capacity)
        self.mirror_capacity = int(mirror_capacity)
        padded = tuple(mi + 2 * self.n_ghost for mi in self.m)
        pool_elems = self.capacity * self.nvar * int(np.prod(padded))
        mirror_elems = (
            self.mirror_capacity * self.nvar * int(np.prod(self.m))
        )
        total = 8 * (pool_elems + mirror_elems)
        if create:
            if name is None:
                name = segment_name(f"cap{self.capacity}")
            self.shm = shared_memory.SharedMemory(
                name=name, create=True, size=total
            )
        else:
            if name is None:
                raise ValueError("attaching requires a segment name")
            # Workers are forked, so they share the creator's resource
            # tracker: attaching re-registers the name there (a set, so
            # a no-op) and must NOT unregister it — that would erase the
            # creator's registration and break its own unlink accounting.
            self.shm = shared_memory.SharedMemory(name=name)
        self.name = self.shm.name
        self.created = bool(create)
        #: buffer-backed arena over the pool region (row allocation is
        #: only meaningful on the creating side; attachers just view)
        self.arena: Optional[BlockArena] = BlockArena(
            self.m, self.n_ghost, self.nvar,
            initial_capacity=self.capacity,
            buffer=self.shm.buf[: 8 * pool_elems],
        )
        self.mirror: Optional[np.ndarray] = None
        if self.mirror_capacity:
            self.mirror = np.frombuffer(
                self.shm.buf, dtype=np.float64,
                offset=8 * pool_elems, count=mirror_elems,
            ).reshape((self.mirror_capacity, self.nvar) + self.m)
        self._fin = weakref.finalize(
            self, _release_segment, self.shm, self.created, os.getpid()
        )

    @property
    def nbytes(self) -> int:
        return self.shm.size

    def pool_view(self, row: int) -> np.ndarray:
        """The ``(nvar, *padded)`` view of one pool row."""
        if self.arena is None:
            raise RuntimeError(f"segment {self.name} is destroyed")
        return self.arena.pool[row]

    def mirror_view(self, row: int) -> np.ndarray:
        """The ``(nvar, *m)`` view of one partner-mirror row."""
        if self.mirror is None:
            raise RuntimeError(f"segment {self.name} has no mirror region")
        return self.mirror[row]

    def destroy(self) -> None:
        """Drop the views and release the segment (idempotent).

        On the creating side this also unlinks the name — the step that
        actually frees the memory once every mapping is gone.
        """
        self.arena = None
        self.mirror = None
        # The finalizer body runs exactly once whether triggered here or
        # at interpreter exit.
        self._fin()

    def __repr__(self) -> str:
        state = "live" if self._fin.alive else "destroyed"
        return (
            f"SharedBlockArena({self.name}, cap={self.capacity}, "
            f"mirror={self.mirror_capacity}, {state})"
        )
