"""Parallel AMR time stepping on the simulated machine.

Combines the real forest topology (blocks, levels, ghost-transfer
geometry) with the :class:`repro.parallel.machine.VirtualMachine` cost
model to produce the step times behind Figures 6–7:

* per stage, every PE is charged its blocks' compute time
  (``cells × flops-per-cell × flop_time`` plus the per-block fixed
  overhead) and its share of the ghost-exchange messages;
* a barrier ends the stage (global time stepping);
* adaptation steps additionally charge criterion evaluation,
  refinement/coarsening data movement, and load-balancing migration.

All geometry comes from the actual data structure — the message schedule
is the real transfer stream of the real forest — only the *clock* is a
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.core.block_id import BlockID
from repro.core.forest import BlockForest
from repro.parallel.exchange import BYTES_PER_VALUE, MessageSchedule, build_schedule
from repro.parallel.loadbalance import migration_bytes, migration_plan, rebalance
from repro.parallel.machine import CRAY_T3D, MachineSpec, TorusTopology, VirtualMachine
from repro.parallel.metrics import StepTimeReport
from repro.parallel.partition import Assignment, sfc_partition
from repro.solvers.flops import mhd_flops_per_cell

__all__ = ["ParallelCostConfig", "ParallelSimulation"]


@dataclass(frozen=True)
class ParallelCostConfig:
    """Workload model charged to the virtual machine.

    Defaults model the paper's production kernel: 3-D ideal MHD,
    second order (two stages), 8 variables.
    """

    flops_per_cell_per_step: int = mhd_flops_per_cell(3, 2).per_cell_per_step
    n_stages: int = 2
    nvar: int = 8
    aggregate_messages: bool = True
    fill_corners: bool = True
    #: criterion cost: flops per cell per adaptation check
    criterion_flops_per_cell: int = 20

    @property
    def flops_per_cell_per_stage(self) -> float:
        return self.flops_per_cell_per_step / self.n_stages


class ParallelSimulation:
    """Cost-model simulation of a parallel block-AMR run.

    Parameters
    ----------
    forest:
        The (real) block forest; its topology drives all costs.
    n_ranks:
        Number of processing elements.
    spec:
        Machine cost model (default: the Cray T3D preset).
    cost:
        Workload model (default: 3-D second-order MHD).
    """

    def __init__(
        self,
        forest: BlockForest,
        n_ranks: int,
        *,
        spec: MachineSpec = CRAY_T3D,
        cost: Optional[ParallelCostConfig] = None,
        topology: Optional[TorusTopology] = None,
    ) -> None:
        self.forest = forest
        self.cost = cost if cost is not None else ParallelCostConfig()
        self.machine = VirtualMachine(n_ranks, spec, topology=topology)
        self.assignment: Assignment = sfc_partition(forest, n_ranks)
        self.n_steps = 0
        self.dead_ranks: set = set()
        self._schedule_cache: Optional[MessageSchedule] = None

    # ------------------------------------------------------------------

    @property
    def n_ranks(self) -> int:
        return self.machine.n_ranks

    @property
    def alive_ranks(self) -> List[int]:
        """PEs that have not been failed via :meth:`simulate_rank_failure`."""
        return [r for r in range(self.n_ranks) if r not in self.dead_ranks]

    def simulate_rank_failure(self, rank: int) -> float:
        """Charge the cost of losing one PE and recovering without it.

        Models the global rollback protocol of the resilience subsystem
        on the machine's clock: the survivors repartition the SFC
        ordering among themselves, and every block's checkpoint data is
        re-sent from the I/O PE (the lowest surviving rank) to its new
        owner.  Returns the wall time charged for the recovery step.
        """
        if not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} out of range")
        if rank in self.dead_ranks:
            raise ValueError(f"rank {rank} already failed")
        self.dead_ranks.add(rank)
        survivors = self.alive_ranks
        if not survivors:
            raise RuntimeError("cannot recover: every rank has failed")
        chunks = sfc_partition(self.forest, len(survivors))
        self.assignment = {
            bid: survivors[r] for bid, r in chunks.items()
        }
        io_rank = survivors[0]
        for bid, owner in self.assignment.items():
            if owner != io_rank:
                self.machine.message(
                    io_rank,
                    owner,
                    migration_bytes(self.forest, bid, self.cost.nvar),
                )
        self.invalidate()
        return self.machine.finish_step()

    def _cells_per_rank(self) -> np.ndarray:
        cells = np.zeros(self.n_ranks)
        per_block = 1
        for mi in self.forest.m:
            per_block *= mi
        for bid, rank in self.assignment.items():
            cells[rank] += per_block
        return cells

    def _blocks_per_rank(self) -> np.ndarray:
        blocks = np.zeros(self.n_ranks, dtype=int)
        for rank in self.assignment.values():
            blocks[rank] += 1
        return blocks

    def _schedule(self) -> MessageSchedule:
        if self._schedule_cache is None:
            self._schedule_cache = build_schedule(
                self.forest,
                self.assignment,
                nvar=self.cost.nvar,
                aggregate=self.cost.aggregate_messages,
                fill_corners=self.cost.fill_corners,
            )
        return self._schedule_cache

    def invalidate(self) -> None:
        """Drop cached schedules (topology or assignment changed)."""
        self._schedule_cache = None

    # ------------------------------------------------------------------

    def _charge_exchange(self) -> None:
        for src, dst, nbytes in self._schedule().messages():
            self.machine.message(src, dst, nbytes)

    def _charge_compute_stage(self) -> None:
        spec = self.machine.spec
        cells = self._cells_per_rank()
        blocks = self._blocks_per_rank()
        flops = cells * self.cost.flops_per_cell_per_stage
        for rank in range(self.n_ranks):
            t = flops[rank] * spec.flop_time + blocks[rank] * spec.block_overhead
            if t > 0:
                self.machine.compute(rank, t)

    def step(self) -> float:
        """Simulate one time step; returns its wall time (seconds)."""
        for _ in range(self.cost.n_stages):
            self._charge_exchange()
            self._charge_compute_stage()
        dt = self.machine.finish_step()
        self.n_steps += 1
        return dt

    def adapt(
        self,
        refine: Iterable[BlockID] = (),
        coarsen: Iterable[BlockID] = (),
        *,
        rebalance_after: bool = True,
    ) -> float:
        """Apply a real adaptation to the forest and charge its cost:
        criterion evaluation, child-data creation, and (optionally) the
        load-balancing migration.  Returns the wall time charged."""
        spec = self.machine.spec
        # Criterion evaluation on every local cell.
        cells = self._cells_per_rank()
        for rank in range(self.n_ranks):
            self.machine.compute(
                rank, cells[rank] * self.cost.criterion_flops_per_cell * spec.flop_time
            )
        old_assignment = dict(self.assignment)
        summary = self.forest.adapt(list(refine), list(coarsen))
        self.invalidate()
        # Data movement of refinement/coarsening: each refined block's
        # children are built locally (prolongation flops ~ cells).
        per_block = 1
        for mi in self.forest.m:
            per_block *= mi
        refine_flops = summary.refined * per_block * (1 << self.forest.ndim) * 10
        if summary.refined and self.n_ranks > 0:
            # Spread across owners (approximation: uniform).
            for rank in range(self.n_ranks):
                self.machine.compute(
                    rank, refine_flops / self.n_ranks * spec.flop_time
                )
        # Reassign new blocks to their SFC ranks, then migrate.
        new_assignment = rebalance(self.forest, self.n_ranks)
        if rebalance_after:
            for bid, src, dst in migration_plan(old_assignment, new_assignment):
                if bid in self.forest.blocks:
                    self.machine.message(src, dst, migration_bytes(self.forest, bid, self.cost.nvar))
            self.assignment = new_assignment
        else:
            # Keep old owners where possible; new blocks inherit the SFC rank.
            self.assignment = {
                bid: old_assignment.get(bid, new_assignment[bid])
                for bid in self.forest.blocks
            }
        self.invalidate()
        return self.machine.finish_step()

    # ------------------------------------------------------------------

    def run(self, n_steps: int) -> StepTimeReport:
        """Simulate ``n_steps`` plain steps and report the breakdown."""
        t0 = self.machine.elapsed
        c0 = dict(self.machine.totals)
        for _ in range(n_steps):
            self.step()
        return StepTimeReport(
            n_ranks=self.n_ranks,
            n_steps=n_steps,
            total_time=self.machine.elapsed - t0,
            compute_time=self.machine.totals["compute"] - c0["compute"],
            comm_time=self.machine.totals["comm"] - c0["comm"],
            wait_time=self.machine.totals["wait"] - c0["wait"],
            n_blocks=self.forest.n_blocks,
            n_cells=self.forest.n_cells,
        )

    def total_flops(self, n_steps: int) -> float:
        """Useful FLOPs of ``n_steps`` steps over the current forest."""
        return float(self.forest.n_cells) * self.cost.flops_per_cell_per_step * n_steps
