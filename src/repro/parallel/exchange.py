"""Ghost-exchange message schedules for a partitioned forest.

Converts the geometric transfer stream of
:func:`repro.core.ghost.iter_transfers` into per-PE-pair messages under
a block→rank assignment.  Two aggregation modes expose the paper's
communication-amortization claim:

* ``aggregate=True`` (adaptive blocks): all transfers between the same
  (src PE, dst PE) pair in one exchange are coalesced into a single
  message — the paper's "amortize the overhead of communication over
  entire blocks of cells";
* ``aggregate=False`` (cell-based baseline): every transfer pays its own
  message latency — the per-cell communication of tree/unstructured
  codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.core.forest import BlockForest
from repro.core.ghost import Transfer, iter_transfers
from repro.parallel.partition import Assignment

__all__ = ["MessageSchedule", "build_schedule"]

BYTES_PER_VALUE = 8  # float64


@dataclass
class MessageSchedule:
    """All inter-PE traffic of one ghost exchange.

    ``pair_bytes[(src, dst)]`` is the payload between a PE pair;
    ``n_messages`` counts wire messages under the chosen aggregation;
    ``local_transfers`` counts transfers that stayed on-PE (free).
    """

    pair_bytes: Dict[Tuple[int, int], int] = field(default_factory=dict)
    pair_transfers: Dict[Tuple[int, int], int] = field(default_factory=dict)
    n_messages: int = 0
    local_transfers: int = 0
    total_transfers: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(self.pair_bytes.values())

    @property
    def remote_fraction(self) -> float:
        if self.total_transfers == 0:
            return 0.0
        return 1.0 - self.local_transfers / self.total_transfers

    def messages(self) -> Iterator[Tuple[int, int, int]]:
        """Yield (src, dst, bytes) wire messages under the schedule's
        aggregation (deterministic pair order)."""
        if self.n_messages == sum(self.pair_transfers.values()):
            # Per-transfer mode: emit transfer-sized messages.  Sizes are
            # approximated as equal shares of the pair payload, which
            # keeps total bytes exact and message count exact — the two
            # quantities the cost model charges for.
            for (src, dst) in sorted(self.pair_bytes):
                n = self.pair_transfers[(src, dst)]
                total = self.pair_bytes[(src, dst)]
                share, rem = divmod(total, n)
                for i in range(n):
                    yield src, dst, share + (1 if i < rem else 0)
        else:
            for (src, dst) in sorted(self.pair_bytes):
                yield src, dst, self.pair_bytes[(src, dst)]


def build_schedule(
    forest: BlockForest,
    assignment: Assignment,
    *,
    nvar: int | None = None,
    aggregate: bool = True,
    fill_corners: bool = True,
) -> MessageSchedule:
    """Build the message schedule of one full ghost exchange.

    ``nvar`` overrides the forest's variable count for payload sizing
    (the topology-only machine simulations allocate nvar=1 forests but
    model 8-variable MHD messages).
    """
    nv = forest.nvar if nvar is None else int(nvar)
    sched = MessageSchedule()
    for t in iter_transfers(forest, fill_corners=fill_corners):
        sched.total_transfers += 1
        src = assignment[t.src_id]
        dst = assignment[t.dst_id]
        if src == dst:
            sched.local_transfers += 1
            continue
        key = (src, dst)
        payload = t.message_cells * nv * BYTES_PER_VALUE
        sched.pair_bytes[key] = sched.pair_bytes.get(key, 0) + payload
        sched.pair_transfers[key] = sched.pair_transfers.get(key, 0) + 1
    if aggregate:
        sched.n_messages = len(sched.pair_bytes)
    else:
        sched.n_messages = sum(sched.pair_transfers.values())
    return sched
