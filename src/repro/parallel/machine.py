"""Simulated distributed-memory machine (Cray T3D cost model).

The paper's parallel results (Figures 6 and 7, and the 16–17 GFLOPS
sustained rate) were measured on a 512-processor Cray T3D.  We do not
have one; what the figures actually measure, though, is the *ratio*
structure of the algorithm — per-PE compute vs. message latency and
bandwidth vs. load imbalance — and that is exactly what a cost-model
machine preserves.  :class:`VirtualMachine` charges per-PE clocks with
compute and communication costs from a :class:`MachineSpec`; step time
is the slowest clock (a bulk-synchronous step, matching the global-dt
time stepping of the MHD code).

The ``CRAY_T3D`` preset is calibrated from published machine data:
150 MFLOPS peak per PE (DEC Alpha 21064 @ 150 MHz), ~20–25% of peak
sustained by real stencil codes (the paper's 17 GFLOPS / 512 PEs =
33 MFLOPS per PE), ~100 MB/s deliverable per-link bandwidth on the 3-D
torus, and a few microseconds of message latency via SHMEM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["MachineSpec", "CRAY_T3D", "TorusTopology", "VirtualMachine"]


@dataclass(frozen=True)
class MachineSpec:
    """Cost model of one distributed-memory machine.

    Times are seconds; the model is LogGP-like: a message costs
    ``latency + bytes * byte_time`` on both endpoints, serialized per
    PE, and computation costs ``flops * flop_time``.
    """

    name: str
    flop_time: float          #: seconds per sustained floating-point op
    latency: float            #: per-message overhead (s)
    byte_time: float          #: inverse bandwidth (s/byte)
    barrier_base: float = 2e-6   #: barrier cost offset (s)
    barrier_log: float = 2e-6    #: barrier cost per log2(P) (s)
    block_overhead: float = 5e-6  #: per-block fixed cost per stage (loop setup)

    def barrier_time(self, n_ranks: int) -> float:
        if n_ranks <= 1:
            return 0.0
        return self.barrier_base + self.barrier_log * float(np.log2(n_ranks))

    def message_time(self, n_bytes: int) -> float:
        return self.latency + n_bytes * self.byte_time


#: The paper's machine: 512-PE Cray T3D at NASA Goddard.
CRAY_T3D = MachineSpec(
    name="Cray T3D",
    flop_time=1.0 / 33e6,    # 33 MFLOPS sustained per PE (17 GFLOPS / 512)
    latency=6e-6,            # SHMEM-class put/get latency
    byte_time=1.0 / 100e6,   # ~100 MB/s deliverable per PE
)


class TorusTopology:
    """The T3D's 3-D torus interconnect: per-hop routing cost.

    The T3D routes messages dimension-ordered through a 3-D torus of
    nodes (two PEs per node; we model one PE per torus node for
    simplicity).  Message latency grows with the Manhattan torus
    distance between endpoints, which is what rewards the space-filling-
    curve partitioner: SFC-contiguous ranks are usually torus-near.
    """

    def __init__(self, n_ranks: int, hop_time: float = 2e-7) -> None:
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.hop_time = hop_time
        # Factor n_ranks into the most cubic shape dx >= dy >= dz.
        best = (n_ranks, 1, 1)
        for dz in range(1, int(round(n_ranks ** (1 / 3))) + 2):
            if n_ranks % dz:
                continue
            rest = n_ranks // dz
            for dy in range(dz, int(np.sqrt(rest)) + 2):
                if rest % dy:
                    continue
                dx = rest // dy
                if dx >= dy >= dz:
                    cand = tuple(sorted((dx, dy, dz), reverse=True))
                    if max(cand) < max(best):
                        best = cand
        self.shape = best

    def coords(self, rank: int) -> Tuple[int, int, int]:
        dx, dy, dz = self.shape
        return (rank % dx, (rank // dx) % dy, rank // (dx * dy))

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance on the torus (wrap-around links)."""
        total = 0
        for c_s, c_d, extent in zip(self.coords(src), self.coords(dst), self.shape):
            d = abs(c_s - c_d)
            total += min(d, extent - d)
        return total

    def route_time(self, src: int, dst: int) -> float:
        return self.hops(src, dst) * self.hop_time


class VirtualMachine:
    """Per-PE clock accounting for one bulk-synchronous program.

    Usage: charge compute and messages for a step, then call
    :meth:`finish_step` — the step time is the slowest PE (everyone
    waits at the barrier), and all clocks jump to it.
    """

    def __init__(
        self,
        n_ranks: int,
        spec: MachineSpec = CRAY_T3D,
        *,
        topology: "TorusTopology | None" = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.spec = spec
        #: optional interconnect topology adding per-hop routing cost
        self.topology = topology
        self.clock = np.zeros(n_ranks)
        self.elapsed = 0.0
        #: accumulated per-category times (for the time-breakdown tables)
        self.totals: Dict[str, float] = {"compute": 0.0, "comm": 0.0, "wait": 0.0}
        self._step_start = np.zeros(n_ranks)

    def compute(self, rank: int, seconds: float) -> None:
        """Charge local computation to one PE."""
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range")
        self.clock[rank] += seconds
        self.totals["compute"] += seconds

    def message(self, src: int, dst: int, n_bytes: int) -> None:
        """Charge one message to both endpoints (no charge if src == dst).

        With a topology attached, routing adds per-hop time proportional
        to the torus distance between the endpoints."""
        if src == dst:
            return
        t = self.spec.message_time(n_bytes)
        if self.topology is not None:
            t += self.topology.route_time(src, dst)
        self.clock[src] += t
        self.clock[dst] += t
        self.totals["comm"] += 2 * t

    def finish_step(self) -> float:
        """Barrier: all PEs advance to the slowest clock (+barrier cost).
        Returns the wall time of the step just completed."""
        high = float(self.clock.max()) + self.spec.barrier_time(self.n_ranks)
        self.totals["wait"] += float(np.sum(high - self.clock))
        self.clock[:] = high
        step_time = high - self.elapsed
        self.elapsed = high
        return step_time

    def imbalance(self) -> float:
        """Current max/mean clock ratio since the last barrier."""
        busy = self.clock - self.elapsed
        mean = float(busy.mean())
        return float(busy.max()) / mean if mean > 0 else 1.0
