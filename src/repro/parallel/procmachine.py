"""Real-process parallel backend: one OS process per rank.

:class:`ProcessMachine` is API-compatible with
:class:`~repro.parallel.emulator.EmulatedMachine` but every rank is a
real forked process whose :class:`~repro.core.arena.BlockArena` pool
lives in a POSIX shared-memory segment
(:class:`~repro.parallel.shared_arena.SharedBlockArena`).  Same-node
ghost exchange is therefore a flat index copy out of the neighbor's
segment — no payload ever crosses the control pipes — while the step
itself runs under a barrier-phase protocol driven by the supervisor
(this class): ``exch1 → exch2-gather → exch2-write → compute``, each
phase acknowledged by every alive rank before the next begins (see
:mod:`repro.parallel.procworker` for why stage 2 splits around a
barrier: it makes the concurrent exchange bit-for-bit equal to the
serial one).

The robustness layer is the point of this backend:

* the supervisor monitors ranks via a shared heartbeat board and
  classifies failures — clean exit, SIGKILL, crash, hang, unreachable —
  (:mod:`repro.parallel.supervisor`);
* a scripted ``FaultPlan`` kill delivers an **actual SIGKILL** to the
  rank's process, and the loss is detected exactly like a node failure:
  the rank's segment is torn down and :class:`~repro.resilience.faults.
  RankFailure` carries the lost blocks to the recovery driver;
* control-plane replies carry CRC32 checksums; a dropped or corrupted
  reply is retried with the machine's :class:`~repro.resilience.faults.
  RetryPolicy` capped exponential backoff, and only exhaustion
  escalates the rank to *unreachable* (and kills it — a rank we cannot
  talk to is operationally dead);
* localized recovery (:class:`~repro.resilience.procpartner.
  SharedPartnerRing`) respawns a fresh process for a dead rank and
  restores its blocks from the SFC buddy's in-segment mirror — pure
  shared-memory movement, zero disk reads; if respawn keeps failing
  the ring degrades to redistributing the blocks over survivors; double
  faults escalate to the checkpoint rollback through the unchanged
  :func:`~repro.resilience.recovery.run_with_recovery` driver.

Segments are leak-proof: every one carries a ``weakref.finalize`` guard
(PID-fenced so forked children never unlink the parent's segments) and
:meth:`close` — also run by the context manager on *any* exit path —
terminates live workers and unlinks every segment.
"""

from __future__ import annotations

import os
import signal
import time
from multiprocessing import get_context, shared_memory
from multiprocessing.connection import Connection
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np
import weakref

from repro.analysis.protocol import phase_effect
from repro.core.block import Block
from repro.core.block_id import BlockID
from repro.core.forest import BlockForest
from repro.core.ghost import BoundaryHandler
from repro.obs.metrics import METRICS
from repro.parallel.emulator import ExchangeStats
from repro.parallel.partition import Assignment, sfc_partition
from repro.parallel.procworker import (
    PlanEntry,
    WorkerSpec,
    build_exchange_plan,
    worker_main,
)
from repro.parallel.shared_arena import (
    SharedBlockArena,
    _release_segment,
    segment_name,
)
from repro.parallel.supervisor import (
    FailureKind,
    HeartbeatMonitor,
    ProcConfig,
    RankDeath,
    classify_exit,
    reply_crc,
)
from repro.solvers.scheme import FVScheme
from repro.util.timing import wall_clock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.poison import GhostSanitizer
    from repro.analysis.races import InboundKey, RaceDetector
    from repro.obs.recorder import RunRecorder
    from repro.resilience.faults import BitFlip, FaultPlan, RetryPolicy
    from repro.resilience.procpartner import SharedPartnerRing
    from repro.resilience.scrub import Scrubber

__all__ = ["ProcessMachine"]

#: phases whose wall time counts as exchange (vs compute) in
#: :attr:`ProcessMachine.phase_seconds`
_EXCHANGE_OPS = ("exch1", "exch2-gather", "exch2-write")
_COMPUTE_OPS = ("step", "predictor", "corrector")


class ProcessMachine:
    """Run a block-AMR time step across real single-rank OS processes.

    Constructor signature matches
    :class:`~repro.parallel.emulator.EmulatedMachine` plus:

    config:
        :class:`~repro.parallel.supervisor.ProcConfig` timeouts.
    test_hooks:
        ``{rank: {(step, phase): action}}`` scripted worker misbehavior
        for the failure-detector tests (hang / slow / exit / mute /
        garble); hooks are per process lifetime — a respawned rank
        starts clean.

    Use as a context manager (or call :meth:`close`): teardown must run
    even when a step raises, or worker processes and shared segments
    leak.
    """

    def __init__(
        self,
        forest: BlockForest,
        n_ranks: int,
        scheme: FVScheme,
        *,
        bc: Optional[BoundaryHandler] = None,
        assignment: Optional[Assignment] = None,
        fault_plan: Optional["FaultPlan"] = None,
        retry_policy: Optional["RetryPolicy"] = None,
        sanitize: bool = False,
        config: Optional[ProcConfig] = None,
        test_hooks: Optional[Dict[int, Dict[Tuple[int, str], str]]] = None,
    ) -> None:
        if not hasattr(os, "kill") or os.name != "posix":
            raise RuntimeError("the process backend requires a POSIX host")
        self.topology = forest
        self.scheme = scheme
        self.bc = bc
        self.n_ranks = int(n_ranks)
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.config = config if config is not None else ProcConfig()
        self.test_hooks = test_hooks or {}
        #: ranks whose respawn is scripted to fail (degradation tests)
        self.fail_respawn: Set[int] = set()
        self.alive: List[bool] = [True] * self.n_ranks
        self.step_index = 0
        self.time = 0.0
        self.stats = ExchangeStats()
        self.assignment: Assignment = dict(
            assignment if assignment is not None
            else sfc_partition(forest, self.n_ranks)
        )
        self._plan: List[PlanEntry] = build_exchange_plan(forest)
        self._ctx = get_context("fork")
        self._capacity = max(1, forest.n_blocks)
        self._mirror_capacity = max(1, forest.n_blocks)
        self._segments: List[Optional[SharedBlockArena]] = [None] * self.n_ranks
        self._procs: List[Optional[Any]] = [None] * self.n_ranks
        self._conns: List[Optional[Connection]] = [None] * self.n_ranks
        self._gen = [0] * self.n_ranks
        self.rank_blocks: List[Dict[BlockID, Block]] = [
            {} for _ in range(self.n_ranks)
        ]
        self._locator: Dict[BlockID, Tuple[int, int]] = {}
        self._seq = 0
        self._msg_index = 0
        self._interiors_dirty = False
        self._config_dirty = False
        self._closed = False
        self.deaths: List[RankDeath] = []
        self.phase_seconds: Dict[str, float] = {
            "exchange": 0.0, "compute": 0.0, "control": 0.0,
        }
        self.recorder: Optional["RunRecorder"] = None
        self.race_detector: Optional["RaceDetector"] = None
        self.sanitizer: Optional["GhostSanitizer"] = None
        self.scrubber: Optional["Scrubber"] = None
        self._staged_flips: List["BitFlip"] = []

        # Heartbeat board: one float64 counter per rank.
        self._hb_shm = shared_memory.SharedMemory(
            name=segment_name("hb"), create=True, size=8 * self.n_ranks
        )
        self._hb_fin = weakref.finalize(
            self, _release_segment, self._hb_shm, True, os.getpid()
        )
        board = np.frombuffer(self._hb_shm.buf, dtype=np.float64)
        board[:] = 0.0
        self._monitor = HeartbeatMonitor(board)

        try:
            for rank in range(self.n_ranks):
                self._create_segment(rank)
            self._populate(forest)
            for rank in range(self.n_ranks):
                if not self._spawn_rank(rank):
                    raise RuntimeError(f"failed to start worker rank {rank}")
        except BaseException:
            self.close()
            raise
        if sanitize:
            from repro.analysis.poison import GhostSanitizer, poison_forest

            self.sanitizer = GhostSanitizer(depth=scheme.required_ghost)
            poison_forest(self._all_blocks())

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _create_segment(self, rank: int) -> SharedBlockArena:
        self._gen[rank] += 1
        seg = SharedBlockArena(
            self.topology.m, self.topology.n_ghost, self.topology.nvar,
            capacity=self._capacity,
            mirror_capacity=self._mirror_capacity,
            name=segment_name(f"r{rank}g{self._gen[rank]}"),
            create=True,
        )
        self._segments[rank] = seg
        if METRICS.enabled:
            METRICS.inc("proc.segments_created")
        return seg

    def _bind_block(self, bid: BlockID, rank: int) -> Block:
        """Allocate a pool row on ``rank`` and bind a supervisor-side view."""
        seg = self._segments[rank]
        assert seg is not None and seg.arena is not None
        row = seg.arena.acquire()
        tmpl = self.topology.blocks[bid]
        blk = Block(
            id=tmpl.id, box=tmpl.box, m=tmpl.m,
            n_ghost=tmpl.n_ghost, nvar=tmpl.nvar,
            data=seg.arena.view(row),
        )
        seg.arena.bind(row, blk)
        blk.face_neighbors = tmpl.face_neighbors
        self.rank_blocks[rank][bid] = blk
        self._locator[bid] = (rank, row)
        return blk

    def _populate(self, forest: BlockForest) -> None:
        """Write every block's padded data into its owner's shared pool."""
        for bid in self.topology.sorted_ids():
            rank = self.assignment[bid]
            blk = self._bind_block(bid, rank)
            seg = self._segments[rank]
            assert seg is not None and seg.arena is not None
            assert blk.arena_row is not None
            seg.arena.view(blk.arena_row)[...] = forest.blocks[bid].data

    def _config_payload(self) -> Dict[str, Any]:
        # Every live segment is announced — including a just-respawned
        # rank's fresh segment, which exists before the rank is marked
        # alive (the bootstrap handshake needs it).
        segments = {}
        for rank in range(self.n_ranks):
            seg = self._segments[rank]
            if seg is not None:
                segments[rank] = (seg.name, seg.capacity, seg.mirror_capacity)
        return {
            "segments": segments,
            "locator": dict(self._locator),
            "assignment": dict(self.assignment),
        }

    def _spawn_rank(self, rank: int) -> bool:
        """Start (or restart) one rank process; True on a good handshake."""
        if self._segments[rank] is None:
            self._create_segment(rank)
        parent_conn, child_conn = self._ctx.Pipe()
        inherited: List[Connection] = [
            c for c in self._conns if c is not None
        ]
        inherited.append(parent_conn)
        self._seq += 1
        seq = self._seq
        spec = WorkerSpec(
            rank=rank,
            conn=child_conn,
            topology=self.topology,
            scheme=self.scheme,
            bc=self.bc,
            heartbeat_name=self._hb_shm.name,
            heartbeat_interval=self.config.heartbeat_interval,
            config={"seq": seq, "op": "config",
                    "payload": self._config_payload()},
            test_hooks=dict(self.test_hooks.get(rank, {})),
            inherited=inherited,
        )
        proc = self._ctx.Process(
            target=_worker_entry, args=(spec,), daemon=True,
            name=f"repro-rank{rank}g{self._gen[rank]}",
        )
        proc.start()
        child_conn.close()
        ok = False
        deadline = wall_clock() + self.config.hard_timeout
        while wall_clock() < deadline:
            if parent_conn.poll(self.config.poll_interval):
                try:
                    msg = parent_conn.recv()
                except (EOFError, OSError):
                    break
                if (
                    msg.get("seq") == seq
                    and msg.get("crc")
                    == reply_crc(msg.get("body", {}), seq, rank)
                ):
                    ok = True
                    break
            if not proc.is_alive():
                break
        if not ok:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=self.config.shutdown_timeout)
            parent_conn.close()
            return False
        self._procs[rank] = proc
        self._conns[rank] = parent_conn
        self.alive[rank] = True
        self._monitor.reset(rank)
        if METRICS.enabled:
            METRICS.gauge("proc.alive_ranks", len(self.alive_ranks))
        return True

    # ------------------------------------------------------------------
    # machine surface shared with the emulator
    # ------------------------------------------------------------------

    @property
    def alive_ranks(self) -> List[int]:
        return [r for r in range(self.n_ranks) if self.alive[r]]

    def owner_rank(self, bid: BlockID) -> int:
        return self.assignment[bid]

    def local_block(self, bid: BlockID) -> Block:
        return self.rank_blocks[self.assignment[bid]][bid]

    def _all_blocks(self) -> Iterator[Block]:
        for rank in range(self.n_ranks):
            if self.alive[rank]:
                yield from self.rank_blocks[rank].values()

    def lost_blocks(self) -> List[BlockID]:
        owned: Set[BlockID] = set()
        for rank in self.alive_ranks:
            owned.update(self.rank_blocks[rank])
        return [bid for bid in self.topology.sorted_ids() if bid not in owned]

    def rank_cells(self) -> List[int]:
        return [
            sum(b.n_cells for b in self.rank_blocks[rank].values())
            for rank in self.alive_ranks
        ]

    def gather(self) -> Dict[BlockID, np.ndarray]:
        out: Dict[BlockID, np.ndarray] = {}
        for rank in self.alive_ranks:
            for bid, block in self.rank_blocks[rank].items():
                out[bid] = block.interior.copy()
        return out

    def blocks_by_id(self) -> Dict[BlockID, Block]:
        """Every live block keyed by id, in deterministic SFC order.

        The supervisor-side views alias the rank segments directly, so
        scrubbing and bitflip injection touch the same shared memory the
        worker processes compute on — no copies, no extra phases.
        """
        out: Dict[BlockID, Block] = {}
        for bid in self.topology.sorted_ids():
            rank = self.assignment.get(bid)
            if rank is None or not self.alive[rank]:
                continue
            block = self.rank_blocks[rank].get(bid)
            if block is not None:
                out[bid] = block
        return out

    def attach_scrubber(self, scrubber: "Scrubber") -> "Scrubber":
        """Attach a memory scrubber and tag the current state as the
        trusted baseline."""
        self.scrubber = scrubber
        scrubber.retag_blocks(self.blocks_by_id())
        return scrubber

    def scrub_retag(self) -> None:
        """Re-baseline every live block's integrity tag (called at the
        write boundaries: post-step, post-restore, post-repair)."""
        if self.scrubber is not None:
            self.scrubber.retag_blocks(self.blocks_by_id())

    def attach_race_detector(
        self, detector: Optional["RaceDetector"] = None
    ) -> "RaceDetector":
        """Attach the exchange race detector, unchanged from the emulator:
        expected inbound sets come from the same transfer plan the
        workers execute, so the supervisor replays the schedule's
        publish/receive events at phase barriers."""
        from repro.analysis.races import RaceDetector

        if detector is None:
            detector = RaceDetector()
        expected: Dict[object, Tuple[Set["InboundKey"], Set["InboundKey"]]] = {}
        for bid, offset, transfers in self._plan:
            stage1, stage2 = expected.setdefault(bid, (set(), set()))
            for t in transfers:
                (stage1 if t.delta >= 0 else stage2).add((t.src_id, offset))
        detector.set_expected_inbound(expected)
        self.race_detector = detector
        return detector

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def _emit_supervisor(self, event: str, **fields: Any) -> None:
        if self.recorder is not None:
            self.recorder.emit("supervisor", event=event, **fields)

    def _declare_death(
        self, rank: int, kind: str, detail: str, *, kill: bool
    ) -> RankDeath:
        """Mark a rank dead: reap the process, tear down its segment.

        Destroying the segment models the memory loss for real — the
        partner mirrors *held by* this rank die with it (that is what
        makes a double fault a double fault), while the mirror of this
        rank's own blocks lives on in its buddy's segment.
        """
        proc = self._procs[rank]
        if proc is not None:
            if kill and proc.is_alive() and proc.pid is not None:
                os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=self.config.shutdown_timeout)
        conn = self._conns[rank]
        if conn is not None:
            conn.close()
        self._procs[rank] = None
        self._conns[rank] = None
        self.alive[rank] = False
        self.rank_blocks[rank] = {}
        self._locator = {
            bid: loc for bid, loc in self._locator.items() if loc[0] != rank
        }
        seg = self._segments[rank]
        if seg is not None:
            seg.destroy()
            self._segments[rank] = None
            if METRICS.enabled:
                METRICS.inc("proc.segments_unlinked")
        self._config_dirty = True
        death = RankDeath(
            rank=rank, kind=kind, detail=detail, step=self.step_index
        )
        self.deaths.append(death)
        if METRICS.enabled:
            METRICS.inc("proc.deaths")
            METRICS.inc(f"proc.deaths.{kind}")
            METRICS.gauge("proc.alive_ranks", len(self.alive_ranks))
        self._emit_supervisor(
            "rank-death", rank=rank, step=self.step_index,
            failure=kind, detail=detail,
        )
        return death

    def kill_rank(self, rank: int) -> None:
        """Deliver a real SIGKILL to a rank (operator / fault-plan path)."""
        if not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} out of range")
        proc = self._procs[rank]
        if proc is not None and proc.is_alive() and proc.pid is not None:
            os.kill(proc.pid, signal.SIGKILL)
        self._declare_death(
            rank, FailureKind.SIGKILL, "SIGKILL delivered", kill=False
        )

    def try_respawn(self, rank: int) -> bool:
        """Bring a dead rank back with a fresh process + segment.

        Bounded by ``config.respawn_max`` attempts; returns False when
        the rank could not be revived (the partner ring then degrades
        to redistributing its blocks over the survivors).
        """
        if self.alive[rank]:
            return True
        attempts = 0
        while attempts < max(1, self.config.respawn_max):
            attempts += 1
            ok = rank not in self.fail_respawn and self._spawn_rank(rank)
            if ok:
                if METRICS.enabled:
                    METRICS.inc("proc.respawns")
                self._emit_supervisor(
                    "respawn", rank=rank, step=self.step_index,
                    attempts=attempts, ok=True,
                )
                # Hooks are per process lifetime: the failure that
                # killed the old process must not replay forever.
                self.test_hooks.pop(rank, None)
                self._config_dirty = True
                return True
            time.sleep(0.01 * attempts)
        if METRICS.enabled:
            METRICS.inc("proc.respawn_failures")
        self._emit_supervisor(
            "respawn", rank=rank, step=self.step_index,
            attempts=attempts, ok=False,
        )
        return False

    def make_partner_store(self) -> "SharedPartnerRing":
        """The localized-recovery tier for this backend (duck-typed
        hook used by :func:`repro.resilience.recovery.run_with_recovery`)."""
        from repro.resilience.procpartner import SharedPartnerRing

        return SharedPartnerRing(self)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------

    def _await_reply(
        self, rank: int, seq: int, op: str, *, injectable: bool
    ) -> Optional[Dict[str, Any]]:
        """Collect one rank's phase acknowledgement under supervision.

        Returns the reply body, or None after declaring the rank dead
        (process exit, stale heartbeat, hard deadline, or control-plane
        retry exhaustion).
        """
        cfg = self.config
        conn = self._conns[rank]
        proc = self._procs[rank]
        if conn is None or proc is None:
            return None
        index = -1
        if injectable:
            index = self._msg_index
            self._msg_index += 1
        attempt = 0
        now = wall_clock()
        soft_deadline = now + cfg.phase_timeout
        hard_deadline = now + cfg.hard_timeout

        def probe() -> bool:
            try:
                conn.send({"op": "resend", "seq": seq})
                return True
            except OSError:
                return False  # pipe gone; the liveness check follows

        while True:
            got = False
            try:
                got = conn.poll(cfg.poll_interval)
            except OSError:
                got = False
            if got:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    msg = None
                if msg is None:
                    pass  # fall through to the liveness checks
                elif msg.get("seq") != seq:
                    continue  # stale reply from an aborted phase
                else:
                    body = msg.get("body", {})
                    intact = msg.get("crc") == reply_crc(body, seq, rank)
                    fault = None
                    if injectable and self.fault_plan is not None:
                        fault = self.fault_plan.take_message_fault(
                            self.step_index, index
                        )
                    if fault is not None and fault.mode == "corrupt":
                        intact = False
                    dropped = fault is not None and fault.mode == "drop"
                    if intact and not dropped:
                        return body
                    # Damaged or discarded acknowledgement: retry with
                    # backoff unless the fault is fatal or retries are
                    # exhausted.
                    transient = fault is None or fault.transient
                    if (
                        transient
                        and self.retry_policy is not None
                        and attempt < self.retry_policy.max_retries
                    ):
                        wait = self.retry_policy.backoff(
                            attempt, step=self.step_index, index=index
                        )
                        self.stats.add_retry(wait)
                        if METRICS.enabled:
                            METRICS.inc("proc.reply_retries")
                        time.sleep(min(wait, 0.05))
                        attempt += 1
                        probe()
                        continue
                    self._declare_death(
                        rank, FailureKind.UNREACHABLE,
                        f"reply for {op!r} (seq {seq}) unusable after "
                        f"{attempt} retr(ies)",
                        kill=True,
                    )
                    return None
            if not proc.is_alive():
                kind = classify_exit(proc.exitcode)
                self._declare_death(
                    rank, kind,
                    f"process exited (code {proc.exitcode}) during {op!r}",
                    kill=False,
                )
                return None
            age = self._monitor.age(rank)
            if METRICS.enabled:
                METRICS.observe("proc.heartbeat_age", age)
            if age > cfg.heartbeat_timeout:
                self._declare_death(
                    rank, FailureKind.HANG,
                    f"heartbeat stale for {age:.2f}s during {op!r}",
                    kill=True,
                )
                return None
            now = wall_clock()
            if now >= hard_deadline:
                self._declare_death(
                    rank, FailureKind.HANG,
                    f"no reply for {op!r} within hard deadline "
                    f"({cfg.hard_timeout:.1f}s)",
                    kill=True,
                )
                return None
            if now >= soft_deadline:
                # Slow but alive (fresh heartbeat): probe for a lost
                # acknowledgement and keep waiting to the hard deadline.
                probe()
                soft_deadline = now + cfg.phase_timeout

    def _phase(
        self,
        op: str,
        *,
        dt: Optional[float] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[int, Dict[str, Any]]:
        """One barrier phase: broadcast, then collect every alive rank.

        Raises :class:`~repro.resilience.faults.RankFailure` when any
        rank died and its blocks are lost (deaths of empty ranks are
        absorbed).
        """
        from repro.resilience.faults import RankFailure

        self._seq += 1
        seq = self._seq
        injectable = op not in ("config", "shutdown")
        msg: Dict[str, Any] = {"op": op, "seq": seq, "step": self.step_index}
        if dt is not None:
            msg["dt"] = dt
        if payload is not None:
            msg["payload"] = payload
        t0 = wall_clock()
        targets = list(self.alive_ranks)
        dead: List[int] = []
        for rank in targets:
            conn = self._conns[rank]
            try:
                assert conn is not None
                conn.send(msg)
            except (OSError, AssertionError):
                proc = self._procs[rank]
                code = proc.exitcode if proc is not None else None
                self._declare_death(
                    rank, classify_exit(code),
                    f"control pipe closed before {op!r}", kill=True,
                )
                dead.append(rank)
        replies: Dict[int, Dict[str, Any]] = {}
        for rank in targets:
            if not self.alive[rank]:
                if rank not in dead:
                    dead.append(rank)
                continue
            body = self._await_reply(rank, seq, op, injectable=injectable)
            if body is None:
                dead.append(rank)
            else:
                replies[rank] = body
        bucket = (
            "exchange" if op in _EXCHANGE_OPS
            else "compute" if op in _COMPUTE_OPS
            else "control"
        )
        self.phase_seconds[bucket] += wall_clock() - t0
        if dead:
            lost = self.lost_blocks()
            if lost:
                kinds = tuple(
                    next(
                        (d.kind for d in reversed(self.deaths) if d.rank == r),
                        FailureKind.CRASH,
                    )
                    for r in dead
                )
                raise RankFailure(
                    self.step_index, tuple(dead), tuple(lost), kinds=kinds
                )
        return replies

    def _sync_config(self) -> None:
        self._config_dirty = False
        self._phase("config", payload=self._config_payload())

    def _charge_exchange(self, replies: Dict[int, Dict[str, Any]]) -> None:
        for body in replies.values():
            n = int(body.get("n_messages", 0))
            values = int(body.get("n_values", 0))
            self.stats.n_messages += n
            self.stats.n_bytes += values * 8
            self.stats.n_local += int(body.get("n_local", 0))
            if METRICS.enabled and n:
                METRICS.inc("exchange.messages", n)
                METRICS.inc("exchange.bytes", values * 8)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def _exchange(self) -> None:
        det = self.race_detector
        if self.sanitizer is not None:
            self.sanitizer.before_exchange(self._all_blocks())
        if det is not None:
            det.begin_epoch()
        self._charge_exchange(self._phase("exch1"))
        if det is not None:
            for bid, offset, transfers in self._plan:
                dst_rank = self.owner_rank(bid)
                for t in transfers:
                    if t.delta >= 0:
                        det.on_publish(
                            t.src_id, bid, offset, self.owner_rank(t.src_id)
                        )
                        det.on_receive(bid, t.src_id, offset, dst_rank)
        verify = self.scrubber is not None or bool(self._staged_flips)
        gather_replies = self._phase(
            "exch2-gather", payload={"verify": True} if verify else None
        )
        self._charge_exchange(gather_replies)
        write_payload = (
            self._plan_staging_flips(gather_replies)
            if self._staged_flips else None
        )
        write_replies = self._phase("exch2-write", payload=write_payload)
        if verify:
            self._check_staging(write_replies)
        if det is not None:
            for bid, offset, transfers in self._plan:
                dst_rank = self.owner_rank(bid)
                for t in transfers:
                    if t.delta < 0:
                        src_rank = self.owner_rank(t.src_id)
                        det.on_ghost_read(t.src_id, src_rank)
                        det.on_publish(t.src_id, bid, offset, src_rank)
                        det.on_receive(bid, t.src_id, offset, dst_rank)
            det.end_epoch()
        if self.sanitizer is not None:
            self.sanitizer.after_exchange(self._all_blocks())

    def _payload_block(self, rank: int, idx: int) -> Optional[BlockID]:
        """Destination block of ``rank``'s ``idx``-th exch2 payload.

        Workers and supervisor derive payload order from the same plan,
        so a staging-corruption report carrying only a local payload
        index still yields a per-block diagnosis.
        """
        i = 0
        for bid, _offset, transfers in self._plan:
            if self.assignment.get(bid) != rank:
                continue
            for t in transfers:
                if t.delta < 0:
                    if i == idx:
                        return bid
                    i += 1
        return None

    def _plan_staging_flips(
        self, gather_replies: Dict[int, Dict[str, Any]]
    ) -> Optional[Dict[str, Any]]:
        """Address staged bitflips onto concrete (rank, payload) slots.

        The scripted flip's ``block`` field is a global in-flight payload
        index; the gather replies report how many payloads each rank is
        holding, so the supervisor maps the global index to a rank-local
        one and ships the flip down in the ``exch2-write`` command.  With
        no payloads in flight the flips stay staged for a later exchange
        of the same step (they are dropped at the end of the advance,
        like the emulator's).
        """
        counts = [
            (rank, int(body.get("n_payloads", 0)))
            for rank, body in sorted(gather_replies.items())
        ]
        total = sum(n for _, n in counts)
        if total == 0:
            return None
        flips: List[Dict[str, int]] = []
        for f in self._staged_flips:
            g = f.block % total
            for rank, n in counts:
                if g < n:
                    flips.append({
                        "rank": rank, "index": g,
                        "byte": f.byte, "bit": f.bit,
                    })
                    break
                g -= n
        self._staged_flips.clear()
        return {"flips": flips} if flips else None

    def _check_staging(self, replies: Dict[int, Dict[str, Any]]) -> None:
        """Raise on any payload whose write-side CRC check failed."""
        from repro.resilience.scrub import CorruptEntry, CorruptionError

        entries = []
        for rank in sorted(replies):
            for idx in replies[rank].get("staging_bad", ()):
                entries.append(
                    CorruptEntry(
                        "staging",
                        block=self._payload_block(rank, int(idx)),
                        rank=rank,
                    )
                )
        if entries:
            raise CorruptionError(self.step_index, entries)

    def _compute(self, op: str, dt: float) -> None:
        det = self.race_detector
        self._interiors_dirty = True
        self._phase(op, dt=dt)
        if det is not None:
            for rank in self.alive_ranks:
                for block in self.rank_blocks[rank].values():
                    det.on_consume(block.id, rank)
                    det.on_interior_write(block.id, rank)

    def advance(self, dt: float) -> None:
        """One step across all rank processes.

        Scripted rank kills deliver real SIGKILLs before the step and
        surface as :class:`~repro.resilience.faults.RankFailure`; deaths
        detected mid-phase (hang, crash, unreachable) surface the same
        way from inside the failing phase.
        """
        if self._closed:
            raise RuntimeError("machine is closed")
        from repro.resilience.faults import RankFailure

        step = self.step_index
        if self.fault_plan is not None:
            killed = [
                r for r in self.fault_plan.kills_at(step)
                if 0 <= r < self.n_ranks and self.alive[r]
            ]
            if killed:
                for rank in killed:
                    proc = self._procs[rank]
                    if proc is not None and proc.is_alive() and proc.pid is not None:
                        os.kill(proc.pid, signal.SIGKILL)
                for rank in killed:
                    self._declare_death(
                        rank, FailureKind.SIGKILL,
                        "scripted fault: real SIGKILL delivered",
                        kill=False,
                    )
                lost = self.lost_blocks()
                if lost:
                    raise RankFailure(
                        step, tuple(killed), tuple(lost),
                        kinds=(FailureKind.SIGKILL,) * len(killed),
                    )
        if self.fault_plan is not None and self.fault_plan.bitflips:
            from repro.resilience.scrub import apply_scripted_flips

            partner = self.scrubber.partner if self.scrubber is not None else None
            self._staged_flips.extend(
                apply_scripted_flips(
                    self.fault_plan.flips_at(step),
                    self.blocks_by_id(),
                    partner,
                )
            )
        if self.scrubber is not None and self.scrubber.due(step):
            from repro.resilience.scrub import CorruptionError

            entries = self.scrubber.scrub_blocks(
                self.blocks_by_id(),
                rank_of=self.assignment,
                partner=self.scrubber.partner,
            )
            if entries:
                raise CorruptionError(step, entries)
        self._msg_index = 0
        self._interiors_dirty = False
        if self._config_dirty:
            self._sync_config()
        det = self.race_detector
        if det is not None:
            det.begin_step()
        self._exchange()
        if self.scheme.n_stages == 1:
            self._compute("step", dt)
        else:
            self._compute("predictor", dt)
            self._exchange()
            self._compute("corrector", dt)
        if self.sanitizer is not None:
            self.sanitizer.after_stage(self._all_blocks())
        self.time += dt
        self.step_index += 1
        # The step committed: interiors are once again a consistent
        # whole-step state (a kill at the *next* step's start must not
        # read this flag as mid-step).
        self._interiors_dirty = False
        # Staging flips that never matched an in-flight payload are
        # dropped with the step, and the committed state becomes the
        # scrubber's new trusted baseline (post-step write boundary).
        self._staged_flips.clear()
        self.scrub_retag()

    # ------------------------------------------------------------------
    # recovery surface
    # ------------------------------------------------------------------

    @phase_effect("heal")
    def adopt_block(self, bid: BlockID, rank: int, interior: np.ndarray) -> None:
        """Recreate one block on ``rank`` from a redundant interior copy."""
        if not self.alive[rank]:
            raise ValueError(f"cannot adopt block onto dead rank {rank}")
        old = self.assignment.get(bid)
        if old is not None and old != rank:
            prev = self.rank_blocks[old].pop(bid, None)
            seg_old = self._segments[old]
            if prev is not None and seg_old is not None and seg_old.arena is not None:
                seg_old.arena.release(prev)
        blk = self._bind_block(bid, rank)
        blk.interior[...] = interior
        self.assignment[bid] = rank
        self._config_dirty = True
        if self.race_detector is not None:
            self.race_detector.on_interior_write(bid, rank)
        if self.scrubber is not None:
            self.scrubber.retag_block(bid, blk)

    def restore(
        self,
        forest: BlockForest,
        *,
        time: float,
        step_index: Optional[int] = None,
        assignment: Optional[Assignment] = None,
    ) -> None:
        """Rebuild global state from a checkpoint forest (global rollback).

        Dead ranks are respawned first (the rollback restarts the whole
        machine); ranks that cannot be revived stay dead and the SFC
        repartition simply cuts over the survivors.
        """
        if set(forest.blocks) != set(self.topology.blocks):
            raise ValueError(
                "checkpoint topology does not match the machine's "
                "replicated topology"
            )
        for rank in range(self.n_ranks):
            if not self.alive[rank]:
                self.try_respawn(rank)
        alive = self.alive_ranks
        if not alive:
            raise RuntimeError("cannot restore: every rank has failed")
        if assignment is None:
            chunks = sfc_partition(self.topology, len(alive))
            assignment = {bid: alive[r] for bid, r in chunks.items()}
        else:
            bad = {assignment[bid] for bid in assignment} - set(alive)
            if bad:
                raise ValueError(
                    f"assignment targets dead rank(s) {sorted(bad)}"
                )
        self.assignment = dict(assignment)
        for rank in alive:
            seg = self._segments[rank]
            if seg is not None and seg.arena is not None:
                for blk in self.rank_blocks[rank].values():
                    seg.arena.release(blk)
            self.rank_blocks[rank] = {}
        self._locator = {}
        self._populate(forest)
        self._config_dirty = True
        self._sync_config()
        if self.race_detector is not None:
            self.race_detector.end_epoch()
            for bid, rank in self.assignment.items():
                self.race_detector.on_interior_write(bid, rank)
        self.time = time
        if step_index is not None:
            self.step_index = step_index
        self._interiors_dirty = False
        self._staged_flips.clear()
        self.scrub_retag()

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Terminate workers and unlink every shared segment (idempotent).

        Safe on every exit path: tries a graceful shutdown first, then
        terminates, then SIGKILLs; finally destroys all segments (the
        creator-side unlink that actually frees the memory).
        """
        if self._closed:
            return
        self._closed = True
        self._seq += 1
        seq = self._seq
        for rank in range(self.n_ranks):
            conn = self._conns[rank]
            if conn is None:
                continue
            try:
                conn.send({"op": "shutdown", "seq": seq,
                           "step": self.step_index})
            except OSError:
                pass  # already gone; reaped below
        deadline = wall_clock() + self.config.shutdown_timeout
        for rank in range(self.n_ranks):
            proc = self._procs[rank]
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - wall_clock()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self.config.shutdown_timeout)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=self.config.shutdown_timeout)
            self._procs[rank] = None
        for rank in range(self.n_ranks):
            conn = self._conns[rank]
            if conn is not None:
                conn.close()
                self._conns[rank] = None
        self.rank_blocks = [{} for _ in range(self.n_ranks)]
        for rank in range(self.n_ranks):
            seg = self._segments[rank]
            if seg is not None:
                seg.destroy()
                self._segments[rank] = None
                if METRICS.enabled:
                    METRICS.inc("proc.segments_unlinked")
        self._monitor = None  # type: ignore[assignment]
        self._hb_fin()

    def __enter__(self) -> "ProcessMachine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _worker_entry(spec: WorkerSpec) -> None:
    """Module-level fork target (kept importable for traceability)."""
    worker_main(spec)
