"""Event tracing for the virtual machine: text Gantt timelines.

A :class:`TracingMachine` wraps :class:`~repro.parallel.machine.
VirtualMachine`, recording every compute span and message as a
:class:`TraceEvent`.  :func:`render_gantt` prints a per-PE timeline of a
window of the trace — the tool for *seeing* why a step is slow (a long
compute bar on one PE is load imbalance; dense message ticks are
latency-bound exchange; trailing whitespace is barrier wait).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.machine import CRAY_T3D, MachineSpec, TorusTopology, VirtualMachine

__all__ = ["TraceEvent", "TracingMachine", "render_gantt"]


@dataclass(frozen=True)
class TraceEvent:
    """One charged interval on one PE."""

    rank: int
    start: float
    end: float
    kind: str           #: "compute" | "send" | "recv" | "barrier"
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class TracingMachine(VirtualMachine):
    """VirtualMachine that records every charge as a TraceEvent."""

    def __init__(
        self,
        n_ranks: int,
        spec: MachineSpec = CRAY_T3D,
        *,
        topology: Optional[TorusTopology] = None,
    ) -> None:
        super().__init__(n_ranks, spec, topology=topology)
        self.events: List[TraceEvent] = []

    def compute(self, rank: int, seconds: float) -> None:
        start = float(self.clock[rank])
        super().compute(rank, seconds)
        self.events.append(
            TraceEvent(rank, start, float(self.clock[rank]), "compute")
        )

    def message(self, src: int, dst: int, n_bytes: int) -> None:
        if src == dst:
            return
        s0 = float(self.clock[src])
        d0 = float(self.clock[dst])
        super().message(src, dst, n_bytes)
        self.events.append(
            TraceEvent(src, s0, float(self.clock[src]), "send", f"->{dst} {n_bytes}B")
        )
        self.events.append(
            TraceEvent(dst, d0, float(self.clock[dst]), "recv", f"<-{src} {n_bytes}B")
        )

    def finish_step(self) -> float:
        starts = self.clock.copy()
        dt = super().finish_step()
        for rank in range(self.n_ranks):
            if self.clock[rank] > starts[rank]:
                self.events.append(
                    TraceEvent(
                        rank, float(starts[rank]), float(self.clock[rank]), "barrier"
                    )
                )
        return dt

    def events_between(self, t0: float, t1: float) -> List[TraceEvent]:
        return [e for e in self.events if e.end > t0 and e.start < t1]


_GLYPH = {"compute": "#", "send": ">", "recv": "<", "barrier": "."}


def render_gantt(
    machine: TracingMachine,
    *,
    t0: float = 0.0,
    t1: Optional[float] = None,
    width: int = 72,
    max_ranks: int = 16,
) -> str:
    """Text Gantt chart of the trace window ``[t0, t1]``.

    One row per PE; ``#`` compute, ``>``/``<`` message send/receive,
    ``.`` barrier wait, space idle.  Later events overwrite earlier ones
    within a character cell (messages over compute, barrier last).
    """
    if t1 is None:
        t1 = machine.elapsed
    if not t1 > t0:
        raise ValueError("empty trace window")
    span = t1 - t0
    n_rows = min(machine.n_ranks, max_ranks)
    rows = [[" "] * width for _ in range(n_rows)]
    priority = {"compute": 1, "send": 2, "recv": 2, "barrier": 0}
    cell_owner = [[-1] * width for _ in range(n_rows)]
    for e in machine.events_between(t0, t1):
        if e.rank >= n_rows:
            continue
        c0 = int(max(e.start - t0, 0.0) / span * width)
        c1 = int(min(e.end - t0, span) / span * width)
        c1 = max(c1, c0 + 1)
        for c in range(c0, min(c1, width)):
            if priority[e.kind] >= cell_owner[e.rank][c]:
                rows[e.rank][c] = _GLYPH[e.kind]
                cell_owner[e.rank][c] = priority[e.kind]
    lines = [
        f"PE{rank:4d} |" + "".join(row) + "|" for rank, row in enumerate(rows)
    ]
    header = (
        f"t = [{t0:.3e}, {t1:.3e}] s   "
        "(# compute, >/< message, . barrier wait)"
    )
    if machine.n_ranks > n_rows:
        lines.append(f"... {machine.n_ranks - n_rows} more PEs not shown")
    return header + "\n" + "\n".join(lines)
