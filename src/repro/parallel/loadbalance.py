"""Dynamic load re-balancing after adaptation.

The paper: "Whenever refinement or coarsening occurs, load re-balancing
should be performed to insure high performance."  Rebalancing recuts the
space-filling curve over the *new* block set and migrates the blocks
whose rank changed; the migration payload (whole block arrays) is
charged to the machine model by the parallel driver.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.block_id import BlockID
from repro.core.forest import BlockForest
from repro.parallel.exchange import BYTES_PER_VALUE
from repro.parallel.partition import Assignment, sfc_partition

__all__ = ["rebalance", "migration_plan", "migration_bytes"]


def rebalance(
    forest: BlockForest,
    n_ranks: int,
    *,
    weights: Optional[Dict[BlockID, float]] = None,
    curve: str = "morton",
) -> Assignment:
    """Fresh SFC partition over the current block set."""
    return sfc_partition(forest, n_ranks, weights=weights, curve=curve)


def migration_plan(
    old: Assignment, new: Assignment
) -> List[Tuple[BlockID, int, int]]:
    """Blocks whose owner changed: ``(block, old_rank, new_rank)``.

    Blocks present only in ``new`` (created by refinement) or only in
    ``old`` (removed by coarsening) do not appear — their data moves as
    part of the refine/coarsen operation itself, which the driver charges
    separately.
    """
    moves = []
    for bid, dst in new.items():
        src = old.get(bid)
        if src is not None and src != dst:
            moves.append((bid, src, dst))
    moves.sort(key=lambda m: (m[0].morton_key(), m[0].level))
    return moves


def migration_bytes(forest: BlockForest, bid: BlockID, nvar: Optional[int] = None) -> int:
    """Payload of migrating one block (its full padded array)."""
    nv = forest.nvar if nvar is None else nvar
    block = forest.blocks[bid]
    cells = 1
    for p in block.padded_shape:
        cells *= p
    return cells * nv * BYTES_PER_VALUE
