"""Partitioning blocks onto processing elements.

The production strategy (used by the paper's code and its descendants)
is space-filling-curve partitioning: order the blocks along the Morton
curve and cut the ordering into ``P`` contiguous, equal-work chunks.
SFC locality makes each PE's blocks spatially compact, so the ghost
exchange crosses few PE boundaries.  A round-robin partitioner is
included as the locality-free baseline, and a Hilbert-curve variant for
the locality comparison benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.block_id import BlockID
from repro.core.forest import BlockForest

__all__ = [
    "Assignment",
    "sfc_partition",
    "round_robin_partition",
    "partition_imbalance",
    "partition_cut_fraction",
]

#: Block-to-rank map.
Assignment = Dict[BlockID, int]


def _weights(
    forest: BlockForest, weights: Optional[Dict[BlockID, float]]
) -> "Tuple[List[BlockID], np.ndarray]":
    ids = forest.sorted_ids()
    if weights is None:
        w = np.ones(len(ids))
    else:
        w = np.array([weights[b] for b in ids], dtype=float)
    return ids, w


def sfc_partition(
    forest: BlockForest,
    n_ranks: int,
    *,
    weights: Optional[Dict[BlockID, float]] = None,
    curve: str = "morton",
) -> Assignment:
    """Cut the SFC ordering into ``n_ranks`` contiguous equal-work chunks.

    ``weights`` (default: 1 per block — all blocks hold the same number
    of cells, the paper's uniform-work case) lets callers weight by cell
    count or measured per-block cost.  Degenerate inputs are handled
    explicitly: an empty forest raises :class:`ValueError` (there is
    nothing to cut), and all-zero (or negative-total) weights fall back
    to uniform weights instead of dividing by zero.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if curve == "morton":
        ids = forest.sorted_ids()
    else:
        ids = sorted(forest.blocks, key=lambda b: (b.morton_key(curve=curve), b.level))
    if not ids:
        raise ValueError("cannot partition an empty forest (it has no blocks)")
    if weights is None:
        w = np.ones(len(ids))
    else:
        w = np.array([weights[b] for b in ids], dtype=float)
    total = w.sum()
    if total <= 0.0:
        w = np.ones(len(ids))
        total = float(len(ids))
    assignment: Assignment = {}
    cum = np.concatenate([[0.0], np.cumsum(w)])
    for i, bid in enumerate(ids):
        # Rank owning the center of this block's weight interval.
        mid = 0.5 * (cum[i] + cum[i + 1])
        rank = min(int(mid / total * n_ranks), n_ranks - 1)
        assignment[bid] = rank
    return assignment


def round_robin_partition(forest: BlockForest, n_ranks: int) -> Assignment:
    """Locality-free baseline: block ``i`` goes to rank ``i % P``."""
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    return {bid: i % n_ranks for i, bid in enumerate(forest.sorted_ids())}


def partition_imbalance(
    forest: BlockForest,
    assignment: Assignment,
    n_ranks: int,
    *,
    weights: Optional[Dict[BlockID, float]] = None,
) -> float:
    """Load imbalance: max rank work / mean rank work (1.0 is perfect).

    This is the quantity the paper warns about: with few blocks per PE,
    "any processor having a number of blocks above the average will be
    doing significantly more work".
    """
    loads = np.zeros(n_ranks)
    for bid, rank in assignment.items():
        loads[rank] += 1.0 if weights is None else weights[bid]
    mean = loads.mean()
    return float(loads.max() / mean) if mean > 0 else 1.0


def partition_cut_fraction(forest: BlockForest, assignment: Assignment) -> float:
    """Fraction of face-neighbor pointer pairs that cross rank boundaries
    (the communication surface of the partition)."""
    cross = 0
    total = 0
    for bid, block in forest.blocks.items():
        for fn in block.face_neighbors.values():
            for nid in fn.ids:
                total += 1
                if assignment[nid] != assignment[bid]:
                    cross += 1
    return cross / total if total else 0.0
