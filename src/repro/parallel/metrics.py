"""Parallel-performance metrics (the quantities Figures 6–7 plot)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.emulator import ExchangeStats

__all__ = [
    "StepTimeReport",
    "scaled_efficiency",
    "fixed_size_speedup",
    "gflops",
    "redundancy_overhead",
]


@dataclass
class StepTimeReport:
    """Time breakdown of a simulated parallel run."""

    n_ranks: int
    n_steps: int
    total_time: float
    compute_time: float      #: sum over PEs of busy compute (s·PE)
    comm_time: float         #: sum over PEs of communication (s·PE)
    wait_time: float         #: sum over PEs of barrier wait (s·PE)
    n_blocks: int
    n_cells: int

    @property
    def time_per_step(self) -> float:
        return self.total_time / self.n_steps if self.n_steps else 0.0

    @property
    def parallel_utilization(self) -> float:
        """Busy fraction of the machine: compute / (P × wall time)."""
        denom = self.n_ranks * self.total_time
        return self.compute_time / denom if denom > 0 else 0.0

    @property
    def comm_fraction(self) -> float:
        denom = self.n_ranks * self.total_time
        return self.comm_time / denom if denom > 0 else 0.0


def scaled_efficiency(times: Dict[int, float], base: int = 1) -> Dict[int, float]:
    """Scaled-size parallel efficiency (the paper's Figure 6).

    Work per PE is constant across ``times``; perfect scaling keeps the
    step time equal to the base machine's, so
    ``E(P) = T(base) / T(P)``.
    """
    if base not in times:
        raise ValueError(f"base rank count {base} missing from times")
    t0 = times[base]
    return {p: t0 / t for p, t in sorted(times.items())}


def fixed_size_speedup(times: Dict[int, float], base: int = 64) -> Dict[int, float]:
    """Fixed-size speedup relative to ``base`` PEs (the paper's Figure 7:
    'the speedup here is relative to the 64 processor speed').

    Returned values are normalized so perfect scaling gives
    ``S(P) = P / base``.
    """
    if base not in times:
        raise ValueError(f"base rank count {base} missing from times")
    t0 = times[base]
    return {p: t0 / t for p, t in sorted(times.items())}


def gflops(total_flops: float, wall_time: float) -> float:
    """Sustained GFLOPS (the paper's headline 16–17 GFLOPS claim)."""
    return total_flops / wall_time / 1e9 if wall_time > 0 else 0.0


def redundancy_overhead(stats: "ExchangeStats") -> float:
    """Fraction of all wire bytes spent on partner-snapshot redundancy.

    ``stats`` is an :class:`~repro.parallel.emulator.ExchangeStats`;
    the answer is ``partner_bytes / (ghost_bytes + partner_bytes)`` —
    the measurable cost of the localized-recovery tier relative to the
    productive exchange traffic (0.0 for a run without redundancy).
    """
    total = stats.n_bytes + stats.n_partner_bytes
    return stats.n_partner_bytes / total if total > 0 else 0.0
