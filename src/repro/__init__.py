"""repro — Adaptive Blocks: a high-performance block-AMR library.

Reproduction of Stout, De Zeeuw, Gombosi, Groth, Marshall & Powell,
*Adaptive Blocks: A High Performance Data Structure*, SC 1997.

The package provides:

* :mod:`repro.core` — the adaptive block data structure (block forest,
  ghost exchange, prolongation/restriction, refinement criteria);
* :mod:`repro.tree` — the cell-based quadtree/octree baseline the paper
  compares against;
* :mod:`repro.solvers` — finite-volume advection / Euler / ideal-MHD
  kernels operating on block arrays;
* :mod:`repro.amr` — serial AMR simulation driver, problems, boundary
  conditions, I/O;
* :mod:`repro.parallel` — simulated distributed-memory machine (Cray T3D
  cost model), SFC partitioning, load balancing, parallel AMR driver;
* :mod:`repro.machine` — direct-mapped-cache cost model reproducing the
  paper's Figure 5 cache effects.
"""

from repro.core import (
    Block,
    BlockForest,
    BlockID,
    IndexBox,
    fill_ghosts,
)
from repro.util import Box

__version__ = "1.0.0"

__all__ = [
    "Block",
    "BlockForest",
    "BlockID",
    "IndexBox",
    "fill_ghosts",
    "Box",
    "__version__",
]
