"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Run one of the bundled problems (pulse, blasts, solar wind, comet)
    with live progress and optional checkpointing.
``info``
    Summarize a checkpoint written by ``run --save`` /
    :func:`repro.amr.save_forest`.
``scaling``
    Simulated-T3D scaled-efficiency sweep (the Figure-6 series).
``fig5``
    Measured time-per-cell vs block size (the Figure-5 series).
``emulate``
    Run a problem on the emulated distributed machine and verify the
    result against the serial driver (bit-exact check).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]

PROBLEMS = ("pulse", "sedov", "mhd_blast", "orszag_tang", "solar_wind", "comet")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive Blocks (Stout et al., SC 1997) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a bundled AMR problem")
    run.add_argument("problem", choices=PROBLEMS)
    run.add_argument("--ndim", type=int, default=2, choices=(1, 2, 3))
    run.add_argument("--steps", type=int, default=None, help="step count")
    run.add_argument("--t-end", type=float, default=None, help="end time")
    run.add_argument("--no-adapt", action="store_true", help="static grid")
    run.add_argument("--reflux", action="store_true",
                     help="enable coarse-fine flux correction")
    run.add_argument("--save", metavar="FILE.npz", default=None,
                     help="write a checkpoint at the end")
    run.add_argument("--report-every", type=int, default=10)

    info = sub.add_parser("info", help="summarize a checkpoint")
    info.add_argument("checkpoint")

    scaling = sub.add_parser("scaling", help="simulated-T3D efficiency sweep")
    scaling.add_argument("--steps", type=int, default=10)

    fig5 = sub.add_parser("fig5", help="measured time/cell vs block size")
    fig5.add_argument(
        "--sizes", default="2,4,8,16",
        help="comma-separated block sizes (default 2,4,8,16)",
    )

    emulate = sub.add_parser(
        "emulate",
        help="distributed-emulation run, verified against serial",
    )
    emulate.add_argument("problem", choices=PROBLEMS)
    emulate.add_argument("--ndim", type=int, default=2, choices=(1, 2, 3))
    emulate.add_argument("--ranks", type=int, default=4)
    emulate.add_argument("--steps", type=int, default=5)
    return parser


def _make_problem(name: str, ndim: int):
    from repro.amr import (
        advecting_pulse,
        comet,
        mhd_blast,
        orszag_tang,
        sedov_blast,
        solar_wind,
    )

    factories = {
        "pulse": advecting_pulse,
        "sedov": sedov_blast,
        "mhd_blast": mhd_blast,
        "orszag_tang": lambda _ndim: orszag_tang(),
        "solar_wind": solar_wind,
        "comet": comet,
    }
    return factories[name](ndim)


def cmd_run(args: argparse.Namespace) -> int:
    from repro.amr import grid_report, save_forest

    if args.steps is None and args.t_end is None:
        print("error: give --steps and/or --t-end", file=sys.stderr)
        return 2
    problem = _make_problem(args.problem, args.ndim)
    sim = problem.build(adaptive=not args.no_adapt)
    sim.reflux = args.reflux
    print(f"== {problem.name} ==")
    print(grid_report(sim.forest))
    print(f"{'step':>6} {'time':>10} {'dt':>10} {'blocks':>7} {'cells':>9}")
    target_steps = args.steps if args.steps is not None else 10**9
    while True:
        if sim.step_count >= target_steps:
            break
        if args.t_end is not None and sim.time >= args.t_end - 1e-14:
            break
        dt = sim.stable_dt()
        if args.t_end is not None:
            dt = min(dt, args.t_end - sim.time)
        sim.maybe_adapt()
        sim.advance(dt)
        if sim.hook is not None:
            sim.hook(sim, dt)
        sim.step_count += 1
        if sim.step_count % args.report_every == 0:
            print(
                f"{sim.step_count:6d} {sim.time:10.5f} {dt:10.3e} "
                f"{sim.forest.n_blocks:7d} {sim.forest.n_cells:9d}"
            )
    print("\nfinal grid:")
    print(grid_report(sim.forest))
    print("\nphase timings:")
    print(sim.timer.report())
    if args.save:
        save_forest(sim.forest, args.save)
        print(f"\ncheckpoint written to {args.save}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    from repro.amr import grid_report, load_forest

    forest = load_forest(args.checkpoint)
    print(grid_report(forest))
    totals = []
    for block in forest:
        cell_vol = float(np.prod(block.dx))
        totals.append(block.interior.reshape(forest.nvar, -1).sum(axis=1) * cell_vol)
    total = np.sum(totals, axis=0)
    print("conserved totals:", "  ".join(f"{v:.6g}" for v in total))
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    from repro.core import BlockForest
    from repro.parallel import ParallelSimulation, scaled_efficiency
    from repro.util.geometry import Box

    times = {}
    print(f"{'PEs':>5} {'blocks':>7} {'ms/step':>9} {'comm %':>7}")
    for p, n in ((1, 2), (8, 4), (64, 8), (512, 16)):
        forest = BlockForest(
            Box((0.0,) * 3, (1.0,) * 3), (n,) * 3, (8,) * 3, nvar=1, n_ghost=2
        )
        sim = ParallelSimulation(forest, p)
        rep = sim.run(args.steps)
        times[p] = rep.time_per_step
        print(
            f"{p:5d} {forest.n_blocks:7d} {rep.time_per_step * 1e3:9.2f} "
            f"{100 * rep.comm_fraction:7.2f}"
        )
    eff = scaled_efficiency(times)
    print("efficiency:", "  ".join(f"P={p}: {e:.3f}" for p, e in eff.items()))
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    from repro.solvers import MHDScheme
    from repro.util.timing import measure

    sizes = [int(s) for s in args.sizes.split(",")]
    rng = np.random.default_rng(0)
    print(f"{'block':>7} {'cells':>7} {'us/cell':>9}")
    for m in sizes:
        g = 2
        scheme = MHDScheme(3, order=2)
        w = np.empty((8,) + (m + 2 * g,) * 3)
        w[0] = 1.0 + 0.1 * rng.random(w.shape[1:])
        w[1:4] = 0.0
        w[4] = 1.0
        w[5:8] = 0.1
        u = scheme.prim_to_cons(w)
        t = measure(lambda: scheme.step(u, (1.0 / m,) * 3, 1e-4, g), repeats=3).best
        print(f"{m:>5d}^3 {m**3:7d} {t / m**3 * 1e6:9.2f}")
    return 0


def cmd_emulate(args: argparse.Namespace) -> int:
    from repro.parallel import EmulatedMachine

    problem = _make_problem(args.problem, args.ndim)
    sim = problem.build(adaptive=False)
    forest_emu = problem.config.make_forest(problem.scheme.nvar)
    problem.init_forest(forest_emu)
    emu = EmulatedMachine(
        forest_emu, args.ranks, problem.scheme, bc=problem.bc
    )
    dt = 0.5 * sim.stable_dt()
    print(
        f"== emulating {problem.name} on {args.ranks} ranks, "
        f"{args.steps} steps of dt={dt:.3e} =="
    )
    for _ in range(args.steps):
        sim.advance(dt)
        if sim.hook is not None:
            sim.hook(sim, dt)
        emu.advance(dt)
    gathered = emu.gather()
    worst = 0.0
    for bid, block in sim.forest.blocks.items():
        worst = max(worst, float(np.abs(gathered[bid] - block.interior).max()))
    cells = emu.rank_cells()
    print(f"cells/rank: min {min(cells)}, max {max(cells)}")
    print(
        f"wire messages: {emu.stats.n_messages}  "
        f"({emu.stats.n_bytes / 1024:.0f} KB);  "
        f"local transfers: {emu.stats.n_local}"
    )
    hook_note = " (driver hook runs serial-side only)" if problem.hook else ""
    print(f"max |emulated - serial| = {worst:.3e}{hook_note}")
    if problem.hook is None and worst != 0.0:
        print("MISMATCH: emulated run diverged from serial", file=sys.stderr)
        return 1
    print("OK: distributed emulation matches the serial driver" if worst == 0.0
          else "note: differences stem from the serial-only driver hook")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "info": cmd_info,
        "scaling": cmd_scaling,
        "fig5": cmd_fig5,
        "emulate": cmd_emulate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
