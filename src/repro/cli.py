"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Run one of the bundled problems (pulse, blasts, solar wind, comet)
    with live progress and optional checkpointing.
``info``
    Summarize a checkpoint written by ``run --save`` /
    :func:`repro.amr.save_forest`.
``scaling``
    Simulated-T3D scaled-efficiency sweep (the Figure-6 series).
``fig5``
    Measured time-per-cell vs block size (the Figure-5 series).
``emulate``
    Run a problem on the emulated distributed machine and verify the
    result against the serial driver (bit-exact check).
``sanitize``
    Debug run of a problem under the correctness tooling: the
    ghost-poison sanitizer on the serial driver, plus the sanitizer and
    the exchange race detector on the emulated machine (see
    :mod:`repro.analysis`).
``lint``
    Run the repo's AMR-specific AST lint (rules REPRO101-108) over
    source paths, as text, JSON, or GitHub workflow annotations.
``check``
    Static protocol verification: spec/code conformance, phase-effect
    contracts (REPRO106/107), and a bounded explicit-state model check
    of the supervisor/worker protocol with a seeded-mutation self-test
    (see :mod:`repro.analysis.modelcheck`).
``profile``
    Run a problem under the observability layer (metrics registry +
    JSONL event stream) and print the phase breakdown, hottest blocks,
    and engine comparison (see :mod:`repro.obs`).
``report``
    Validate and render a previously recorded ``*.jsonl`` event stream,
    optionally diffing it against the committed ``BENCH_*.json``
    performance trajectory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]

PROBLEMS = ("pulse", "sedov", "mhd_blast", "orszag_tang", "solar_wind", "comet")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive Blocks (Stout et al., SC 1997) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a bundled AMR problem")
    run.add_argument("problem", choices=PROBLEMS)
    run.add_argument("--ndim", type=int, default=2, choices=(1, 2, 3))
    run.add_argument("--steps", type=int, default=None, help="step count")
    run.add_argument("--t-end", type=float, default=None, help="end time")
    run.add_argument("--no-adapt", action="store_true", help="static grid")
    run.add_argument("--reflux", action="store_true",
                     help="enable coarse-fine flux correction")
    run.add_argument("--save", metavar="FILE.npz", default=None,
                     help="write a checkpoint at the end")
    run.add_argument("--report-every", type=int, default=10)
    run.add_argument("--checkpoint-every", type=int, metavar="N", default=None,
                     help="write a rotating checkpoint every N steps")
    run.add_argument("--checkpoint-dir", default="checkpoints",
                     help="directory for --checkpoint-every files")
    run.add_argument("--checkpoint-keep", type=int, default=3,
                     help="rotating checkpoints to retain")
    run.add_argument("--resume", metavar="FILE.npz", default=None,
                     help="restart from a checkpoint instead of t=0")
    run.add_argument("--safe-mode", action="store_true",
                     help="health-check each step; roll back and halve "
                          "dt on NaN/Inf or negative density/pressure")
    run.add_argument("--sanitize", action="store_true",
                     help="run under the ghost-poison sanitizer (debug; "
                          "raises on any consumed unfilled ghost cell)")
    run.add_argument("--engine", choices=("blocked", "batched"),
                     default="blocked",
                     help="execution engine: per-block kernels (blocked) "
                          "or vectorized-over-blocks arena kernels "
                          "(batched); results are bit-for-bit identical")
    run.add_argument("--kernel-backend", choices=("numpy", "numba"),
                     default="numpy",
                     help="kernel backend for the hot per-tile ops: "
                          "reference numpy or fused JIT (numba; falls "
                          "back to numpy with a warning when not "
                          "installed); results are bit-for-bit identical")
    run.add_argument("--subcycle", action="store_true",
                     help="level-local time stepping: each refinement "
                          "level advances with its own CFL dt (2^delta "
                          "substeps per coarse step, time-interpolated "
                          "ghosts, time-weighted reflux) instead of one "
                          "global finest-level dt")
    run.add_argument("--scrub-every", type=int, metavar="N", default=None,
                     help="verify per-block CRC integrity tags every N "
                          "steps; silent data corruption aborts loudly "
                          "with a per-block diagnosis instead of "
                          "propagating (bit-for-bit transparent)")

    bench = sub.add_parser(
        "bench",
        help="batched-vs-blocked engine speedup (Fig-5-style workload)",
    )
    bench.add_argument("--quick", action="store_true",
                       help="reduced sweep for smoke runs")
    bench.add_argument("--steps", type=int, default=None,
                       help="override timed steps per case")
    bench.add_argument("--no-json", action="store_true",
                       help="skip writing BENCH_batched_engine.json")
    bench.add_argument("--kernel-backend", default="auto",
                       metavar="NAMES",
                       help="comma-separated kernel backends to measure "
                            "(numpy, numba), or 'auto' for every backend "
                            "available in this environment "
                            "(default: auto)")
    bench.add_argument("--tile-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="target working-set bytes per batched kernel "
                            "tile (>= 4096; default: REPRO_BATCH_TILE_BYTES "
                            "env var, else 800 KiB); bit-for-bit neutral")
    bench.add_argument("--subcycle", action="store_true",
                       help="also run the deep-hierarchy subcycling case: "
                            "subcycled vs global-dt updates per unit "
                            "physical time on a nested multi-level forest, "
                            "checked against the ablation-predicted factor "
                            "and for blocked/batched bitwise equivalence")

    info = sub.add_parser("info", help="summarize or audit checkpoints")
    info.add_argument("checkpoint",
                      help="a checkpoint file, or (with --checksums) a "
                           "checkpoint directory to audit")
    info.add_argument("--validate", action="store_true",
                      help="run the forest invariant validator")
    info.add_argument("--checksums", action="store_true",
                      help="report content checksums; pointing at a "
                           "directory audits every rotating checkpoint "
                           "in it, flagging corrupt files")
    info.add_argument("--prefix", default="ckpt", metavar="NAME",
                      help="rotating-checkpoint filename prefix for "
                           "directory audits (default: ckpt)")

    scaling = sub.add_parser("scaling", help="simulated-T3D efficiency sweep")
    scaling.add_argument("--steps", type=int, default=10)

    fig5 = sub.add_parser("fig5", help="measured time/cell vs block size")
    fig5.add_argument(
        "--sizes", default="2,4,8,16",
        help="comma-separated block sizes (default 2,4,8,16)",
    )

    emulate = sub.add_parser(
        "emulate",
        help="distributed-emulation run, verified against serial",
    )
    emulate.add_argument("problem", choices=PROBLEMS)
    emulate.add_argument("--ndim", type=int, default=2, choices=(1, 2, 3))
    emulate.add_argument("--ranks", type=int, default=4)
    emulate.add_argument("--steps", type=int, default=5)
    emulate.add_argument("--kill", action="append", default=[],
                         metavar="STEP:RANK",
                         help="kill RANK at the start of STEP (repeatable)")
    emulate.add_argument("--drop-message", action="append", default=[],
                         metavar="STEP:INDEX",
                         help="drop wire message INDEX during STEP")
    emulate.add_argument("--corrupt-message", action="append", default=[],
                         metavar="STEP:INDEX",
                         help="corrupt wire message INDEX during STEP")
    emulate.add_argument("--transient-message", action="append", default=[],
                         metavar="STEP:INDEX",
                         help="transiently drop wire message INDEX during "
                              "STEP (retried with backoff, see --retry-max)")
    emulate.add_argument("--flip-bits", action="append", default=[],
                         metavar="STEP:TARGET[:BLOCK[:BYTE[:BIT]]]",
                         help="flip one bit of live state before STEP "
                              "(repeatable); TARGET is interior, ghost, "
                              "mirror, or staging, BLOCK indexes the "
                              "SFC block order (wire-message order for "
                              "staging); detected by the scrubber and "
                              "repaired through the self-healing ladder")
    emulate.add_argument("--scrub-every", type=int, default=None,
                         metavar="N",
                         help="verify block and mirror CRC integrity "
                              "tags every N steps (defaults to 1 when "
                              "--flip-bits is given, else off)")
    emulate.add_argument("--refine-levels", type=int, default=0,
                         metavar="L",
                         help="statically refine L levels around the "
                              "domain center before the run (exercises "
                              "cross-level exchange; staging bitflips "
                              "ride the coarse-to-fine payloads this "
                              "creates)")
    emulate.add_argument("--checkpoint-every", type=int, default=1,
                         metavar="N",
                         help="recovery checkpoint cadence (fault runs)")
    emulate.add_argument("--checkpoint-dir", default=None,
                         help="recovery checkpoint directory "
                              "(default: a temporary directory)")
    emulate.add_argument("--recovery-strategy", default="auto",
                         choices=("local", "global", "auto"),
                         help="fault recovery policy: localized "
                              "partner-copy recovery (escalating to "
                              "global on double faults), always-global "
                              "checkpoint rollback, or auto (default)")
    emulate.add_argument("--partner-refresh-every", type=int, default=1,
                         metavar="N",
                         help="partner-snapshot refresh cadence in steps "
                              "(local/auto strategies; larger N = less "
                              "redundancy traffic, longer replay window)")
    emulate.add_argument("--retry-max", type=int, default=2, metavar="N",
                         help="retransmissions before a transient message "
                              "fault escalates to a failure")
    emulate.add_argument("--retry-backoff", type=float, default=1e-4,
                         metavar="SECONDS",
                         help="base backoff before the first "
                              "retransmission (doubles per retry, capped)")
    emulate.add_argument("--sanitize", action="store_true",
                         help="run the emulation under the ghost-poison "
                              "sanitizer and the exchange race detector")
    emulate.add_argument("--record", metavar="FILE.jsonl", default=None,
                         help="write a structured JSONL event stream "
                              "(steps, recoveries, wire traffic; see "
                              "`repro report`)")
    emulate.add_argument("--kernel-backend", choices=("numpy", "numba"),
                         default="numpy",
                         help="kernel backend for both the serial "
                              "reference and the emulated ranks "
                              "(bit-for-bit identical; numba falls back "
                              "to numpy when not installed)")
    emulate.add_argument("--backend", choices=("emulated", "process"),
                         default="emulated",
                         help="rank substrate: in-process emulation "
                              "(default) or one real OS process per rank "
                              "with shared-memory pools; --kill then sends "
                              "an actual SIGKILL and recovery respawns the "
                              "process")
    emulate.add_argument("--phase-timeout", type=float, default=10.0,
                         metavar="SECONDS",
                         help="process backend: soft per-phase reply "
                              "deadline before the supervisor probes a "
                              "silent rank")
    emulate.add_argument("--hard-timeout", type=float, default=60.0,
                         metavar="SECONDS",
                         help="process backend: hard per-phase deadline "
                              "before a silent rank is declared hung "
                              "and killed")
    emulate.add_argument("--heartbeat-interval", type=float, default=0.05,
                         metavar="SECONDS",
                         help="process backend: worker heartbeat cadence")
    emulate.add_argument("--heartbeat-timeout", type=float, default=5.0,
                         metavar="SECONDS",
                         help="process backend: heartbeat staleness after "
                              "which a rank is declared hung")
    emulate.add_argument("--respawn-max", type=int, default=3,
                         metavar="N",
                         help="process backend: respawn attempts per dead "
                              "rank before recovery degrades to "
                              "redistributing its blocks over survivors")
    emulate.add_argument("--schedule", metavar="TRACE.json", default=None,
                         help="replay a `repro check` counterexample trace: "
                              "its fault injections are mapped onto the "
                              "deterministic fault plan (kill/hang -> rank "
                              "kill, mute/garble/stale -> transient message "
                              "drop) and the final-state digest is printed")

    sanitize = sub.add_parser(
        "sanitize",
        help="debug-run a problem under the full correctness tooling",
    )
    sanitize.add_argument("problem", choices=PROBLEMS)
    sanitize.add_argument("--ndim", type=int, default=2, choices=(1, 2, 3))
    sanitize.add_argument("--steps", type=int, default=5)
    sanitize.add_argument("--ranks", type=int, default=4)
    sanitize.add_argument("--no-adapt", action="store_true",
                          help="static grid for the serial phase")

    profile = sub.add_parser(
        "profile",
        help="run a problem under the observability layer and report "
             "phase breakdown, hottest blocks, and engine comparison",
    )
    profile.add_argument("problem", choices=PROBLEMS)
    profile.add_argument("--ndim", type=int, default=2, choices=(1, 2, 3))
    profile.add_argument("--steps", type=int, default=10)
    profile.add_argument("--engines", default="blocked,batched",
                         help="comma-separated engines to profile "
                              "(default: blocked,batched)")
    profile.add_argument("--kernel-backend", choices=("numpy", "numba"),
                         default="numpy",
                         help="kernel backend for the profiled runs "
                              "(bit-for-bit identical; numba falls back "
                              "to numpy when not installed)")
    profile.add_argument("--subcycle", action="store_true",
                         help="profile under level-local (subcycled) time "
                              "stepping instead of one global dt")
    profile.add_argument("--no-adapt", action="store_true",
                         help="static grid")
    profile.add_argument("--out", metavar="FILE.jsonl", default=None,
                         help="event-stream path (default: "
                              "profile_<problem>.jsonl)")
    profile.add_argument("--top-k", type=int, default=5,
                         help="hottest blocks to show (default 5)")
    profile.add_argument("--compare-bench", action="store_true",
                         help="diff the profiled numbers against the "
                              "committed BENCH_batched_engine.json")

    report = sub.add_parser(
        "report",
        help="validate and render a recorded run.jsonl event stream",
    )
    report.add_argument("run", metavar="RUN.jsonl")
    report.add_argument("--top-k", type=int, default=5)
    report.add_argument("--compare-bench", metavar="NAME", nargs="?",
                        const="batched_engine", default=None,
                        help="diff profiled numbers against the committed "
                             "BENCH_<NAME>.json (default name: "
                             "batched_engine)")
    report.add_argument("--strict", action="store_true",
                        help="exit non-zero when --compare-bench flags a "
                             "regression")

    lint = sub.add_parser(
        "lint", help="run the AMR-specific AST lint (REPRO101-107)"
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories (default: src/repro)")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated rule codes to enable "
                           "(default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--format", default="text",
                      choices=("text", "json", "github"),
                      help="output format: human-readable lines (default), "
                           "a JSON report, or GitHub workflow error "
                           "annotations (::error file=...)")

    check = sub.add_parser(
        "check",
        help="static protocol verification: spec conformance, "
             "phase-effect contracts, bounded model check",
    )
    check.add_argument("--ranks", type=int, default=2,
                       help="model-check world size (2-4, default 2)")
    check.add_argument("--steps", type=int, default=1,
                       help="bounded step count (default 1)")
    check.add_argument("--max-faults", type=int, default=1,
                       help="fault-injection budget (default 1)")
    check.add_argument("--scheme", choices=("single", "double"),
                       default="single",
                       help="step program: single-stage or "
                            "predictor/corrector")
    check.add_argument("--no-por", action="store_true",
                       help="disable the partial-order reduction "
                            "(full interleaving exploration)")
    check.add_argument("--mutate", default=None, metavar="NAME",
                       choices=("reorder-exch2", "skip-mirror-verify",
                                "drop-probe", "unguarded-free",
                                "skip-seq-check"),
                       help="model-check a single seeded spec mutation; "
                            "succeeds when the expected violation is "
                            "found (detection self-test)")
    check.add_argument("--skip-mutations", action="store_true",
                       help="skip the all-mutations detection self-test "
                            "that normally runs after the clean check")
    check.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="write counterexample traces as "
                            "<DIR>/<kind>.json (replayable via "
                            "`repro emulate --schedule`)")
    return parser


def _make_problem(name: str, ndim: int):
    from repro.amr import (
        advecting_pulse,
        comet,
        mhd_blast,
        orszag_tang,
        sedov_blast,
        solar_wind,
    )

    factories = {
        "pulse": advecting_pulse,
        "sedov": sedov_blast,
        "mhd_blast": mhd_blast,
        "orszag_tang": lambda _ndim: orszag_tang(),
        "solar_wind": solar_wind,
        "comet": comet,
    }
    return factories[name](ndim)


def cmd_run(args: argparse.Namespace) -> int:
    from repro.amr import (
        CheckpointError,
        Simulation,
        checkpoint_metadata,
        grid_report,
        load_forest,
        save_forest,
    )
    from repro.resilience import UnrecoverableStep

    if args.steps is None and args.t_end is None:
        print("error: give --steps and/or --t-end", file=sys.stderr)
        return 2
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        print("error: --checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    if args.scrub_every is not None and args.scrub_every < 1:
        print("error: --scrub-every must be >= 1", file=sys.stderr)
        return 2
    problem = _make_problem(args.problem, args.ndim)
    if args.resume:
        try:
            forest = load_forest(args.resume)
            meta = checkpoint_metadata(args.resume)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        sim = Simulation(
            forest,
            problem.scheme,
            bc=problem.bc,
            criterion=None if args.no_adapt else problem.make_criterion(),
            adapt_interval=problem.config.adapt_interval,
            buffer_band=problem.config.buffer_band,
            hook=problem.hook,
            safe_mode=args.safe_mode,
            sanitize=args.sanitize,
            engine=args.engine,
            kernel_backend=args.kernel_backend,
            subcycle=args.subcycle,
        )
        sim.time = float(meta.get("time", 0.0))
        sim.step_count = int(meta.get("step", 0))
        print(
            f"resumed from {args.resume} at step {sim.step_count}, "
            f"t={sim.time:.5f}"
        )
    else:
        sim = problem.build(
            adaptive=not args.no_adapt,
            sanitize=args.sanitize,
            engine=args.engine,
            kernel_backend=args.kernel_backend,
            subcycle=args.subcycle,
        )
        sim.safe_mode = args.safe_mode
    sim.reflux = args.reflux
    if args.scrub_every is not None:
        from repro.resilience import Scrubber

        sim.attach_scrubber(Scrubber(every=args.scrub_every))
    with sim:
        return _drive_run(args, problem, sim)


def _drive_run(args: argparse.Namespace, problem, sim) -> int:
    """The run loop of :func:`cmd_run` (sim closed by the caller)."""
    from repro.amr import grid_report, save_forest
    from repro.resilience import CorruptionError, UnrecoverableStep

    checkpointer = None
    if args.checkpoint_every is not None:
        from repro.resilience import Checkpointer

        checkpointer = Checkpointer(
            args.checkpoint_dir, keep=args.checkpoint_keep
        )
    print(f"== {problem.name} ==")
    print(grid_report(sim.forest))
    print(f"{'step':>6} {'time':>10} {'dt':>10} {'blocks':>7} {'cells':>9}")
    target_steps = args.steps if args.steps is not None else 10**9
    while True:
        if sim.step_count >= target_steps:
            break
        if args.t_end is not None and sim.time >= args.t_end - 1e-14:
            break
        dt = sim.stable_dt()
        if args.t_end is not None:
            dt = min(dt, args.t_end - sim.time)
        try:
            rec = sim.step(dt)
        except CorruptionError as exc:
            # The serial driver has no partner/checkpoint tier to heal
            # from; the scrubber's job here is the loud, early abort.
            print(f"error: {exc}", file=sys.stderr)
            for entry in exc.entries:
                print(f"  corrupt: {entry.describe()}", file=sys.stderr)
            return 1
        except UnrecoverableStep as exc:
            f = exc.failure
            print(
                f"error: step {f.step} unrecoverable at t={f.time:.5f}: "
                f"{f.issue.reason} in block {f.issue.block} "
                f"(variable {f.issue.variable}, {f.issue.n_bad} bad cells) "
                f"after dt attempts "
                + ", ".join(f"{d:.3e}" for d in f.dt_attempts),
                file=sys.stderr,
            )
            return 1
        if (
            checkpointer is not None
            and sim.step_count % args.checkpoint_every == 0
        ):
            info = checkpointer.save(
                sim.forest, step=sim.step_count, time=sim.time
            )
            print(f"  checkpoint -> {info.path}")
        if sim.step_count % args.report_every == 0:
            print(
                f"{sim.step_count:6d} {sim.time:10.5f} {rec.dt:10.3e} "
                f"{sim.forest.n_blocks:7d} {sim.forest.n_cells:9d}"
            )
    print("\nfinal grid:")
    print(grid_report(sim.forest))
    print("\nphase timings:")
    print(sim.timer.report())
    if sim.sanitizer is not None:
        print(
            f"\nghost sanitizer: {sim.sanitizer.n_exchanges_checked} "
            f"exchanges verified, {sim.sanitizer.n_cells_poisoned} "
            f"ghost values poisoned, 0 violations"
        )
    if sim.scrubber is not None:
        s = sim.scrubber
        print(
            f"\nscrubber: {s.scrubs} scrubs, {s.blocks_verified} block "
            f"verifications, {s.mismatches} mismatches"
        )
    if args.save:
        save_forest(sim.forest, args.save, time=sim.time, step=sim.step_count)
        print(f"\ncheckpoint written to {args.save}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.analysis.engine_bench import (
        DEFAULT_CASES,
        QUICK_CASES,
        check_backend_equivalence,
        check_equivalence,
        check_subcycle_equivalence,
        run_cases,
        run_subcycle_case,
    )
    from repro.kernels import BACKEND_NAMES, available_backends
    from repro.util.benchio import make_bench_record, write_bench_json

    cases = list(QUICK_CASES if args.quick else DEFAULT_CASES)
    if args.steps is not None:
        if args.steps < 1:
            print("error: --steps must be >= 1", file=sys.stderr)
            return 2
        cases = [replace(c, steps=args.steps) for c in cases]
    if args.tile_bytes is not None and args.tile_bytes < 4096:
        print(
            f"error: --tile-bytes must be >= 4096, got {args.tile_bytes}",
            file=sys.stderr,
        )
        return 2

    if args.kernel_backend == "auto":
        backends = list(available_backends())
    else:
        backends = [b.strip() for b in args.kernel_backend.split(",") if b.strip()]
        for b in backends:
            if b not in BACKEND_NAMES:
                print(
                    f"error: unknown kernel backend {b!r} "
                    f"(available: {', '.join(BACKEND_NAMES)})",
                    file=sys.stderr,
                )
                return 2
        if not backends:
            print("error: --kernel-backend is empty", file=sys.stderr)
            return 2

    print("batched-vs-blocked engine speedup (uniform MHD, time per cell)")
    results = []
    ok = True
    for backend in backends:
        print(f"\nkernel backend: {backend}")
        print(
            f"{'case':>16} {'blocked us/cell':>16} {'batched us/cell':>16} "
            f"{'speedup':>8} {'compile s':>10}"
        )
        for case in cases:
            res = run_cases(
                [case],
                kernel_backend=backend,
                batch_tile_bytes=args.tile_bytes,
            )[0]
            results.append(res)
            compile_s = (
                res["blocked"]["compile_s"] + res["batched"]["compile_s"]
            )
            print(
                f"{res['label']:>16} {res['blocked']['us_per_cell']:16.3f} "
                f"{res['batched']['us_per_cell']:16.3f} {res['speedup']:8.2f} "
                f"{compile_s:10.3f}"
            )
        eq = check_equivalence(cases[-1], steps=3, kernel_backend=backend)
        print(
            f"bitwise engine equivalence [{backend}] (spot check): "
            f"{'ok' if eq else 'VIOLATED'}"
        )
        ok = ok and eq
    if len(backends) > 1:
        eq = check_backend_equivalence(cases[-1], steps=3, backends=backends)
        print(
            f"bitwise backend equivalence ({' vs '.join(backends)}): "
            f"{'ok' if eq else 'VIOLATED'}"
        )
        ok = ok and eq
    sub_result = None
    if args.subcycle:
        print("\ndeep-hierarchy subcycling (advection, nested refinement)")
        sub_result = run_subcycle_case(kernel_backend=backends[0])
        s, g = sub_result["subcycled"], sub_result["global"]
        print(
            f"  {sub_result['label']}: {sub_result['n_blocks']} blocks over "
            f"{sub_result['levels']} levels (depth {sub_result['depth']})"
        )
        print(
            f"  updates per unit time: global {g['updates_per_time']:.0f} "
            f"({g['updates']} updates), subcycled {s['updates_per_time']:.0f} "
            f"({s['updates']} updates)"
        )
        print(
            f"  work factor: measured {sub_result['measured_factor']:.2f}x "
            f"vs predicted {sub_result['predicted_factor']:.2f}x "
            f"({'ok' if sub_result['beats_global'] else 'BELOW PREDICTION'})"
        )
        print(
            f"  L1 error: global {g['error']:.3e}, subcycled {s['error']:.3e} "
            f"(matched: {'ok' if sub_result['matched_error'] else 'VIOLATED'})"
        )
        eq = check_subcycle_equivalence(backends=backends)
        print(
            "  bitwise subcycled engine x backend equivalence: "
            f"{'ok' if eq else 'VIOLATED'}"
        )
        ok = (
            ok and eq
            and sub_result["beats_global"]
            and sub_result["matched_error"]
        )
    if not args.no_json:
        payload = dict(
            workload="uniform periodic MHD, Fig-5-style time per cell",
            cases=results,
            equivalence_ok=ok,
            kernel_backends=backends,
        )
        if sub_result is not None:
            payload["subcycle"] = sub_result
        record = make_bench_record("batched_engine", **payload)
        path = write_bench_json(record)
        print(f"wrote {path}")
    return 0 if ok else 1


def cmd_info(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.amr import (
        CheckpointError,
        checkpoint_metadata,
        grid_report,
        load_forest,
        verify_checkpoint,
    )

    if Path(args.checkpoint).is_dir():
        if not args.checksums:
            print(
                f"error: {args.checkpoint} is a directory "
                "(use --checksums to audit it)",
                file=sys.stderr,
            )
            return 2
        return _info_audit(args, Path(args.checkpoint))
    try:
        meta = checkpoint_metadata(args.checkpoint)
        forest = load_forest(args.checkpoint)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if args.checksums:
            rec = verify_checkpoint(args.checkpoint)
            if rec.get("stored_crc") is not None:
                print(
                    f"  stored crc32 {rec['stored_crc']:#010x}, "
                    f"computed {rec['computed_crc']:#010x}",
                    file=sys.stderr,
                )
        return 1
    line = f"format v{meta['format_version']}, {meta['n_blocks']} blocks"
    if "step" in meta:
        line += f", step {meta['step']}"
    if "time" in meta:
        line += f", t={meta['time']:.6g}"
    print(line)
    if args.checksums:
        rec = verify_checkpoint(args.checkpoint)
        print(f"content crc32: {rec['stored_crc']:#010x} (verified)")
    print(grid_report(forest))
    totals = []
    for block in forest:
        cell_vol = float(np.prod(block.dx))
        totals.append(block.interior.reshape(forest.nvar, -1).sum(axis=1) * cell_vol)
    total = np.sum(totals, axis=0)
    print("conserved totals:", "  ".join(f"{v:.6g}" for v in total))
    if args.validate:
        from repro.resilience import validate_forest

        violations = validate_forest(forest, check_ghosts=False)
        if violations:
            for v in violations:
                print(f"INVALID [{v.check}] {v.block}: {v.detail}", file=sys.stderr)
            return 1
        print("forest invariants: OK")
    return 0


def _info_audit(args: argparse.Namespace, directory) -> int:
    """Audit a checkpoint directory: per-file checksum verification in
    rotation order, plus the restart point recovery would pick."""
    from repro.amr import load_forest, verify_checkpoint
    from repro.resilience import Checkpointer

    ckpt = Checkpointer(directory, prefix=args.prefix)
    entries = ckpt._scan()
    if not entries:
        print(
            f"no '{args.prefix}-*.npz' checkpoints in {directory}",
            file=sys.stderr,
        )
        return 1
    print(f"checkpoint audit: {directory} ({len(entries)} file(s))")
    print(
        f"{'file':<22} {'step':>8} {'time':>12} {'blocks':>7} "
        f"{'crc32':>10}  status"
    )
    n_bad = 0
    for _, path in entries:
        rec = verify_checkpoint(path)
        if not rec["ok"]:
            n_bad += 1
            print(
                f"{path.name:<22} {'-':>8} {'-':>12} {'-':>7} {'-':>10}  "
                f"CORRUPT: {rec['error']}"
            )
            continue
        step = str(rec.get("step", "-"))
        time = rec.get("time")
        time_s = f"{time:.6g}" if time is not None else "-"
        status = "OK"
        if args.validate:
            from repro.resilience import validate_forest

            violations = validate_forest(
                load_forest(path), check_ghosts=False
            )
            if violations:
                n_bad += 1
                status = f"INVALID: {len(violations)} violation(s)"
            else:
                status = "OK (invariants valid)"
        print(
            f"{path.name:<22} {step:>8} {time_s:>12} "
            f"{rec['n_blocks']:>7} {rec['computed_crc']:#010x}  {status}"
        )
    latest = ckpt.latest()
    if latest is None:
        print("restart point: NONE USABLE", file=sys.stderr)
        return 1
    print(
        f"restart point: {latest.path.name} "
        f"(step {latest.step}, t={latest.time:.6g})"
    )
    if ckpt.quarantined:
        print(
            "quarantined: "
            + ", ".join(p.name for p in ckpt.quarantined),
            file=sys.stderr,
        )
    return 1 if n_bad else 0


def cmd_scaling(args: argparse.Namespace) -> int:
    from repro.core import BlockForest
    from repro.parallel import ParallelSimulation, scaled_efficiency
    from repro.util.geometry import Box

    times = {}
    print(f"{'PEs':>5} {'blocks':>7} {'ms/step':>9} {'comm %':>7}")
    for p, n in ((1, 2), (8, 4), (64, 8), (512, 16)):
        forest = BlockForest(
            Box((0.0,) * 3, (1.0,) * 3), (n,) * 3, (8,) * 3, nvar=1, n_ghost=2
        )
        sim = ParallelSimulation(forest, p)
        rep = sim.run(args.steps)
        times[p] = rep.time_per_step
        print(
            f"{p:5d} {forest.n_blocks:7d} {rep.time_per_step * 1e3:9.2f} "
            f"{100 * rep.comm_fraction:7.2f}"
        )
    eff = scaled_efficiency(times)
    print("efficiency:", "  ".join(f"P={p}: {e:.3f}" for p, e in eff.items()))
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    from repro.solvers import MHDScheme
    from repro.util.timing import measure

    sizes = [int(s) for s in args.sizes.split(",")]
    rng = np.random.default_rng(0)
    print(f"{'block':>7} {'cells':>7} {'us/cell':>9}")
    for m in sizes:
        g = 2
        scheme = MHDScheme(3, order=2)
        w = np.empty((8,) + (m + 2 * g,) * 3)
        w[0] = 1.0 + 0.1 * rng.random(w.shape[1:])
        w[1:4] = 0.0
        w[4] = 1.0
        w[5:8] = 0.1
        u = scheme.prim_to_cons(w)
        t = measure(lambda: scheme.step(u, (1.0 / m,) * 3, 1e-4, g), repeats=3).best
        print(f"{m:>5d}^3 {m**3:7d} {t / m**3 * 1e6:9.2f}")
    return 0


def _parse_fault_pairs(specs, flag):
    pairs = []
    for spec in specs:
        try:
            a, b = spec.split(":")
            pairs.append((int(a), int(b)))
        except ValueError:
            raise SystemExit(f"error: {flag} expects STEP:N, got {spec!r}")
    return pairs


def _parse_flip_specs(specs):
    """``STEP:TARGET[:BLOCK[:BYTE[:BIT]]]`` specs -> BitFlip records."""
    from repro.resilience.faults import _FLIP_TARGETS, BitFlip

    usage = "STEP:TARGET[:BLOCK[:BYTE[:BIT]]]"
    flips = []
    for spec in specs:
        parts = spec.split(":")
        try:
            if not 2 <= len(parts) <= 5:
                raise ValueError(spec)
            step = int(parts[0])
            nums = [int(p) for p in parts[2:]]
        except ValueError:
            raise SystemExit(
                f"error: --flip-bits expects {usage}, got {spec!r}"
            )
        target = parts[1]
        if target not in _FLIP_TARGETS:
            raise SystemExit(
                f"error: --flip-bits target must be one of "
                f"{', '.join(_FLIP_TARGETS)}, got {target!r}"
            )
        block, byte, bit = (nums + [0, 0, 0])[:3]
        flips.append(
            BitFlip(step=step, target=target, block=block, byte=byte, bit=bit)
        )
    return flips


def _refine_center(forest, levels: int) -> None:
    """Statically refine ``levels`` times at the domain center.

    Deterministic (the SFC-first leaf covering the center point, by a
    half-open containment test) so the serial reference and the
    emulated forest get bit-identical topologies.
    """
    center = tuple(
        0.5 * (lo + hi) for lo, hi in zip(forest.domain.lo, forest.domain.hi)
    )
    for _ in range(levels):
        for bid in forest.sorted_ids():
            box = forest.blocks[bid].box
            if all(l <= c < h for l, c, h in zip(box.lo, center, box.hi)):
                forest.refine(bid)
                break


#: How model-checker fault actions land on the emulator's fault plan.
_SCHEDULE_KILL_ACTIONS = ("kill", "hang", "clean-exit", "exit")
_SCHEDULE_MESSAGE_ACTIONS = ("mute", "garble", "stale", "slow")


def _merge_schedule(args: argparse.Namespace) -> int:
    """Fold a model-checker counterexample trace into the fault flags.

    Each fault action in the trace becomes the nearest emulator-level
    injection: process-death faults a ``--kill``, message-level faults a
    ``--transient-message`` (dropped once, recovered by the retry
    policy).  The mapped schedule is printed so the replay is auditable.
    """
    from pathlib import Path

    from repro.analysis.modelcheck import CounterexampleTrace, schedule_faults

    try:
        trace = CounterexampleTrace.from_json(
            Path(args.schedule).read_text(encoding="utf-8")
        )
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load --schedule: {exc}", file=sys.stderr)
        return 2
    faults = schedule_faults(trace)
    print(
        f"== replaying counterexample '{trace.kind}'"
        + (f" (mutation {trace.mutation})" if trace.mutation else "")
        + f": {len(faults)} fault(s) =="
    )
    if trace.ranks > args.ranks:
        print(
            f"note: trace was found on {trace.ranks} ranks; replaying on "
            f"{args.ranks}"
        )
    for f in faults:
        rank = int(f["rank"]) % args.ranks
        # Model step s happens after s full steps committed; the
        # emulator's fault plan indexes injection points the same way.
        step = int(f["step"])
        if step >= args.steps:
            step = args.steps - 1
        action = str(f["action"])
        if action in _SCHEDULE_KILL_ACTIONS:
            args.kill.append(f"{step}:{rank}")
            mapped = f"kill rank {rank} at step {step}"
        elif action in _SCHEDULE_MESSAGE_ACTIONS:
            args.transient_message.append(f"{step}:{rank}")
            mapped = f"transiently drop message {rank} of step {step}"
        else:
            print(f"note: fault action {action!r} has no emulator "
                  "equivalent; skipped")
            continue
        print(f"  {action} @ {f['phase']} -> {mapped}")
    return 0


def cmd_emulate(args: argparse.Namespace) -> int:
    if args.schedule is not None:
        rc = _merge_schedule(args)
        if rc:
            return rc
    kills = _parse_fault_pairs(args.kill, "--kill")
    for step, rank in kills:
        if not 0 <= rank < args.ranks:
            print(
                f"error: --kill rank {rank} out of range for "
                f"{args.ranks} ranks",
                file=sys.stderr,
            )
            return 2
    drops = _parse_fault_pairs(args.drop_message, "--drop-message")
    corrupts = _parse_fault_pairs(args.corrupt_message, "--corrupt-message")
    transients = _parse_fault_pairs(args.transient_message,
                                    "--transient-message")
    flips = _parse_flip_specs(args.flip_bits)
    if args.refine_levels < 0:
        print("error: --refine-levels must be >= 0", file=sys.stderr)
        return 2
    if any(f.target == "staging" for f in flips) and args.refine_levels < 1:
        print(
            "error: staging bitflips need --refine-levels >= 1 "
            "(staging buffers only exist for coarse-to-fine exchange)",
            file=sys.stderr,
        )
        return 2
    if args.scrub_every is None and flips:
        # An injected flip without a scrubber is exactly the silent
        # corruption this subsystem exists to prevent; default to the
        # tightest detection window.
        args.scrub_every = 1
    if args.scrub_every is not None and args.scrub_every < 1:
        print("error: --scrub-every must be >= 1", file=sys.stderr)
        return 2
    for flag, value, floor in (
        ("--partner-refresh-every", args.partner_refresh_every, 1),
        ("--retry-max", args.retry_max, 0),
    ):
        if value < floor:
            print(f"error: {flag} must be >= {floor}", file=sys.stderr)
            return 2
    if args.retry_backoff <= 0:
        print("error: --retry-backoff must be > 0", file=sys.stderr)
        return 2
    if args.backend == "process":
        for flag, value in (
            ("--phase-timeout", args.phase_timeout),
            ("--hard-timeout", args.hard_timeout),
            ("--heartbeat-interval", args.heartbeat_interval),
            ("--heartbeat-timeout", args.heartbeat_timeout),
        ):
            if value <= 0:
                print(f"error: {flag} must be > 0", file=sys.stderr)
                return 2
        if args.hard_timeout < args.phase_timeout:
            print("error: --hard-timeout must be >= --phase-timeout",
                  file=sys.stderr)
            return 2
        if args.heartbeat_timeout <= args.heartbeat_interval:
            print("error: --heartbeat-timeout must exceed "
                  "--heartbeat-interval", file=sys.stderr)
            return 2
        if args.respawn_max < 0:
            print("error: --respawn-max must be >= 0", file=sys.stderr)
            return 2

    problem = _make_problem(args.problem, args.ndim)
    # The serial reference simulation owns a thread pool via the arena
    # engines; close it even when the emulation path raises.  The kernel
    # backend attaches to the shared scheme, so the emulated ranks
    # dispatch through it too.
    with problem.build(
        adaptive=False, kernel_backend=args.kernel_backend
    ) as sim:
        if args.record is not None:
            from repro.obs import RunRecorder

            with RunRecorder(args.record) as recorder:
                rc = _drive_emulate(
                    args, problem, sim, kills, drops, corrupts, transients,
                    flips, recorder,
                )
            print(f"event stream written to {args.record}")
            return rc
        return _drive_emulate(
            args, problem, sim, kills, drops, corrupts, transients, flips,
            None,
        )


def _drive_emulate(
    args: argparse.Namespace, problem, sim, kills, drops, corrupts,
    transients, flips, recorder,
) -> int:
    """The emulation loop of :func:`cmd_emulate` (sim closed by caller)."""
    import contextlib
    import tempfile

    from repro.parallel import EmulatedMachine

    if args.refine_levels:
        _refine_center(sim.forest, args.refine_levels)
        problem.init_forest(sim.forest)
    forest_emu = problem.config.make_forest(problem.scheme.nvar)
    if args.refine_levels:
        _refine_center(forest_emu, args.refine_levels)
    problem.init_forest(forest_emu)

    fault_plan = None
    if kills or drops or corrupts or transients or flips:
        from repro.resilience import FaultPlan, MessageFault, RankKill

        fault_plan = FaultPlan(
            kills=[RankKill(step=s, rank=r) for s, r in kills],
            message_faults=(
                [MessageFault(step=s, index=i, mode="drop") for s, i in drops]
                + [MessageFault(step=s, index=i, mode="corrupt")
                   for s, i in corrupts]
                + [MessageFault(step=s, index=i, mode="drop", transient=True)
                   for s, i in transients]
            ),
            bitflips=flips,
        )

    from repro.resilience import RetryPolicy

    retry_policy = RetryPolicy(max_retries=args.retry_max,
                               backoff_base=args.retry_backoff)
    # The process backend owns real child processes and /dev/shm segments;
    # the exit stack guarantees teardown on every path, including raises.
    with contextlib.ExitStack() as stack:
        if args.backend == "process":
            from repro.parallel import ProcConfig, ProcessMachine

            emu = stack.enter_context(ProcessMachine(
                forest_emu, args.ranks, problem.scheme, bc=problem.bc,
                fault_plan=fault_plan,
                retry_policy=retry_policy,
                sanitize=args.sanitize,
                config=ProcConfig(
                    phase_timeout=args.phase_timeout,
                    hard_timeout=args.hard_timeout,
                    heartbeat_interval=args.heartbeat_interval,
                    heartbeat_timeout=args.heartbeat_timeout,
                    respawn_max=args.respawn_max,
                ),
            ))
            emu.recorder = recorder
        else:
            emu = EmulatedMachine(
                forest_emu, args.ranks, problem.scheme, bc=problem.bc,
                fault_plan=fault_plan,
                retry_policy=retry_policy,
                sanitize=args.sanitize,
            )
        if args.sanitize:
            emu.attach_race_detector()
        return _emulate_loop(args, problem, sim, emu, fault_plan, recorder)


def _emulate_loop(
    args: argparse.Namespace, problem, sim, emu, fault_plan, recorder,
) -> int:
    """Drive ``emu`` against the serial reference and compare."""
    import tempfile

    scrubber = None
    if args.scrub_every is not None:
        from repro.resilience import Scrubber

        # Attached before the run so the recovery driver can hand the
        # scrubber the partner store (mirror verification) when the
        # localized tier comes up.  Verification only reads state, so
        # the bit-for-bit comparison below still holds.
        scrubber = emu.attach_scrubber(Scrubber(every=args.scrub_every))
    dt = 0.5 * sim.stable_dt()
    backend_note = (
        " (real processes)" if args.backend == "process" else ""
    )
    print(
        f"== emulating {problem.name} on {args.ranks} ranks{backend_note}, "
        f"{args.steps} steps of dt={dt:.3e} =="
    )
    if recorder is not None:
        recorder.emit(
            "meta",
            source="emulate",
            problem=args.problem,
            ndim=args.ndim,
            ranks=args.ranks,
            steps=args.steps,
            strategy=args.recovery_strategy,
            backend=args.backend,
        )
    for _ in range(args.steps):
        sim.advance(dt)
        if sim.hook is not None:
            sim.hook(sim, dt)
    if fault_plan is not None:
        from repro.resilience import (
            Checkpointer,
            CorruptionError,
            run_with_recovery,
        )

        tmpdir = None
        if args.checkpoint_dir is None:
            tmpdir = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
            ckpt_dir = tmpdir.name
        else:
            ckpt_dir = args.checkpoint_dir
        try:
            report = run_with_recovery(
                emu,
                n_steps=args.steps,
                dt=dt,
                checkpointer=Checkpointer(ckpt_dir),
                checkpoint_every=args.checkpoint_every,
                strategy=args.recovery_strategy,
                partner_refresh_every=args.partner_refresh_every,
                recorder=recorder,
            )
        except CorruptionError as exc:
            print(f"error: unrecoverable corruption: {exc}", file=sys.stderr)
            for entry in exc.entries:
                print(f"  corrupt: {entry.describe()}", file=sys.stderr)
            return 1
        finally:
            if tmpdir is not None:
                tmpdir.cleanup()
        for ev in report.events:
            if ev.strategy == "local":
                how = (
                    f"restored {ev.blocks_restored} block(s) "
                    f"({ev.bytes_restored / 1024:.0f} KB) from partner "
                    f"copies of step {ev.restored_from_step}"
                )
            else:
                how = f"restored checkpoint of step {ev.restored_from_step}"
                if ev.escalated:
                    how += " (escalated: partner copies unusable)"
            print(
                f"recovered from {ev.kind} at step {ev.step}: "
                f"[{ev.strategy}] {how}, "
                f"replayed {ev.replayed_steps} step(s)  [{ev.detail}]"
            )
        print(
            f"survivors: ranks {emu.alive_ranks} "
            f"({report.checkpoints_written} checkpoints written, "
            f"{report.n_local_recoveries} local recoveries, "
            f"{report.n_escalations} escalations)"
        )
    else:
        for _ in range(args.steps):
            emu.advance(dt)
            if recorder is not None:
                recorder.emit(
                    "step",
                    step=emu.step_index,
                    t_sim=emu.time,
                    dt=dt,
                    n_blocks=emu.topology.n_blocks,
                    n_cells=emu.topology.n_cells,
                )
    if recorder is not None:
        recorder.emit(
            "exchange",
            n_messages=emu.stats.n_messages,
            n_bytes=emu.stats.n_bytes,
            n_local=emu.stats.n_local,
            n_retries=emu.stats.n_retries,
            retry_wait=emu.stats.retry_wait,
            n_partner_messages=emu.stats.n_partner_messages,
            n_partner_bytes=emu.stats.n_partner_bytes,
        )
    gathered = emu.gather()
    worst = 0.0
    for bid, block in sim.forest.blocks.items():
        worst = max(worst, float(np.abs(gathered[bid] - block.interior).max()))
    cells = emu.rank_cells()
    print(f"cells/rank: min {min(cells)}, max {max(cells)}")
    print(
        f"wire messages: {emu.stats.n_messages}  "
        f"({emu.stats.n_bytes / 1024:.0f} KB);  "
        f"local transfers: {emu.stats.n_local}"
    )
    if emu.stats.n_retries:
        print(
            f"retransmissions: {emu.stats.n_retries}  "
            f"(backoff {emu.stats.retry_wait * 1e3:.2f} ms)"
        )
    if emu.stats.n_partner_bytes:
        from repro.parallel import redundancy_overhead

        print(
            f"partner redundancy: {emu.stats.n_partner_messages} "
            f"snapshot copies ({emu.stats.n_partner_bytes / 1024:.0f} KB, "
            f"{100 * redundancy_overhead(emu.stats):.1f}% of traffic)"
        )
    if args.backend == "process":
        deaths = emu.deaths
        if deaths:
            print(
                "rank deaths: "
                + ", ".join(
                    f"rank {d.rank} at step {d.step} ({d.kind})"
                    for d in deaths
                )
            )
        total = sum(emu.phase_seconds.values())
        if total > 0:
            print(
                f"phase time: exchange {emu.phase_seconds['exchange']:.3f}s, "
                f"compute {emu.phase_seconds['compute']:.3f}s, "
                f"control {emu.phase_seconds['control']:.3f}s "
                f"(exchange fraction "
                f"{emu.phase_seconds['exchange'] / total:.1%})"
            )
    if emu.sanitizer is not None:
        print(
            f"ghost sanitizer: {emu.sanitizer.n_exchanges_checked} "
            f"exchanges verified; race detector: "
            f"{emu.race_detector.epoch} epochs, 0 violations"
        )
    if scrubber is not None:
        print(
            f"scrubber: {scrubber.scrubs} scrubs, "
            f"{scrubber.blocks_verified} block verifications, "
            f"{scrubber.mirrors_verified} mirror verifications, "
            f"{scrubber.mismatches} mismatches"
        )
    if getattr(args, "schedule", None) is not None:
        from repro.core.integrity import content_crc

        digest = 0
        for bid in sorted(gathered):
            digest = (digest * 1000003 + content_crc(gathered[bid])) & 0xFFFFFFFF
        print(f"schedule replay digest: {digest:#010x}")
    hook_note = " (driver hook runs serial-side only)" if problem.hook else ""
    print(f"max |emulated - serial| = {worst:.3e}{hook_note}")
    if problem.hook is None and worst != 0.0:
        print("MISMATCH: emulated run diverged from serial", file=sys.stderr)
        return 1
    print("OK: distributed emulation matches the serial driver" if worst == 0.0
          else "note: differences stem from the serial-only driver hook")
    return 0


def cmd_sanitize(args: argparse.Namespace) -> int:
    """Debug-run one problem under the full correctness tooling."""
    from repro.analysis import ExchangeRaceError, PoisonError
    from repro.parallel import EmulatedMachine

    problem = _make_problem(args.problem, args.ndim)
    print(f"== sanitizing {problem.name} ==")

    # Phase 1: serial driver under the ghost-poison sanitizer.  The
    # context manager releases the engine thread pool even when the
    # sanitizer trips (the leak `repro run` already guarded against).
    with problem.build(adaptive=not args.no_adapt, sanitize=True) as sim:
        dt = 0.5 * sim.stable_dt()
        try:
            for _ in range(args.steps):
                sim.step(dt)
        except PoisonError as exc:
            print(f"FAIL (serial): {exc}", file=sys.stderr)
            return 1
        assert sim.sanitizer is not None
        print(
            f"serial: {args.steps} steps, "
            f"{sim.sanitizer.n_exchanges_checked} exchanges verified, "
            f"{sim.sanitizer.n_cells_poisoned} ghost values poisoned: clean"
        )

    # Phase 2: emulated machine under the sanitizer + race detector.
    forest = problem.config.make_forest(problem.scheme.nvar)
    problem.init_forest(forest)
    emu = EmulatedMachine(
        forest, args.ranks, problem.scheme, bc=problem.bc, sanitize=True
    )
    detector = emu.attach_race_detector()
    try:
        for _ in range(args.steps):
            emu.advance(dt)
    except (PoisonError, ExchangeRaceError) as exc:
        print(f"FAIL (emulated): {exc}", file=sys.stderr)
        return 1
    assert emu.sanitizer is not None
    print(
        f"emulated ({args.ranks} ranks): {args.steps} steps, "
        f"{emu.sanitizer.n_exchanges_checked} exchanges verified, "
        f"{detector.epoch} epochs race-checked: clean"
    )
    print("OK: no unfilled ghost reads, no exchange ordering violations")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import (
        METRICS,
        RunRecorder,
        compare_to_bench,
        read_events,
        render_report,
    )
    from repro.solvers.flops import flops_for_scheme
    from repro.util.timing import wall_clock

    engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    bad = [e for e in engines if e not in ("blocked", "batched")]
    if bad or not engines:
        print(
            f"error: --engines must name blocked and/or batched, got "
            f"{args.engines!r}",
            file=sys.stderr,
        )
        return 2
    if args.steps < 1:
        print("error: --steps must be >= 1", file=sys.stderr)
        return 2
    problem = _make_problem(args.problem, args.ndim)
    out = Path(args.out) if args.out else Path(f"profile_{args.problem}.jsonl")
    profiles = []
    with RunRecorder(out) as recorder:
        recorder.emit(
            "meta",
            source="profile",
            problem=args.problem,
            ndim=args.ndim,
            steps=args.steps,
            engines=engines,
            kernel_backend=args.kernel_backend,
            adaptive=not args.no_adapt,
            subcycle=args.subcycle,
        )
        for engine in engines:
            METRICS.reset()
            with METRICS.enabled_scope():
                with problem.build(
                    adaptive=not args.no_adapt,
                    engine=engine,
                    kernel_backend=args.kernel_backend,
                    subcycle=args.subcycle,
                ) as sim:
                    sim.recorder = recorder
                    sim.enable_block_profile()
                    t0 = wall_clock()
                    for _ in range(args.steps):
                        sim.step()
                    elapsed = wall_clock() - t0
                    cell_steps = sum(r.n_cells for r in sim.history)
                    kf = flops_for_scheme(problem.scheme)
                    mflops = None
                    if kf is not None and elapsed > 0:
                        mflops = (
                            kf.per_cell_per_step * cell_steps / elapsed / 1e6
                        )
                    blocks = sim.block_profile()
                    blocks.sort(
                        key=lambda b: -float(b.get("time_s", b.get("steps", 0)))
                    )
                    profiles.append(recorder.emit(
                        "profile",
                        engine=engine,
                        kernel_backend=sim.scheme.kernels.name,
                        kernels=sim.scheme.kernels.stats(),
                        wall_s=elapsed,
                        us_per_cell=(
                            elapsed / cell_steps * 1e6 if cell_steps else 0.0
                        ),
                        ndim=args.ndim,
                        phases={
                            k: round(v, 6) for k, v in sim.timer.totals.items()
                        },
                        mflops=mflops,
                        counters=METRICS.snapshot(),
                        blocks=blocks[: max(args.top_k, 16)],
                    ))
        if len(profiles) > 1:
            by_engine = {
                p["engine"]: {
                    "wall_s": p["wall_s"], "us_per_cell": p["us_per_cell"]
                }
                for p in profiles
            }
            summary = {"engines": by_engine}
            if "blocked" in by_engine and "batched" in by_engine:
                b = by_engine["batched"]["us_per_cell"]
                if b:
                    summary["speedup"] = (
                        by_engine["blocked"]["us_per_cell"] / b
                    )
            recorder.emit("summary", **summary)
    print(render_report(read_events(out), top_k=args.top_k))
    if args.compare_bench:
        flags = compare_to_bench(profiles)
        if flags:
            for f in flags:
                print(f"bench regression: {f}")
        else:
            print("bench comparison: within the committed trajectory")
    print(f"\nevent stream written to {out}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import (
        compare_to_bench,
        read_events,
        render_report,
        validate_events,
    )

    try:
        events = read_events(args.run)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    problems = validate_events(events)
    if problems:
        for p in problems:
            print(f"schema: {p}", file=sys.stderr)
        print(f"error: {args.run} failed schema validation", file=sys.stderr)
        return 1
    print(render_report(events, top_k=args.top_k))
    if args.compare_bench is not None:
        profiles = [e for e in events if e.get("kind") == "profile"]
        flags = compare_to_bench(profiles, name=args.compare_bench)
        if flags:
            for f in flags:
                print(f"bench regression: {f}")
            if args.strict:
                return 1
        else:
            print("bench comparison: within the committed trajectory")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.lint import RULES, lint_paths

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0
    select = None
    if args.select is not None:
        select = frozenset(
            c.strip().upper() for c in args.select.split(",") if c.strip()
        )
        unknown = select - {r.code for r in RULES}
        if unknown:
            print(
                f"error: unknown rule code(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"error: no such path(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    violations = lint_paths(args.paths, select=select)
    if args.format == "json":
        import json

        print(json.dumps(
            {
                "violations": [
                    {
                        "path": v.path, "line": v.line, "col": v.col,
                        "code": v.code, "message": v.message,
                    }
                    for v in violations
                ],
                "count": len(violations),
            },
            indent=2, sort_keys=True,
        ))
    elif args.format == "github":
        for v in violations:
            # GitHub workflow-command annotations surface inline on the
            # PR diff; newlines in messages would break the command.
            message = v.message.replace("\n", " ")
            print(
                f"::error file={v.path},line={v.line},col={v.col},"
                f"title={v.code}::{message}"
            )
    else:
        for v in violations:
            print(f"{v.path}:{v.line}:{v.col}: {v.code} {v.message}")
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Static protocol verification (`repro check`).

    Three passes, each independently fatal: (1) AST conformance of the
    wire modules against the declarative protocol spec, (2) the
    REPRO106/107 lint over the effect-annotated packages, (3) a bounded
    explicit-state model check.  Unless skipped, a detection self-test
    then confirms every seeded spec mutation still yields its expected
    counterexample — guarding the checker itself against rot.
    """
    from pathlib import Path

    import repro
    from repro.analysis.lint import lint_paths
    from repro.analysis.modelcheck import (
        EXPECTED_VIOLATION,
        MUTATIONS,
        check_protocol,
    )
    from repro.analysis.protocol import check_conformance

    if not 2 <= args.ranks <= 4:
        print("error: --ranks must be in 2..4 (small-world bound)",
              file=sys.stderr)
        return 2
    if not 1 <= args.steps <= 3:
        print("error: --steps must be in 1..3 (small-world bound)",
              file=sys.stderr)
        return 2
    if not 0 <= args.max_faults <= 3:
        print("error: --max-faults must be in 0..3 (small-world bound)",
              file=sys.stderr)
        return 2
    trace_dir: Optional[Path] = None
    if args.trace_dir is not None:
        trace_dir = Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)

    def _write_trace(cx) -> None:
        if trace_dir is None or cx is None:
            return
        out = trace_dir / (
            f"{cx.kind}.json" if cx.mutation is None
            else f"{cx.mutation}-{cx.kind}.json"
        )
        out.write_text(cx.to_json() + "\n", encoding="utf-8")
        print(f"  counterexample trace written to {out}")

    failures = 0

    # Pass 3 only, when a single mutation self-test was requested.
    if args.mutate is not None:
        res = check_protocol(
            ranks=args.ranks, steps=args.steps, max_faults=args.max_faults,
            scheme=args.scheme, por=not args.no_por, mutation=args.mutate,
        )
        expected = EXPECTED_VIOLATION[args.mutate]
        if res.ok:
            print(
                f"FAIL: mutation '{args.mutate}' explored {res.states} "
                f"states without finding the seeded "
                f"'{expected}' violation"
            )
            return 1
        cx = res.counterexample
        assert cx is not None
        print(
            f"mutation '{args.mutate}': found '{cx.kind}' after "
            f"{res.states} states ({len(cx.actions)}-action schedule)"
        )
        print(f"  {cx.message}")
        _write_trace(cx)
        if cx.kind != expected:
            print(f"FAIL: expected '{expected}', found '{cx.kind}'")
            return 1
        return 0

    # Pass 1: spec <-> code conformance.
    issues = check_conformance()
    if issues:
        failures += len(issues)
        print(f"conformance: {len(issues)} issue(s)")
        for issue in issues:
            print(f"  {issue.module}:{issue.line}: [{issue.kind}] "
                  f"{issue.message}")
    else:
        print("conformance: wire modules match the protocol spec")

    # Pass 2: phase-effect contracts + constructor-site lint.
    pkg = Path(repro.__file__).resolve().parent
    lint_targets = [
        str(pkg / sub) for sub in ("core", "parallel", "resilience")
        if (pkg / sub).is_dir()
    ]
    violations = lint_paths(lint_targets, select={"REPRO106", "REPRO107"})
    if violations:
        failures += len(violations)
        print(f"phase effects: {len(violations)} violation(s)")
        for v in violations:
            print(f"  {v.path}:{v.line}: {v.code} {v.message}")
    else:
        print("phase effects: all annotated functions within contract")

    # Pass 3: bounded model check of the clean spec.
    res = check_protocol(
        ranks=args.ranks, steps=args.steps, max_faults=args.max_faults,
        scheme=args.scheme, por=not args.no_por,
    )
    if res.ok:
        note = " (truncated)" if res.truncated else ""
        print(
            f"model check: {res.states} states, {res.transitions} "
            f"transitions, {res.completed} completed schedule(s), "
            f"no violations{note} "
            f"[ranks={args.ranks} steps={args.steps} "
            f"faults<={args.max_faults} {args.scheme}]"
        )
    else:
        failures += 1
        cx = res.counterexample
        assert cx is not None
        print(f"model check: VIOLATION '{cx.kind}' after {res.states} "
              f"states")
        print(f"  {cx.message}")
        print("  schedule: " + " -> ".join(
            ":".join(str(x) for x in a) for a in cx.actions
        ))
        _write_trace(cx)

    # Detection self-test: every seeded mutation must still be caught.
    if not args.skip_mutations:
        caught = 0
        for name in MUTATIONS:
            mres = check_protocol(
                ranks=args.ranks, steps=args.steps,
                max_faults=max(args.max_faults, 1),
                scheme=args.scheme, por=not args.no_por, mutation=name,
            )
            expected = EXPECTED_VIOLATION[name]
            cx = mres.counterexample
            if cx is not None and cx.kind == expected:
                caught += 1
            else:
                failures += 1
                found = cx.kind if cx is not None else "nothing"
                print(f"  mutation '{name}': expected '{expected}', "
                      f"found {found}")
                _write_trace(cx)
        print(f"mutation self-test: {caught}/{len(MUTATIONS)} seeded "
              "bugs detected")

    if failures:
        print(f"FAIL: {failures} finding(s)", file=sys.stderr)
        return 1
    print("OK: protocol spec, phase effects, and bounded model agree")
    return 0


def _check_tile_bytes_env() -> Optional[str]:
    """Validate ``REPRO_BATCH_TILE_BYTES`` before any command runs.

    :class:`~repro.amr.Simulation` re-validates (and raises) for library
    users; checking here once turns a bad env var into a clean CLI error
    for every verb instead of a traceback mid-build.
    """
    import os

    env = os.environ.get("REPRO_BATCH_TILE_BYTES")
    if not env:
        return None
    try:
        tile = int(env)
    except ValueError:
        return f"REPRO_BATCH_TILE_BYTES must be an integer, got {env!r}"
    if tile < 4096:
        return f"REPRO_BATCH_TILE_BYTES must be >= 4096 bytes, got {tile}"
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    err = _check_tile_bytes_env()
    if err is not None:
        print(f"error: {err}", file=sys.stderr)
        return 2
    handlers = {
        "run": cmd_run,
        "bench": cmd_bench,
        "info": cmd_info,
        "scaling": cmd_scaling,
        "fig5": cmd_fig5,
        "emulate": cmd_emulate,
        "sanitize": cmd_sanitize,
        "lint": cmd_lint,
        "check": cmd_check,
        "profile": cmd_profile,
        "report": cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
