"""Sampling and diagnostics over a block forest.

AMR data lives on blocks at mixed resolutions; analysis wants uniform
arrays, line cuts, point probes and integrated quantities.  This module
provides them:

* :func:`resample_uniform` — the whole domain on a single level's
  uniform grid (restriction for finer leaves, injection for coarser);
* :func:`sample_points` / :func:`line_cut` — nearest-cell sampling;
* :class:`ProbeSeries` — a time-series recorder to hook into the driver;
* :func:`integrate` — volume integrals of arbitrary cell functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.forest import BlockForest
from repro.core.restrict import restrict_mean

__all__ = [
    "resample_uniform",
    "sample_points",
    "line_cut",
    "ProbeSeries",
    "integrate",
]


def resample_uniform(
    forest: BlockForest, level: int, var: Optional[int] = None
) -> np.ndarray:
    """Sample the whole forest onto the uniform grid of ``level``.

    Leaves finer than ``level`` are volume-averaged down (conservative);
    leaves coarser are injected (piecewise constant).  Returns an array
    of shape ``(nvar, *cells)`` — or ``(*cells,)`` when ``var`` is given.
    """
    if level < 0:
        raise ValueError("level must be >= 0")
    shape = forest.level_cell_extent(level)
    nv = forest.nvar if var is None else 1
    out = np.empty((nv,) + shape)
    for block in forest:
        data = block.interior if var is None else block.interior[var : var + 1]
        delta = level - block.level
        if delta < 0:
            for _ in range(-delta):
                data = restrict_mean(data, forest.ndim)
        elif delta > 0:
            for axis in range(1, forest.ndim + 1):
                data = np.repeat(data, 1 << delta, axis=axis)
        # Footprint of the block at the target level.
        sl = [slice(None)]
        for axis in range(forest.ndim):
            m = forest.m[axis]
            c = block.id.coords[axis]
            if delta >= 0:
                start = (c * m) << delta
                stop = ((c + 1) * m) << delta
            else:
                start = (c * m) >> (-delta)
                stop = ((c + 1) * m) >> (-delta)
            sl.append(slice(start, stop))
        out[tuple(sl)] = data
    return out if var is None else out[0]


def sample_points(
    forest: BlockForest, points: Sequence[Sequence[float]]
) -> np.ndarray:
    """Nearest-cell values at a list of physical points: ``(nvar, N)``."""
    out = np.empty((forest.nvar, len(points)))
    for i, pt in enumerate(points):
        block = forest.block_at(pt)
        idx = []
        for axis in range(forest.ndim):
            frac = (pt[axis] - block.box.lo[axis]) / block.dx[axis]
            idx.append(int(np.clip(frac, 0, block.m[axis] - 1)))
        out[:, i] = block.interior[(slice(None),) + tuple(idx)]
    return out


def line_cut(
    forest: BlockForest,
    axis: int,
    through: Sequence[float],
    n: int = 128,
) -> Tuple[np.ndarray, np.ndarray]:
    """Values along a grid line parallel to ``axis`` through a point.

    Returns ``(coords, values)`` with values of shape ``(nvar, n)``.
    """
    if not 0 <= axis < forest.ndim:
        raise ValueError(f"axis {axis} out of range")
    lo = forest.domain.lo[axis]
    hi = forest.domain.hi[axis]
    xs = lo + (np.arange(n) + 0.5) * (hi - lo) / n
    points = []
    for x in xs:
        pt = list(through)
        pt[axis] = float(x)
        points.append(tuple(pt))
    return xs, sample_points(forest, points)


def integrate(
    forest: BlockForest,
    fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> np.ndarray:
    """Volume integral over the forest.

    With ``fn=None`` integrates the conserved variables themselves
    (returns shape ``(nvar,)``); otherwise integrates
    ``fn(interior) -> (k, *cells)`` and returns shape ``(k,)``.
    """
    total: Optional[np.ndarray] = None
    for block in forest:
        cell_vol = 1.0
        for w in block.dx:
            cell_vol *= w
        values = block.interior if fn is None else fn(block.interior)
        contrib = values.reshape(values.shape[0], -1).sum(axis=1) * cell_vol
        total = contrib if total is None else total + contrib
    assert total is not None
    return total


@dataclass
class ProbeSeries:
    """Time series of state values at fixed physical points.

    Use as a driver hook (it is callable with ``(sim, dt)``) or call
    :meth:`sample` manually.  Records primitive variables when the
    scheme is provided, conserved otherwise.
    """

    points: Sequence[Sequence[float]]
    every: int = 1
    times: List[float] = field(default_factory=list)
    values: List[np.ndarray] = field(default_factory=list)
    _count: int = 0

    def sample(self, forest: BlockForest, time: float) -> None:
        self.times.append(time)
        self.values.append(sample_points(forest, self.points))

    def __call__(self, sim, dt: float) -> None:  # driver StepHook
        self._count += 1
        if self._count % self.every == 0:
            self.sample(sim.forest, sim.time)

    def series(self, var: int, point_index: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """(times, values) of one variable at one probe point."""
        t = np.array(self.times)
        v = np.array([vals[var, point_index] for vals in self.values])
        return t, v
