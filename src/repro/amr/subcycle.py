"""Time-step subcycling (local time stepping across refinement levels).

With global time stepping — what the paper's code used — every block
advances with the *finest* level's CFL-limited dt, so a coarse block
performs 2^(L_max - L) times more updates per unit physical time than
its own stability limit requires.  Subcycling (Berger–Colella style,
adopted by the paper's descendants) advances each level with its own
dt: the coarse level steps first, then each finer level takes two
half-steps, recursively, with coarse ghost data *interpolated in time*
for the intermediate fine steps.

Because adaptive-block leaves never overlap (unlike patch-based AMR)
no post-step synchronization of overlapping regions is needed; the only
couplings are the time-interpolated ghosts handled here and the
coarse–fine flux mismatch, which is smaller than in global stepping at
matched coarse dt but is not corrected (refluxing with subcycling would
need per-substep flux accumulation — noted as future work).

Accuracy note: the coarse level's mid-stage ghost fill sees fine
neighbors still at the old time level (their substeps run after), a
first-order lag confined to the interface ring — the standard trade-off
of subcycled AMR.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.amr.driver import Simulation
from repro.core.block_id import BlockID

__all__ = ["SubcycledSimulation"]


class SubcycledSimulation(Simulation):
    """AMR simulation advancing each refinement level at its own dt.

    Drop-in replacement for :class:`repro.amr.driver.Simulation`; only
    :meth:`advance` and :meth:`stable_dt` change.  ``n_stages`` of the
    scheme is honoured per substep.
    """

    def stable_dt(self) -> float:
        """Largest *coarse-level* step such that every level's substep
        satisfies its own CFL limit (level L substeps are dt / 2^(L -
        L_min))."""
        with self.timer.phase("cfl"):
            levels = sorted({b.level for b in self.forest.blocks.values()})
            # Substep divisor per level, accounting for sparse levels.
            divisor = {lvl: 1 for lvl in levels}
            for prev, cur in zip(levels, levels[1:]):
                divisor[cur] = divisor[prev] * (1 << (cur - prev))
            dt = 1e30
            for block in self.forest:
                # Interior cells only (ghosts may hold extrapolated data).
                own = self.scheme.stable_dt(
                    block.interior, block.dx, self.forest.ndim
                )
                dt = min(dt, own * divisor[block.level])
            if not dt > 0.0:
                raise RuntimeError("non-positive stable time step")
            return dt

    # ------------------------------------------------------------------

    def advance(self, dt: float) -> None:
        """One coarse step: recursive level-by-level subcycled advance."""
        forest = self.forest
        levels = sorted({b.level for b in forest.blocks.values()})
        #: interior snapshot and time interval of each block's last step
        self._u_old: Dict[BlockID, np.ndarray] = {}
        self._t_old: Dict[BlockID, float] = {b: self.time for b in forest.blocks}
        self._t_new: Dict[BlockID, float] = {b: self.time for b in forest.blocks}
        self._advance_level(levels, 0, self.time, dt)
        self._u_old.clear()
        self.time += dt

    def _interp_fill(self, t: float) -> None:
        """Ghost exchange with every source interpolated to time ``t``.

        Blocks whose last step spans ``t`` are temporarily set to the
        linear interpolant between their old and new states, the normal
        exchange runs, then their arrays are restored.
        """
        forest = self.forest
        swapped: List = []
        for bid, block in forest.blocks.items():
            t0, t1 = self._t_old[bid], self._t_new[bid]
            if t1 > t + 1e-14 and bid in self._u_old and t1 > t0:
                theta = (t - t0) / (t1 - t0)
                current = block.interior.copy()
                block.interior[...] = (
                    (1.0 - theta) * self._u_old[bid] + theta * current
                )
                swapped.append((block, current))
        self.fill_ghosts()
        for block, current in swapped:
            block.interior[...] = current

    def _advance_level(
        self, levels: List[int], idx: int, t0: float, dt: float
    ) -> None:
        """Advance level ``levels[idx]`` by ``dt`` from ``t0``, then the
        finer levels by two half-steps each (recursively)."""
        forest, scheme = self.forest, self.scheme
        g = forest.n_ghost
        level = levels[idx]
        mine = [b for b in forest if b.level == level]

        # Record the step interval and snapshot the starting state.
        for block in mine:
            self._u_old[block.id] = block.interior.copy()
            self._t_old[block.id] = t0
            self._t_new[block.id] = t0 + dt

        self._interp_fill(t0)
        if scheme.n_stages == 1:
            with self.timer.phase("compute"):
                for block in mine:
                    scheme.step(block.data, block.dx, dt, g)
        else:
            with self.timer.phase("compute"):
                for block in mine:
                    scheme.step(block.data, block.dx, 0.5 * dt, g)
            for block in mine:
                self._t_new[block.id] = t0 + 0.5 * dt
            self._interp_fill(t0 + 0.5 * dt)
            for block in mine:
                self._t_new[block.id] = t0 + dt
            with self.timer.phase("compute"):
                for block in mine:
                    rate = scheme.flux_divergence(block.data, block.dx, g)
                    block.interior[...] = self._u_old[block.id] + dt * rate

        if idx + 1 < len(levels):
            # The next finer *present* level may be more than one level
            # down (levels can be sparse far from interfaces): it takes
            # 2^delta substeps of dt / 2^delta.
            delta = levels[idx + 1] - level
            n_sub = 1 << delta
            sub_dt = dt / n_sub
            for k in range(n_sub):
                self._advance_level(levels, idx + 1, t0 + k * sub_dt, sub_dt)

    # ------------------------------------------------------------------

    def updates_per_step(self) -> int:
        """Block updates one coarse step performs (the work metric the
        subcycling ablation compares against global stepping)."""
        levels = sorted({b.level for b in self.forest.blocks.values()})
        divisor = {lvl: 1 for lvl in levels}
        for prev, cur in zip(levels, levels[1:]):
            divisor[cur] = divisor[prev] * (1 << (cur - prev))
        return sum(divisor[b.level] for b in self.forest)
