"""Time-step subcycling (local time stepping across refinement levels).

With global time stepping — what the paper's code used — every block
advances with the *finest* level's CFL-limited dt, so a coarse block
performs 2^(L_max - L) times more updates per unit physical time than
its own stability limit requires.  Subcycling (Berger–Colella style,
adopted by the paper's descendants) advances each level with its own
dt: the coarse level steps first, then each finer level takes two
half-steps, recursively, with coarse ghost data *interpolated in time*
for the intermediate fine steps.

Because adaptive-block leaves never overlap (unlike patch-based AMR)
no post-step synchronization of overlapping regions is needed; the only
couplings are the time-interpolated ghosts handled here and the
coarse–fine flux mismatch, corrected by per-substep flux accumulation:
every level feeds its final-stage face fluxes, weighted by its own
substep length, into the :class:`~repro.core.reflux.FluxRegister`
(:meth:`~repro.core.reflux.FluxRegister.accumulate`), and the
time-integrated correction is applied once per coarse step — subcycled
runs with ``reflux=True`` conserve to round-off exactly like global
stepping.

Subcycling is a first-class driver mode: construct
``Simulation(..., subcycle=True)`` (or via ``SimulationConfig`` /
``problem.build`` / the CLI ``--subcycle`` flag) on **either** engine.
The blocked engine steps each level block by block; the batched engine
keeps the arena compacted in *level-major* order — every level is a
contiguous run of pool rows — and advances each level's row range in
cache-sized tiles per kernel call, dispatching through the scheme's
kernel backend and routing ghost fills through the flat gather/scatter
plan.  The two engines are bit-for-bit identical, as in global
stepping.

Accuracy note: the coarse level's mid-stage ghost fill sees fine
neighbors still at the old time level (their substeps run after), a
first-order lag confined to the interface ring — the standard trade-off
of subcycled AMR.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.amr.driver import Simulation
from repro.core.block_id import BlockID
from repro.obs.metrics import METRICS
from repro.solvers.timestep import stable_dt_batched

__all__ = [
    "SubcycledSimulation",
    "advance_subcycled",
    "interval_spans",
    "level_divisors",
    "stable_dt_subcycled",
]

#: Tolerance, as a fraction of the step interval, deciding whether a
#: block's last step still extends beyond a fill time (and its interior
#: must therefore be interpolated for the exchange).  Relative to the
#: interval length, so classification is invariant under rescaling the
#: time step — an absolute epsilon would misclassify spanning intervals
#: once dt shrinks toward it.
SPAN_RTOL = 1e-9


def level_divisors(levels: List[int]) -> Dict[int, int]:
    """Substep divisor per *present* level (sparse-level aware).

    The coarsest present level takes one substep per coarse step; each
    next finer present level takes ``2^delta`` substeps of its
    predecessor's, where ``delta`` is the (possibly > 1) level gap.
    Shared by :func:`stable_dt_subcycled`,
    :meth:`~repro.amr.driver.Simulation.updates_per_step`, and the
    work-accounting metrics.
    """
    divisor = {lvl: 1 for lvl in levels}
    for prev, cur in zip(levels, levels[1:]):
        divisor[cur] = divisor[prev] * (1 << (cur - prev))
    return divisor


def interval_spans(t: float, t0: float, t1: float) -> bool:
    """True when the step interval ``[t0, t1]`` extends strictly beyond
    ``t`` — i.e. the block is mid-step at ``t`` and its interior must be
    time-interpolated for an exchange at ``t``.  The tolerance is
    dt-relative (:data:`SPAN_RTOL`)."""
    return t1 > t0 and t1 - t > SPAN_RTOL * (t1 - t0)


def stable_dt_subcycled(sim: Simulation) -> float:
    """Largest *coarse-level* step such that every level's substep
    satisfies its own CFL limit (level L substeps are dt / 2^(L -
    L_min)).

    On the batched engine the per-block signal speeds come from the
    tiled pool reduction (same kernels as global stepping) over the
    subcycled sweep's level-major arena layout, so the CFL pass never
    thrashes the compaction the advance relies on; the divisor weights
    are exact powers of two, keeping the result bit-for-bit with the
    per-block loop.
    """
    forest, scheme = sim.forest, sim.scheme
    levels = sorted({b.level for b in forest.blocks.values()})
    divisor = level_divisors(levels)
    if sim.engine == "batched":
        blocks = [forest.blocks[bid] for bid in forest.sorted_ids()]
        blocks.sort(key=lambda b: b.level)  # stable: Morton within level
        weights = np.array([float(divisor[b.level]) for b in blocks])
        row_bytes = forest.arena.pool[:1].nbytes
        return stable_dt_batched(
            forest,
            scheme,
            tile=sim._tile_rows(row_bytes),
            blocks=blocks,
            weights=weights,
        )
    dt = 1e30
    for block in forest:
        # Interior cells only (ghosts may hold extrapolated data).
        own = scheme.stable_dt(block.interior, block.dx, forest.ndim)
        dt = min(dt, own * divisor[block.level])
    if not dt > 0.0:
        raise RuntimeError("non-positive stable time step")
    return dt


class _SubcycleSweep:
    """Per-coarse-step state of one subcycled advance (both engines).

    Everything here — the old-state snapshots backing the time
    interpolation, the per-block step intervals, the level-major pool
    layout — lives for exactly one coarse step and is dropped in
    :meth:`clear`, so no stale :class:`BlockID` keys can survive an
    adaptation into the next step.
    """

    def __init__(
        self, sim: Simulation, levels: List[int], register
    ) -> None:
        self.sim = sim
        self.forest = sim.forest
        self.scheme = sim.scheme
        self.g = sim.forest.n_ghost
        self.register = register
        self.levels = levels
        #: interior snapshot (save-pool row view) of each block's
        #: current/last substep, keyed by block id
        self.u_old: Dict[BlockID, np.ndarray] = {}
        #: time interval of each block's current/last substep
        self.t_old: Dict[BlockID, float] = {}
        self.t_new: Dict[BlockID, float] = {}
        #: substeps each level took this coarse step (recorder payload)
        self.substeps: Dict[int, int] = {lvl: 0 for lvl in levels}
        self.save = self.forest.arena.save_pool()
        self.batched = sim.engine == "batched"
        if self.batched:
            forest = self.forest
            nd = forest.ndim
            # Level-major, Morton within level: every level is one
            # contiguous run of pool rows, so each substep sweeps a
            # plain row range in tiles.  The sort is stable, and the
            # order is reproduced every coarse step, so the compaction
            # only moves rows (and invalidates the ghost plan) when the
            # topology actually changed.
            blocks = [forest.blocks[bid] for bid in forest.sorted_ids()]
            blocks.sort(key=lambda b: b.level)
            self.blocks = blocks
            self.pool = forest.arena.ensure_compact(blocks)
            n = len(blocks)
            g = self.g
            interior = (slice(None), slice(None)) + tuple(
                slice(g, g + mi) for mi in forest.m
            )
            self.ui = self.pool[interior]  # (B, nvar, *m) view
            self.dx_all = [
                np.array([b.dx[a] for b in blocks]).reshape((n,) + (1,) * nd)
                for a in range(nd)
            ]
            #: level -> [start, end) row range of the compacted pool
            self.ranges: Dict[int, Tuple[int, int]] = {}
            for i, b in enumerate(blocks):
                s, _ = self.ranges.get(b.level, (i, i))
                self.ranges[b.level] = (s, i + 1)
            self.tile = sim._tile_rows(self.pool[:1].nbytes)
            self.rate_pool = forest.arena.rate_pool()
        else:
            by_level: Dict[int, List] = {lvl: [] for lvl in levels}
            for block in self.forest:
                by_level[block.level].append(block)
            self.by_level = by_level

    def clear(self) -> None:
        """Drop all per-step state (snapshots and step intervals)."""
        self.u_old.clear()
        self.t_old.clear()
        self.t_new.clear()

    # ------------------------------------------------------------------

    def advance_level(self, idx: int, t0: float, dt: float) -> None:
        """Advance level ``levels[idx]`` by ``dt`` from ``t0``, then the
        finer levels by ``2^delta`` substeps each (recursively)."""
        level = self.levels[idx]
        self.substeps[level] += 1
        if self.batched:
            self._step_level_batched(level, t0, dt)
        else:
            self._step_level_blocked(level, t0, dt)
        if self.sim.sanitizer is not None:
            # Every substep is a stage boundary: verify interiors finite
            # (behavior-neutral — checks only).
            self.sim.sanitizer.after_stage(self.forest)
        if idx + 1 < len(self.levels):
            # The next finer *present* level may be more than one level
            # down (levels can be sparse far from interfaces): it takes
            # 2^delta substeps of dt / 2^delta.
            delta = self.levels[idx + 1] - level
            n_sub = 1 << delta
            sub_dt = dt / n_sub
            for k in range(n_sub):
                self.advance_level(idx + 1, t0 + k * sub_dt, sub_dt)

    def interp_fill(self, t: float) -> None:
        """Ghost exchange with every source interpolated to time ``t``.

        Blocks whose current step spans ``t`` are temporarily set to the
        linear interpolant between their old and new states, the normal
        exchange runs (per-block copies or the flat gather/scatter plan,
        per the engine), then their arrays are restored.
        """
        swapped: List = []
        for bid, block in self.forest.blocks.items():
            u0 = self.u_old.get(bid)
            if u0 is None:
                continue
            t0, t1 = self.t_old[bid], self.t_new[bid]
            if not interval_spans(t, t0, t1):
                continue
            theta = (t - t0) / (t1 - t0)
            current = block.interior.copy()
            block.interior[...] = (1.0 - theta) * u0 + theta * current
            swapped.append((block, current))
        self.sim.fill_ghosts()
        for block, current in swapped:
            block.interior[...] = current

    def _final_rate(self, block, weight: float) -> np.ndarray:
        """Final-stage flux divergence of one block, accumulating
        captured coarse–fine face fluxes weighted by the substep length
        ``weight`` (see :meth:`FluxRegister.accumulate`)."""
        register, scheme, g = self.register, self.scheme, self.g
        if register is not None:
            faces = register.needed_faces.get(block.id)
            if faces:
                capture: Dict[int, np.ndarray] = {}
                rate = scheme.flux_divergence(
                    block.data, block.dx, g,
                    face_flux_out=capture, faces=faces,
                )
                register.accumulate(block.id, capture, weight)
                return rate
        return scheme.flux_divergence(block.data, block.dx, g)

    # ------------------------------------------------------------------

    def _step_level_blocked(self, level: int, t0: float, dt: float) -> None:
        """One substep of one level, block by block."""
        sim, scheme, g = self.sim, self.scheme, self.g
        mine = self.by_level[level]
        save = self.save
        for block in mine:
            row = save[block.arena_row]
            row[...] = block.interior
            self.u_old[block.id] = row
            self.t_old[block.id] = t0
            self.t_new[block.id] = t0 + dt
        self.interp_fill(t0)
        if scheme.n_stages == 1:
            with sim.timer.phase("compute"):
                for block in mine:
                    block.interior[...] += dt * self._final_rate(block, dt)
                    scheme.apply_floors(block.interior)
        else:
            with sim.timer.phase("compute"):
                for block in mine:
                    scheme.step(block.data, block.dx, 0.5 * dt, g)
            # The mid-stage exchange happens at t0 + dt/2; shrinking the
            # recorded interval keeps this level's own (half-time)
            # interiors out of the interpolation set for that fill.
            for block in mine:
                self.t_new[block.id] = t0 + 0.5 * dt
            self.interp_fill(t0 + 0.5 * dt)
            for block in mine:
                self.t_new[block.id] = t0 + dt
            with sim.timer.phase("compute"):
                for block in mine:
                    rate = self._final_rate(block, dt)
                    block.interior[...] = self.u_old[block.id] + dt * rate
                    scheme.apply_floors(block.interior)

    def _step_level_batched(self, level: int, t0: float, dt: float) -> None:
        """One substep of one level: tiled kernel sweeps over the
        level's contiguous pool row range, same IEEE ops per element as
        the blocked path (bit-for-bit, as in global stepping)."""
        sim, scheme, g = self.sim, self.scheme, self.g
        nd = self.forest.ndim
        s, e = self.ranges[level]
        mine = self.blocks[s:e]
        save, pool, ui = self.save, self.pool, self.ui
        rate_pool = self.rate_pool
        save[s:e] = ui[s:e]
        for i, block in enumerate(mine):
            self.u_old[block.id] = save[s + i]
            self.t_old[block.id] = t0
            self.t_new[block.id] = t0 + dt
        tiles = [(a, min(a + self.tile, e)) for a in range(s, e, self.tile)]
        self.interp_fill(t0)
        if scheme.n_stages == 1:
            with sim.timer.phase("compute"):
                self._capture(mine, dt)
                for a, b in tiles:
                    dxs = [d[a:b] for d in self.dx_all]
                    rate = scheme.flux_divergence(
                        pool[a:b], dxs, g, ndim=nd, out=rate_pool[a:b]
                    )
                    rate *= dt
                    ui[a:b] += rate
                    scheme.apply_floors(np.moveaxis(ui[a:b], 0, 1))
        else:
            with sim.timer.phase("compute"):
                for a, b in tiles:
                    dxs = [d[a:b] for d in self.dx_all]
                    scheme.step(
                        pool[a:b], dxs, 0.5 * dt, g, ndim=nd,
                        rate_out=rate_pool[a:b],
                    )
            for block in mine:
                self.t_new[block.id] = t0 + 0.5 * dt
            self.interp_fill(t0 + 0.5 * dt)
            for block in mine:
                self.t_new[block.id] = t0 + dt
            with sim.timer.phase("compute"):
                self._capture(mine, dt)
                # u_new = u_old + dt * L(u_half), as in the blocked
                # corrector (same IEEE ops per element; the scratch only
                # removes the broadcast temporaries).
                for a, b in tiles:
                    dxs = [d[a:b] for d in self.dx_all]
                    rate = scheme.flux_divergence(
                        pool[a:b], dxs, g, ndim=nd, out=rate_pool[a:b]
                    )
                    rate *= dt
                    np.add(save[a:b], rate, out=ui[a:b])
                    scheme.apply_floors(np.moveaxis(ui[a:b], 0, 1))

    def _capture(self, mine, weight: float) -> None:
        """Reflux fallback for the batched sweep: blocks on coarse–fine
        interfaces rerun a per-block flux evaluation to capture (and
        weight-accumulate) boundary-face fluxes.  Runs *before* the
        tiled interior update so it sees the same current-stage state
        the batched rate is computed from."""
        register, scheme, g = self.register, self.scheme, self.g
        if register is None:
            return
        for block in mine:
            faces = register.needed_faces.get(block.id)
            if faces:
                capture: Dict[int, np.ndarray] = {}
                scheme.flux_divergence(
                    block.data, block.dx, g,
                    face_flux_out=capture, faces=faces,
                )
                register.accumulate(block.id, capture, weight)


def advance_subcycled(sim: Simulation, dt: float) -> None:
    """One coarse step: recursive level-by-level subcycled advance.

    Routed through :meth:`Simulation._finish_advance` like the global
    engines, so the accumulated reflux correction is applied (with unit
    scale — the fluxes carry their substep weights already) and the
    ghost sanitizer's post-stage check runs under subcycling too.
    """
    forest = sim.forest
    levels = sorted({b.level for b in forest.blocks.values()})
    register = sim._flux_register() if sim.reflux else None
    if register is not None:
        register.start_step()
    sweep = _SubcycleSweep(sim, levels, register)
    try:
        if levels:
            sweep.advance_level(0, sim.time, dt)
        sim._last_substeps = dict(sweep.substeps)
    finally:
        sweep.clear()
    if METRICS.enabled:
        divisor = level_divisors(levels)
        METRICS.inc("subcycle.coarse_steps")
        METRICS.inc("subcycle.substeps", sum(sweep.substeps.values()))
        METRICS.inc(
            "subcycle.block_updates",
            sum(divisor[b.level] for b in forest),
        )
        METRICS.gauge("subcycle.levels", len(levels))
    sim._finish_advance(dt, register, flux_scale=1.0)


class SubcycledSimulation(Simulation):
    """Back-compat constructor: a :class:`Simulation` with
    ``subcycle=True``.

    Subcycling is a first-class driver mode (``Simulation(...,
    subcycle=True)``, on either engine, any kernel backend); this
    subclass remains for existing callers and the ablation benchmark.
    """

    def __init__(self, forest, scheme, **kw) -> None:
        kw.setdefault("subcycle", True)
        super().__init__(forest, scheme, **kw)
