"""Serial AMR simulation driver.

Orchestrates the cycle the paper's simulations ran:

1. fill ghost cells (exchange + physical BC);
2. advance every block by one time step (global CFL-limited dt,
   midpoint two-stage for second order, with a ghost refresh between
   stages so block-boundary fluxes stay consistent);
3. every ``adapt_interval`` steps, evaluate the refinement criterion,
   adapt the forest (cascading refinement, vetoed coarsening), and
   refresh connectivity — the blocks-adapt-less-frequently advantage is
   exactly this interval.

Phase timings are accumulated in a :class:`repro.util.timing.PhaseTimer`
so the benchmarks can attribute cost to compute / exchange / adaptation.
"""

from __future__ import annotations

import os
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional

import numpy as np

from repro.amr.config import SimulationConfig
from repro.core.block_id import BlockID
from repro.core.forest import AdaptSummary, BlockForest
from repro.core.ghost import BoundaryHandler, fill_ghosts
from repro.kernels import get_backend
from repro.core.refine_criteria import RefinementCriterion, compute_flags
from repro.obs.metrics import METRICS
from repro.solvers.scheme import FVScheme
from repro.solvers.timestep import stable_dt, stable_dt_batched
from repro.util.timing import PhaseTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.recorder import RunRecorder
    from repro.resilience.scrub import Scrubber

__all__ = ["Simulation", "StepRecord"]

#: Hook called once per step after the hyperbolic update:
#: ``hook(sim, dt)``.  Used for inner-boundary resets (solar wind body),
#: driven perturbations (CME launch), and mass-loading sources (comet).
StepHook = Callable[["Simulation", float], None]


@dataclass
class StepRecord:
    """Diagnostics of one completed step."""

    step: int
    time: float
    dt: float
    n_blocks: int
    n_cells: int
    adapted: Optional[AdaptSummary] = None
    #: wall-clock seconds the step took (None for synthetic records)
    wall_time: Optional[float] = None
    #: wall-clock seconds spent recovering from faults before this step
    #: completed (None when no recovery machinery ran; see
    #: :func:`repro.resilience.recovery.run_with_recovery`)
    recovery_time: Optional[float] = None


class Simulation:
    """Serial block-AMR simulation.

    Parameters
    ----------
    forest:
        The block forest holding the state (nvar must match the scheme).
    scheme:
        Finite-volume scheme advancing each block.
    bc:
        Physical boundary handler (None for fully periodic domains).
    criterion:
        Refinement criterion; None disables adaptation.
    adapt_interval:
        Steps between criterion checks.
    buffer_band:
        Neighbor rings added around refine flags.
    hook:
        Optional per-step source hook (see :data:`StepHook`).
    safe_mode:
        When True, every step is health-checked (NaN/Inf, negative
        density/pressure) and rolled back + retried with a halved dt on
        failure; exhausted retries raise
        :class:`repro.resilience.safestep.UnrecoverableStep` carrying a
        structured :class:`~repro.resilience.safestep.StepFailure`.
    max_step_retries:
        Bounded dt-halving retries per step in safe mode.
    engine:
        Execution engine for the hot loop.  ``"blocked"`` (default) is
        the per-block path: one scheme call per block, optionally
        threaded.  ``"batched"`` compacts the arena to a Morton-ordered
        contiguous prefix and sweeps *all* blocks per scheme call —
        stacked kernels, one pooled CFL reduction, flat gather/scatter
        same-level ghost copies.  The two engines are bit-for-bit
        identical; blocks needing reflux face-flux capture fall back to
        a per-block flux evaluation within the batched step.
    batch_tile:
        Blocks per kernel call in the batched engine (None = automatic,
        sized so a tile's padded rows stay cache-resident; see
        :meth:`_tile_rows`).  Any value gives bit-identical results.
    batch_tile_bytes:
        Target working-set bytes per automatic kernel tile (None =
        the ``REPRO_BATCH_TILE_BYTES`` env var when set, else the
        :attr:`BATCH_TILE_BYTES` default).  Must be >= 4096.  Any value
        gives bit-identical results.
    kernel_backend:
        Kernel backend name for the hot per-tile ops (see
        :mod:`repro.kernels`): ``"numpy"`` (reference) or ``"numba"``
        (fused JIT, bit-for-bit, auto-falls back to numpy when numba is
        missing).  None keeps the scheme's current backend.  The backend
        is attached to the *scheme* (``scheme.kernels``), so it also
        serves the blocked engine and per-block fallback paths.
    subcycle:
        When True, step with level-local time steps (Berger–Colella
        subcycling, :mod:`repro.amr.subcycle`) instead of one global
        CFL-limited dt: each ``stable_dt``/``advance`` pair takes one
        *coarsest-level* step while finer levels take ``2^delta``
        substeps with time-interpolated ghost fills.  Works on either
        engine (bit-for-bit across the two, like global stepping) and
        composes with ``reflux=True`` via per-substep time-weighted
        flux accumulation.  The ``threads`` pool is not used by the
        subcycled blocked path (per-level block counts are too small to
        amortize it).
    sanitize:
        When True, run under the ghost-poison sanitizer
        (:class:`repro.analysis.poison.GhostSanitizer`): every ghost
        layer is poisoned at construction, after every adapt, and
        before every exchange; after each exchange the stencil read
        slabs are verified poison-free, and after each step the
        interiors are verified finite.  A violation raises
        :class:`repro.analysis.poison.PoisonError`.  On a correct code
        path this is behavior-neutral (the exchange overwrites every
        poisoned cell the kernels consume) — only slower.
    """

    def __init__(
        self,
        forest: BlockForest,
        scheme: FVScheme,
        *,
        bc: Optional[BoundaryHandler] = None,
        criterion: Optional[RefinementCriterion] = None,
        adapt_interval: int = 4,
        buffer_band: int = 1,
        hook: Optional[StepHook] = None,
        reflux: bool = False,
        threads: Optional[int] = None,
        engine: str = "blocked",
        batch_tile: Optional[int] = None,
        batch_tile_bytes: Optional[int] = None,
        kernel_backend: Optional[str] = None,
        subcycle: bool = False,
        safe_mode: bool = False,
        max_step_retries: int = 4,
        sanitize: bool = False,
    ) -> None:
        if forest.n_ghost < scheme.required_ghost:
            raise ValueError(
                f"scheme needs {scheme.required_ghost} ghost layers, forest "
                f"has {forest.n_ghost}"
            )
        if engine not in ("blocked", "batched"):
            raise ValueError(
                f"engine must be 'blocked' or 'batched', got {engine!r}"
            )
        if batch_tile is not None and batch_tile < 1:
            raise ValueError("batch_tile must be >= 1")
        if kernel_backend is not None:
            scheme.kernels = get_backend(kernel_backend)
        if batch_tile_bytes is None:
            env = os.environ.get("REPRO_BATCH_TILE_BYTES")
            if env:
                try:
                    batch_tile_bytes = int(env)
                except ValueError:
                    raise ValueError(
                        "REPRO_BATCH_TILE_BYTES must be an integer, "
                        f"got {env!r}"
                    ) from None
        if batch_tile_bytes is None:
            batch_tile_bytes = self.BATCH_TILE_BYTES
        if batch_tile_bytes < 4096:
            raise ValueError(
                f"batch tile size must be >= 4096 bytes, got {batch_tile_bytes}"
            )
        self.forest = forest
        self.scheme = scheme
        self.engine = engine
        self.subcycle = subcycle
        #: per-level substep counts of the last subcycled advance
        #: (level -> substeps); None before the first subcycled step
        self._last_substeps: Optional[Dict[int, int]] = None
        self.batch_tile = batch_tile
        self.batch_tile_bytes = int(batch_tile_bytes)
        self.bc = bc
        self.criterion = criterion
        self.adapt_interval = adapt_interval
        self.buffer_band = buffer_band
        self.hook = hook
        self.reflux = reflux
        self._register = None
        #: optional shared-memory parallelism: per-block updates are
        #: independent (each reads only its own padded array), and the
        #: numpy kernels release the GIL, so a thread pool gives genuine
        #: speedup on multi-core hosts for large blocks.
        self.threads = threads
        self._executor = None
        if threads is not None:
            if threads < 1:
                raise ValueError("threads must be >= 1")
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(max_workers=threads)
        if max_step_retries < 0:
            raise ValueError("max_step_retries must be >= 0")
        self.safe_mode = safe_mode
        self.max_step_retries = max_step_retries
        self.sanitizer = None
        if sanitize:
            from repro.analysis.poison import GhostSanitizer, poison_forest

            self.sanitizer = GhostSanitizer(depth=scheme.required_ghost)
            poison_forest(forest)
        self.time = 0.0
        self.step_count = 0
        self.timer = PhaseTimer()
        self.history: list[StepRecord] = []
        #: optional JSONL event stream (see :mod:`repro.obs.recorder`);
        #: attach one and every step/adapt is emitted as a structured
        #: event.  Pure observer — never touches simulation state.
        self.recorder: Optional["RunRecorder"] = None
        #: optional integrity scrubber (see :mod:`repro.resilience.scrub`);
        #: attach via :meth:`attach_scrubber` and every step boundary is
        #: CRC-verified before any phase reads the state.
        self.scrubber: Optional["Scrubber"] = None
        self._block_times: Optional[Dict[BlockID, float]] = None
        self._block_steps: Optional[Dict[BlockID, int]] = None

    def close(self) -> None:
        """Release owned resources (the worker thread pool).  Idempotent;
        the simulation remains usable for serial stepping afterwards."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def enable_block_profile(self) -> None:
        """Track per-block cost for the hottest-blocks report.

        In the blocked engine every kernel call is timed per block; in
        the batched engine (where blocks advance in stacked tiles and
        per-block time is not separable) per-block residency steps are
        counted instead.  Observation only — numerics are untouched.
        """
        self._block_times = {}
        self._block_steps = {}

    def block_profile(self) -> list:
        """Per-block cost entries for the profile event: ``id``,
        ``level``, ``steps`` present, and (blocked engine) ``time_s``."""
        if self._block_steps is None:
            return []
        times = self._block_times or {}
        entries = []
        for bid, steps in self._block_steps.items():
            entry: Dict[str, object] = {
                "id": str(bid),
                "level": bid.level,
                "steps": steps,
            }
            if bid in times:
                entry["time_s"] = round(times[bid], 6)
            entries.append(entry)
        return entries

    def _map_blocks(self, fn) -> None:
        """Apply ``fn(block)`` to every block, threaded when enabled."""
        times = self._block_times
        if times is not None:
            inner = fn

            def fn(block):
                t0 = _time.perf_counter()
                inner(block)
                dt = _time.perf_counter() - t0
                times[block.id] = times.get(block.id, 0.0) + dt

        if self._executor is None:
            for block in self.forest:
                fn(block)
        else:
            # Consume the iterator so worker exceptions propagate.
            list(self._executor.map(fn, list(self.forest)))

    def _flux_register(self):
        """The coarse–fine flux register, rebuilt on topology changes."""
        from repro.core.reflux import FluxRegister

        if self._register is None or self._register.revision != self.forest.revision:
            self._register = FluxRegister(self.forest)
        return self._register

    # ------------------------------------------------------------------

    def fill_ghosts(self) -> None:
        """Exchange ghost cells and apply physical BCs.

        Under the sanitizer every ghost cell is re-poisoned first, so
        each exchange must prove afresh that it fills everything the
        stencil kernels will read."""
        if self.sanitizer is not None:
            self.sanitizer.before_exchange(self.forest)
        with self.timer.phase("ghost_exchange"):
            fill_ghosts(
                self.forest,
                self.bc,
                batched_copies=self.engine == "batched",
                kernels=self.scheme.kernels if self.engine == "batched" else None,
            )
        if METRICS.enabled:
            METRICS.inc("ghost.exchanges")
        if self.sanitizer is not None:
            self.sanitizer.after_exchange(self.forest)

    def stable_dt(self) -> float:
        with self.timer.phase("cfl"):
            if self.subcycle:
                from repro.amr.subcycle import stable_dt_subcycled

                return stable_dt_subcycled(self)
            if self.engine == "batched":
                row_bytes = self.forest.arena.pool[:1].nbytes
                return stable_dt_batched(
                    self.forest, self.scheme, tile=self._tile_rows(row_bytes)
                )
            return stable_dt(self.forest, self.scheme)

    def advance(self, dt: float) -> None:
        """Advance the whole forest by ``dt`` (ghosts refreshed between
        stages for the two-stage scheme).  Under subcycling ``dt`` is
        the coarsest level's step; finer levels substep within it."""
        if self.subcycle:
            from repro.amr.subcycle import advance_subcycled

            advance_subcycled(self, dt)
        elif self.engine == "batched":
            self._advance_batched(dt)
        else:
            self._advance_blocked(dt)

    def updates_per_step(self) -> int:
        """Block updates one ``advance`` performs: every block once
        under global stepping; under subcycling each block steps with
        its level's substep divisor — the work metric the subcycling
        ablation compares."""
        if not self.subcycle:
            return self.forest.n_blocks
        from repro.amr.subcycle import level_divisors

        levels = sorted({b.level for b in self.forest.blocks.values()})
        divisor = level_divisors(levels)
        return sum(divisor[b.level] for b in self.forest)

    def _advance_blocked(self, dt: float) -> None:
        """Per-block engine: one scheme call per block (threadable)."""
        forest, scheme = self.forest, self.scheme
        g = forest.n_ghost
        register = self._flux_register() if self.reflux else None
        if register is not None:
            register.start_step()

        def final_rate(block):
            # Flux divergence of the final stage, capturing boundary-face
            # fluxes for blocks on coarse-fine interfaces.
            if register is not None:
                faces = register.needed_faces.get(block.id)
                if faces:
                    capture: Dict[int, np.ndarray] = {}
                    rate = scheme.flux_divergence(
                        block.data, block.dx, g,
                        face_flux_out=capture, faces=faces,
                    )
                    register.record(block.id, capture)
                    return rate
            return scheme.flux_divergence(block.data, block.dx, g)

        self.fill_ghosts()
        if scheme.n_stages == 1:
            def single(block):
                block.interior[...] += dt * final_rate(block)
                scheme.apply_floors(block.interior)

            with self.timer.phase("compute"):
                self._map_blocks(single)
        else:
            # Predictor saves reuse the arena's preallocated scratch pool
            # (one interior-shaped row per block) instead of allocating a
            # fresh copy per block per step.
            save = forest.arena.save_pool()

            def predictor(block):
                save[block.arena_row][...] = block.interior
                scheme.step(block.data, block.dx, 0.5 * dt, g)

            def corrector(block):
                # block.data holds the half-time state everywhere
                # (interior from the predictor, ghosts just refreshed):
                # u_new = u_old + dt * L(u_half).
                block.interior[...] = save[block.arena_row] + dt * final_rate(block)
                scheme.apply_floors(block.interior)

            with self.timer.phase("compute"):
                self._map_blocks(predictor)
            self.fill_ghosts()
            with self.timer.phase("compute"):
                self._map_blocks(corrector)
        self._finish_advance(dt, register)

    #: default target working-set bytes per kernel tile (see
    #: :meth:`_tile_rows`); per-instance override via the
    #: ``batch_tile_bytes=`` parameter or the ``REPRO_BATCH_TILE_BYTES``
    #: env var, both validated >= 4096.
    BATCH_TILE_BYTES = 800 * 1024

    def _tile_rows(self, row_bytes: int) -> int:
        """Rows per kernel tile for the batched engine.

        Sweeping the whole pool in one scheme call maximally amortizes
        numpy dispatch but makes every intermediate array pool-sized —
        at hundreds of blocks the elementwise chains stream through DRAM
        and lose to the cache-resident per-block path (the same cache
        cliff the paper's Figure 5 shows for oversized blocks).  Tiling
        the sweep bounds the working set to roughly L2 size while still
        amortizing dispatch over many blocks per call — the logical-
        tiling strategy of production frameworks (AMReX).  Results are
        bit-for-bit independent of the tile size: every kernel treats
        the batch axis elementwise.
        """
        if self.batch_tile is not None:
            return self.batch_tile
        return max(8, self.batch_tile_bytes // max(row_bytes, 1))

    def _advance_batched(self, dt: float) -> None:
        """Batched engine: every scheme call sweeps a tile of blocks.

        The arena is compacted to a Morton-ordered contiguous prefix, so
        the ``(B, nvar, *padded)`` pool prefix *is* the forest state and
        the generalized scheme machinery advances a whole tile of blocks
        per numpy call (see :meth:`_tile_rows` for the tile-size
        rationale).  Bit-for-bit identical to the per-block engine: same
        IEEE elementwise kernels, same per-block cell widths, same
        update expressions — only the loop structure changes.
        """
        forest, scheme = self.forest, self.scheme
        g = forest.n_ghost
        nd = forest.ndim
        register = self._flux_register() if self.reflux else None
        if register is not None:
            register.start_step()
        blocks = [forest.blocks[bid] for bid in forest.sorted_ids()]
        pool = forest.arena.ensure_compact(blocks)
        n = len(blocks)
        interior = (slice(None), slice(None)) + tuple(
            slice(g, g + mi) for mi in forest.m
        )
        ui = pool[interior]  # (B, nvar, *m) view
        dx_all = [
            np.array([b.dx[a] for b in blocks]).reshape((n,) + (1,) * nd)
            for a in range(nd)
        ]
        tile = self._tile_rows(pool[:1].nbytes)
        tiles = [(s, min(s + tile, n)) for s in range(0, n, tile)]

        def capture_fluxes():
            # Reflux fallback: blocks on coarse-fine interfaces rerun a
            # per-block flux evaluation to capture boundary-face fluxes.
            # Runs *before* the batched interior update so it sees the
            # same (current-stage) state the batched rate is computed
            # from; the recomputed rate is identical and discarded.
            if register is None:
                return
            for block in blocks:
                faces = register.needed_faces.get(block.id)
                if faces:
                    capture: Dict[int, np.ndarray] = {}
                    scheme.flux_divergence(
                        block.data, block.dx, g,
                        face_flux_out=capture, faces=faces,
                    )
                    register.record(block.id, capture)

        # Rate scratch: one interior-shaped buffer reused by every tile
        # of every stage, so the update rate never allocates per tile.
        rate_pool = forest.arena.rate_pool()
        self.fill_ghosts()
        if scheme.n_stages == 1:
            with self.timer.phase("compute"):
                capture_fluxes()
                for s, e in tiles:
                    dxs = [d[s:e] for d in dx_all]
                    rate = scheme.flux_divergence(
                        pool[s:e], dxs, g, ndim=nd, out=rate_pool[s:e]
                    )
                    rate *= dt
                    ui[s:e] += rate
                    scheme.apply_floors(np.moveaxis(ui[s:e], 0, 1))
        else:
            save = forest.arena.save_pool()[:n]
            with self.timer.phase("compute"):
                save[...] = ui
                for s, e in tiles:
                    dxs = [d[s:e] for d in dx_all]
                    scheme.step(
                        pool[s:e], dxs, 0.5 * dt, g, ndim=nd,
                        rate_out=rate_pool[s:e],
                    )
            self.fill_ghosts()
            with self.timer.phase("compute"):
                capture_fluxes()
                # u_new = u_old + dt * L(u_half), as in the blocked
                # corrector (same IEEE ops per element; the scratch only
                # removes the broadcast temporaries).
                for s, e in tiles:
                    dxs = [d[s:e] for d in dx_all]
                    rate = scheme.flux_divergence(
                        pool[s:e], dxs, g, ndim=nd, out=rate_pool[s:e]
                    )
                    rate *= dt
                    np.add(save[s:e], rate, out=ui[s:e])
                    scheme.apply_floors(np.moveaxis(ui[s:e], 0, 1))
        self._finish_advance(dt, register)

    def _finish_advance(
        self, dt: float, register, *, flux_scale: Optional[float] = None
    ) -> None:
        """Common epilogue of every ``advance``: apply the accumulated
        reflux correction, run the sanitizer's post-stage check, commit
        the clock.  ``flux_scale`` overrides the dt the register scales
        recorded fluxes by (the subcycled path passes 1.0 — its fluxes
        already carry their substep-length weights)."""
        if register is not None:
            with self.timer.phase("reflux"):
                register.apply(dt if flux_scale is None else flux_scale)
        if self.sanitizer is not None:
            self.sanitizer.after_stage(self.forest)
        self.time += dt

    def attach_scrubber(self, scrubber: "Scrubber") -> "Scrubber":
        """Attach a memory scrubber, tagging the current state as the
        trusted baseline.

        Tags live in the forest arena's
        :class:`~repro.core.integrity.RowLedger`, so they follow rows
        through compaction (batched engine) and pool growth by
        construction.  Scrubbing only reads state: a scrub-enabled run
        is bit-for-bit identical to baseline.
        """
        scrubber.attach_arena(self.forest.arena)
        self.scrubber = scrubber
        self.scrub_retag()
        return scrubber

    def scrub_retag(self) -> None:
        """Re-baseline every block's integrity tag (write boundaries:
        post-step and post-adapt)."""
        if self.scrubber is not None:
            self.scrubber.retag_blocks(
                {bid: self.forest.blocks[bid] for bid in self.forest.sorted_ids()}
            )

    def _scrub_check(self) -> None:
        """Verify the forest against the integrity tags (step boundary)."""
        if self.scrubber is None or not self.scrubber.due(self.step_count):
            return
        from repro.resilience.scrub import CorruptionError

        with self.timer.phase("scrub"):
            entries = self.scrubber.scrub_blocks(
                {bid: self.forest.blocks[bid] for bid in self.forest.sorted_ids()}
            )
        if entries:
            raise CorruptionError(self.step_count, entries)

    def maybe_adapt(self) -> Optional[AdaptSummary]:
        """Run the refinement criterion if this step is a check step."""
        if self.criterion is None:
            return None
        if self.step_count % self.adapt_interval != 0:
            return None
        self.fill_ghosts()
        with self.timer.phase("criteria"):
            refine, coarsen = compute_flags(
                self.forest, self.criterion, buffer_band=self.buffer_band
            )
        with self.timer.phase("adapt"):
            summary = self.forest.adapt(refine, coarsen)
        if self.sanitizer is not None:
            # Adaptation allocates blocks with unexchanged ghosts:
            # poison them so a kernel cannot consume them unnoticed.
            from repro.analysis.poison import poison_forest

            poison_forest(self.forest)
        return summary

    def _advance_safely(self, dt: float) -> float:
        """Advance with health checks, rollback, and bounded dt retries.

        Returns the dt that actually succeeded (<= the requested dt).
        """
        from repro.resilience.safestep import (
            StepFailure,
            UnrecoverableStep,
            scan_forest_health,
        )

        t0 = self.time
        # One snapshot of the full padded arrays (interior is a view
        # into data, so this covers both state and ghosts).
        snapshot = {
            bid: blk.data.copy() for bid, blk in self.forest.blocks.items()
        }
        attempts: list[float] = []
        dt_try = dt
        issue = None
        for _ in range(self.max_step_retries + 1):
            attempts.append(dt_try)
            self.advance(dt_try)
            issue = scan_forest_health(self.forest, self.scheme)
            if issue is None:
                return dt_try
            # Roll back the state and the clock before retrying.
            for bid, blk in self.forest.blocks.items():
                blk.data[...] = snapshot[bid]
            self.time = t0
            dt_try *= 0.5
        raise UnrecoverableStep(
            StepFailure(
                step=self.step_count,
                time=t0,
                dt_attempts=tuple(attempts),
                issue=issue,
            )
        )

    def step(self, dt: Optional[float] = None) -> StepRecord:
        """One full cycle: (adapt) → dt → advance → hook.

        In safe mode the advance is health-checked and retried with a
        halved dt on failure; the record's ``dt`` is the one that
        actually succeeded."""
        wall_start = _time.perf_counter()
        self._scrub_check()
        adapted = self.maybe_adapt()
        if adapted is not None:
            # Adaptation allocated/released arena rows: freshly created
            # blocks need a baseline tag before anything mutates them.
            self.scrub_retag()
        if dt is None:
            dt = self.stable_dt()
        if self.safe_mode:
            dt = self._advance_safely(dt)
        else:
            self.advance(dt)
        if self.hook is not None:
            with self.timer.phase("hook"):
                self.hook(self, dt)
        self.step_count += 1
        # Post-step write boundary: the committed state becomes the new
        # trusted baseline for the next scrub.
        self.scrub_retag()
        rec = StepRecord(
            step=self.step_count,
            time=self.time,
            dt=dt,
            n_blocks=self.forest.n_blocks,
            n_cells=self.forest.n_cells,
            adapted=adapted,
            wall_time=_time.perf_counter() - wall_start,
        )
        self.history.append(rec)
        if self._block_steps is not None:
            for bid in self.forest.blocks:
                self._block_steps[bid] = self._block_steps.get(bid, 0) + 1
        if METRICS.enabled:
            METRICS.inc("step.count")
            METRICS.observe("step.dt", dt)
            METRICS.observe("step.wall_time", rec.wall_time or 0.0)
        if self.recorder is not None:
            if adapted is not None:
                self.recorder.emit(
                    "adapt",
                    step=self.step_count,
                    refined=adapted.refined,
                    coarsened=adapted.coarsened,
                    n_blocks=rec.n_blocks,
                )
            extras: Dict[str, object] = {}
            if self.subcycle:
                extras["subcycle"] = True
                extras["substeps"] = {
                    str(lvl): n
                    for lvl, n in (self._last_substeps or {}).items()
                }
                extras["updates"] = self.updates_per_step()
            self.recorder.emit(
                "step",
                step=rec.step,
                t_sim=rec.time,
                dt=rec.dt,
                n_blocks=rec.n_blocks,
                n_cells=rec.n_cells,
                wall_time=rec.wall_time,
                engine=self.engine,
                **extras,
            )
        return rec

    def run(
        self,
        *,
        t_end: Optional[float] = None,
        n_steps: Optional[int] = None,
        dt_max: float = 1e30,
    ) -> StepRecord:
        """Run until a time or step count is reached (whichever first)."""
        if t_end is None and n_steps is None:
            raise ValueError("give t_end and/or n_steps")
        start_step = self.step_count
        while True:
            if n_steps is not None and self.step_count - start_step >= n_steps:
                break
            if t_end is not None and self.time >= t_end - 1e-14:
                break
            dt = min(self.stable_dt(), dt_max)
            if t_end is not None:
                dt = min(dt, t_end - self.time)
            self.step(dt)
        return self.history[-1] if self.history else StepRecord(0, 0.0, 0.0, self.forest.n_blocks, self.forest.n_cells)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def total(self, var: int = 0) -> float:
        """Volume-weighted total of one conserved variable (conservation
        diagnostic)."""
        total = 0.0
        for block in self.forest:
            cell_vol = 1.0
            for w in block.dx:
                cell_vol *= w
            total += float(block.interior[var].sum()) * cell_vol
        return total

    def error_vs(self, exact: Callable[..., np.ndarray], var: int = 0) -> float:
        """Volume-weighted L1 error of one variable against
        ``exact(*meshgrid)``."""
        err = 0.0
        vol = 0.0
        for block in self.forest:
            grids = block.meshgrid()
            cell_vol = 1.0
            for w in block.dx:
                cell_vol *= w
            err += float(np.abs(block.interior[var] - exact(*grids)).sum()) * cell_vol
            vol += cell_vol * block.n_cells
        return err / vol
