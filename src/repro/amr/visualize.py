"""Text-based visualization of forests and fields.

No plotting dependencies: fields render as ASCII intensity maps and the
block structure as a character grid showing refinement levels — enough
to inspect AMR behaviour in a terminal or a test log, in the spirit of
the paper-era workflow.

* :func:`render_field` — 2-D ASCII intensity map of one variable (a 2-D
  slice is taken automatically for 3-D forests);
* :func:`render_blocks` — refinement-level map (each character is the
  level of the leaf covering that pixel);
* :func:`render_line` — a 1-D variable as a sparkline-style profile.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.amr.sampling import line_cut, resample_uniform, sample_points
from repro.core.forest import BlockForest

__all__ = ["render_field", "render_blocks", "render_line"]

RAMP = " .:-=+*#%@"


def _slice_points(
    forest: BlockForest, nx: int, ny: int, slice_coord: Optional[float]
):
    """Pixel-center sample points over an (x, y) raster."""
    lo, hi = forest.domain.lo, forest.domain.hi
    xs = lo[0] + (np.arange(nx) + 0.5) * (hi[0] - lo[0]) / nx
    ys = lo[1] + (np.arange(ny) + 0.5) * (hi[1] - lo[1]) / ny
    points = []
    for y in ys:
        for x in xs:
            if forest.ndim == 2:
                points.append((float(x), float(y)))
            else:
                z = slice_coord if slice_coord is not None else (
                    0.5 * (lo[2] + hi[2])
                )
                points.append((float(x), float(y), float(z)))
    return xs, ys, points


def render_field(
    forest: BlockForest,
    var: int = 0,
    *,
    width: int = 60,
    height: int = 28,
    slice_coord: Optional[float] = None,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> str:
    """ASCII intensity map of one variable over the (x, y) plane.

    For 3-D forests a z-slice is taken (``slice_coord``, default the
    domain mid-plane).  Rows print top-to-bottom with y decreasing, the
    usual plot orientation.
    """
    if forest.ndim == 1:
        raise ValueError("render_field needs a 2-D or 3-D forest; use render_line")
    xs, ys, points = _slice_points(forest, width, height, slice_coord)
    vals = sample_points(forest, points)[var].reshape(height, width)
    lo = vals.min() if vmin is None else vmin
    hi = vals.max() if vmax is None else vmax
    span = max(hi - lo, 1e-300)
    idx = np.clip(((vals - lo) / span * len(RAMP)).astype(int), 0, len(RAMP) - 1)
    rows = ["".join(RAMP[i] for i in idx[j]) for j in range(height - 1, -1, -1)]
    footer = f"[{lo:.3g} .. {hi:.3g}] var {var}"
    return "\n".join(rows) + "\n" + footer


def render_blocks(
    forest: BlockForest,
    *,
    width: int = 60,
    height: int = 28,
    slice_coord: Optional[float] = None,
) -> str:
    """Refinement-level map: each character is the level of the covering
    leaf (0-9, then a-z)."""
    if forest.ndim == 1:
        blocks = sorted(forest.blocks, key=lambda b: b.coords[0] * 2 ** -b.level)
        return "".join(str(min(b.level, 9)) for b in blocks)
    xs, ys, points = _slice_points(forest, width, height, slice_coord)
    levels = np.empty(len(points), dtype=int)
    for i, pt in enumerate(points):
        levels[i] = forest.block_at(pt).level
    grid = levels.reshape(height, width)

    def char(level: int) -> str:
        if level < 10:
            return str(level)
        return chr(ord("a") + min(level - 10, 25))

    rows = ["".join(char(l) for l in grid[j]) for j in range(height - 1, -1, -1)]
    hist = forest.level_histogram()
    footer = "levels: " + "  ".join(f"L{k}:{v}" for k, v in hist.items())
    return "\n".join(rows) + "\n" + footer


def render_line(
    forest: BlockForest,
    var: int = 0,
    *,
    axis: int = 0,
    through: Optional[Sequence[float]] = None,
    n: int = 64,
    height: int = 12,
) -> str:
    """Vertical-bar profile of one variable along a grid line."""
    if through is None:
        through = forest.domain.center
    xs, vals = line_cut(forest, axis, through, n=n)
    v = vals[var]
    lo, hi = float(v.min()), float(v.max())
    span = max(hi - lo, 1e-300)
    levels = np.clip(((v - lo) / span * (height - 1)).round().astype(int), 0, height - 1)
    rows = []
    for row in range(height - 1, -1, -1):
        rows.append("".join("#" if levels[i] >= row else " " for i in range(n)))
    rows.append("-" * n)
    rows.append(f"[{lo:.3g} .. {hi:.3g}] var {var} along axis {axis}")
    return "\n".join(rows)
