"""Ready-made simulation setups (initial conditions + BCs + hooks).

These are scaled-down analogues of the applications driving the paper:

* :func:`advecting_pulse` — smooth scalar transport with an exact
  solution (the convergence / conservation oracle);
* :func:`sedov_blast` — hydrodynamic point blast (shock-tracking AMR);
* :func:`mhd_blast` — the standard MHD blast wave in a uniform oblique
  field: the CME-launch analogue exercising the full 8-wave solver;
* :func:`solar_wind` — steady supersonic outflow from a spherical inner
  boundary held at fixed conditions (the Gombosi et al. solar-wind /
  inner-heliosphere configuration, with an optional CME pulse driven
  through the inner boundary);
* :func:`comet` — supersonic magnetized inflow mass-loaded by a
  cometary neutral cloud (the Haberli et al. comet x-ray setting);
* :func:`alfven_wave` — circularly polarized Alfvén wave, the exact
  nonlinear MHD solution used for order verification;
* :func:`orszag_tang` — the Orszag–Tang vortex, the canonical 2-D MHD
  shock-web stress test;
* :func:`rayleigh_taylor` — buoyancy-driven interface instability
  (gravity source term, reflecting walls).

Each factory returns a :class:`Problem` whose :meth:`Problem.build`
yields a ready-to-run :class:`repro.amr.driver.Simulation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.amr.boundary import (
    CompositeBC,
    ExtrapolationBC,
    FixedBC,
    OutflowBC,
)
from repro.amr.config import SimulationConfig
from repro.amr.driver import Simulation, StepHook
from repro.core.block import Block
from repro.core.refine_criteria import MonitorCriterion
from repro.solvers import AdvectionScheme, EulerScheme, MHDScheme
from repro.solvers.scheme import FVScheme
from repro.util.geometry import Box

__all__ = [
    "Problem",
    "advecting_pulse",
    "alfven_wave",
    "sedov_blast",
    "kelvin_helmholtz",
    "mhd_blast",
    "mhd_rotor",
    "orszag_tang",
    "rayleigh_taylor",
    "solar_wind",
    "comet",
]


@dataclass
class Problem:
    """A fully specified simulation: configuration, scheme, physics."""

    name: str
    config: SimulationConfig
    scheme: FVScheme
    init_primitive: Callable[..., np.ndarray]
    bc: Optional[Callable] = None
    hook: Optional[StepHook] = None
    monitor_var: int = 0
    exact: Optional[Callable[..., np.ndarray]] = None

    def make_criterion(self) -> MonitorCriterion:
        var = self.monitor_var
        return MonitorCriterion(
            lambda d: d[var],
            refine_threshold=self.config.refine_threshold,
            coarsen_threshold=self.config.coarsen_threshold,
            max_level=self.config.max_level,
        )

    def init_forest(self, forest) -> None:
        """Set every block's interior from the primitive initializer."""
        for block in forest:
            w = self.init_primitive(*block.meshgrid())
            block.interior[...] = self.scheme.prim_to_cons(w)

    def build(
        self,
        *,
        adaptive: bool = True,
        initial_adapt_rounds: int = 3,
        sanitize: bool = False,
        engine: Optional[str] = None,
        kernel_backend: Optional[str] = None,
        subcycle: Optional[bool] = None,
    ) -> Simulation:
        """Construct the simulation, optionally pre-adapting the initial
        grid so the starting resolution already tracks the features.

        ``sanitize`` enables the ghost-poison sanitizer on the built
        simulation (see :class:`repro.amr.driver.Simulation`);
        ``engine`` overrides the configured execution engine
        (``"blocked"`` / ``"batched"``); ``kernel_backend`` overrides
        the configured kernel backend (``"numpy"`` / ``"numba"``);
        ``subcycle`` overrides the configured time-stepping mode
        (level-local subcycled steps vs one global dt).
        """
        forest = self.config.make_forest(self.scheme.nvar)
        self.init_forest(forest)
        criterion = self.make_criterion() if adaptive else None
        sim = Simulation(
            forest,
            self.scheme,
            bc=self.bc,
            criterion=criterion,
            adapt_interval=self.config.adapt_interval,
            buffer_band=self.config.buffer_band,
            hook=self.hook,
            sanitize=sanitize,
            engine=engine if engine is not None else self.config.engine,
            kernel_backend=(
                kernel_backend
                if kernel_backend is not None
                else self.config.kernel_backend
            ),
            subcycle=subcycle if subcycle is not None else self.config.subcycle,
        )
        if adaptive:
            for _ in range(initial_adapt_rounds):
                sim.fill_ghosts()
                from repro.core.refine_criteria import compute_flags

                refine, _ = compute_flags(
                    forest, criterion, buffer_band=self.config.buffer_band
                )
                if not refine:
                    break
                summary = forest.adapt(refine)
                if not summary.changed:
                    break
                self.init_forest(forest)
        return sim


def _radius2(grids: Sequence[np.ndarray], center: Sequence[float]) -> np.ndarray:
    r2 = np.zeros_like(grids[0])
    for g, c in zip(grids, center):
        r2 += (g - c) ** 2
    return r2


# ---------------------------------------------------------------------------
# advecting pulse
# ---------------------------------------------------------------------------

def advecting_pulse(
    ndim: int = 2,
    *,
    velocity: Optional[Tuple[float, ...]] = None,
    width: float = 0.08,
    config: Optional[SimulationConfig] = None,
) -> Problem:
    """Gaussian pulse advected across a periodic unit domain."""
    if velocity is None:
        velocity = (1.0, 0.5, 0.25)[:ndim]
    if config is None:
        config = SimulationConfig(
            domain=Box((0.0,) * ndim, (1.0,) * ndim),
            n_root=(2,) * ndim,
            m=(8,) * ndim,
            periodic=(True,) * ndim,
            max_level=3,
            refine_threshold=0.08,
            coarsen_threshold=0.02,
        )
    center = (0.5,) * ndim
    scheme = AdvectionScheme(
        velocity,
        order=config.order,
        limiter=config.limiter,
        riemann=config.riemann,
        cfl=config.cfl,
    )

    def init(*grids: np.ndarray) -> np.ndarray:
        return np.exp(-_radius2(grids, center) / (2 * width**2))[np.newaxis]

    def exact(t: float):
        def fn(*grids: np.ndarray) -> np.ndarray:
            r2 = np.zeros_like(grids[0])
            for g, c, v, w in zip(grids, center, velocity, (1.0,) * ndim):
                d = np.abs(g - (c + v * t) % 1.0)
                d = np.minimum(d, 1.0 - d)  # periodic distance
                r2 += d**2
            return np.exp(-r2 / (2 * width**2))
        return fn

    return Problem(
        name=f"advecting_pulse_{ndim}d",
        config=config,
        scheme=scheme,
        init_primitive=init,
        bc=None,
        exact=exact,
    )


# ---------------------------------------------------------------------------
# hydrodynamic blast
# ---------------------------------------------------------------------------

def sedov_blast(
    ndim: int = 2,
    *,
    p_inside: float = 10.0,
    p_outside: float = 0.1,
    r_blast: float = 0.1,
    gamma: float = 1.4,
    config: Optional[SimulationConfig] = None,
) -> Problem:
    """Point-blast problem: an over-pressured sphere drives a strong
    shock into a uniform medium (the classic shock-tracking AMR test)."""
    if config is None:
        config = SimulationConfig(
            domain=Box((-0.5,) * ndim, (0.5,) * ndim),
            n_root=(2,) * ndim,
            m=(8,) * ndim,
            max_level=3,
            refine_threshold=0.12,
            coarsen_threshold=0.03,
        )
    scheme = EulerScheme(
        ndim,
        gamma,
        order=config.order,
        limiter=config.limiter,
        riemann=config.riemann,
        cfl=config.cfl,
    )

    def init(*grids: np.ndarray) -> np.ndarray:
        r2 = _radius2(grids, (0.0,) * ndim)
        w = np.zeros((scheme.nvar,) + grids[0].shape)
        w[0] = 1.0
        w[-1] = np.where(r2 < r_blast**2, p_inside, p_outside)
        return w

    return Problem(
        name=f"sedov_blast_{ndim}d",
        config=config,
        scheme=scheme,
        init_primitive=init,
        bc=OutflowBC(),
        monitor_var=scheme.layout.i_energy,
    )


# ---------------------------------------------------------------------------
# MHD blast (CME analogue)
# ---------------------------------------------------------------------------

def mhd_blast(
    ndim: int = 2,
    *,
    p_inside: float = 10.0,
    p_outside: float = 0.1,
    r_blast: float = 0.1,
    b0: float = 1.0,
    gamma: float = 5.0 / 3.0,
    config: Optional[SimulationConfig] = None,
) -> Problem:
    """MHD blast wave in a uniform oblique magnetic field.

    The anisotropic expansion along the field is the canonical test of a
    multidimensional MHD solver, and the closest laptop-scale analogue of
    the paper's CME launch: a pressure pulse erupting into a magnetized
    ambient medium.
    """
    if config is None:
        config = SimulationConfig(
            domain=Box((-0.5,) * ndim, (0.5,) * ndim),
            n_root=(2,) * ndim,
            m=(8,) * ndim,
            max_level=3,
            refine_threshold=0.12,
            coarsen_threshold=0.03,
        )
    scheme = MHDScheme(
        ndim,
        gamma,
        order=config.order,
        limiter=config.limiter,
        riemann=config.riemann,
        cfl=config.cfl,
    )
    bhat = (1.0 / math.sqrt(2.0), 1.0 / math.sqrt(2.0), 0.0)

    def init(*grids: np.ndarray) -> np.ndarray:
        r2 = _radius2(grids, (0.0,) * ndim)
        w = np.zeros((8,) + grids[0].shape)
        w[0] = 1.0
        w[4] = np.where(r2 < r_blast**2, p_inside, p_outside)
        for c in range(3):
            w[5 + c] = b0 * bhat[c]
        return w

    return Problem(
        name=f"mhd_blast_{ndim}d",
        config=config,
        scheme=scheme,
        init_primitive=init,
        bc=OutflowBC(),
        monitor_var=scheme.layout.I_E,
    )


# ---------------------------------------------------------------------------
# Kelvin–Helmholtz instability
# ---------------------------------------------------------------------------

def kelvin_helmholtz(
    *,
    density_ratio: float = 2.0,
    shear: float = 1.0,
    amplitude: float = 0.01,
    gamma: float = 1.4,
    config: Optional[SimulationConfig] = None,
) -> Problem:
    """Kelvin–Helmholtz instability: a perturbed shear layer rolls up.

    A dense stripe moving right through lighter gas moving left, seeded
    with a small transverse velocity; the interface rolls into the
    classic billows while the refinement criterion chases the vorticity
    sheet.  Fully periodic.
    """
    if config is None:
        config = SimulationConfig(
            domain=Box((0.0, 0.0), (1.0, 1.0)),
            n_root=(2, 2),
            m=(8, 8),
            periodic=(True, True),
            max_level=3,
            refine_threshold=0.12,
            coarsen_threshold=0.03,
        )
    scheme = EulerScheme(
        2,
        gamma,
        order=config.order,
        limiter=config.limiter,
        riemann=config.riemann,
        cfl=config.cfl,
    )

    def init(*grids: np.ndarray) -> np.ndarray:
        X, Y = grids
        w = np.zeros((4,) + X.shape)
        stripe = np.abs(Y - 0.5) < 0.25
        w[0] = np.where(stripe, density_ratio, 1.0)
        w[1] = np.where(stripe, 0.5 * shear, -0.5 * shear)
        w[2] = amplitude * np.sin(4.0 * np.pi * X) * (
            np.exp(-(((Y - 0.25) / 0.05) ** 2))
            + np.exp(-(((Y - 0.75) / 0.05) ** 2))
        )
        w[3] = 2.5
        return w

    return Problem(
        name="kelvin_helmholtz",
        config=config,
        scheme=scheme,
        init_primitive=init,
        bc=None,
        monitor_var=0,
    )


# ---------------------------------------------------------------------------
# MHD rotor
# ---------------------------------------------------------------------------

def mhd_rotor(
    *,
    omega: float = 8.0,
    b0: float = 1.4,
    gamma: float = 1.4,
    config: Optional[SimulationConfig] = None,
) -> Problem:
    """The Balsara–Spicer MHD rotor: a dense spinning disc winds up the
    magnetic field, launching torsional Alfvén waves — the canonical
    test of angular-momentum transport in MHD codes.

    Dense (rho = 10) disc of radius 0.1 rotating at angular speed
    ``omega`` inside a light (rho = 1) static medium threaded by a
    uniform ``Bx = b0``; a linear taper smooths the rim.
    """
    if config is None:
        config = SimulationConfig(
            domain=Box((-0.5, -0.5), (0.5, 0.5)),
            n_root=(2, 2),
            m=(8, 8),
            max_level=3,
            refine_threshold=0.15,
            coarsen_threshold=0.04,
        )
    scheme = MHDScheme(
        2,
        gamma,
        order=config.order,
        limiter=config.limiter,
        riemann=config.riemann,
        cfl=config.cfl,
    )
    r0, r1 = 0.1, 0.115

    def init(*grids: np.ndarray) -> np.ndarray:
        X, Y = grids
        r = np.sqrt(X**2 + Y**2)
        w = np.zeros((8,) + X.shape)
        taper = np.clip((r1 - r) / (r1 - r0), 0.0, 1.0)
        w[0] = 1.0 + 9.0 * taper
        spin = omega * taper
        w[1] = -spin * Y
        w[2] = spin * X
        w[4] = 1.0
        w[5] = b0
        return w

    return Problem(
        name="mhd_rotor",
        config=config,
        scheme=scheme,
        init_primitive=init,
        bc=OutflowBC(),
        monitor_var=scheme.layout.I_RHO,
    )


# ---------------------------------------------------------------------------
# Rayleigh–Taylor instability
# ---------------------------------------------------------------------------

def rayleigh_taylor(
    *,
    rho_heavy: float = 2.0,
    rho_light: float = 1.0,
    gravity: float = 0.5,
    amplitude: float = 0.01,
    gamma: float = 1.4,
    config: Optional[SimulationConfig] = None,
) -> Problem:
    """Single-mode Rayleigh–Taylor instability: heavy fluid over light.

    A hydrostatic two-layer atmosphere (interface at y = 0, gravity
    pointing down) seeded with one cosine velocity mode.  Buoyancy
    drives interpenetrating fingers whose mushrooming interface is the
    classic adaptive-refinement showcase.  Reflecting walls top/bottom,
    periodic in x.
    """
    if config is None:
        config = SimulationConfig(
            domain=Box((-0.25, -0.5), (0.25, 0.5)),
            n_root=(1, 2),
            m=(8, 8),
            periodic=(True, False),
            max_level=3,
            refine_threshold=0.12,
            coarsen_threshold=0.03,
        )
    scheme = EulerScheme(
        2,
        gamma,
        gravity=(0.0, -gravity),
        order=config.order,
        limiter=config.limiter,
        riemann=config.riemann,
        cfl=config.cfl,
    )
    lx = config.domain.widths[0]
    p0 = 2.5  # base pressure, large enough to stay positive everywhere

    def init(*grids: np.ndarray) -> np.ndarray:
        X, Y = grids
        w = np.zeros((4,) + X.shape)
        heavy = Y > 0.0
        w[0] = np.where(heavy, rho_heavy, rho_light)
        # Hydrostatic pressure for the layered atmosphere.
        w[3] = p0 - gravity * np.where(
            heavy, rho_heavy * Y, rho_light * Y
        )
        # Single-mode seed localized at the interface.
        w[2] = (
            amplitude
            * np.cos(2.0 * np.pi * X / lx)
            * np.exp(-((Y / 0.05) ** 2))
        )
        return w

    from repro.amr.boundary import ReflectingBC

    bc = ReflectingBC({1: [2]})  # flip y-momentum at the walls

    return Problem(
        name="rayleigh_taylor",
        config=config,
        scheme=scheme,
        init_primitive=init,
        bc=bc,
        monitor_var=0,
    )


# ---------------------------------------------------------------------------
# circularly polarized Alfvén wave (exact MHD solution)
# ---------------------------------------------------------------------------

def alfven_wave(
    *,
    amplitude: float = 0.1,
    gamma: float = 5.0 / 3.0,
    config: Optional[SimulationConfig] = None,
) -> Problem:
    """Circularly polarized Alfvén wave: the exact smooth MHD solution.

    On a periodic 1-D domain with ``rho = 1``, ``p = 0.1``, ``Bx = 1``:

    ``By = A cos(2πx)``, ``Bz = A sin(2πx)``,
    ``uy = -By``, ``uz = -Bz`` (for unit density)

    is an *exact* nonlinear solution propagating in +x at the Alfvén
    speed ``vA = Bx/sqrt(rho) = 1`` — the standard order-verification
    problem for MHD codes.  ``Problem.exact(t)`` returns the translated
    ``By`` profile.
    """
    if config is None:
        config = SimulationConfig(
            domain=Box((0.0,), (1.0,)),
            n_root=(2,),
            m=(16,),
            periodic=(True,),
            max_level=2,
            refine_threshold=0.3,
            coarsen_threshold=0.05,
        )
    scheme = MHDScheme(
        1,
        gamma,
        order=config.order,
        limiter=config.limiter,
        riemann=config.riemann,
        cfl=config.cfl,
    )
    amp = float(amplitude)

    def init(*grids: np.ndarray) -> np.ndarray:
        (X,) = grids
        w = np.zeros((8,) + X.shape)
        w[0] = 1.0
        w[4] = 0.1
        w[5] = 1.0                           # Bx
        w[6] = amp * np.cos(2.0 * np.pi * X)  # By
        w[7] = amp * np.sin(2.0 * np.pi * X)  # Bz
        w[2] = -w[6]                          # uy = -By / sqrt(rho)
        w[3] = -w[7]                          # uz = -Bz
        return w

    def exact(t: float):
        # vA = 1: pure translation with period 1 on the unit domain.
        def fn(X: np.ndarray) -> np.ndarray:
            return amp * np.cos(2.0 * np.pi * (X - t))
        return fn

    return Problem(
        name="alfven_wave",
        config=config,
        scheme=scheme,
        init_primitive=init,
        bc=None,
        monitor_var=6,  # By
        exact=exact,
    )


# ---------------------------------------------------------------------------
# Orszag–Tang vortex
# ---------------------------------------------------------------------------

def orszag_tang(
    *,
    gamma: float = 5.0 / 3.0,
    config: Optional[SimulationConfig] = None,
) -> Problem:
    """The Orszag–Tang vortex: the canonical 2-D MHD turbulence test.

    Smooth periodic initial velocity and magnetic vortices that steepen
    into a web of interacting MHD shocks — the standard stress test of
    every production MHD code in the paper's lineage.  Initial state
    (the common normalization): ``rho = gamma^2``, ``p = gamma``,
    ``u = (-sin 2πy, sin 2πx)``, ``B = (-sin 2πy, sin 4πx)`` on the
    periodic unit square, giving unit-ish Mach and Alfven numbers.
    """
    if config is None:
        config = SimulationConfig(
            domain=Box((0.0, 0.0), (1.0, 1.0)),
            n_root=(2, 2),
            m=(8, 8),
            periodic=(True, True),
            max_level=3,
            refine_threshold=0.15,
            coarsen_threshold=0.04,
        )
    scheme = MHDScheme(
        2,
        gamma,
        order=config.order,
        limiter=config.limiter,
        riemann=config.riemann,
        cfl=config.cfl,
    )

    def init(*grids: np.ndarray) -> np.ndarray:
        X, Y = grids
        w = np.zeros((8,) + X.shape)
        w[0] = gamma * gamma
        w[1] = -np.sin(2.0 * np.pi * Y)
        w[2] = np.sin(2.0 * np.pi * X)
        w[4] = gamma
        w[5] = -np.sin(2.0 * np.pi * Y)
        w[6] = np.sin(4.0 * np.pi * X)
        return w

    return Problem(
        name="orszag_tang",
        config=config,
        scheme=scheme,
        init_primitive=init,
        bc=None,
        monitor_var=scheme.layout.I_RHO,
    )


# ---------------------------------------------------------------------------
# solar wind with inner boundary (and optional CME pulse)
# ---------------------------------------------------------------------------

def solar_wind(
    ndim: int = 2,
    *,
    r_body: float = 1.0,
    rho0: float = 1.0,
    u0: float = 2.0,
    p0: float = 0.2,
    b0: float = 0.1,
    gamma: float = 5.0 / 3.0,
    cme_time: Optional[float] = None,
    cme_duration: float = 0.3,
    cme_factor: float = 4.0,
    config: Optional[SimulationConfig] = None,
) -> Problem:
    """Supersonic radial outflow from a spherical inner boundary.

    The inner body (radius ``r_body``, centred at the origin) is held at
    fixed conditions every step — the standard immersed inner-boundary
    treatment of the heliosphere codes.  The initial state is the same
    radial wind everywhere, so the run relaxes to (and then holds) a
    steady supersonic wind, exactly the configuration scaled up in the
    paper's Figures 6–7.

    With ``cme_time`` set, the inner-boundary density and speed are
    multiplied by ``cme_factor`` during ``[cme_time, cme_time +
    cme_duration]``, launching a CME-like pressure pulse into the wind.
    """
    if config is None:
        config = SimulationConfig(
            domain=Box((-4.0,) * ndim, (4.0,) * ndim),
            n_root=(2,) * ndim,
            m=(8,) * ndim,
            max_level=3,
            refine_threshold=0.15,
            coarsen_threshold=0.04,
        )
    scheme = MHDScheme(
        ndim,
        gamma,
        order=config.order,
        limiter=config.limiter,
        riemann=config.riemann,
        cfl=config.cfl,
        # Rarefactions behind the CME shell can pull density toward
        # vacuum, blowing up the Alfvén speed; the floors bound it
        # (standard heliosphere-code practice).
        rho_floor=1e-3 * rho0,
        p_floor=1e-6 * p0,
    )

    def wind_primitive(grids: Sequence[np.ndarray], boost: float = 1.0) -> np.ndarray:
        r2 = _radius2(grids, (0.0,) * ndim)
        r = np.sqrt(np.maximum(r2, (0.2 * r_body) ** 2))
        w = np.zeros((8,) + grids[0].shape)
        # Density falls off as the steady spherical wind (rho ~ r^-2 in
        # 3-D, r^-1 in 2-D) so the initial state is near equilibrium.
        falloff = (r_body / np.maximum(r, r_body)) ** (ndim - 1)
        w[0] = boost * rho0 * falloff
        for a in range(ndim):
            w[1 + a] = boost * u0 * grids[a] / r
        w[4] = p0 * falloff**gamma
        # Weak radial field, same falloff (a crude split-monopole).
        for a in range(ndim):
            w[5 + a] = b0 * grids[a] / r * falloff
        return w

    def init(*grids: np.ndarray) -> np.ndarray:
        return wind_primitive(grids)

    def hook(sim: Simulation, dt: float) -> None:
        boost = 1.0
        if cme_time is not None and cme_time <= sim.time < cme_time + cme_duration:
            boost = cme_factor
        for block in sim.forest:
            # Fast reject: block entirely outside the body sphere.
            d2 = 0.0
            for c, lo, hi in zip((0.0,) * ndim, block.box.lo, block.box.hi):
                nearest = min(max(c, lo), hi)
                d2 += (nearest - c) ** 2
            if d2 > r_body**2:
                continue
            grids = block.meshgrid()
            inside = _radius2(grids, (0.0,) * ndim) < r_body**2
            if not inside.any():
                continue
            w = wind_primitive(grids, boost)
            u = sim.scheme.prim_to_cons(w)
            block.interior[...] = np.where(inside, u, block.interior)

    return Problem(
        name=f"solar_wind_{ndim}d",
        config=config,
        scheme=scheme,
        init_primitive=init,
        # Zero-gradient outflow: linear extrapolation can manufacture
        # negative densities in the ghosts when the CME shock reaches
        # the outer boundary; zero-gradient cannot.
        bc=OutflowBC(),
        hook=hook,
    )


# ---------------------------------------------------------------------------
# comet mass loading
# ---------------------------------------------------------------------------

def comet(
    ndim: int = 2,
    *,
    inflow_rho: float = 1.0,
    inflow_u: float = 4.0,
    inflow_p: float = 0.2,
    inflow_b: float = 0.2,
    cloud_center: Optional[Tuple[float, ...]] = None,
    cloud_radius: float = 0.4,
    loading_rate: float = 2.0,
    gamma: float = 5.0 / 3.0,
    config: Optional[SimulationConfig] = None,
) -> Problem:
    """Supersonic magnetized inflow mass-loaded by a cometary cloud.

    Fresh solar wind enters through the x-low face (fixed supersonic
    inflow); inside the neutral cloud, mass is added at ``loading_rate``
    (per unit volume and time) at zero momentum, decelerating the flow —
    the ion pick-up mass-loading that shapes cometary bow shocks.
    """
    if config is None:
        config = SimulationConfig(
            domain=Box((-2.0,) * ndim, (2.0,) * ndim),
            n_root=(2,) * ndim,
            m=(8,) * ndim,
            max_level=3,
            refine_threshold=0.15,
            coarsen_threshold=0.04,
        )
    if cloud_center is None:
        cloud_center = (0.0,) * ndim
    scheme = MHDScheme(
        ndim,
        gamma,
        order=config.order,
        limiter=config.limiter,
        riemann=config.riemann,
        cfl=config.cfl,
    )

    def inflow_primitive(shape) -> np.ndarray:
        w = np.zeros((8,) + shape)
        w[0] = inflow_rho
        w[1] = inflow_u
        w[4] = inflow_p
        w[6] = inflow_b  # transverse field, carried in by the wind
        return w

    def init(*grids: np.ndarray) -> np.ndarray:
        return inflow_primitive(grids[0].shape)

    def inflow_values(centers) -> np.ndarray:
        return inflow_primitive(centers[0].shape)

    bc = CompositeBC({0: FixedBC(inflow_values)}, default=OutflowBC())

    def hook(sim: Simulation, dt: float) -> None:
        for block in sim.forest:
            grids = block.meshgrid()
            r2 = _radius2(grids, cloud_center)
            inside = r2 < cloud_radius**2
            if not inside.any():
                continue
            # Gaussian-profile source, strongest at the nucleus.
            profile = np.exp(-4.0 * r2 / cloud_radius**2)
            added = loading_rate * dt * profile * inside
            # Mass at zero momentum: density increases, momentum and
            # total energy unchanged (the added ions start at rest with
            # negligible pressure) -> the flow decelerates.
            block.interior[0] += added

    return Problem(
        name=f"comet_{ndim}d",
        config=config,
        scheme=scheme,
        init_primitive=init,
        bc=bc,
        hook=hook,
    )
