"""AMR simulation layer: driver, problems, boundary conditions, I/O."""

from repro.amr.boundary import (
    CompositeBC,
    ExtrapolationBC,
    FixedBC,
    OutflowBC,
    ReflectingBC,
    region_centers,
)
from repro.amr.config import SimulationConfig
from repro.amr.driver import Simulation, StepRecord
from repro.amr.io import (
    CheckpointError,
    checkpoint_metadata,
    grid_report,
    history_to_csv,
    load_forest,
    save_forest,
    verify_checkpoint,
)
from repro.amr.sampling import (
    ProbeSeries,
    integrate,
    line_cut,
    resample_uniform,
    sample_points,
)
from repro.amr.subcycle import SubcycledSimulation
from repro.amr.visualize import render_blocks, render_field, render_line
from repro.amr.problems import (
    Problem,
    advecting_pulse,
    alfven_wave,
    comet,
    kelvin_helmholtz,
    mhd_blast,
    mhd_rotor,
    orszag_tang,
    rayleigh_taylor,
    sedov_blast,
    solar_wind,
)

__all__ = [
    "CompositeBC",
    "ExtrapolationBC",
    "FixedBC",
    "OutflowBC",
    "ReflectingBC",
    "region_centers",
    "SimulationConfig",
    "Simulation",
    "StepRecord",
    "CheckpointError",
    "checkpoint_metadata",
    "grid_report",
    "history_to_csv",
    "load_forest",
    "save_forest",
    "verify_checkpoint",
    "ProbeSeries",
    "integrate",
    "line_cut",
    "resample_uniform",
    "sample_points",
    "SubcycledSimulation",
    "render_blocks",
    "render_field",
    "render_line",
    "Problem",
    "advecting_pulse",
    "alfven_wave",
    "comet",
    "kelvin_helmholtz",
    "mhd_blast",
    "mhd_rotor",
    "orszag_tang",
    "rayleigh_taylor",
    "sedov_blast",
    "solar_wind",
]
