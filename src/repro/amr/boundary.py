"""Physical boundary conditions on domain-boundary ghost cells.

Each boundary condition is a callable matching
:data:`repro.core.ghost.BoundaryHandler`: it fills ``block``'s ghost
cells inside ``region`` (a global-index box at the block's level that
covers a boundary slab of ``face``).  The library ships the standard
finite-volume set:

* :class:`OutflowBC` — zero-gradient (copy the nearest interior layer);
* :class:`ExtrapolationBC` — linear extrapolation from two interior
  layers (keeps second-order accuracy at outflow boundaries);
* :class:`ReflectingBC` — mirror with sign flips on selected variables
  (solid walls: flip the normal momentum / normal field components);
* :class:`FixedBC` — Dirichlet values from a user function of the cell
  centers (supersonic inflow, the solar-wind inner boundary);
* :class:`CompositeBC` — different conditions per face.

Periodic boundaries are not represented here: the forest's ghost
exchange handles them natively via wrapped neighbor lookup.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.block import Block
from repro.core.block_id import IndexBox
from repro.core.forest import BlockForest
from repro.util.geometry import face_axis, face_side

__all__ = [
    "OutflowBC",
    "ExtrapolationBC",
    "ReflectingBC",
    "FixedBC",
    "CompositeBC",
    "region_centers",
]


def region_centers(
    forest: BlockForest, level: int, region: IndexBox
) -> Tuple[np.ndarray, ...]:
    """Physical cell-center coordinate arrays (ij meshgrid) of a region
    given in level-``level`` global cell indices.  Works outside the
    domain too (ghost regions extrapolate the uniform spacing)."""
    axes = []
    for a in range(forest.ndim):
        n = (forest.n_root[a] << level) * forest.m[a]
        dx = forest.domain.widths[a] / n
        idx = np.arange(region.lo[a], region.hi[a])
        axes.append(forest.domain.lo[a] + (idx + 0.5) * dx)
    return tuple(np.meshgrid(*axes, indexing="ij"))


def _interior_layer_box(
    block: Block, face: int, region: IndexBox, depth: int
) -> IndexBox:
    """The single interior layer at the given depth from ``face``, with
    the transverse extent of ``region``."""
    axis, side = face_axis(face), face_side(face)
    ib = block.cell_box
    if side == 0:
        lo_a = ib.lo[axis] + depth
    else:
        lo_a = ib.hi[axis] - 1 - depth
    lo = list(region.lo)
    hi = list(region.hi)
    lo[axis] = lo_a
    hi[axis] = lo_a + 1
    return IndexBox(tuple(lo), tuple(hi))


def _ghost_layer_box(
    block: Block, face: int, region: IndexBox, dist: int
) -> IndexBox:
    """The single ghost layer at distance ``dist`` (1-based) outside
    ``face``, with the transverse extent of ``region``."""
    axis, side = face_axis(face), face_side(face)
    ib = block.cell_box
    if side == 0:
        lo_a = ib.lo[axis] - dist
    else:
        lo_a = ib.hi[axis] - 1 + dist
    lo = list(region.lo)
    hi = list(region.hi)
    lo[axis] = lo_a
    hi[axis] = lo_a + 1
    return IndexBox(tuple(lo), tuple(hi))


class OutflowBC:
    """Zero-gradient: every ghost layer copies the nearest interior layer."""

    def __call__(
        self, block: Block, face: int, region: IndexBox, forest: BlockForest
    ) -> None:
        src = block.view(_interior_layer_box(block, face, region, 0))
        for dist in range(1, block.n_ghost + 1):
            block.view(_ghost_layer_box(block, face, region, dist))[...] = src


class ExtrapolationBC:
    """Linear extrapolation from the two interior layers nearest the face.

    Exact for fields linear in the face-normal coordinate, so the ghost
    exchange stays second-order accurate up to the boundary.
    """

    def __call__(
        self, block: Block, face: int, region: IndexBox, forest: BlockForest
    ) -> None:
        q0 = block.view(_interior_layer_box(block, face, region, 0))
        q1 = block.view(_interior_layer_box(block, face, region, 1))
        outward_slope = q0 - q1
        for dist in range(1, block.n_ghost + 1):
            block.view(_ghost_layer_box(block, face, region, dist))[...] = (
                q0 + dist * outward_slope
            )


class ReflectingBC:
    """Solid wall: ghost layer ``q`` mirrors interior layer ``q``, with a
    sign flip on the variables listed for the face's axis.

    Parameters
    ----------
    flip_vars:
        Mapping axis → variable indices whose sign flips across a wall
        normal to that axis (e.g. the normal momentum, and for MHD the
        normal magnetic field).  Axes not present flip nothing.
    """

    def __init__(self, flip_vars: Optional[Mapping[int, Sequence[int]]] = None):
        self.flip_vars = {k: tuple(v) for k, v in (flip_vars or {}).items()}

    def __call__(
        self, block: Block, face: int, region: IndexBox, forest: BlockForest
    ) -> None:
        axis = face_axis(face)
        flips = self.flip_vars.get(axis, ())
        for dist in range(1, block.n_ghost + 1):
            src = block.view(
                _interior_layer_box(block, face, region, dist - 1)
            ).copy()
            for v in flips:
                src[v] = -src[v]
            block.view(_ghost_layer_box(block, face, region, dist))[...] = src


class FixedBC:
    """Dirichlet: ghost cells take values from a user function.

    ``values(centers) -> array`` receives the meshgrid coordinate arrays
    of the ghost cells and must return an ``(nvar, *shape)`` array (or
    one broadcastable to it).
    """

    def __init__(self, values: Callable[[Tuple[np.ndarray, ...]], np.ndarray]):
        self.values = values

    def __call__(
        self, block: Block, face: int, region: IndexBox, forest: BlockForest
    ) -> None:
        centers = region_centers(forest, block.level, region)
        block.view(region)[...] = self.values(centers)


class CompositeBC:
    """Different boundary conditions per face.

    Parameters
    ----------
    per_face:
        Mapping face index → handler.  Faces not present use ``default``.
    default:
        Fallback handler (default: :class:`OutflowBC`).
    """

    def __init__(
        self,
        per_face: Optional[Mapping[int, Callable]] = None,
        default: Optional[Callable] = None,
    ):
        self.per_face: Dict[int, Callable] = dict(per_face or {})
        self.default = default if default is not None else OutflowBC()

    def __call__(
        self, block: Block, face: int, region: IndexBox, forest: BlockForest
    ) -> None:
        handler = self.per_face.get(face, self.default)
        handler(block, face, region, forest)
