"""Checkpoint I/O and grid reporting.

Forests serialize to a single ``.npz`` file: block IDs (level + coords)
and the stacked interior data, plus the construction parameters needed
to rebuild the forest.  Ghost cells are not stored — they are
reconstructed by a ghost exchange after loading.

Checkpoints are written for *restart*, so the format is defensive:

* writes are atomic (``path + ".tmp"`` then :func:`os.replace`), so a
  crash mid-write never leaves a half-written file under the final name;
* every file carries a ``format_version`` field and a CRC32 content
  checksum over all arrays;
* :func:`load_forest` raises :class:`CheckpointError` — never a raw
  ``KeyError``/``ValueError`` — on truncated files, missing keys,
  version mismatches, checksum failures, or unreachable topologies, so
  a corrupt checkpoint is always rejected loudly instead of loaded
  silently.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.block_id import BlockID
from repro.core.forest import BlockForest, ForestError
from repro.util.geometry import Box

__all__ = [
    "CheckpointError",
    "FORMAT_VERSION",
    "save_forest",
    "load_forest",
    "checkpoint_metadata",
    "verify_checkpoint",
    "grid_report",
    "history_to_csv",
]

#: Checkpoint format version.  Version 2 added the version field itself,
#: the content checksum, and the optional simulation time/step metadata.
FORMAT_VERSION = 2

#: Keys every checkpoint must carry to be loadable.
_REQUIRED_KEYS = (
    "format_version",
    "checksum",
    "levels",
    "coords",
    "data",
    "domain_lo",
    "domain_hi",
    "n_root",
    "m",
    "nvar",
    "n_ghost",
    "periodic",
    "max_level",
    "max_level_jump",
    "prolong_order",
)


class CheckpointError(RuntimeError):
    """Raised when a checkpoint file is missing, corrupt, or incompatible."""


def _array_checksum(payload: Dict[str, np.ndarray]) -> int:
    """CRC32 over every array's name, dtype, shape, and bytes (sorted by
    name so the result is independent of insertion order)."""
    crc = 0
    for name in sorted(payload):
        if name == "checksum":
            continue
        arr = np.ascontiguousarray(payload[name])
        crc = zlib.crc32(name.encode(), crc)
        crc = zlib.crc32(str(arr.dtype).encode(), crc)
        crc = zlib.crc32(str(arr.shape).encode(), crc)
        crc = zlib.crc32(arr.tobytes(), crc)
    return crc


def history_to_csv(history, path: "Union[str, Path]") -> None:
    """Dump a simulation's step history as CSV (step, time, dt, blocks,
    cells, refined, coarsened) — handy for plotting adaptation dynamics
    with any external tool.

    When the records carry per-step wall-clock timings (see
    :class:`repro.amr.driver.StepRecord`) a ``wall_time`` column is
    appended; when any record carries a fault-recovery duration (runs
    driven by :func:`repro.resilience.recovery.run_with_recovery`) a
    ``recovery_time`` column follows, so benchmark runs can track
    recovery cost over time.  An empty history produces a header-only
    file.
    """
    path = Path(path)
    records = list(history)
    has_wall = any(getattr(r, "wall_time", None) is not None for r in records)
    has_recovery = any(
        getattr(r, "recovery_time", None) is not None for r in records
    )
    with path.open("w") as f:
        header = "step,time,dt,n_blocks,n_cells,refined,coarsened"
        if has_wall:
            header += ",wall_time"
        if has_recovery:
            header += ",recovery_time"
        f.write(header + "\n")
        for rec in records:
            refined = rec.adapted.refined if rec.adapted else 0
            coarsened = rec.adapted.coarsened if rec.adapted else 0
            row = (
                f"{rec.step},{rec.time:.12g},{rec.dt:.12g},"
                f"{rec.n_blocks},{rec.n_cells},{refined},{coarsened}"
            )
            if has_wall:
                wall = getattr(rec, "wall_time", None)
                row += f",{wall:.6g}" if wall is not None else ","
            if has_recovery:
                rec_t = getattr(rec, "recovery_time", None)
                row += f",{rec_t:.6g}" if rec_t is not None else ","
            f.write(row + "\n")


def save_forest(
    forest: BlockForest,
    path: Union[str, Path],
    *,
    time: Optional[float] = None,
    step: Optional[int] = None,
) -> None:
    """Write a forest checkpoint (topology + interior data + metadata).

    The write is atomic: data goes to ``path + ".tmp"`` first and is
    moved into place with :func:`os.replace`, so readers never observe a
    partially written checkpoint.  ``time``/``step`` optionally record
    the simulation clock for restarts (see :func:`checkpoint_metadata`).
    """
    path = Path(path)
    ids = forest.sorted_ids()
    payload: Dict[str, np.ndarray] = {
        "levels": np.array([b.level for b in ids], dtype=np.int64),
        "coords": np.array([b.coords for b in ids], dtype=np.int64).reshape(
            len(ids), forest.ndim
        ),
        "data": np.stack([forest.blocks[b].interior for b in ids]),
        "domain_lo": np.array(forest.domain.lo),
        "domain_hi": np.array(forest.domain.hi),
        "n_root": np.array(forest.n_root, dtype=np.int64),
        "m": np.array(forest.m, dtype=np.int64),
        "nvar": np.int64(forest.nvar),
        "n_ghost": np.int64(forest.n_ghost),
        "periodic": np.array(forest.periodic, dtype=bool),
        "max_level": np.int64(forest.max_level),
        "max_level_jump": np.int64(forest.max_level_jump),
        "prolong_order": np.int64(forest.prolong_order),
        "format_version": np.int64(FORMAT_VERSION),
    }
    if time is not None:
        payload["sim_time"] = np.float64(time)
    if step is not None:
        payload["sim_step"] = np.int64(step)
    payload["checksum"] = np.uint32(_array_checksum(payload))
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # failed mid-write: don't leave debris
            tmp.unlink()


def _open_checkpoint(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Read and verify a checkpoint file into an in-memory dict."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        with np.load(path) as f:
            payload = {name: f[name] for name in f.files}
    except CheckpointError:
        raise
    except Exception as exc:  # truncated zip, bad member CRC, ...
        raise CheckpointError(f"checkpoint {path} is unreadable: {exc}") from exc
    missing = [k for k in _REQUIRED_KEYS if k not in payload]
    if missing:
        raise CheckpointError(
            f"checkpoint {path} is missing required keys: {', '.join(missing)}"
        )
    version = int(payload["format_version"])
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version}, "
            f"expected {FORMAT_VERSION}"
        )
    stored = int(payload["checksum"])
    actual = _array_checksum(payload)
    if stored != actual:
        raise CheckpointError(
            f"checkpoint {path} failed checksum verification "
            f"(stored {stored:#010x}, computed {actual:#010x}); "
            "the file is corrupt"
        )
    return payload


def checkpoint_metadata(path: Union[str, Path]) -> Dict[str, float]:
    """Verified metadata of a checkpoint without rebuilding the forest.

    Returns ``format_version``, ``n_blocks``, and — when the writer
    recorded them — ``time`` and ``step``.
    """
    payload = _open_checkpoint(path)
    meta: Dict[str, float] = {
        "format_version": int(payload["format_version"]),
        "n_blocks": int(payload["levels"].shape[0]),
    }
    if "sim_time" in payload:
        meta["time"] = float(payload["sim_time"])
    if "sim_step" in payload:
        meta["step"] = int(payload["sim_step"])
    return meta


def verify_checkpoint(path: Union[str, Path]) -> Dict[str, object]:
    """Audit one checkpoint file without rebuilding the forest.

    Unlike :func:`checkpoint_metadata` this never raises: every failure
    mode (missing file, truncated zip, missing keys, version mismatch,
    checksum mismatch) is folded into the returned record, so a
    directory audit can tabulate good and bad files side by side.

    Returns a dict with ``path``, ``ok`` and ``error`` always present;
    readable files additionally carry ``format_version``, ``n_blocks``,
    ``stored_crc`` and ``computed_crc`` (equal iff the content is
    intact) plus ``step``/``time`` when the writer recorded them.
    """
    path = Path(path)
    record: Dict[str, object] = {"path": path, "ok": False, "error": None}
    try:
        with np.load(path) as f:
            payload = {name: f[name] for name in f.files}
    except Exception as exc:  # missing, truncated zip, bad member CRC, ...
        record["error"] = str(exc)
        return record
    missing = [k for k in _REQUIRED_KEYS if k not in payload]
    if missing:
        record["error"] = f"missing required keys: {', '.join(missing)}"
        return record
    record["format_version"] = int(payload["format_version"])
    record["n_blocks"] = int(payload["levels"].shape[0])
    if "sim_step" in payload:
        record["step"] = int(payload["sim_step"])
    if "sim_time" in payload:
        record["time"] = float(payload["sim_time"])
    stored = int(payload["checksum"])
    computed = _array_checksum(payload)
    record["stored_crc"] = stored
    record["computed_crc"] = computed
    if int(payload["format_version"]) != FORMAT_VERSION:
        record["error"] = (
            f"format version {int(payload['format_version'])}, "
            f"expected {FORMAT_VERSION}"
        )
    elif stored != computed:
        record["error"] = (
            f"checksum mismatch (stored {stored:#010x}, "
            f"computed {computed:#010x})"
        )
    else:
        record["ok"] = True
    return record


def load_forest(path: Union[str, Path]) -> BlockForest:
    """Rebuild a forest from a checkpoint (ghosts left unfilled).

    Raises :class:`CheckpointError` if the file is truncated, fails its
    checksum, was written by a different format version, or encodes a
    topology not reachable by pure refinement from the root tiling.
    """
    f = _open_checkpoint(path)
    domain = Box(tuple(f["domain_lo"]), tuple(f["domain_hi"]))
    forest = BlockForest(
        domain,
        tuple(int(x) for x in f["n_root"]),
        tuple(int(x) for x in f["m"]),
        int(f["nvar"]),
        n_ghost=int(f["n_ghost"]),
        periodic=tuple(bool(x) for x in f["periodic"]),
        max_level=int(f["max_level"]),
        max_level_jump=int(f["max_level_jump"]),
        prolong_order=int(f["prolong_order"]),
    )
    ids = [
        BlockID(int(lvl), tuple(int(c) for c in cs))
        for lvl, cs in zip(f["levels"], f["coords"])
    ]
    expected_shape = (len(ids), forest.nvar) + forest.m
    if f["data"].shape != expected_shape:
        raise CheckpointError(
            f"checkpoint {path} data array has shape {f['data'].shape}, "
            f"expected {expected_shape}"
        )
    # Reconstruct the topology: refine until exactly the saved leaf
    # set exists.  Saved leaves are sorted by Morton key, so parents
    # always appear before any deeper leaves they must split into.
    target = set(ids)
    unreachable = CheckpointError(
        f"checkpoint {path} topology is not reachable by pure refinement "
        "from the root tiling"
    )
    changed = True
    while changed:
        changed = False
        for bid in list(forest.blocks):
            if bid in target:
                continue
            # This leaf must be refined (some saved leaf is below it).
            if bid.level >= forest.max_level:
                raise unreachable
            try:
                forest.refine(bid, update=False)
            except ForestError as exc:
                raise unreachable from exc
            changed = True
    forest.update_neighbors()
    if set(forest.blocks) != target:
        raise unreachable
    for bid, block_data in zip(ids, f["data"]):
        forest.blocks[bid].interior[...] = block_data
    return forest


def grid_report(forest: BlockForest) -> str:
    """Human-readable summary of a forest (blocks, cells, levels,
    ghost overhead, neighbor stats)."""
    hist = forest.level_histogram()
    stats = forest.neighbor_count_stats()
    lines = [
        f"blocks: {forest.n_blocks}   cells: {forest.n_cells}",
        f"block size: {'x'.join(map(str, forest.m))}   ghost width: {forest.n_ghost}",
        f"levels: {forest.levels[0]}..{forest.levels[1]}   "
        + "  ".join(f"L{k}:{v}" for k, v in hist.items()),
        f"ghost/computational cell ratio: {forest.ghost_cell_ratio():.3f}",
        f"face neighbors: max {stats['max']:.0f}, mean {stats['mean']:.2f}",
        f"refinements: {forest.n_refinements}   coarsenings: {forest.n_coarsenings}",
    ]
    return "\n".join(lines)
