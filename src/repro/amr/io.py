"""Checkpoint I/O and grid reporting.

Forests serialize to a single ``.npz`` file: block IDs (level + coords)
and the stacked interior data, plus the construction parameters needed
to rebuild the forest.  Ghost cells are not stored — they are
reconstructed by a ghost exchange after loading.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.core.block_id import BlockID
from repro.core.forest import BlockForest
from repro.util.geometry import Box

__all__ = ["save_forest", "load_forest", "grid_report", "history_to_csv"]


def history_to_csv(history, path: "Union[str, Path]") -> None:
    """Dump a simulation's step history as CSV (step, time, dt, blocks,
    cells, refined, coarsened) — handy for plotting adaptation dynamics
    with any external tool."""
    path = Path(path)
    with path.open("w") as f:
        f.write("step,time,dt,n_blocks,n_cells,refined,coarsened\n")
        for rec in history:
            refined = rec.adapted.refined if rec.adapted else 0
            coarsened = rec.adapted.coarsened if rec.adapted else 0
            f.write(
                f"{rec.step},{rec.time:.12g},{rec.dt:.12g},"
                f"{rec.n_blocks},{rec.n_cells},{refined},{coarsened}\n"
            )


def save_forest(forest: BlockForest, path: Union[str, Path]) -> None:
    """Write a forest checkpoint (topology + interior data + metadata)."""
    ids = forest.sorted_ids()
    levels = np.array([b.level for b in ids], dtype=np.int64)
    coords = np.array([b.coords for b in ids], dtype=np.int64)
    data = np.stack([forest.blocks[b].interior for b in ids])
    np.savez_compressed(
        path,
        levels=levels,
        coords=coords,
        data=data,
        domain_lo=np.array(forest.domain.lo),
        domain_hi=np.array(forest.domain.hi),
        n_root=np.array(forest.n_root, dtype=np.int64),
        m=np.array(forest.m, dtype=np.int64),
        nvar=np.int64(forest.nvar),
        n_ghost=np.int64(forest.n_ghost),
        periodic=np.array(forest.periodic, dtype=bool),
        max_level=np.int64(forest.max_level),
        max_level_jump=np.int64(forest.max_level_jump),
        prolong_order=np.int64(forest.prolong_order),
    )


def load_forest(path: Union[str, Path]) -> BlockForest:
    """Rebuild a forest from a checkpoint (ghosts left unfilled)."""
    with np.load(path) as f:
        domain = Box(tuple(f["domain_lo"]), tuple(f["domain_hi"]))
        forest = BlockForest(
            domain,
            tuple(int(x) for x in f["n_root"]),
            tuple(int(x) for x in f["m"]),
            int(f["nvar"]),
            n_ghost=int(f["n_ghost"]),
            periodic=tuple(bool(x) for x in f["periodic"]),
            max_level=int(f["max_level"]),
            max_level_jump=int(f["max_level_jump"]),
            prolong_order=int(f["prolong_order"]),
        )
        ids = [
            BlockID(int(lvl), tuple(int(c) for c in cs))
            for lvl, cs in zip(f["levels"], f["coords"])
        ]
        # Reconstruct the topology: refine until exactly the saved leaf
        # set exists.  Saved leaves are sorted by Morton key, so parents
        # always appear before any deeper leaves they must split into.
        target = set(ids)
        changed = True
        while changed:
            changed = False
            for bid in list(forest.blocks):
                if bid in target:
                    continue
                # This leaf must be refined (some saved leaf is below it).
                forest.refine(bid, update=False)
                changed = True
        forest.update_neighbors()
        if set(forest.blocks) != target:
            raise ValueError(
                "checkpoint topology is not reachable by pure refinement "
                "from the root tiling"
            )
        for bid, block_data in zip(ids, f["data"]):
            forest.blocks[bid].interior[...] = block_data
    return forest


def grid_report(forest: BlockForest) -> str:
    """Human-readable summary of a forest (blocks, cells, levels,
    ghost overhead, neighbor stats)."""
    hist = forest.level_histogram()
    stats = forest.neighbor_count_stats()
    lines = [
        f"blocks: {forest.n_blocks}   cells: {forest.n_cells}",
        f"block size: {'x'.join(map(str, forest.m))}   ghost width: {forest.n_ghost}",
        f"levels: {forest.levels[0]}..{forest.levels[1]}   "
        + "  ".join(f"L{k}:{v}" for k, v in hist.items()),
        f"ghost/computational cell ratio: {forest.ghost_cell_ratio():.3f}",
        f"face neighbors: max {stats['max']:.0f}, mean {stats['mean']:.2f}",
        f"refinements: {forest.n_refinements}   coarsenings: {forest.n_coarsenings}",
    ]
    return "\n".join(lines)
