"""Simulation configuration.

One dataclass gathering every knob the paper discusses: block size
``m`` (the central trade-off parameter, 16^3 on the T3D), ghost width
(1 for first order, 2 for higher resolution), the level-jump constraint,
refinement thresholds and the adaptation-check interval ("the frequency
of checking criteria").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.util.geometry import Box

__all__ = ["SimulationConfig"]


@dataclass
class SimulationConfig:
    """Configuration of one AMR simulation.

    Parameters mirror :class:`repro.core.forest.BlockForest` plus the
    solver and adaptation knobs.
    """

    domain: Box
    n_root: Tuple[int, ...]
    m: Tuple[int, ...] = (8, 8)
    n_ghost: int = 2
    periodic: Optional[Tuple[bool, ...]] = None
    max_level: int = 4
    max_level_jump: int = 1
    prolong_order: int = 2

    # solver
    order: int = 2
    limiter: str = "van_leer"
    riemann: str = "rusanov"
    cfl: float = 0.4

    # adaptation
    adapt_interval: int = 4          #: steps between criterion checks
    refine_threshold: float = 0.10
    coarsen_threshold: float = 0.02
    buffer_band: int = 1             #: rings of neighbors pulled into refinement

    # execution engine: "blocked" (per-block kernels) or "batched"
    # (vectorized-over-blocks kernels on the arena pool)
    engine: str = "blocked"

    # kernel backend for the hot per-tile ops (repro.kernels registry);
    # every backend is bit-for-bit with the numpy reference
    kernel_backend: str = "numpy"

    # time stepping: False advances every block with one global
    # CFL-limited dt; True subcycles — each level steps with its own dt
    # (2^delta substeps per coarse step, time-interpolated ghosts; see
    # repro.amr.subcycle)
    subcycle: bool = False

    def __post_init__(self) -> None:
        if self.adapt_interval < 1:
            raise ValueError("adapt_interval must be >= 1")
        if self.engine not in ("blocked", "batched"):
            raise ValueError(
                f"engine must be 'blocked' or 'batched', got {self.engine!r}"
            )
        from repro.kernels import BACKEND_NAMES

        if self.kernel_backend not in BACKEND_NAMES:
            raise ValueError(
                f"kernel_backend must be one of {BACKEND_NAMES}, "
                f"got {self.kernel_backend!r}"
            )
        if self.n_ghost < self.order:
            raise ValueError(
                f"order {self.order} needs at least {self.order} ghost layers, "
                f"got {self.n_ghost}"
            )

    @property
    def ndim(self) -> int:
        return self.domain.ndim

    def make_forest(self, nvar: int):
        """Construct the block forest described by this configuration."""
        from repro.core.forest import BlockForest

        return BlockForest(
            self.domain,
            self.n_root,
            self.m,
            nvar,
            n_ghost=self.n_ghost,
            periodic=self.periodic,
            max_level=self.max_level,
            max_level_jump=self.max_level_jump,
            prolong_order=self.prolong_order,
        )
