"""Legacy-VTK export for visualization in ParaView/VisIt.

Two writers, both dependency-free ASCII legacy VTK:

* :func:`save_vtk_uniform` — the whole forest resampled onto one uniform
  grid (``STRUCTURED_POINTS``): one file, drag-and-drop into ParaView;
* :func:`save_vtk_blocks` — one ``RECTILINEAR_GRID`` piece per block
  plus a ``.visit``-style index file, preserving the native AMR
  resolution (and writing each block's refinement level as a field).

Cell data is written (the library is finite-volume), so ParaView shows
the actual piecewise-constant states.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.amr.sampling import resample_uniform
from repro.core.forest import BlockForest

__all__ = ["save_vtk_uniform", "save_vtk_blocks"]


def _default_names(nvar: int) -> List[str]:
    return [f"var{i}" for i in range(nvar)]


def _write_scalars(f, name: str, values: np.ndarray) -> None:
    f.write(f"SCALARS {name} double 1\n")
    f.write("LOOKUP_TABLE default\n")
    # VTK expects x fastest; our arrays are (x, y[, z]) ij-indexed, so
    # transpose to put x last before flattening C-order.
    flat = values.T.reshape(-1)
    for i in range(0, flat.size, 6):
        f.write(" ".join(f"{v:.10g}" for v in flat[i : i + 6]) + "\n")


def save_vtk_uniform(
    forest: BlockForest,
    path: Union[str, Path],
    *,
    level: Optional[int] = None,
    var_names: Optional[Sequence[str]] = None,
) -> Path:
    """Write the forest resampled at ``level`` as one legacy VTK file.

    ``level`` defaults to the finest level present.  Returns the path.
    """
    path = Path(path)
    if level is None:
        level = forest.levels[1]
    names = list(var_names) if var_names else _default_names(forest.nvar)
    if len(names) != forest.nvar:
        raise ValueError(f"need {forest.nvar} variable names, got {len(names)}")
    data = resample_uniform(forest, level)
    shape = data.shape[1:]
    spacing = [
        forest.domain.widths[a] / shape[a] for a in range(forest.ndim)
    ]
    # Pad to 3-D as VTK requires.
    dims3 = list(shape) + [1] * (3 - forest.ndim)
    spacing3 = spacing + [1.0] * (3 - forest.ndim)
    origin3 = list(forest.domain.lo) + [0.0] * (3 - forest.ndim)
    n_cells = int(np.prod(shape))
    with path.open("w") as f:
        f.write("# vtk DataFile Version 3.0\n")
        f.write(f"repro adaptive blocks, level {level} resample\n")
        f.write("ASCII\nDATASET STRUCTURED_POINTS\n")
        f.write(f"DIMENSIONS {dims3[0] + 1} {dims3[1] + 1} {dims3[2] + 1}\n")
        f.write(f"ORIGIN {origin3[0]:.10g} {origin3[1]:.10g} {origin3[2]:.10g}\n")
        f.write(
            f"SPACING {spacing3[0]:.10g} {spacing3[1]:.10g} {spacing3[2]:.10g}\n"
        )
        f.write(f"CELL_DATA {n_cells}\n")
        for v, name in enumerate(names):
            _write_scalars(f, name, data[v])
    return path


def save_vtk_blocks(
    forest: BlockForest,
    directory: Union[str, Path],
    *,
    basename: str = "blocks",
    var_names: Optional[Sequence[str]] = None,
) -> Path:
    """Write one rectilinear-grid VTK file per block plus an index.

    Returns the index file path (``<basename>.visit``), which ParaView
    and VisIt open as a multi-piece dataset.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names = list(var_names) if var_names else _default_names(forest.nvar)
    if len(names) != forest.nvar:
        raise ValueError(f"need {forest.nvar} variable names, got {len(names)}")
    pieces = []
    for i, block in enumerate(forest):
        fname = f"{basename}_{i:05d}.vtk"
        pieces.append(fname)
        axes = []
        for a in range(forest.ndim):
            axes.append(
                np.linspace(
                    block.box.lo[a], block.box.hi[a], block.m[a] + 1
                )
            )
        for _ in range(3 - forest.ndim):
            axes.append(np.array([0.0]))
        with (directory / fname).open("w") as f:
            f.write("# vtk DataFile Version 3.0\n")
            f.write(f"block {block.id} level {block.level}\n")
            f.write("ASCII\nDATASET RECTILINEAR_GRID\n")
            f.write(
                "DIMENSIONS "
                + " ".join(str(len(ax)) for ax in axes)
                + "\n"
            )
            for label, ax in zip("XYZ", axes):
                f.write(f"{label}_COORDINATES {len(ax)} double\n")
                f.write(" ".join(f"{v:.10g}" for v in ax) + "\n")
            f.write(f"CELL_DATA {block.n_cells}\n")
            for v, name in enumerate(names):
                _write_scalars(f, name, block.interior[v])
            _write_scalars(
                f, "amr_level",
                np.full(block.m, float(block.level)),
            )
    index = directory / f"{basename}.visit"
    with index.open("w") as f:
        f.write(f"!NBLOCKS {len(pieces)}\n")
        for p in pieces:
            f.write(p + "\n")
    return index
