"""The adaptive block: a regular cell array with a ghost halo.

Each :class:`Block` owns one contiguous numpy array of conserved
variables covering an ``m1 × m2 × ... × md`` array of *computational*
cells surrounded by ``n_ghost`` layers of *ghost* cells.  All numerical
kernels operate on these arrays with whole-array (vectorized) slicing —
the Python analogue of the loop/cache optimizations the paper performs
over per-block Fortran arrays.

Connectivity is stored as explicit per-face neighbor pointers
(:class:`FaceNeighbors`), maintained by the forest, so locating a
neighbor is a direct lookup rather than a tree traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.block_id import BlockID, IndexBox
from repro.util.geometry import Box, face_axis, face_side

__all__ = ["Block", "FaceNeighbors", "NeighborKind"]


class NeighborKind:
    """Classification of what lies across a block face."""

    SAME = "same"          #: one neighbor at the same refinement level
    COARSER = "coarser"    #: one neighbor at a coarser level
    FINER = "finer"        #: several neighbors at finer levels
    BOUNDARY = "boundary"  #: physical domain boundary


@dataclass
class FaceNeighbors:
    """Explicit neighbor pointers across one face of a block.

    ``ids`` holds the BlockIDs of every leaf block sharing this face.
    Under the default 2:1 balance there are at most ``2**(d-1)`` of them
    (all one level finer), exactly one (same or one level coarser), or
    none (physical boundary) — matching the paper's bound.  With a
    relaxed ``max_level_jump = k`` there may be up to ``2**(k*(d-1))``.

    ``shift`` is the periodic-wrap displacement, in *root-level block
    units*, that must be added to this block's coordinates to land in the
    neighbor's frame; it is zero except across periodic boundaries.
    """

    kind: str
    ids: Tuple[BlockID, ...] = ()
    shift: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind == NeighborKind.BOUNDARY and self.ids:
            raise ValueError("boundary faces have no neighbor ids")
        if self.kind in (NeighborKind.SAME, NeighborKind.COARSER) and len(self.ids) != 1:
            raise ValueError(f"{self.kind} faces must have exactly one neighbor")
        if self.kind == NeighborKind.FINER and not self.ids:
            raise ValueError("finer faces must have at least one neighbor")


@dataclass
class Block:
    """One adaptive block: geometry + data array + neighbor pointers.

    Parameters
    ----------
    id:
        Logical address (level + coordinates).
    box:
        Physical bounding box of the computational region (ghosts lie
        outside it).
    m:
        Computational cells per axis (each must be even and
        ``>= 2 * n_ghost`` so prolongation/restriction stay in-block).
    n_ghost:
        Ghost layers per side.  One suffices for first-order operators;
        higher-resolution (MUSCL) schemes need two — exactly the paper's
        ghost-layer discussion.
    nvar:
        Number of state variables (e.g. 8 for 3-D ideal MHD).
    """

    id: BlockID
    box: Box
    m: Tuple[int, ...]
    n_ghost: int
    nvar: int
    data: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    face_neighbors: Dict[int, FaceNeighbors] = field(default_factory=dict, repr=False)
    #: pool row when ``data`` is a view into a :class:`~repro.core.arena.
    #: BlockArena` (None for standalone blocks, e.g. emulator rank clones).
    arena_row: Optional[int] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.m) != self.id.ndim:
            raise ValueError("m dimension mismatch with BlockID")
        if self.n_ghost < 1:
            raise ValueError("need at least one ghost layer")
        for mi in self.m:
            if mi % 2 != 0:
                raise ValueError(f"block size {mi} must be even (for 2^d refinement)")
            if mi < 2 * self.n_ghost:
                raise ValueError(
                    f"block size {mi} too small for {self.n_ghost} ghost layers"
                )
        if self.nvar < 1:
            raise ValueError("nvar must be >= 1")
        padded = tuple(mi + 2 * self.n_ghost for mi in self.m)
        if self.data is None:
            self.data = np.zeros((self.nvar,) + padded)
        elif self.data.shape != (self.nvar,) + padded:
            raise ValueError(
                f"data shape {self.data.shape} != expected {(self.nvar,) + padded}"
            )

    # -- geometry -----------------------------------------------------------

    @property
    def ndim(self) -> int:
        return self.id.ndim

    @property
    def level(self) -> int:
        return self.id.level

    @property
    def padded_shape(self) -> Tuple[int, ...]:
        return tuple(mi + 2 * self.n_ghost for mi in self.m)

    @property
    def n_cells(self) -> int:
        """Number of computational (non-ghost) cells."""
        n = 1
        for mi in self.m:
            n *= mi
        return n

    @property
    def n_ghost_cells(self) -> int:
        """Number of ghost cells (padded minus computational)."""
        n = 1
        for p in self.padded_shape:
            n *= p
        return n - self.n_cells

    @property
    def dx(self) -> Tuple[float, ...]:
        """Physical cell widths."""
        return self.box.cell_widths(self.m)

    @property
    def cell_box(self) -> IndexBox:
        """Global cell-index box of the interior at this block's level."""
        return self.id.cell_box(self.m)

    @property
    def index_origin(self) -> Tuple[int, ...]:
        """Global cell index of the [0,...,0] element of the *padded* array."""
        return tuple(
            c * mi - self.n_ghost for c, mi in zip(self.id.coords, self.m)
        )

    def cell_centers(self, include_ghost: bool = False) -> Tuple[np.ndarray, ...]:
        """1-D arrays of physical cell-center coordinates per axis."""
        dx = self.dx
        if include_ghost:
            return tuple(
                lo + (np.arange(-self.n_ghost, mi + self.n_ghost) + 0.5) * h
                for lo, mi, h in zip(self.box.lo, self.m, dx)
            )
        return self.box.cell_centers(self.m)

    def meshgrid(self, include_ghost: bool = False) -> Tuple[np.ndarray, ...]:
        """d-dimensional physical coordinate arrays (ij indexing)."""
        return tuple(
            np.meshgrid(*self.cell_centers(include_ghost), indexing="ij")
        )

    # -- array views --------------------------------------------------------

    @property
    def interior_slices(self) -> Tuple[slice, ...]:
        g = self.n_ghost
        return tuple(slice(g, g + mi) for mi in self.m)

    @property
    def interior(self) -> np.ndarray:
        """View of the computational cells: shape ``(nvar, *m)``."""
        return self.data[(slice(None),) + self.interior_slices]

    def view(self, region: IndexBox) -> np.ndarray:
        """View of an arbitrary region given in *global* cell indices
        (at this block's level).  The region must lie within the padded
        array."""
        sl = region.slices(self.index_origin)
        for s, p in zip(sl, self.padded_shape):
            if s.start < 0 or s.stop > p:
                raise IndexError(
                    f"region {region} outside padded array of block {self.id}"
                )
        return self.data[(slice(None),) + sl]

    @property
    def padded_box(self) -> IndexBox:
        """Global cell-index box of the full padded array."""
        return self.cell_box.grow(self.n_ghost)

    def ghost_region(self, face: int, swept_axes: Tuple[int, ...] = ()) -> IndexBox:
        """Ghost slab outside ``face`` in global cell indices.

        ``swept_axes`` lists transverse axes whose ghost extension should
        be *included* in the slab — the axis-sweep corner-filling scheme:
        when exchanging along axis ``a``, axes already swept contribute
        their ghost extent so that edge/corner ghosts get valid data.
        """
        axis, side = face_axis(face), face_side(face)
        ib = self.cell_box
        lo = list(ib.lo)
        hi = list(ib.hi)
        if side == 0:
            hi[axis] = lo[axis]
            lo[axis] -= self.n_ghost
        else:
            lo[axis] = hi[axis]
            hi[axis] += self.n_ghost
        for b in swept_axes:
            if b == axis:
                continue
            lo[b] -= self.n_ghost
            hi[b] += self.n_ghost
        return IndexBox(tuple(lo), tuple(hi))

    # -- bookkeeping --------------------------------------------------------

    def fill(self, values: np.ndarray) -> None:
        """Set every interior cell of every variable from a ``(nvar, *m)``
        (or broadcastable) array."""
        self.interior[...] = values

    def zero_ghosts(self) -> None:
        """Reset ghost cells to zero (useful to detect unfilled ghosts)."""
        keep = self.interior.copy()
        self.data[...] = 0.0
        self.interior[...] = keep

    def __repr__(self) -> str:
        return (
            f"Block({self.id}, m={self.m}, g={self.n_ghost}, nvar={self.nvar})"
        )
